// Shared harness utilities for the figure-reproduction benchmarks: a tiny
// --key=value flag parser and fixed-width table printing so each binary
// emits the same rows/series its paper figure reports.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace mlkv::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_.emplace_back(arg, "1");
      } else {
        kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      }
    }
  }

  int64_t Int(const std::string& name, int64_t def) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return std::strtoll(v.c_str(), nullptr, 10);
    }
    return def;
  }
  double Double(const std::string& name, double def) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return std::strtod(v.c_str(), nullptr);
    }
    return def;
  }
  bool Bool(const std::string& name, bool def) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return v != "0" && v != "false";
    }
    return def;
  }
  std::string Str(const std::string& name, const std::string& def) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return v;
    }
    return def;
  }
  bool Has(const std::string& name) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return true;
    }
    return false;
  }

  // --smoke: CI sanity mode. Every bench binary must finish in seconds.
  bool Smoke() const { return Bool("smoke", false); }

  // Flag value with a separate tiny default under --smoke. An explicit
  // --name=value always wins over both defaults.
  int64_t Int(const std::string& name, int64_t def, int64_t smoke_def) const {
    if (Has(name)) return Int(name, def);
    return Smoke() ? smoke_def : def;
  }
  std::string Str(const std::string& name, const std::string& def,
                  const std::string& smoke_def) const {
    if (Has(name)) return Str(name, def);
    return Smoke() ? smoke_def : def;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

// Fixed-width table: Header(...) then Row(...) with matching arity.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {}

  void PrintHeader() const {
    for (const auto& c : columns_) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
    for (size_t i = 0; i < columns_.size() * static_cast<size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void Cell(const std::string& s) { cells_.push_back(s); }
  void Cell(double v, const char* fmt = "%.2f") {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    cells_.emplace_back(buf);
  }
  void Cell(uint64_t v) { cells_.push_back(std::to_string(v)); }
  void Cell(int64_t v) { cells_.push_back(std::to_string(v)); }
  void Cell(int v) { cells_.push_back(std::to_string(v)); }

  void EndRow() {
    for (const auto& c : cells_) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
    std::fflush(stdout);
    cells_.clear();
  }

 private:
  std::vector<std::string> columns_;
  int width_;
  std::vector<std::string> cells_;
};

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::fflush(stdout);
}

// Pretty throughput: "12.3K" / "4.5M".
inline std::string Human(double v) {
  char buf[32];
  if (v >= 1e6) std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  else if (v >= 1e3) std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  else std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace mlkv::bench
