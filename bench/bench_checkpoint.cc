// Durability bench (extension): checkpoint, recovery, and export costs as a
// function of table size — the paper's heterogeneous-storage story (§II-B)
// pairs fast local logs with periodic checkpoints, so the practical
// question is what a checkpoint costs and how fast a node comes back.
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "mlkv/mlkv.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

void RunScale(uint64_t num_keys, uint32_t dim, Table* t) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = num_keys;
  opts.mem_size = 64ull << 20;
  std::unique_ptr<Mlkv> db;
  if (!Mlkv::Open(opts, &db).ok()) std::exit(1);
  EmbeddingTable* table = nullptr;
  OptimizerConfig adagrad;
  adagrad.kind = OptimizerKind::kAdagrad;
  if (!db->OpenTable("emb", dim, 16, &table, adagrad).ok()) std::exit(1);

  std::vector<float> value(dim, 0.5f);
  for (Key k = 0; k < num_keys; ++k) {
    value[0] = static_cast<float>(k);
    if (!table->Put({&k, 1}, value.data()).ok()) std::exit(1);
  }

  StopWatch ckpt_watch;
  if (!db->CheckpointAll().ok()) std::exit(1);
  const double ckpt_s = ckpt_watch.ElapsedSeconds();

  StopWatch export_watch;
  if (!table->Export(dir.File("emb.export")).ok()) std::exit(1);
  const double export_s = export_watch.ElapsedSeconds();

  // Recovery: open a fresh Mlkv over the same directory.
  db.reset();
  StopWatch recover_watch;
  if (!Mlkv::Open(opts, &db).ok()) std::exit(1);
  if (!db->OpenTable("emb", dim, 16, &table, adagrad).ok()) std::exit(1);
  // First read proves the table is usable.
  Key probe = num_keys / 2;
  if (!table->Get({&probe, 1}, value.data()).ok()) std::exit(1);
  const double recover_s = recover_watch.ElapsedSeconds();

  const double mb =
      static_cast<double>(num_keys) * table->record_bytes() / (1 << 20);
  t->Cell(num_keys);
  t->Cell(static_cast<uint64_t>(dim));
  t->Cell(mb, "%.1f");
  t->Cell(ckpt_s * 1000.0, "%.1f");
  t->Cell(export_s * 1000.0, "%.1f");
  t->Cell(recover_s * 1000.0, "%.1f");
  t->EndRow();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("checkpoint: ckpt/export/recover latency vs table size\n"
                "  --dim=16 --max_keys=400000\n");
    return 0;
  }
  const uint32_t dim = static_cast<uint32_t>(flags.Int("dim", 16));
  const uint64_t max_keys = flags.Int("max_keys", 400000, 25000);

  Banner("Checkpoint / export / recovery latency vs table size");
  Table t({"keys", "dim", "table_mb", "ckpt_ms", "export_ms", "recover_ms"});
  t.PrintHeader();
  for (uint64_t keys = 25000; keys <= max_keys; keys *= 4) {
    RunScale(keys, dim, &t);
  }
  std::printf("\nExpected shape: checkpoint and export scale linearly with "
              "table bytes; recovery is index-restore + boundary reset, so "
              "it stays near-constant (no log replay).\n");
  return 0;
}
