// Durability bench (extension): checkpoint, recovery, and export costs as a
// function of table size — the paper's heterogeneous-storage story (§II-B)
// pairs fast local logs with periodic checkpoints, so the practical
// question is what a checkpoint costs and how fast a node comes back.
//
// Two further sweeps cover the write pipeline (docs/DURABILITY.md):
//  * durable-write throughput — per-batch sync full-flush (FlushAll: every
//    resident page + own fsync, serialized) vs group-committed Persist
//    (dirty pages only as one engine wave, concurrent batches sharing
//    fsyncs); the headline is the speedup multiple.
//  * checkpoint bytes — full (index dump + whole-log flush) vs incremental
//    (delta index records + dirty pages) at the same update workload; the
//    headline is incremental bytes as a fraction of full.
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "mlkv/mlkv.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

void RunScale(uint64_t num_keys, uint32_t dim, Table* t) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = num_keys;
  opts.mem_size = 64ull << 20;
  std::unique_ptr<Mlkv> db;
  if (!Mlkv::Open(opts, &db).ok()) std::exit(1);
  EmbeddingTable* table = nullptr;
  OptimizerConfig adagrad;
  adagrad.kind = OptimizerKind::kAdagrad;
  if (!db->OpenTable("emb", dim, 16, &table, adagrad).ok()) std::exit(1);

  std::vector<float> value(dim, 0.5f);
  for (Key k = 0; k < num_keys; ++k) {
    value[0] = static_cast<float>(k);
    if (!table->Put({&k, 1}, value.data()).ok()) std::exit(1);
  }

  StopWatch ckpt_watch;
  if (!db->CheckpointAll().ok()) std::exit(1);
  const double ckpt_s = ckpt_watch.ElapsedSeconds();

  StopWatch export_watch;
  if (!table->Export(dir.File("emb.export")).ok()) std::exit(1);
  const double export_s = export_watch.ElapsedSeconds();

  // Recovery: open a fresh Mlkv over the same directory.
  db.reset();
  StopWatch recover_watch;
  if (!Mlkv::Open(opts, &db).ok()) std::exit(1);
  if (!db->OpenTable("emb", dim, 16, &table, adagrad).ok()) std::exit(1);
  // First read proves the table is usable.
  Key probe = num_keys / 2;
  if (!table->Get({&probe, 1}, value.data()).ok()) std::exit(1);
  const double recover_s = recover_watch.ElapsedSeconds();

  const double mb =
      static_cast<double>(num_keys) * table->record_bytes() / (1 << 20);
  t->Cell(num_keys);
  t->Cell(static_cast<uint64_t>(dim));
  t->Cell(mb, "%.1f");
  t->Cell(ckpt_s * 1000.0, "%.1f");
  t->Cell(export_s * 1000.0, "%.1f");
  t->Cell(recover_s * 1000.0, "%.1f");
  t->EndRow();
}

// One durable-write configuration: T threads each append `batches` batches
// of `batch_keys` in-place updates, making every batch durable before the
// next — via per-batch FlushAll under kSync, or the built-in group-commit
// epilogue under kGroup. Returns keys/second.
double RunDurableWrites(DurabilityMode mode, size_t threads, uint64_t batches,
                        uint64_t batch_keys, uint32_t dim, Table* t) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.mem_size = 16ull << 20;
  opts.page_size = 256ull << 10;
  // Whole window mutable: updates stay in place, so a batch dirties only
  // the pages its keys live on — the contrast FlushAll cannot exploit.
  opts.mutable_fraction = 1.0;
  opts.shard_bits = 1;
  opts.durability_mode = mode;
  std::unique_ptr<Mlkv> db;
  if (!Mlkv::Open(opts, &db).ok()) std::exit(1);
  EmbeddingTable* table = nullptr;
  if (!db->OpenTable("emb", dim, 16, &table).ok()) std::exit(1);

  // Prefill enough keys that the resident window spans many pages.
  const uint64_t prefill = (8ull << 20) / table->record_bytes();
  std::vector<Key> keys(prefill);
  std::vector<float> rows(prefill * dim, 0.25f);
  for (Key k = 0; k < prefill; ++k) keys[k] = k;
  if (!table->Put(keys, rows.data()).ok()) std::exit(1);

  StopWatch watch;
  std::vector<std::thread> workers;
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      std::vector<Key> bkeys(batch_keys);
      std::vector<float> brows(batch_keys * dim,
                               0.5f + static_cast<float>(w));
      for (uint64_t b = 0; b < batches; ++b) {
        const uint64_t start = (w * batches + b) * batch_keys;
        for (uint64_t i = 0; i < batch_keys; ++i) {
          bkeys[i] = (start + i) % prefill;
        }
        if (!table->Put(bkeys, brows.data()).ok()) std::exit(1);
        if (mode == DurabilityMode::kSync) {
          // Sync full-flush baseline: every resident page, own fsync.
          for (size_t s = 0; s < table->store()->num_shards(); ++s) {
            if (!table->store()->shard(s)->mutable_log()->FlushAll().ok()) {
              std::exit(1);
            }
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs = watch.ElapsedSeconds();
  const double rate =
      static_cast<double>(threads * batches * batch_keys) / secs;

  const FasterStatsSnapshot st = table->store()->stats();
  t->Cell(mode == DurabilityMode::kGroup ? "group" : "sync");
  t->Cell(static_cast<uint64_t>(threads));
  t->Cell(batches);
  t->Cell(batch_keys);
  t->Cell(Human(rate));
  t->Cell(st.pages_flushed);
  t->Cell(st.fsyncs);
  t->Cell(st.group_commits);
  t->EndRow();
  return rate;
}

// size + mtime per non-log file under the DB dir; the mtime makes an
// in-place same-size rewrite (the full .idx dump) count as written.
using CkptFiles =
    std::map<std::string, std::pair<uint64_t, std::filesystem::file_time_type>>;

CkptFiles ScanCheckpointFiles(const std::string& dir) {
  CkptFiles files;
  for (const auto& e : std::filesystem::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    const std::string p = e.path().string();
    if (p.size() >= 4 && p.compare(p.size() - 4, 4, ".log") == 0) continue;
    files[p] = {static_cast<uint64_t>(e.file_size()), e.last_write_time()};
  }
  return files;
}

// Bytes one CheckpointAll round wrote: the log-device delta plus the size
// of every checkpoint artifact created or rewritten during the call (the
// .idx dump / .idx.d<k> deltas / .meta files go through their own
// short-lived FileDevices, so the store's device counter alone misses
// them).
uint64_t MeasureCheckpointBytes(const std::string& dir, Mlkv* db,
                                ShardedStore* store) {
  const uint64_t log0 = store->device_bytes_written();
  const CkptFiles before = ScanCheckpointFiles(dir);
  if (!db->CheckpointAll().ok()) std::exit(1);
  uint64_t bytes = store->device_bytes_written() - log0;
  for (const auto& [path, info] : ScanCheckpointFiles(dir)) {
    const auto it = before.find(path);
    if (it == before.end() || it->second != info) bytes += info.first;
  }
  return bytes;
}

// One checkpoint-shape configuration: prefill, base checkpoint, then
// `rounds` rounds of sparse updates + CheckpointAll, measuring the bytes
// each round wrote. Returns the mean per-round bytes.
double RunCheckpointShape(CheckpointMode mode, uint64_t num_keys,
                          uint64_t updates, uint64_t rounds, uint32_t dim,
                          Table* t) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = num_keys * 2;
  opts.page_size = 128ull << 10;
  opts.shard_bits = 1;
  opts.checkpoint_mode = mode;
  std::unique_ptr<Mlkv> db;
  if (!Mlkv::Open(opts, &db).ok()) std::exit(1);
  EmbeddingTable* table = nullptr;
  if (!db->OpenTable("emb", dim, 16, &table).ok()) std::exit(1);

  std::vector<Key> keys(num_keys);
  std::vector<float> rows(num_keys * dim, 0.25f);
  for (Key k = 0; k < num_keys; ++k) keys[k] = k;
  if (!table->Put(keys, rows.data()).ok()) std::exit(1);
  // Base checkpoint outside the measurement: both shapes pay it once.
  if (!db->CheckpointAll().ok()) std::exit(1);

  std::vector<float> urows(updates * dim, 0.75f);
  uint64_t total = 0;
  for (uint64_t r = 0; r < rounds; ++r) {
    // Sparse update: the oldest keys, so the RCU re-appends cluster at the
    // log tail (exactly the pattern periodic training checkpoints see).
    std::vector<Key> ukeys(updates);
    for (uint64_t i = 0; i < updates; ++i) {
      ukeys[i] = (r * updates + i) % num_keys;
    }
    if (!table->Put(ukeys, urows.data()).ok()) std::exit(1);
    total += MeasureCheckpointBytes(opts.dir, db.get(), table->store());
  }
  const double mean = static_cast<double>(total) / rounds;

  t->Cell(mode == CheckpointMode::kIncremental ? "incremental" : "full");
  t->Cell(num_keys);
  t->Cell(updates);
  t->Cell(rounds);
  t->Cell(mean / (1 << 20), "%.2f");
  t->EndRow();
  return mean;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf(
        "checkpoint: ckpt/export/recover latency vs table size, plus the\n"
        "write-pipeline sweeps (docs/DURABILITY.md)\n"
        "  --dim=16 --max_keys=400000\n"
        "  --durability       run only the two write-pipeline sweeps\n"
        "  durable writes:    --threads=4 --wbatches=24 --wkeys=512\n"
        "                     (sync FlushAll-per-batch vs group commit)\n"
        "  checkpoint shape:  --ckpt_keys=50000 --ckpt_updates=500\n"
        "                     --ckpt_rounds=3 (full vs incremental bytes)\n");
    return 0;
  }
  const uint32_t dim = static_cast<uint32_t>(flags.Int("dim", 16));
  const uint64_t max_keys = flags.Int("max_keys", 400000, 25000);
  const bool durability_only = flags.Has("durability");

  if (!durability_only) {
    Banner("Checkpoint / export / recovery latency vs table size");
    Table t(
        {"keys", "dim", "table_mb", "ckpt_ms", "export_ms", "recover_ms"});
    t.PrintHeader();
    for (uint64_t keys = 25000; keys <= max_keys; keys *= 4) {
      RunScale(keys, dim, &t);
    }
    std::printf("\nExpected shape: checkpoint and export scale linearly with "
                "table bytes; recovery is index-restore + boundary reset, so "
                "it stays near-constant (no log replay).\n");
  }

  const size_t threads =
      static_cast<size_t>(flags.Int("threads", 4, 4));
  const uint64_t wbatches = flags.Int("wbatches", 24, 8);
  const uint64_t wkeys = flags.Int("wkeys", 512, 512);
  Banner("Durable-write throughput: sync full-flush vs group commit");
  Table wt({"mode", "threads", "batches", "keys/batch", "keys/s",
            "pages_flushed", "fsyncs", "group_commits"});
  wt.PrintHeader();
  const double sync_rate = RunDurableWrites(DurabilityMode::kSync, threads,
                                            wbatches, wkeys, dim, &wt);
  const double group_rate = RunDurableWrites(DurabilityMode::kGroup, threads,
                                             wbatches, wkeys, dim, &wt);
  std::printf("\ngroup-commit speedup: %.2fx over sync full-flush "
              "(target >= 2x)\n",
              group_rate / sync_rate);

  const uint64_t ckpt_keys = flags.Int("ckpt_keys", 50000, 30000);
  const uint64_t ckpt_updates = flags.Int("ckpt_updates", 500, 300);
  const uint64_t ckpt_rounds = flags.Int("ckpt_rounds", 3, 2);
  Banner("Checkpoint bytes per round: full vs incremental");
  Table ct({"mode", "keys", "updates", "rounds", "bytes_mb"});
  ct.PrintHeader();
  const double full_bytes = RunCheckpointShape(
      CheckpointMode::kFull, ckpt_keys, ckpt_updates, ckpt_rounds, dim, &ct);
  const double incr_bytes =
      RunCheckpointShape(CheckpointMode::kIncremental, ckpt_keys,
                         ckpt_updates, ckpt_rounds, dim, &ct);
  std::printf("\nincremental checkpoint bytes: %.1f%% of full "
              "(target <= 10%%)\n",
              100.0 * incr_bytes / full_bytes);
  return 0;
}
