// Figure 11: the eBay case studies (paper §IV-F), on synthetic stand-ins
// with the same topology class (see DESIGN.md).
//
//  (a) eBay-Trisk: GraphSage training throughput vs buffer size for MLKV
//      and FASTER, plus the modeled two-instance DGL-DDP baseline (paper:
//      one MLKV instance ~ 69.6% of two-instance DDP throughput).
//  (b) eBay-Payout: AUC over time for MLKV vs FASTER at two buffer sizes
//      (paper: lookahead hides data stalls, so MLKV converges faster in
//      wall-clock).
#include <memory>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "train/ddp_sim.h"
#include "train/gnn_trainer.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

std::unique_ptr<KvBackend> Make(const TempDir& dir, BackendKind kind,
                                uint32_t dim, uint64_t buffer_mb) {
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = dim;
  cfg.buffer_bytes = buffer_mb << 20;
  cfg.staleness_bound = 16;
  std::unique_ptr<KvBackend> b;
  if (!MakeBackend(kind, cfg, &b).ok()) std::exit(1);
  return b;
}

GnnTrainerOptions TriskOptions(const Flags& flags) {
  GnnTrainerOptions o;
  o.task = GnnTask::kEbayTrisk;
  o.ebay.num_transactions = flags.Int("transactions", 150000, 3000);
  o.ebay.num_entities = flags.Int("entities", 80000, 2000);
  o.dim = 32;
  o.hidden = 32;
  o.batch_size = 64;
  o.num_workers = 2;
  o.train_batches = flags.Int("batches", 60, 3);
  o.eval_every = 0;
  o.lookahead_depth = 6;
  o.compute_micros_per_batch = flags.Int("compute_us", 1500, 50);
  o.preload_keys = o.ebay.num_transactions + o.ebay.num_entities;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("fig11: eBay risk-detection case studies\n"
                "  --batches=60 --transactions=150000 --entities=80000 "
                "--compute_us=1500\n");
    return 0;
  }

  Banner("Fig 11(a): eBay-Trisk — throughput vs buffer size (+ DDP)");
  {
    Table t({"series", "buf_mb", "samples/s"});
    t.PrintHeader();
    const GnnTrainerOptions o = TriskOptions(flags);
    TrainResult in_memory_result;
    for (uint64_t mb : {2ull, 4ull, 8ull, 16ull}) {
      for (BackendKind kind : {BackendKind::kMlkv, BackendKind::kFaster}) {
        TempDir dir;
        auto backend = Make(dir, kind, o.dim, mb);
        GnnTrainer trainer(backend.get(), o);
        const TrainResult r = trainer.Train();
        t.Cell(std::string(BackendKindName(kind)));
        t.Cell(static_cast<uint64_t>(mb));
        t.Cell(Human(r.throughput()));
        t.EndRow();
      }
    }
    // DDP baseline: measured in-memory single instance + allreduce model.
    {
      TempDir dir;
      auto backend = Make(dir, BackendKind::kInMemory, o.dim, 256);
      GnnTrainer trainer(backend.get(), o);
      in_memory_result = trainer.Train();
      DdpSim ddp;
      const double ddp_tput = ddp.Throughput(
          in_memory_result, o.train_batches * o.num_workers);
      t.Cell(std::string("DGL-DDP(2x)"));
      t.Cell(std::string("in-mem"));
      t.Cell(Human(ddp_tput));
      t.EndRow();
      std::printf("(paper: one out-of-core MLKV instance reaches ~70%% of "
                  "two-instance DDP at half the hardware)\n");
    }
  }

  Banner("Fig 11(b): eBay-Payout — AUC over time, MLKV vs FASTER, two "
         "buffer sizes");
  {
    Table t({"series", "t25%", "t50%", "t75%", "final_AUC", "seconds"});
    t.PrintHeader();
    for (uint64_t mb : {2ull, 8ull}) {
      for (BackendKind kind : {BackendKind::kMlkv, BackendKind::kFaster}) {
        TempDir dir;
        auto backend = Make(dir, kind, 32, mb);
        GnnTrainerOptions o = TriskOptions(flags);
        o.task = GnnTask::kEbayPayout;
        o.ebay.tripartite = true;
        o.train_batches = o.train_batches * 2;  // payout: 2x Trisk batches
        o.eval_every = static_cast<int>(o.train_batches / 4);
        o.eval_nodes = 600;
        GnnTrainer trainer(backend.get(), o);
        const TrainResult r = trainer.Train();
        t.Cell(std::string(BackendKindName(kind)) + "-" + std::to_string(mb) +
               "MB");
        const auto& c = r.metric_curve;
        for (double q : {0.25, 0.5, 0.75}) {
          if (c.empty()) {
            t.Cell(std::string("-"));
          } else {
            const size_t i =
                std::min(c.size() - 1, static_cast<size_t>(q * c.size()));
            t.Cell(c[i].second, "%.3f");
          }
        }
        t.Cell(r.final_metric, "%.4f");
        t.Cell(r.seconds, "%.1f");
        t.EndRow();
      }
    }
  }
  std::printf("\nExpected shape (paper): MLKV beats FASTER at equal buffer "
              "size; larger buffers converge faster in wall-clock.\n");
  return 0;
}
