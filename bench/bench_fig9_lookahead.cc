// Figure 9: effect of look-ahead prefetching.
//
//  (a) DLRM: relative speedup of lookahead-on vs lookahead-off while the
//      staleness bound varies 0..80 (paper: biggest wins at LOW bounds,
//      where conventional prefetching is capped by the bound).
//  (b) KGE: throughput vs buffer size for MLKV vs FASTER, each with the
//      standard traversal and with the partition-based BETA traversal
//      (paper: lookahead helps both standard and BETA).
//
// Also exposes the DESIGN.md D2 ablation (--no_immutable_skip): promote
// records even when they already sit in the immutable memory region.
//
// Cold-working-set mode (--cold): a disk-residency-dominated MultiGet
// sweep of io_mode=sync vs async x io_threads through the two-phase
// pending-read pipeline, reporting keys/s and per-batch p50/p99. The
// memory budget is derived from --cold_fraction so roughly that share of
// the key space lives below the log head. This is the acceptance sweep
// for the async pipeline: async/io_threads=4 vs sync on a majority-disk
// batch >= 64.
#include <algorithm>
#include <memory>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "train/ctr_trainer.h"
#include "train/kge_trainer.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

std::unique_ptr<KvBackend> Make(const TempDir& dir, BackendKind kind,
                                uint32_t dim, uint64_t buffer_mb,
                                uint32_t bound, bool skip_immutable) {
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = dim;
  cfg.buffer_bytes = buffer_mb << 20;
  cfg.staleness_bound = bound;
  cfg.skip_promote_if_in_memory = skip_immutable;
  std::unique_ptr<KvBackend> b;
  if (!MakeBackend(kind, cfg, &b).ok()) std::exit(1);
  return b;
}

struct ColdResult {
  double keys_per_sec = 0;
  uint64_t p50_us = 0, p99_us = 0;
  BackendIoStats io;
};

ColdResult RunColdConfig(BackendKind kind, uint64_t num_keys,
                         uint64_t buffer_bytes, size_t batch_size,
                         uint64_t rounds, IoMode io_mode, size_t io_threads) {
  constexpr uint32_t kDim = 16;
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = kDim;
  cfg.buffer_bytes = buffer_bytes;
  cfg.index_slots = num_keys;
  cfg.staleness_bound = UINT32_MAX - 1;  // ASP: clocks kept, no waits
  cfg.io_mode = io_mode;
  cfg.io_threads = io_threads;
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(kind, cfg, &backend).ok()) std::exit(1);

  // Load everything; appends spill all but the newest ~buffer_bytes of
  // records to disk.
  {
    constexpr size_t kChunk = 1024;
    std::vector<Key> keys(kChunk);
    std::vector<float> rows(kChunk * kDim);
    for (Key base = 0; base < num_keys; base += kChunk) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(kChunk, num_keys - base));
      for (size_t i = 0; i < n; ++i) {
        keys[i] = base + i;
        for (uint32_t d = 0; d < kDim; ++d) {
          rows[i * kDim + d] = static_cast<float>(keys[i] + d);
        }
      }
      if (backend->MultiPut({keys.data(), n}, rows.data()).failed > 0) {
        std::exit(1);
      }
    }
  }

  // Uniform random batches over the whole key space: with the buffer
  // sized for cold_fraction, that share of every batch needs disk.
  Rng rng(42 + static_cast<uint64_t>(io_mode) * 7 + io_threads);
  std::vector<Key> batch(batch_size);
  std::vector<float> out(batch_size * kDim);
  Histogram latency;
  StopWatch watch;
  for (uint64_t r = 0; r < rounds; ++r) {
    for (auto& k : batch) k = rng.Next() % num_keys;
    const uint64_t t0 = NowMicros();
    if (backend->MultiGet(batch, out.data()).failed > 0) std::exit(1);
    latency.Record(NowMicros() - t0);
  }
  ColdResult res;
  res.keys_per_sec = static_cast<double>(rounds * batch_size) /
                     watch.ElapsedSeconds();
  res.p50_us = latency.Percentile(0.50);
  res.p99_us = latency.Percentile(0.99);
  res.io = backend->io_stats();
  return res;
}

int RunColdSweep(const Flags& flags) {
  const uint64_t num_keys = static_cast<uint64_t>(
      flags.Int("cold_keys", 200000, 20000));
  const double cold_fraction =
      std::clamp(flags.Double("cold_fraction", 0.9), 0.1, 1.0);
  const size_t batch = static_cast<size_t>(flags.Int("cold_batch", 256, 128));
  const uint64_t rounds = static_cast<uint64_t>(
      flags.Int("cold_rounds", 120, 24));
  // Record footprint: 32-byte header + dim floats, 8-aligned.
  const uint64_t dataset_bytes = num_keys * (32 + 16 * sizeof(float));
  const uint64_t buffer_bytes = std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(dataset_bytes) *
                            (1.0 - cold_fraction)),
      128 * 1024);

  Banner("Cold-working-set MultiGet: io_mode=sync vs async x io_threads");
  std::printf("keys=%llu cold_fraction=%.2f (buffer=%llu KiB) batch=%zu "
              "rounds=%llu\n\n",
              (unsigned long long)num_keys, cold_fraction,
              (unsigned long long)(buffer_bytes >> 10), batch,
              (unsigned long long)rounds);
  Table t({"engine", "io_mode", "io_thr", "keys/s", "p50_ms", "p99_ms",
           "disk_reads", "async_ios", "refetched"});
  t.PrintHeader();
  std::vector<size_t> thread_counts =
      flags.Smoke() ? std::vector<size_t>{4} : std::vector<size_t>{1, 2, 4, 8};
  double sync_kps = 0, async4_kps = 0;
  for (const BackendKind kind : {BackendKind::kMlkv, BackendKind::kFaster}) {
    const char* name = kind == BackendKind::kMlkv ? "MLKV" : "FASTER";
    const ColdResult sync_res = RunColdConfig(kind, num_keys, buffer_bytes,
                                              batch, rounds, IoMode::kSync, 0);
    t.Cell(std::string(name));
    t.Cell(std::string("sync"));
    t.Cell(std::string("-"));
    t.Cell(Human(sync_res.keys_per_sec));
    t.Cell(static_cast<double>(sync_res.p50_us) / 1000.0, "%.2f");
    t.Cell(static_cast<double>(sync_res.p99_us) / 1000.0, "%.2f");
    t.Cell(sync_res.io.disk_record_reads);
    t.Cell(sync_res.io.async_reads_submitted);
    t.Cell(sync_res.io.async_reads_refetched);
    t.EndRow();
    for (const size_t threads : thread_counts) {
      const ColdResult res = RunColdConfig(kind, num_keys, buffer_bytes,
                                           batch, rounds, IoMode::kAsync,
                                           threads);
      t.Cell(std::string(name));
      t.Cell(std::string("async"));
      t.Cell(static_cast<uint64_t>(threads));
      t.Cell(Human(res.keys_per_sec));
      t.Cell(static_cast<double>(res.p50_us) / 1000.0, "%.2f");
      t.Cell(static_cast<double>(res.p99_us) / 1000.0, "%.2f");
      t.Cell(res.io.disk_record_reads);
      t.Cell(res.io.async_reads_submitted);
      t.Cell(res.io.async_reads_refetched);
      t.EndRow();
      if (kind == BackendKind::kMlkv && threads == 4) {
        async4_kps = res.keys_per_sec;
      }
    }
    if (kind == BackendKind::kMlkv) sync_kps = sync_res.keys_per_sec;
  }
  std::printf("\nExpected shape: async overlaps a batch's cold reads, so "
              "throughput scales with io_threads until the device (or the "
              "simulated NVMe) saturates; sync pays one blocking read per "
              "cold key. MLKV async(4) vs sync: %.2fx\n",
              sync_kps > 0 ? async4_kps / sync_kps : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("fig9: look-ahead prefetching\n"
                "  --batches=60 --buffer_mb=3 --compute_us=1000 "
                "--no_immutable_skip\n"
                "  --cardinality=60000 --entities=120000 --smoke\n"
                "  --cold  cold-working-set MultiGet sweep of io_mode=sync\n"
                "          vs async x io_threads (p50/p99 per batch);\n"
                "          --cold_keys=200000 --cold_fraction=0.9\n"
                "          --cold_batch=256 --cold_rounds=120\n");
    return 0;
  }
  if (flags.Has("cold")) return RunColdSweep(flags);
  const uint64_t batches = flags.Int("batches", 60, 3);
  const uint64_t buffer_mb = flags.Int("buffer_mb", 3);
  const uint64_t compute_us = flags.Int("compute_us", 1000, 50);
  const bool skip_immutable = !flags.Bool("no_immutable_skip", false);

  Banner("Fig 9(a): DLRM — lookahead speedup vs staleness bound");
  {
    Table t({"bound", "off_sps", "on_sps", "speedup"});
    t.PrintHeader();
    for (uint32_t bound : {0u, 4u, 10u, 20u, 40u, 80u}) {
      CtrTrainerOptions o;
      o.data.num_fields = 8;
      o.data.field_cardinality = flags.Int("cardinality", 60000, 3000);
      o.dim = 16;
      o.batch_size = 128;
      o.num_workers = bound == 0 ? 1 : 2;
      o.train_batches = batches;
      o.eval_every = 0;
      o.compute_micros_per_batch = compute_us;
      o.preload_keys = static_cast<uint64_t>(o.data.num_fields) *
                       o.data.field_cardinality;

      TempDir d1, d2;
      auto off_b = Make(d1, BackendKind::kMlkv, 16, buffer_mb, bound,
                        skip_immutable);
      o.lookahead_depth = 0;
      CtrTrainer off_t(off_b.get(), o);
      const TrainResult off = off_t.Train();

      auto on_b = Make(d2, BackendKind::kMlkv, 16, buffer_mb, bound,
                       skip_immutable);
      o.lookahead_depth = 6;
      CtrTrainer on_t(on_b.get(), o);
      const TrainResult on = on_t.Train();

      t.Cell(std::to_string(bound));
      t.Cell(Human(off.throughput()));
      t.Cell(Human(on.throughput()));
      t.Cell(off.throughput() > 0 ? on.throughput() / off.throughput() : 0,
             "%.2fx");
      t.EndRow();
    }
  }

  Banner("Fig 9(b): KGE on Freebase86M — lookahead with standard and BETA "
         "traversals vs buffer size");
  {
    Table t({"series", "buf_mb", "samples/s"});
    t.PrintHeader();
    for (uint64_t mb : {2ull, 4ull, 8ull}) {
      struct Config {
        const char* name;
        BackendKind kind;
        bool beta;
        int lookahead;
      };
      const Config configs[] = {
          {"MLKV", BackendKind::kMlkv, false, 6},
          {"FASTER", BackendKind::kFaster, false, 0},
          {"MLKV(BETA)", BackendKind::kMlkv, true, 6},
          {"FASTER(BETA)", BackendKind::kFaster, true, 0},
      };
      for (const Config& c : configs) {
        TempDir dir;
        auto backend = Make(dir, c.kind, 32, mb, 16, skip_immutable);
        KgeTrainerOptions o;
        o.data.num_entities = flags.Int("entities", 120000, 3000);
        o.data.num_relations = 8;
        o.dim = 32;
        o.batch_size = 128;
        o.num_workers = 2;
        o.train_batches = batches;
        o.eval_every = 0;
        o.lookahead_depth = c.lookahead;
        o.use_beta = c.beta;
        o.compute_micros_per_batch = compute_us;
        o.preload_keys = o.data.num_entities;
        KgeTrainer trainer(backend.get(), o);
        const TrainResult r = trainer.Train();
        t.Cell(std::string(c.name));
        t.Cell(static_cast<uint64_t>(mb));
        t.Cell(Human(r.throughput()));
        t.EndRow();
      }
    }
  }
  std::printf("\nExpected shape (paper): (a) largest speedups at low bounds; "
              "(b) MLKV > FASTER at every buffer size, for both standard and "
              "BETA orderings.\n");
  return 0;
}
