// Figure 9: effect of look-ahead prefetching.
//
//  (a) DLRM: relative speedup of lookahead-on vs lookahead-off while the
//      staleness bound varies 0..80 (paper: biggest wins at LOW bounds,
//      where conventional prefetching is capped by the bound).
//  (b) KGE: throughput vs buffer size for MLKV vs FASTER, each with the
//      standard traversal and with the partition-based BETA traversal
//      (paper: lookahead helps both standard and BETA).
//
// Also exposes the DESIGN.md D2 ablation (--no_immutable_skip): promote
// records even when they already sit in the immutable memory region.
#include <memory>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "train/ctr_trainer.h"
#include "train/kge_trainer.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

std::unique_ptr<KvBackend> Make(const TempDir& dir, BackendKind kind,
                                uint32_t dim, uint64_t buffer_mb,
                                uint32_t bound, bool skip_immutable) {
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = dim;
  cfg.buffer_bytes = buffer_mb << 20;
  cfg.staleness_bound = bound;
  cfg.skip_promote_if_in_memory = skip_immutable;
  std::unique_ptr<KvBackend> b;
  if (!MakeBackend(kind, cfg, &b).ok()) std::exit(1);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("fig9: look-ahead prefetching\n"
                "  --batches=60 --buffer_mb=3 --compute_us=1000 "
                "--no_immutable_skip\n"
                "  --cardinality=60000 --entities=120000 --smoke\n");
    return 0;
  }
  const uint64_t batches = flags.Int("batches", 60, 3);
  const uint64_t buffer_mb = flags.Int("buffer_mb", 3);
  const uint64_t compute_us = flags.Int("compute_us", 1000, 50);
  const bool skip_immutable = !flags.Bool("no_immutable_skip", false);

  Banner("Fig 9(a): DLRM — lookahead speedup vs staleness bound");
  {
    Table t({"bound", "off_sps", "on_sps", "speedup"});
    t.PrintHeader();
    for (uint32_t bound : {0u, 4u, 10u, 20u, 40u, 80u}) {
      CtrTrainerOptions o;
      o.data.num_fields = 8;
      o.data.field_cardinality = flags.Int("cardinality", 60000, 3000);
      o.dim = 16;
      o.batch_size = 128;
      o.num_workers = bound == 0 ? 1 : 2;
      o.train_batches = batches;
      o.eval_every = 0;
      o.compute_micros_per_batch = compute_us;
      o.preload_keys = static_cast<uint64_t>(o.data.num_fields) *
                       o.data.field_cardinality;

      TempDir d1, d2;
      auto off_b = Make(d1, BackendKind::kMlkv, 16, buffer_mb, bound,
                        skip_immutable);
      o.lookahead_depth = 0;
      CtrTrainer off_t(off_b.get(), o);
      const TrainResult off = off_t.Train();

      auto on_b = Make(d2, BackendKind::kMlkv, 16, buffer_mb, bound,
                       skip_immutable);
      o.lookahead_depth = 6;
      CtrTrainer on_t(on_b.get(), o);
      const TrainResult on = on_t.Train();

      t.Cell(std::to_string(bound));
      t.Cell(Human(off.throughput()));
      t.Cell(Human(on.throughput()));
      t.Cell(off.throughput() > 0 ? on.throughput() / off.throughput() : 0,
             "%.2fx");
      t.EndRow();
    }
  }

  Banner("Fig 9(b): KGE on Freebase86M — lookahead with standard and BETA "
         "traversals vs buffer size");
  {
    Table t({"series", "buf_mb", "samples/s"});
    t.PrintHeader();
    for (uint64_t mb : {2ull, 4ull, 8ull}) {
      struct Config {
        const char* name;
        BackendKind kind;
        bool beta;
        int lookahead;
      };
      const Config configs[] = {
          {"MLKV", BackendKind::kMlkv, false, 6},
          {"FASTER", BackendKind::kFaster, false, 0},
          {"MLKV(BETA)", BackendKind::kMlkv, true, 6},
          {"FASTER(BETA)", BackendKind::kFaster, true, 0},
      };
      for (const Config& c : configs) {
        TempDir dir;
        auto backend = Make(dir, c.kind, 32, mb, 16, skip_immutable);
        KgeTrainerOptions o;
        o.data.num_entities = flags.Int("entities", 120000, 3000);
        o.data.num_relations = 8;
        o.dim = 32;
        o.batch_size = 128;
        o.num_workers = 2;
        o.train_batches = batches;
        o.eval_every = 0;
        o.lookahead_depth = c.lookahead;
        o.use_beta = c.beta;
        o.compute_micros_per_batch = compute_us;
        o.preload_keys = o.data.num_entities;
        KgeTrainer trainer(backend.get(), o);
        const TrainResult r = trainer.Train();
        t.Cell(std::string(c.name));
        t.Cell(static_cast<uint64_t>(mb));
        t.Cell(Human(r.throughput()));
        t.EndRow();
      }
    }
  }
  std::printf("\nExpected shape (paper): (a) largest speedups at low bounds; "
              "(b) MLKV > FASTER at every buffer size, for both standard and "
              "BETA orderings.\n");
  return 0;
}
