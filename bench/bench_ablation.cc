// Ablations for the design decisions DESIGN.md §4 calls out:
//
//   D1  staleness bits in the lock word: overhead of tracking vs plain
//       FASTER mode (paper §IV-E claims zero when disabled, <=10-20% when
//       enabled).
//   D2  look-ahead promotion skips records already in the immutable
//       in-memory region (paper §III-C2): page-write savings.
//   D3  promote-cold-reads (FASTER's read-copy-to-tail) vs leaving cold
//       records cold: hit-rate vs log-growth trade-off under skew.
//   GC  log garbage collection: log footprint with and without periodic
//       Compact() under RCU-heavy churn, and its throughput cost.
//   IDX hash-index growth: chain-walk cost of an undersized index and the
//       effect of GrowIndex().
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"
#include "workloads/ycsb.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

struct Setup {
  // Defaults are deliberately out-of-core: ~9.6 MB of records against a
  // 4 MB buffer, so the disk region and promotion paths actually exercise.
  uint64_t num_keys = 100000;
  uint32_t value_size = 64;
  uint64_t buffer_mb = 4;
  int threads = 4;
  uint64_t ops_per_thread = 50000;
};

void Load(FasterStore* store, const Setup& s) {
  YcsbConfig cfg;
  cfg.num_keys = s.num_keys;
  cfg.value_size = s.value_size;
  YcsbWorkload loader(cfg, 0);
  std::vector<char> value(s.value_size);
  for (Key k = 0; k < s.num_keys; ++k) {
    loader.FillValue(k, 0, value.data());
    if (!store->Upsert(k, value.data(), s.value_size).ok()) std::exit(1);
  }
}

double RunMix(FasterStore* store, const Setup& s, double update_fraction) {
  YcsbConfig cfg;
  cfg.num_keys = s.num_keys;
  cfg.value_size = s.value_size;
  cfg.update_fraction = update_fraction;
  std::atomic<uint64_t> ops{0};
  StopWatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < s.threads; ++t) {
    threads.emplace_back([&, t] {
      YcsbWorkload w(cfg, t + 1, s.threads);
      std::vector<char> buf(s.value_size);
      for (uint64_t i = 0; i < s.ops_per_thread; ++i) {
        const auto op = w.Next();
        if (op.is_read()) {
          store->Read(op.key, buf.data(), s.value_size).ok();
        } else {
          w.FillValue(op.key, i, buf.data());
          store->Upsert(op.key, buf.data(), s.value_size).ok();
        }
      }
      ops.fetch_add(s.ops_per_thread);
    });
  }
  for (auto& th : threads) th.join();
  return static_cast<double>(ops.load()) / watch.ElapsedSeconds();
}

FasterOptions BaseOptions(const TempDir& dir, const Setup& s,
                          const char* name) {
  FasterOptions o;
  o.path = dir.File(name);
  o.index_slots = s.num_keys;
  o.mem_size = s.buffer_mb << 20;
  return o;
}

void AblationD1(const Setup& s) {
  Banner("D1: staleness bits in the lock word (YCSB zipfian, ops/s)");
  Table t({"mode", "50/50", "95/5", "delta_5050"});
  t.PrintHeader();
  double base5050 = 0;
  struct Mode {
    const char* name;
    bool track;
    uint32_t bound;
  };
  for (const Mode m : {Mode{"tracking_off", false, 0},
                       Mode{"asp_bound", true, UINT32_MAX - 1},
                       Mode{"bound_16", true, 16}}) {
    TempDir dir;
    FasterStore store;
    FasterOptions o = BaseOptions(dir, s, "d1.log");
    o.track_staleness = m.track;
    o.staleness_bound = m.bound;
    // YCSB reads are not paired with puts (unlike a training pipeline), so
    // a finite bound starves hot keys; abort bounded reads quickly rather
    // than spinning out the default training-sized budget.
    o.busy_spin_limit = 1 << 8;
    if (!store.Open(o).ok()) std::exit(1);
    Load(&store, s);
    const double t5050 = RunMix(&store, s, 0.5);
    const double t955 = RunMix(&store, s, 0.05);
    if (base5050 == 0) base5050 = t5050;
    t.Cell(std::string(m.name));
    t.Cell(Human(t5050));
    t.Cell(Human(t955));
    t.Cell(100.0 * (1.0 - t5050 / base5050), "%.1f%%");
    t.EndRow();
  }
  std::printf("Expected: asp/bounded modes cost <= ~10-20%% vs tracking off "
              "(paper §IV-E); bound_16 may add waits under skew.\n");
}

void AblationD2(const Setup& s) {
  Banner("D2: promotion skips immutable-resident records (page writes)");
  Table t({"skip_immutable", "promotions", "skipped", "pages_flushed",
           "promote_ops/s"});
  t.PrintHeader();
  for (const bool skip : {true, false}) {
    TempDir dir;
    FasterStore store;
    FasterOptions o = BaseOptions(dir, s, "d2.log");
    o.skip_promote_if_in_memory = skip;
    if (!store.Open(o).ok()) std::exit(1);
    Load(&store, s);
    // Promote a uniform sample: some targets are on disk, many sit in the
    // immutable in-memory region — exactly the case D2 optimizes.
    Rng rng(7);
    const uint64_t n = s.num_keys / 2;
    StopWatch watch;
    for (uint64_t i = 0; i < n; ++i) {
      store.Promote(rng.Uniform(s.num_keys)).ok();
    }
    const double rate = static_cast<double>(n) / watch.ElapsedSeconds();
    const auto st = store.stats();
    t.Cell(skip ? "yes (paper)" : "no (ablated)");
    t.Cell(st.promotions);
    t.Cell(st.promotions_skipped);
    t.Cell(st.pages_flushed);
    t.Cell(Human(rate));
    t.EndRow();
  }
  std::printf("Expected: disabling the skip copies immutable-resident "
              "records too — more promotions, more flushed pages, no read "
              "benefit (they were already in memory).\n");
}

void AblationD3(const Setup& s) {
  Banner("D3: promote cold reads to tail vs leave cold (zipfian reads)");
  Table t({"promote_reads", "ops/s", "disk_reads", "log_bytes"});
  t.PrintHeader();
  for (const bool promote : {false, true}) {
    TempDir dir;
    FasterStore store;
    FasterOptions o = BaseOptions(dir, s, "d3.log");
    o.promote_cold_reads = promote;
    if (!store.Open(o).ok()) std::exit(1);
    Load(&store, s);
    store.ResetStats();
    const double rate = RunMix(&store, s, 0.0);  // read-only, zipfian
    const auto st = store.stats();
    t.Cell(promote ? "yes" : "no");
    t.Cell(Human(rate));
    t.Cell(st.disk_record_reads);
    t.Cell(store.log().tail() - store.log().begin_address());
    t.EndRow();
  }
  std::printf("Expected: promoting hot cold-reads cuts repeat disk reads "
              "under skew at the cost of log growth.\n");
}

void AblationGc(const Setup& s) {
  Banner("GC: log garbage collection under RCU churn");
  Table t({"gc", "ops/s", "live_log_mb", "file_mb", "compactions"});
  t.PrintHeader();
  for (const bool gc : {false, true}) {
    TempDir dir;
    FasterStore store;
    FasterOptions o = BaseOptions(dir, s, "gc.log");
    if (!store.Open(o).ok()) std::exit(1);
    Load(&store, s);
    // Size-alternating updates force RCU appends (in-place needs equal
    // size), the worst-case churn for a log-structured store.
    YcsbConfig cfg;
    cfg.num_keys = s.num_keys;
    cfg.value_size = s.value_size;
    // The live span can never shrink below the live data itself; a sane GC
    // threshold is a multiple of it (1.5x here), not of the memory buffer.
    const uint64_t gc_threshold =
        (store.log().tail() - store.log().begin_address()) * 5 / 4;
    StopWatch watch;
    YcsbWorkload w(cfg, 1);
    std::vector<char> buf(s.value_size + 8);
    const uint64_t ops = s.ops_per_thread * 2;
    for (uint64_t i = 0; i < ops; ++i) {
      const auto op = w.Next();
      const uint32_t size = s.value_size + (i % 2) * 8;
      w.FillValue(op.key, i, buf.data());
      store.Upsert(op.key, buf.data(), size).ok();
      if (gc && i % 8192 == 8191) {
        store.MaybeCompact(gc_threshold).ok();
      }
    }
    const double rate = static_cast<double>(ops) / watch.ElapsedSeconds();
    const auto st = store.stats();
    t.Cell(gc ? "on" : "off");
    t.Cell(Human(rate));
    t.Cell(static_cast<double>(store.log().tail() -
                               store.log().begin_address()) /
               (1 << 20),
           "%.1f");
    t.Cell(static_cast<double>(store.log().tail()) / (1 << 20), "%.1f");
    t.Cell(st.compactions);
    t.EndRow();
  }
  std::printf("Expected: GC bounds the live log span at a modest throughput "
              "cost (copies of live records).\n");
}

void AblationIndex(const Setup& s) {
  Banner("IDX: hash-index sizing and growth (read-only zipfian, ops/s)");
  Table t({"index", "slots", "ops/s"});
  t.PrintHeader();
  struct Cfg {
    const char* name;
    uint64_t slots;
    bool grow;
    bool republish;  // one write pass after growth (training does this)
  };
  for (const Cfg c : {Cfg{"undersized", 0, false, false},
                      Cfg{"grow_only", 0, true, false},
                      Cfg{"grow+1epoch", 0, true, true},
                      Cfg{"right-sized", 1, false, false}}) {
    TempDir dir;
    FasterStore store;
    FasterOptions o = BaseOptions(dir, s, "idx.log");
    o.index_slots = c.slots == 0 ? s.num_keys / 64 : s.num_keys;
    if (!store.Open(o).ok()) std::exit(1);
    Load(&store, s);
    if (c.grow) store.MaybeGrowIndex(1.0).ok();
    if (c.republish) {
      // Chains only thin as publishes move keys to their refined slots;
      // one update epoch (what a training pass does anyway) is enough.
      Load(&store, s);
    }
    const double rate = RunMix(&store, s, 0.0);
    t.Cell(std::string(c.name));
    t.Cell(store.index_slots());
    t.Cell(Human(rate));
    t.EndRow();
  }
  std::printf("Expected: a 64x-undersized index walks long chains. Growth "
              "alone does not shorten existing chains (reads still walk the "
              "seeded heads); after one republish epoch the refined slots "
              "take effect and throughput approaches right-sized.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("ablation: DESIGN.md D1/D2/D3 + GC + index growth\n"
                "  --keys=100000 --ops=50000 --threads=4 --only=d1|d2|d3|gc|idx\n");
    return 0;
  }
  Setup s;
  s.num_keys = flags.Int("keys", 100000, 2000);
  s.ops_per_thread = flags.Int("ops", 50000, 500);
  s.threads = static_cast<int>(flags.Int("threads", 4, 2));
  const std::string only = flags.Str("only", "");
  if (only.empty() || only == "d1") AblationD1(s);
  if (only.empty() || only == "d2") AblationD2(s);
  if (only.empty() || only == "d3") AblationD3(s);
  if (only.empty() || only == "gc") AblationGc(s);
  if (only.empty() || only == "idx") AblationIndex(s);
  return 0;
}
