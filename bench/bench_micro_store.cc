// Microbenchmarks (google-benchmark) for the storage engine hot paths:
// in-memory Get/Put, the staleness-tracking control-word overhead (the
// "vector clock" cost Fig. 10 measures at macro scale), promotion, and the
// baselines' point ops. Run with --benchmark_filter=... as usual.
#include <benchmark/benchmark.h>

#include <memory>

#include "btree/btree_store.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"
#include "kv/log_iterator.h"
#include "mlkv/optimizer.h"
#include "lsm/lsm_store.h"

namespace mlkv {
namespace {

constexpr uint32_t kValueSize = 64;
constexpr uint64_t kKeys = 20000;

struct StoreFixture {
  TempDir dir;
  FasterStore store;

  explicit StoreFixture(bool track_staleness, uint64_t mem_mb = 64) {
    FasterOptions o;
    o.path = dir.File("bench.log");
    o.index_slots = kKeys * 2;
    o.mem_size = mem_mb << 20;
    o.track_staleness = track_staleness;
    o.staleness_bound = UINT32_MAX - 1;
    if (!store.Open(o).ok()) std::abort();
    char value[kValueSize] = {0};
    for (Key k = 0; k < kKeys; ++k) {
      value[0] = static_cast<char>(k);
      store.Upsert(k, value, kValueSize).ok();
    }
  }
};

void BM_FasterGetInMemory(benchmark::State& state) {
  static StoreFixture* fixture = new StoreFixture(false);
  char buf[kValueSize];
  Key k = state.thread_index();
  for (auto _ : state) {
    fixture->store.Read(k % kKeys, buf, kValueSize).ok();
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterGetInMemory)->Threads(1)->Threads(4);

void BM_MlkvGetInMemory(benchmark::State& state) {
  // Same read path with the staleness protocol on: the delta is the
  // per-record vector-clock CAS (paper §IV-E).
  static StoreFixture* fixture = new StoreFixture(true);
  char buf[kValueSize];
  Key k = state.thread_index();
  for (auto _ : state) {
    fixture->store.Read(k % kKeys, buf, kValueSize).ok();
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlkvGetInMemory)->Threads(1)->Threads(4);

void BM_FasterUpsertInPlace(benchmark::State& state) {
  static StoreFixture* fixture = new StoreFixture(false);
  char value[kValueSize] = {1};
  Key k = state.thread_index() * 1000;
  for (auto _ : state) {
    fixture->store.Upsert(k % kKeys, value, kValueSize).ok();
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterUpsertInPlace)->Threads(1)->Threads(4);

void BM_MlkvUpsertInPlace(benchmark::State& state) {
  static StoreFixture* fixture = new StoreFixture(true);
  char value[kValueSize] = {1};
  Key k = state.thread_index() * 1000;
  for (auto _ : state) {
    fixture->store.Upsert(k % kKeys, value, kValueSize).ok();
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlkvUpsertInPlace)->Threads(1)->Threads(4);

void BM_FasterGetFromDisk(benchmark::State& state) {
  // Tiny buffer: nearly every read misses memory and hits the log file.
  static StoreFixture* fixture = new StoreFixture(false, /*mem_mb=*/1);
  char buf[kValueSize];
  Key k = 0;
  for (auto _ : state) {
    fixture->store.Read(k % (kKeys / 2), buf, kValueSize).ok();
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FasterGetFromDisk);

void BM_MlkvPromote(benchmark::State& state) {
  static StoreFixture* fixture = new StoreFixture(true, /*mem_mb=*/1);
  Key k = 0;
  for (auto _ : state) {
    fixture->store.Promote(k % (kKeys / 2)).ok();
    k += 104729;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlkvPromote);

void BM_LsmGet(benchmark::State& state) {
  static LsmStore* store = [] {
    auto* s = new LsmStore();
    static TempDir dir;
    LsmOptions o;
    o.dir = dir.File("lsm");
    o.memtable_bytes = 1 << 20;
    if (!s->Open(o).ok()) std::abort();
    char value[kValueSize] = {0};
    for (Key k = 0; k < kKeys; ++k) s->Put(k, value, kValueSize).ok();
    return s;
  }();
  std::string out;
  Key k = 0;
  for (auto _ : state) {
    store->Get(k % kKeys, &out).ok();
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmGet);

void BM_BtreeGet(benchmark::State& state) {
  static BTreeStore* store = [] {
    auto* s = new BTreeStore();
    static TempDir dir;
    BTreeOptions o;
    o.path = dir.File("tree.db");
    o.value_size = kValueSize;
    if (!s->Open(o).ok()) std::abort();
    char value[kValueSize] = {0};
    for (Key k = 0; k < kKeys; ++k) s->Put(k, value).ok();
    return s;
  }();
  char buf[kValueSize];
  Key k = 0;
  for (auto _ : state) {
    store->Get(k % kKeys, buf).ok();
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreeGet);


void BM_LogScan(benchmark::State& state) {
  static StoreFixture* fixture = new StoreFixture(false);
  for (auto _ : state) {
    uint64_t n = 0;
    for (LogIterator it(&fixture->store); it.Valid(); it.Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}
BENCHMARK(BM_LogScan);

void BM_LiveLogScan(benchmark::State& state) {
  static StoreFixture* fixture = new StoreFixture(false);
  for (auto _ : state) {
    uint64_t n = 0;
    for (LiveLogIterator it(&fixture->store); it.Valid(); it.Next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}
BENCHMARK(BM_LiveLogScan);

void BM_CompactChurnedLog(benchmark::State& state) {
  // Fresh store per iteration: churn one round of RCU garbage, compact it.
  char value[kValueSize + 8] = {0};
  for (auto _ : state) {
    state.PauseTiming();
    StoreFixture fixture(false, /*mem_mb=*/4);  // smallest legal buffer
    for (Key k = 0; k < kKeys; k += 2) {
      fixture.store.Upsert(k, value, kValueSize + 8).ok();  // RCU garbage
    }
    state.ResumeTiming();
    fixture.store.Compact(fixture.store.log().read_only_address(), nullptr)
        .ok();
  }
  state.SetItemsProcessed(state.iterations() * kKeys);
}
BENCHMARK(BM_CompactChurnedLog)->Unit(benchmark::kMillisecond);

void BM_EmbeddingRmwFusedAdagrad(benchmark::State& state) {
  // The fused-optimizer hot path: one Rmw per gradient application.
  static StoreFixture* fixture = new StoreFixture(true);
  float grad[kValueSize / sizeof(float)];
  for (auto& g : grad) g = 0.01f;
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  // Records are kValueSize embeddings without state here; apply on the
  // embedding floats only (state layout benchmarked at table level).
  const uint32_t dim = kValueSize / sizeof(float);
  Key k = 1;
  for (auto _ : state) {
    fixture->store
        .Rmw(k % kKeys, kValueSize,
             [&](char* v, uint32_t, bool) {
               float* emb = reinterpret_cast<float*>(v);
               for (uint32_t d = 0; d < dim; ++d) {
                 emb[d] -= cfg.lr * grad[d];
               }
             })
        .ok();
    k += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmbeddingRmwFusedAdagrad)->Threads(1)->Threads(4);

}  // namespace
}  // namespace mlkv




BENCHMARK_MAIN();
