// Table II: datasets and models. Prints the paper's inventory next to the
// scaled-down synthetic instantiations this repository trains on (the
// substitution table of DESIGN.md), and verifies each generator produces
// well-formed samples at its configured scale.
#include <cstdio>

#include "bench_util.h"
#include "workloads/ctr_gen.h"
#include "workloads/ebay_gen.h"
#include "workloads/graph_gen.h"
#include "workloads/kg_gen.h"

using namespace mlkv;
using namespace mlkv::bench;

int main(int argc, char** argv) {
  Banner("Table II: datasets and models (paper scale -> repo scale)");
  Table t({"dataset", "paper #emb", "repo #emb", "dim", "type", "models"});
  t.PrintHeader();

  {
    KgConfig kg;
    kg.num_entities = 500000;
    KgGenerator gen(kg);
    (void)gen.Next();
    t.Cell(std::string("Freebase86M"));
    t.Cell(std::string("86M"));
    t.Cell(Human(static_cast<double>(kg.num_entities)));
    t.Cell(std::string("100"));
    t.Cell(std::string("KGE"));
    t.Cell(std::string("DistMult&ComplEx"));
    t.EndRow();
  }
  {
    KgConfig kg;
    kg.num_entities = 100000;
    KgGenerator gen(kg);
    (void)gen.Next();
    t.Cell(std::string("WikiKG2"));
    t.Cell(std::string("2.5M"));
    t.Cell(Human(static_cast<double>(kg.num_entities)));
    t.Cell(std::string("400"));
    t.Cell(std::string("KGE"));
    t.Cell(std::string("DistMult&ComplEx"));
    t.EndRow();
  }
  {
    GraphConfig g;
    g.num_nodes = 400000;
    GraphGenerator gen(g);
    std::vector<Key> nbrs;
    gen.SampleNeighbors(gen.SampleTrainNode(), &nbrs);
    t.Cell(std::string("Papers100M"));
    t.Cell(std::string("111M"));
    t.Cell(Human(static_cast<double>(g.num_nodes)));
    t.Cell(std::string("128"));
    t.Cell(std::string("GNN"));
    t.Cell(std::string("GraphSage&GAT"));
    t.EndRow();
  }
  {
    EbayConfig e;
    e.num_transactions = 800000;
    e.num_entities = 400000;
    e.tripartite = true;
    EbayGenerator gen(e);
    (void)gen.Next();
    t.Cell(std::string("eBay-Payout"));
    t.Cell(std::string("1.7B"));
    t.Cell(Human(static_cast<double>(gen.total_keys())));
    t.Cell(std::string("768"));
    t.Cell(std::string("GNN"));
    t.Cell(std::string("GraphSage"));
    t.EndRow();
  }
  {
    EbayConfig e;
    e.num_transactions = 500000;
    e.num_entities = 200000;
    EbayGenerator gen(e);
    (void)gen.Next();
    t.Cell(std::string("eBay-Trisk"));
    t.Cell(std::string("185M"));
    t.Cell(Human(static_cast<double>(gen.total_keys())));
    t.Cell(std::string("256"));
    t.Cell(std::string("GNN"));
    t.Cell(std::string("GraphSage"));
    t.EndRow();
  }
  {
    CtrConfig c;
    c.num_fields = 8;
    c.field_cardinality = 2000000;
    CtrGenerator gen(c);
    (void)gen.Next();
    t.Cell(std::string("Criteo-Terabyte"));
    t.Cell(std::string("883M"));
    t.Cell(Human(static_cast<double>(gen.total_keys())));
    t.Cell(std::string("16"));
    t.Cell(std::string("DLRM"));
    t.Cell(std::string("FFNN&DCN"));
    t.EndRow();
  }
  {
    CtrConfig c;
    c.num_fields = 8;
    c.field_cardinality = 100000;
    CtrGenerator gen(c);
    (void)gen.Next();
    t.Cell(std::string("Criteo-Ad"));
    t.Cell(std::string("34M"));
    t.Cell(Human(static_cast<double>(gen.total_keys())));
    t.Cell(std::string("16"));
    t.Cell(std::string("DLRM"));
    t.Cell(std::string("FFNN&DCN"));
    t.EndRow();
  }

  std::printf("\nAll generators synthesize skew + planted learnable signal; "
              "see DESIGN.md section 1.\n");
  return 0;
}
