// Figure 8: effect of bounded staleness consistency in isolation. Fixed
// buffer size, staleness bound swept 0..80, on the CTR task (AUC) and the
// KGE link-prediction task (Hits@10).
//
// Paper result: relaxing the bound buys up to 6.58x throughput with <0.1%
// quality drop; unbounded (FASTER-style fully async) costs >0.8% AUC.
#include <memory>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "train/ctr_trainer.h"
#include "train/kge_trainer.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

std::unique_ptr<KvBackend> Make(const TempDir& dir, uint32_t dim,
                                uint64_t buffer_mb, uint32_t bound) {
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = dim;
  cfg.buffer_bytes = buffer_mb << 20;
  cfg.staleness_bound = bound;
  std::unique_ptr<KvBackend> b;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &b).ok()) std::exit(1);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("fig8: staleness-bound sweep (throughput vs quality)\n"
                "  --batches=120 --buffer_mb=4 --compute_us=800\n"
                "  --cardinality=30000 --entities=30000 --smoke\n");
    return 0;
  }
  const uint64_t batches = flags.Int("batches", 120, 5);
  const uint64_t buffer_mb = flags.Int("buffer_mb", 4);
  const uint64_t compute_us = flags.Int("compute_us", 800, 50);
  const std::vector<uint32_t> bounds = {0, 4, 10, 20, 40, 80,
                                        UINT32_MAX - 1};

  Banner("Fig 8(a): DLRM on Criteo-Ad — throughput vs AUC across bounds");
  {
    Table t({"bound", "samples/s", "AUC", "stale_waits"});
    t.PrintHeader();
    for (uint32_t bound : bounds) {
      TempDir dir;
      auto backend = Make(dir, 8, buffer_mb, bound);
      CtrTrainerOptions o;
      o.data.num_fields = 8;
      o.data.field_cardinality = flags.Int("cardinality", 30000, 2000);
      o.dim = 8;
      o.batch_size = 128;
      // Bound 0 forces single-worker BSP; higher bounds run pipelined.
      o.num_workers = bound == 0 ? 1 : 4;
      o.train_batches = bound == 0 ? batches * 2 : batches;
      o.eval_every = static_cast<int>(o.train_batches);
      o.eval_samples = 2000;
      o.compute_micros_per_batch = compute_us;
      o.preload_keys = static_cast<uint64_t>(o.data.num_fields) *
                       o.data.field_cardinality;
      CtrTrainer trainer(backend.get(), o);
      const TrainResult r = trainer.Train();
      t.Cell(bound == UINT32_MAX - 1 ? std::string("inf(ASP)")
                                     : std::to_string(bound));
      t.Cell(Human(r.throughput()));
      t.Cell(r.final_metric, "%.4f");
      t.Cell(r.busy_aborts);
      t.EndRow();
    }
  }

  Banner("Fig 8(b): KGE on WikiKG2 — throughput vs Hits@10 across bounds");
  {
    Table t({"bound", "samples/s", "Hits@10", "stale_waits"});
    t.PrintHeader();
    for (uint32_t bound : bounds) {
      TempDir dir;
      auto backend = Make(dir, 32, buffer_mb, bound);
      KgeTrainerOptions o;
      o.data.num_entities = flags.Int("entities", 30000, 2000);
      o.data.num_relations = 8;
      o.dim = 32;
      o.batch_size = 128;
      o.num_workers = bound == 0 ? 1 : 4;
      o.train_batches = bound == 0 ? batches * 2 : batches;
      o.eval_every = static_cast<int>(o.train_batches);
      o.eval_triples = 300;
      o.compute_micros_per_batch = compute_us;
      o.preload_keys = o.data.num_entities;
      KgeTrainer trainer(backend.get(), o);
      const TrainResult r = trainer.Train();
      t.Cell(bound == UINT32_MAX - 1 ? std::string("inf(ASP)")
                                     : std::to_string(bound));
      t.Cell(Human(r.throughput()));
      t.Cell(r.final_metric, "%.4f");
      t.Cell(r.busy_aborts);
      t.EndRow();
    }
  }

  std::printf("\nExpected shape (paper): throughput rises steeply from "
              "bound 0 and saturates; quality degrades only slightly up to "
              "bound ~80, more when unbounded.\n");
  return 0;
}
