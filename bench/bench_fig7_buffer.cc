// Figure 7: larger-than-memory workloads — throughput (top) and energy
// (bottom) as a function of the in-memory buffer size, for X-MLKV vs
// X-FASTER vs X-RocksDB vs X-WiredTiger across the three tasks.
//
// Paper result: MLKV wins by 1.08-2.44x (DLRM), 1.36-4.89x (KGE),
// 1.53-12.57x (GNN), and is the most energy-efficient. The shape comes
// from (a) bounded staleness + lookahead hiding disk stalls, (b) LSM read
// amplification and B+tree random-write page churn hurting the baselines.
#include <memory>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "train/ctr_trainer.h"
#include "train/energy.h"
#include "train/gnn_trainer.h"
#include "train/kge_trainer.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

constexpr BackendKind kBackends[] = {BackendKind::kMlkv, BackendKind::kFaster,
                                     BackendKind::kLsm, BackendKind::kBtree};

std::unique_ptr<KvBackend> Make(const TempDir& dir, BackendKind kind,
                                uint32_t dim, uint64_t buffer_mb) {
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = dim;
  cfg.buffer_bytes = buffer_mb << 20;
  cfg.staleness_bound = 16;
  std::unique_ptr<KvBackend> b;
  if (!MakeBackend(kind, cfg, &b).ok()) std::exit(1);
  return b;
}

template <typename RunFn>
void Sweep(const char* task, const std::vector<uint64_t>& buffers_mb,
           uint64_t batches, RunFn run) {
  Banner(std::string("Fig 7: ") + task +
         " — throughput (samples/s) and energy (J/batch) vs buffer size");
  Table t({"backend", "buf_mb", "samples/s", "J/batch", "disk_rd_mb",
           "disk_wr_mb"});
  t.PrintHeader();
  EnergyModel energy;
  double mlkv_tput = 0;
  for (const uint64_t mb : buffers_mb) {
    for (const BackendKind kind : kBackends) {
      TempDir dir;
      auto backend = Make(dir, kind, 16, mb);
      const TrainResult r = run(backend.get());
      if (kind == BackendKind::kMlkv) mlkv_tput = r.throughput();
      t.Cell(std::string(BackendKindName(kind)));
      t.Cell(static_cast<uint64_t>(mb));
      t.Cell(Human(r.throughput()));
      t.Cell(energy.JoulesPerBatch(r, batches), "%.2f");
      t.Cell(static_cast<double>(r.device_bytes_read) / (1 << 20), "%.1f");
      t.Cell(static_cast<double>(r.device_bytes_written) / (1 << 20), "%.1f");
      t.EndRow();
    }
    (void)mlkv_tput;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("fig7: larger-than-memory backend sweep\n"
                "  --batches=60 --compute_us=1500 --buffers=2,4,8\n"
                "  --cardinality=60000 --entities=150000 --nodes=150000\n"
                "  --task=all|dlrm|kge|gnn --smoke\n");
    return 0;
  }
  const uint64_t batches = flags.Int("batches", 60, 3);
  const uint64_t compute_us = flags.Int("compute_us", 1500, 50);
  const std::string task = flags.Str("task", "all");

  std::vector<uint64_t> buffers;
  {
    std::string s = flags.Str("buffers", "2,4,8", "2");
    size_t pos = 0;
    while (pos < s.size()) {
      size_t comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      buffers.push_back(std::strtoull(s.substr(pos, comma - pos).c_str(),
                                      nullptr, 10));
      pos = comma + 1;
    }
  }

  if (task == "all" || task == "dlrm") {
    CtrTrainerOptions o;
    o.data.num_fields = 8;
    o.data.field_cardinality = flags.Int("cardinality", 60000, 3000);
    o.dim = 16;
    o.batch_size = 128;
    o.num_workers = 2;
    o.train_batches = batches;
    o.eval_every = 0;  // throughput run
    o.lookahead_depth = 4;
    o.compute_micros_per_batch = compute_us;
    o.preload_keys = static_cast<uint64_t>(o.data.num_fields) *
                     o.data.field_cardinality;
    Sweep("DLRM on Criteo-Terabyte", buffers, batches * o.num_workers,
          [&](KvBackend* b) {
            CtrTrainer t(b, o);
            return t.Train();
          });
  }

  if (task == "all" || task == "kge") {
    KgeTrainerOptions o;
    o.data.num_entities = flags.Int("entities", 150000, 3000);
    o.data.num_relations = 8;
    o.dim = 32;
    o.batch_size = 128;
    o.num_workers = 2;
    o.train_batches = batches;
    o.eval_every = 0;
    o.lookahead_depth = 4;
    o.compute_micros_per_batch = compute_us;
    o.preload_keys = o.data.num_entities;
    Sweep("KGE on Freebase86M", buffers, batches * o.num_workers,
          [&](KvBackend* b) {
            KgeTrainer t(b, o);
            return t.Train();
          });
  }

  if (task == "all" || task == "gnn") {
    GnnTrainerOptions o;
    o.graph.num_nodes = flags.Int("nodes", 150000, 3000);
    o.graph.num_classes = 8;
    o.graph.fanout = 8;
    o.dim = 32;
    o.hidden = 32;
    o.batch_size = 64;
    o.num_workers = 2;
    o.train_batches = batches;
    o.eval_every = 0;
    o.lookahead_depth = 4;
    o.compute_micros_per_batch = compute_us;
    o.preload_keys = o.graph.num_nodes;
    Sweep("GNN on Papers100M", buffers, batches * o.num_workers,
          [&](KvBackend* b) {
            GnnTrainer t(b, o);
            return t.Train();
          });
  }

  std::printf("\nExpected shape (paper): MLKV > FASTER > RocksDB/WiredTiger "
              "out-of-core; gaps shrink as the buffer grows; MLKV lowest "
              "J/batch.\n");
  return 0;
}
