// Serving bench (extension): batched embedding-lookup throughput and tail
// latency of the inference path (EmbeddingServer) over an out-of-core
// table, sweeping serving-cache capacity and key skew — the trade-off
// HugeCTR's hierarchical parameter server navigates with RocksDB as the
// bottom tier (paper §II-B).
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "mlkv/mlkv.h"
#include "net/kv_server.h"
#include "serve/embedding_server.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

struct Setup {
  Key rows = 500000;
  uint32_t dim = 16;
  uint64_t buffer_mb = 16;
  size_t batch = 256;
  uint64_t batches = 2000;
  int threads = 4;
};

void RunRow(const Setup& s, size_t cache_capacity, bool zipf, Table* t) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = s.rows;
  opts.mem_size = s.buffer_mb << 20;
  std::unique_ptr<Mlkv> db;
  if (!Mlkv::Open(opts, &db).ok()) std::exit(1);
  EmbeddingTable* table = nullptr;
  if (!db->OpenTable("emb", s.dim, 8, &table).ok()) std::exit(1);
  {
    std::vector<float> v(s.dim, 0.5f);
    for (Key k = 0; k < s.rows; ++k) {
      v[0] = static_cast<float>(k);
      if (!table->Put({&k, 1}, v.data()).ok()) std::exit(1);
    }
  }

  ServeOptions so;
  so.cache_capacity = cache_capacity;
  EmbeddingServer server(table, so);

  StopWatch watch;
  std::vector<std::thread> workers;
  for (int w = 0; w < s.threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1000 + w);
      ZipfianGenerator zg(s.rows, 0.99, 2000 + w);
      std::vector<Key> keys(s.batch);
      std::vector<float> out(s.batch * s.dim);
      for (uint64_t b = 0; b < s.batches / s.threads; ++b) {
        for (auto& k : keys) {
          k = zipf ? zg.NextScrambled() : rng.Uniform(s.rows);
        }
        if (!server.Lookup(keys, out.data()).ok()) std::exit(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  const double secs = watch.ElapsedSeconds();
  const auto st = server.stats();
  t->Cell(zipf ? "zipfian" : "uniform");
  t->Cell(static_cast<uint64_t>(cache_capacity));
  t->Cell(Human(static_cast<double>(st.lookups) / secs));
  t->Cell(100.0 * static_cast<double>(st.cache_hits) /
              static_cast<double>(st.lookups),
          "%.1f%%");
  t->Cell(st.batch_p50_us);
  t->Cell(st.batch_p99_us);
  t->EndRow();
}

// Remote serving: the same batched-lookup traffic, but through a loopback
// KvServer + RemoteBackend (untracked MultiGet = the serving read), i.e.
// an inference replica reading a live store over the network instead of
// linking it. Rows report lookups/s plus the server-side request latency
// from the KvServer histogram.
void RunRemoteRow(const Setup& s, bool zipf, Table* t) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.path() + "/backend";
  cfg.dim = s.dim;
  cfg.buffer_bytes = s.buffer_mb << 20;
  cfg.index_slots = s.rows;
  std::unique_ptr<KvBackend> engine;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &engine).ok()) std::exit(1);
  {
    constexpr size_t kChunk = 1024;
    std::vector<Key> keys(kChunk);
    std::vector<float> values(kChunk * s.dim, 0.5f);
    for (Key base = 0; base < s.rows; base += kChunk) {
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(kChunk, s.rows - base));
      for (size_t i = 0; i < n; ++i) {
        keys[i] = base + i;
        values[i * s.dim] = static_cast<float>(keys[i]);
      }
      if (engine->MultiPut({keys.data(), n}, values.data()).failed > 0) {
        std::exit(1);
      }
    }
  }
  net::KvServerOptions so;
  so.num_workers = static_cast<size_t>(s.threads);
  net::KvServer server(std::move(engine), so);
  if (!server.Start().ok()) std::exit(1);
  BackendConfig rcfg;
  rcfg.remote_addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  if (!MakeBackend(BackendKind::kRemote, rcfg, &remote).ok()) std::exit(1);

  std::atomic<uint64_t> lookups{0};
  StopWatch watch;
  std::vector<std::thread> workers;
  for (int w = 0; w < s.threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1000 + w);
      ZipfianGenerator zg(s.rows, 0.99, 2000 + w);
      std::vector<Key> keys(s.batch);
      std::vector<float> out(s.batch * s.dim);
      MultiGetOptions untracked;
      untracked.untracked = true;
      for (uint64_t b = 0; b < s.batches / s.threads; ++b) {
        for (auto& k : keys) {
          k = zipf ? zg.NextScrambled() : rng.Uniform(s.rows);
        }
        if (remote->MultiGet(keys, out.data(), untracked).failed > 0) {
          std::exit(1);
        }
        lookups.fetch_add(keys.size());
      }
    });
  }
  for (auto& th : workers) th.join();
  const double secs = watch.ElapsedSeconds();
  const net::StatsSnapshot st = server.stats();
  t->Cell(zipf ? "zipfian" : "uniform");
  t->Cell(Human(static_cast<double>(lookups.load()) / secs));
  t->Cell(st.latency_p50_us);
  t->Cell(st.latency_p99_us);
  t->EndRow();
  remote.reset();
  server.Stop();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("serving: lookup throughput/latency vs cache size\n"
                "  --rows=500000 --batches=2000 --threads=4\n"
                "  --remote   also measure the networked serving path\n"
                "             (loopback KvServer + RemoteBackend)\n");
    return 0;
  }
  Setup s;
  s.rows = flags.Int("rows", 500000, 10000);
  s.batches = flags.Int("batches", 2000, 50);
  s.threads = static_cast<int>(flags.Int("threads", 4, 2));

  Banner("Serving path: lookups/s and batch latency vs serving-cache size");
  std::printf("(out-of-core table: %llu rows x dim %u vs %llu MiB buffer)\n\n",
              static_cast<unsigned long long>(s.rows), s.dim,
              static_cast<unsigned long long>(s.buffer_mb));
  Table t({"dist", "cache_slots", "lookups/s", "cache_hit", "p50_us",
           "p99_us"});
  t.PrintHeader();
  for (const bool zipf : {false, true}) {
    for (const size_t cache : {size_t{0}, size_t{1} << 12, size_t{1} << 15,
                               size_t{1} << 18}) {
      RunRow(s, cache == 0 ? 1 : cache, zipf, &t);
    }
  }
  std::printf("\nExpected shape: under zipfian skew a small cache captures "
              "most lookups (hit%% rises steeply, p99 falls); uniform traffic "
              "needs cache ~ table size to matter.\n");

  if (flags.Has("remote")) {
    Banner("Remote serving: untracked MultiGet over loopback KvServer");
    std::printf("(same table and traffic, every batch pays a TCP round "
                "trip; p50/p99 are server-side request latencies)\n\n");
    Table rt({"dist", "lookups/s", "srv_p50_us", "srv_p99_us"});
    rt.PrintHeader();
    for (const bool zipf : {false, true}) {
      RunRemoteRow(s, zipf, &rt);
    }
    std::printf("\nExpected shape: remote throughput trails the in-process "
                "path by the per-batch wire cost; larger batches close the "
                "gap (see bench_ycsb_suite --remote).\n");
  }
  return 0;
}
