// Serving bench (extension): batched embedding-lookup throughput and tail
// latency of the inference path (EmbeddingServer) over an out-of-core
// table, sweeping serving-cache capacity, admission policy, and key skew —
// the trade-off HugeCTR's hierarchical parameter server navigates with
// RocksDB as the bottom tier (paper §II-B). The zipfian sweep pits plain
// LRU against TinyLFU admission (docs/SERVING.md): under skew with a cache
// a fraction of the keyspace, the frequency sketch keeps the hot head
// resident while LRU churns it out on the one-hit tail.
//
// --hedge adds the tail-latency A/B: a two-endpoint loopback cluster where
// one server is intermittently slow (DelayedBackend), read p50/p99/p999
// measured client-side with hedging off vs on, plus the extra request
// volume hedging cost. --hot_replicate_top_k piles load-aware hot-key
// replication onto the hedged run and reports the endpoint read split.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/delayed_backend.h"
#include "backend/kv_backend.h"
#include "bench_util.h"
#include "cluster/cluster_backend.h"
#include "cluster/cluster_map.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "mlkv/mlkv.h"
#include "net/kv_server.h"
#include "serve/embedding_server.h"
#include "serve/tinylfu.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

struct Setup {
  Key rows = 500000;
  uint32_t dim = 16;
  uint64_t buffer_mb = 16;
  size_t batch = 256;
  uint64_t batches = 2000;
  int threads = 4;
};

// One admission-sweep row: theta < 0 means uniform traffic.
void RunRow(const Setup& s, size_t cache_capacity, double theta,
            CacheAdmission admission, Table* t) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = s.rows;
  opts.mem_size = s.buffer_mb << 20;
  std::unique_ptr<Mlkv> db;
  if (!Mlkv::Open(opts, &db).ok()) std::exit(1);
  EmbeddingTable* table = nullptr;
  if (!db->OpenTable("emb", s.dim, 8, &table).ok()) std::exit(1);
  {
    std::vector<float> v(s.dim, 0.5f);
    for (Key k = 0; k < s.rows; ++k) {
      v[0] = static_cast<float>(k);
      if (!table->Put({&k, 1}, v.data()).ok()) std::exit(1);
    }
  }

  ServeOptions so;
  so.cache_capacity = cache_capacity;
  so.cache_admission = admission;
  EmbeddingServer server(table, so);

  StopWatch watch;
  std::vector<std::thread> workers;
  for (int w = 0; w < s.threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1000 + w);
      ZipfianGenerator zg(s.rows, theta < 0 ? 0.99 : theta, 2000 + w);
      std::vector<Key> keys(s.batch);
      std::vector<float> out(s.batch * s.dim);
      for (uint64_t b = 0; b < s.batches / s.threads; ++b) {
        for (auto& k : keys) {
          k = theta < 0 ? rng.Uniform(s.rows) : zg.NextScrambled();
        }
        if (!server.Lookup(keys, out.data()).ok()) std::exit(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  const double secs = watch.ElapsedSeconds();
  const auto st = server.stats();
  char dist[32];
  std::snprintf(dist, sizeof(dist), "zipf %.2f", theta);
  t->Cell(theta < 0 ? std::string("uniform") : std::string(dist));
  t->Cell(static_cast<uint64_t>(cache_capacity));
  t->Cell(admission == CacheAdmission::kTinyLfu ? "tinylfu" : "lru");
  t->Cell(Human(static_cast<double>(st.lookups) / secs));
  t->Cell(100.0 * static_cast<double>(st.cache_hits) /
              static_cast<double>(st.lookups),
          "%.1f%%");
  t->Cell(st.admission_rejects);
  t->Cell(st.batch_p50_us);
  t->Cell(st.batch_p99_us);
  t->Cell(st.batch_p999_us);
  t->EndRow();
}

// Remote serving: the same batched-lookup traffic, but through a loopback
// KvServer + RemoteBackend (untracked MultiGet = the serving read), i.e.
// an inference replica reading a live store over the network instead of
// linking it. Rows report lookups/s plus the server-side request latency
// from the KvServer histogram.
void RunRemoteRow(const Setup& s, bool zipf, Table* t) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.path() + "/backend";
  cfg.dim = s.dim;
  cfg.buffer_bytes = s.buffer_mb << 20;
  cfg.index_slots = s.rows;
  std::unique_ptr<KvBackend> engine;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &engine).ok()) std::exit(1);
  {
    constexpr size_t kChunk = 1024;
    std::vector<Key> keys(kChunk);
    std::vector<float> values(kChunk * s.dim, 0.5f);
    for (Key base = 0; base < s.rows; base += kChunk) {
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(kChunk, s.rows - base));
      for (size_t i = 0; i < n; ++i) {
        keys[i] = base + i;
        values[i * s.dim] = static_cast<float>(keys[i]);
      }
      if (engine->MultiPut({keys.data(), n}, values.data()).failed > 0) {
        std::exit(1);
      }
    }
  }
  net::KvServerOptions so;
  so.num_workers = static_cast<size_t>(s.threads);
  net::KvServer server(std::move(engine), so);
  if (!server.Start().ok()) std::exit(1);
  BackendConfig rcfg;
  rcfg.remote_addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  if (!MakeBackend(BackendKind::kRemote, rcfg, &remote).ok()) std::exit(1);

  std::atomic<uint64_t> lookups{0};
  StopWatch watch;
  std::vector<std::thread> workers;
  for (int w = 0; w < s.threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1000 + w);
      ZipfianGenerator zg(s.rows, 0.99, 2000 + w);
      std::vector<Key> keys(s.batch);
      std::vector<float> out(s.batch * s.dim);
      MultiGetOptions untracked;
      untracked.untracked = true;
      for (uint64_t b = 0; b < s.batches / s.threads; ++b) {
        for (auto& k : keys) {
          k = zipf ? zg.NextScrambled() : rng.Uniform(s.rows);
        }
        if (remote->MultiGet(keys, out.data(), untracked).failed > 0) {
          std::exit(1);
        }
        lookups.fetch_add(keys.size());
      }
    });
  }
  for (auto& th : workers) th.join();
  const double secs = watch.ElapsedSeconds();
  const net::StatsSnapshot st = server.stats();
  t->Cell(zipf ? "zipfian" : "uniform");
  t->Cell(Human(static_cast<double>(lookups.load()) / secs));
  t->Cell(st.latency_p50_us);
  t->Cell(st.latency_p99_us);
  t->EndRow();
  remote.reset();
  server.Stop();
}

// --- hedging A/B over a two-endpoint loopback cluster ---

// Each endpoint is primary of one partition and replica of the other, so
// every read has a fallback candidate; both stores are preloaded
// identically so replica reads return the same bytes. Endpoint 0's engine
// is wrapped in a DelayedBackend that sleeps on every Nth request — an
// intermittent straggler, the shape hedging is built for (a constantly
// slow server is a failover problem, not a hedging one).
struct HedgeCluster {
  TempDir dir;
  std::unique_ptr<net::KvServer> servers[2];
  DelayedBackend* slow = nullptr;  // owned by servers[0]

  bool Start(const Setup& s, uint64_t delay_us, uint64_t every_nth) {
    for (int i = 0; i < 2; ++i) {
      BackendConfig cfg;
      cfg.dir = dir.path() + "/ep" + std::to_string(i);
      cfg.dim = s.dim;
      cfg.buffer_bytes = s.buffer_mb << 20;
      cfg.index_slots = s.rows;
      std::unique_ptr<KvBackend> engine;
      if (!MakeBackend(BackendKind::kMlkv, cfg, &engine).ok()) return false;
      constexpr size_t kChunk = 1024;
      std::vector<Key> keys(kChunk);
      std::vector<float> values(kChunk * s.dim, 0.5f);
      for (Key base = 0; base < s.rows; base += kChunk) {
        const size_t n =
            static_cast<size_t>(std::min<uint64_t>(kChunk, s.rows - base));
        for (size_t j = 0; j < n; ++j) {
          keys[j] = base + j;
          values[j * s.dim] = static_cast<float>(keys[j]);
        }
        if (engine->MultiPut({keys.data(), n}, values.data()).failed > 0) {
          return false;
        }
      }
      if (i == 0) {
        DelayedBackend::Options dopt;
        dopt.delay_us = delay_us;
        dopt.every_nth = every_nth;
        auto delayed =
            std::make_unique<DelayedBackend>(std::move(engine), dopt);
        slow = delayed.get();
        engine = std::move(delayed);
      }
      net::KvServerOptions so;
      so.num_workers = 4;
      servers[i] = std::make_unique<net::KvServer>(std::move(engine), so);
      if (!servers[i]->Start().ok()) return false;
    }
    // Map installed after Start (ephemeral ports): each endpoint primary
    // of one partition, replica of the other.
    auto map = std::make_shared<cluster::ClusterMap>();
    const std::vector<std::string> primaries = {servers[0]->addr(),
                                                servers[1]->addr()};
    const std::vector<std::string> replicas = {servers[1]->addr(),
                                               servers[0]->addr()};
    if (!cluster::BuildClusterMap(primaries, replicas, /*route_bits=*/1,
                                  cluster::ReadPreference::kPrimary,
                                  /*epoch=*/1, map.get())
             .ok()) {
      return false;
    }
    servers[0]->UpdateClusterMap(map, 0);
    servers[1]->UpdateClusterMap(map, 1);
    return true;
  }

  void Stop() {
    for (auto& srv : servers) {
      if (srv) srv->Stop();
    }
  }
};

struct HedgeRowResult {
  uint64_t rpcs = 0;  // client-side RPC exchanges (extra-volume basis)
  uint64_t p50 = 0, p99 = 0, p999 = 0;
};

// One traffic run against the cluster; per-batch latency measured at the
// caller (the number an inference service actually serves).
HedgeRowResult RunHedgeRow(const Setup& s, HedgeCluster* hc, uint64_t hedge_us,
                           size_t hot_top_k, bool zipf, const char* label,
                           Table* t) {
  cluster::ClusterBackendOptions co;
  co.endpoints = {hc->servers[0]->addr(), hc->servers[1]->addr()};
  co.hedge_us = hedge_us;
  co.hot_replicate_top_k = hot_top_k;
  std::unique_ptr<cluster::ClusterBackend> cb;
  if (!cluster::ClusterBackend::Connect(co, &cb).ok()) std::exit(1);

  Histogram lat;
  std::atomic<uint64_t> lookups{0};
  StopWatch watch;
  std::vector<std::thread> workers;
  for (int w = 0; w < s.threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1000 + w);
      ZipfianGenerator zg(s.rows, 0.99, 2000 + w);
      std::vector<Key> keys(s.batch);
      std::vector<float> out(s.batch * s.dim);
      MultiGetOptions untracked;
      untracked.untracked = true;
      for (uint64_t b = 0; b < s.batches / s.threads; ++b) {
        for (auto& k : keys) {
          k = zipf ? zg.NextScrambled() : rng.Uniform(s.rows);
        }
        const auto t0 = std::chrono::steady_clock::now();
        const BatchResult br = cb->MultiGet(keys, out.data(), untracked);
        if (br.failed > 0) {
          std::fprintf(stderr, "hedge bench: %llu failed key(s): %s\n",
                       static_cast<unsigned long long>(br.failed),
                       br.first_error.ToString().c_str());
          std::exit(1);
        }
        lat.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        lookups.fetch_add(keys.size());
      }
    });
  }
  for (auto& th : workers) th.join();
  const double secs = watch.ElapsedSeconds();

  HedgeRowResult r;
  r.rpcs = cb->io_stats().remote_requests;
  r.p50 = lat.Percentile(0.50);
  r.p99 = lat.Percentile(0.99);
  r.p999 = lat.Percentile(0.999);
  const cluster::HedgeStats hs = cb->hedge_stats();
  t->Cell(label);
  t->Cell(Human(static_cast<double>(lookups.load()) / secs));
  t->Cell(r.p50);
  t->Cell(r.p99);
  t->Cell(r.p999);
  t->Cell(hs.issued);
  t->Cell(hs.wins);
  if (hot_top_k != 0) {
    // Read split across the endpoints: without hot replication the hot
    // head pins to its primary; with it the split approaches 50/50.
    uint64_t reqs[2] = {0, 0};
    size_t i = 0;
    for (const cluster::EndpointStats& es : cb->endpoint_stats()) {
      if (i < 2) reqs[i++] = es.requests;
    }
    char split[64];
    std::snprintf(split, sizeof(split), "%llu/%llu hot=%llu",
                  static_cast<unsigned long long>(reqs[0]),
                  static_cast<unsigned long long>(reqs[1]),
                  static_cast<unsigned long long>(cb->hot_reads()));
    t->Cell(std::string(split));
  } else {
    t->Cell("-");
  }
  t->EndRow();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf(
        "serving: lookup throughput/latency vs cache size and admission\n"
        "  --rows=500000 --batches=2000 --threads=4\n"
        "  --remote   also measure the networked serving path\n"
        "             (loopback KvServer + RemoteBackend)\n"
        "  --hedge    read-hedging A/B on a 2-endpoint loopback cluster\n"
        "             with one intermittently slow server\n"
        "    --hedge_us=500         hedge delay (us); 0 = auto (p99)\n"
        "    --slow_us=3000         injected delay on the slow endpoint\n"
        "    --slow_every=32        delay every Nth request\n"
        "    --hot_replicate_top_k=64  add a hot-key replication row\n");
    return 0;
  }
  Setup s;
  s.rows = flags.Int("rows", 500000, 10000);
  s.batches = flags.Int("batches", 2000, 50);
  s.threads = static_cast<int>(flags.Int("threads", 4, 2));

  Banner(
      "Serving path: lookups/s, hit rate, and batch latency vs cache size "
      "x admission policy");
  std::printf("(out-of-core table: %llu rows x dim %u vs %llu MiB buffer; "
              "cache sized at 1%% and 10%% of the keyspace)\n\n",
              static_cast<unsigned long long>(s.rows), s.dim,
              static_cast<unsigned long long>(s.buffer_mb));
  Table t({"dist", "cache_slots", "policy", "lookups/s", "hit", "adm_rej",
           "p50_us", "p99_us", "p999_us"});
  t.PrintHeader();
  const size_t small = std::max<size_t>(64, static_cast<size_t>(s.rows / 100));
  const size_t large = std::max<size_t>(64, static_cast<size_t>(s.rows / 10));
  for (const double theta : {-1.0, 0.99, 1.2}) {
    for (const size_t cache : {small, large}) {
      for (const CacheAdmission adm :
           {CacheAdmission::kLru, CacheAdmission::kTinyLfu}) {
        RunRow(s, cache, theta, adm, &t);
      }
    }
  }
  std::printf("\nExpected shape: under zipfian skew with a cache a fraction "
              "of the keyspace, TinyLFU admission beats plain LRU on hit "
              "rate (the one-hit tail stops evicting the head) and p99 "
              "falls with it; uniform traffic shows no policy gap.\n");

  if (flags.Has("remote")) {
    Banner("Remote serving: untracked MultiGet over loopback KvServer");
    std::printf("(same table and traffic, every batch pays a TCP round "
                "trip; p50/p99 are server-side request latencies)\n\n");
    Table rt({"dist", "lookups/s", "srv_p50_us", "srv_p99_us"});
    rt.PrintHeader();
    for (const bool zipf : {false, true}) {
      RunRemoteRow(s, zipf, &rt);
    }
    std::printf("\nExpected shape: remote throughput trails the in-process "
                "path by the per-batch wire cost; larger batches close the "
                "gap (see bench_ycsb_suite --remote).\n");
  }

  if (flags.Has("hedge")) {
    // The A/B is a ratio measurement (extra request volume, p99 delta), so
    // it keeps its own smoke config rather than --smoke's tiny defaults:
    // enough batches that one hedge is a fraction of a percent of volume,
    // and stall/delay pushed an order of magnitude above loopback jitter —
    // shared CI runners show multi-ms scheduling noise, and a delay inside
    // that band hedges noise instead of the injected straggler.
    Setup hs = s;
    if (flags.Smoke() && !flags.Has("batches")) hs.batches = 400;
    const uint64_t hedge_us = flags.Int("hedge_us", 500, 6000);
    const uint64_t slow_us = flags.Int("slow_us", 3000, 30000);
    const uint64_t slow_every = flags.Int("slow_every", 32);
    const size_t hot_top_k =
        static_cast<size_t>(flags.Int("hot_replicate_top_k", 0));
    Banner("Read hedging A/B: 2-endpoint loopback cluster, one "
           "intermittently slow server");
    std::printf("(endpoint 0 sleeps %llu us on every %llu-th request; "
                "hedge delay %llu us%s; client-side batch latency)\n\n",
                static_cast<unsigned long long>(slow_us),
                static_cast<unsigned long long>(slow_every),
                static_cast<unsigned long long>(hedge_us),
                hedge_us == 0 ? " [auto p99]" : "");
    HedgeCluster hc;
    if (!hc.Start(s, slow_us, slow_every)) std::exit(1);
    Table ht({"mode", "lookups/s", "p50_us", "p99_us", "p999_us", "hedges",
              "wins", "ep_reads"});
    ht.PrintHeader();
    const HedgeRowResult off =
        RunHedgeRow(hs, &hc, 0, 0, /*zipf=*/false, "off", &ht);
    const HedgeRowResult on = RunHedgeRow(
        hs, &hc, hedge_us == 0 ? kHedgeAuto : hedge_us, 0, /*zipf=*/false,
        "hedged", &ht);
    if (hot_top_k != 0) {
      RunHedgeRow(hs, &hc, hedge_us == 0 ? kHedgeAuto : hedge_us, hot_top_k,
                  /*zipf=*/true, "hedged+hot", &ht);
    }
    hc.Stop();
    const double extra =
        off.rpcs > 0 ? 100.0 * (static_cast<double>(on.rpcs) /
                                    static_cast<double>(off.rpcs) -
                                1.0)
                     : 0.0;
    std::printf("\nhedging: read p99 %llu -> %llu us (%.1fx), p999 %llu -> "
                "%llu us, +%.1f%% request volume\n",
                static_cast<unsigned long long>(off.p99),
                static_cast<unsigned long long>(on.p99),
                on.p99 > 0 ? static_cast<double>(off.p99) /
                                 static_cast<double>(on.p99)
                           : 0.0,
                static_cast<unsigned long long>(off.p999),
                static_cast<unsigned long long>(on.p999), extra);
    std::printf("Expected shape: without hedging every straggler surfaces "
                "at p99; with it the hedge covers the slow sub-batch for a "
                "few %% extra requests. Unskewed reads pay one pool handoff "
                "plus a row copy (a bounded p50 cost), never a second RPC.\n");
  }
  return 0;
}
