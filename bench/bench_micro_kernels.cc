// Microbenchmark for the vectorized kernel layer: fused optimizer updates
// (mlkv/optimizer_kernels.h) and the bulk float primitives (common/simd.h),
// each timed on the scalar reference and on the best vector tier this
// machine has, with the speedup printed per cell. The acceptance bar for
// the SIMD work is read off this table: fused AdaGrad/Adam at dim 64/128
// must clear 2x scalar on an AVX2 machine.
//
//   ./bench_micro_kernels                 # full sweep
//   ./bench_micro_kernels --smoke         # CI sanity (seconds)
//   ./bench_micro_kernels --rows=8192 --ms=200
//
// Updates hit a working set of --rows rows round-robin, so dims large
// enough to spill L1 behave like the store's Rmw loop rather than a
// register-resident toy.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/simd.h"
#include "mlkv/optimizer.h"
#include "mlkv/optimizer_kernels.h"

namespace mlkv {
namespace {

// The best tier this build + CPU offers, ignoring MLKV_FORCE_SCALAR: the
// bench's job is to compare tiers, not to honor the dispatch override.
simd::KernelTier VectorTier() {
#if MLKV_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return simd::KernelTier::kAvx2Fma;
  }
#elif MLKV_SIMD_NEON
  return simd::KernelTier::kNeon;
#endif
  return simd::KernelTier::kScalar;
}

float NextFloat(uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<float>(static_cast<int64_t>(z % 2000001) - 1000000) *
         1e-6f;
}

void Fill(std::vector<float>* v, uint64_t seed) {
  for (float& x : *v) x = NextFloat(&seed);
}

// Keeps results observable so the timed loops cannot be dead-code
// eliminated.
volatile float g_sink = 0.0f;

// Runs `fn(row)` round-robin over `rows` rows for ~target_ms and returns
// rows/second. One warmup pass first.
template <typename Fn>
double MeasureRowsPerSec(size_t rows, int target_ms, Fn&& fn) {
  for (size_t r = 0; r < rows; ++r) fn(r);
  const uint64_t budget_us = static_cast<uint64_t>(target_ms) * 1000;
  uint64_t done = 0;
  const uint64_t t0 = NowMicros();
  uint64_t elapsed = 0;
  while (elapsed < budget_us) {
    for (size_t r = 0; r < rows; ++r) fn(r);
    done += rows;
    elapsed = NowMicros() - t0;
  }
  return elapsed == 0 ? 0.0 : done * 1e6 / static_cast<double>(elapsed);
}

constexpr OptimizerKind kKinds[] = {OptimizerKind::kSgd,
                                    OptimizerKind::kMomentum,
                                    OptimizerKind::kAdagrad,
                                    OptimizerKind::kAdam};

void BenchOptimizers(const bench::Flags& flags, simd::KernelTier vec) {
  const size_t rows = static_cast<size_t>(flags.Int("rows", 4096, 256));
  const int ms = static_cast<int>(flags.Int("ms", 150, 10));
  std::vector<uint32_t> dims;
  if (flags.Smoke()) {
    dims = {8, 64};
  } else {
    dims = {8, 64, 128, 256};
  }

  bench::Banner("fused optimizer kernels (rows/s, higher is better)");
  bench::Table t({"kind", "dim", "scalar", simd::KernelTierName(vec),
                  "speedup"});
  t.PrintHeader();
  for (OptimizerKind kind : kKinds) {
    for (uint32_t dim : dims) {
      OptimizerConfig cfg;
      cfg.kind = kind;
      cfg.lr = 0.01f;  // small so repeated updates stay finite
      const size_t state_n = OptimizerStateFloats(kind, dim);
      std::vector<float> emb(rows * dim), grad(rows * dim);
      std::vector<float> state(rows * state_n, 0.0f);
      Fill(&emb, dim);
      Fill(&grad, dim + 1);

      auto run = [&](simd::KernelTier tier) {
        return MeasureRowsPerSec(rows, ms, [&, tier](size_t r) {
          ApplyOptimizerUpdateWithTier(
              tier, cfg, dim, emb.data() + r * dim,
              state_n ? state.data() + r * state_n : nullptr,
              grad.data() + r * dim);
        });
      };
      const double scalar = run(simd::KernelTier::kScalar);
      const double vector = run(vec);
      g_sink = g_sink + emb[0] + (state_n ? state[0] : 0.0f);

      t.Cell(OptimizerKindName(kind));
      t.Cell(static_cast<uint64_t>(dim));
      t.Cell(bench::Human(scalar));
      t.Cell(bench::Human(vector));
      t.Cell(scalar > 0 ? vector / scalar : 0.0, "%.2fx");
      t.EndRow();
    }
  }
}

void BenchBulkPrimitives(const bench::Flags& flags, simd::KernelTier vec) {
  const int ms = static_cast<int>(flags.Int("ms", 150, 10));
  std::vector<size_t> sizes;
  if (flags.Smoke()) {
    sizes = {64, 1024};
  } else {
    sizes = {64, 128, 1024, 65536};
  }
  const size_t rows = 64;  // round-robin rows, like the optimizer sweep

  // Explicit-tier bodies: the dispatched entry points resolve the tier
  // once per process, so the bench calls the per-tier functions directly.
  auto accumulate = [vec](bool vectored, float* dst, const float* src,
                          size_t n) {
    if (vectored) {
#if MLKV_SIMD_X86
      if (vec == simd::KernelTier::kAvx2Fma) {
        simd::AccumulateFloatsAvx2(dst, src, n);
        return;
      }
#endif
#if MLKV_SIMD_NEON
      if (vec == simd::KernelTier::kNeon) {
        simd::AccumulateFloatsNeon(dst, src, n);
        return;
      }
#endif
    }
    for (size_t i = 0; i < n; ++i) dst[i] += src[i];
  };
  auto sub_scaled = [vec](bool vectored, float* dst, const float* src, float a,
                          size_t n) {
    if (vectored) {
#if MLKV_SIMD_X86
      if (vec == simd::KernelTier::kAvx2Fma) {
        simd::SubScaledAvx2(dst, src, a, n);
        return;
      }
#endif
#if MLKV_SIMD_NEON
      if (vec == simd::KernelTier::kNeon) {
        simd::SubScaledNeon(dst, src, a, n);
        return;
      }
#endif
    }
    for (size_t i = 0; i < n; ++i) dst[i] -= a * src[i];
  };

  bench::Banner("bulk float primitives (GB/s touched, higher is better)");
  bench::Table t({"op", "floats", "scalar", simd::KernelTierName(vec),
                  "speedup"});
  t.PrintHeader();
  for (size_t n : sizes) {
    std::vector<float> dst(rows * n), src(rows * n);
    Fill(&src, n);
    // Both streams are touched: 2 loads + 1 store per float -> 12 bytes.
    const double bytes_per_row = static_cast<double>(n) * 12.0;

    for (int op = 0; op < 2; ++op) {
      auto run = [&](bool vectored) {
        Fill(&dst, n + 1);
        const double rps = MeasureRowsPerSec(rows, ms, [&](size_t r) {
          float* d = dst.data() + r * n;
          const float* s = src.data() + r * n;
          if (op == 0) {
            accumulate(vectored, d, s, n);
          } else {
            sub_scaled(vectored, d, s, 0.01f, n);
          }
        });
        g_sink = g_sink + dst[0];
        return rps * bytes_per_row / 1e9;
      };
      const double scalar = run(false);
      const double vector = run(true);
      t.Cell(op == 0 ? "accumulate" : "sub_scaled");
      t.Cell(static_cast<uint64_t>(n));
      t.Cell(scalar, "%.2f");
      t.Cell(vector, "%.2f");
      t.Cell(scalar > 0 ? vector / scalar : 0.0, "%.2fx");
      t.EndRow();
    }
  }
}

int Main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const simd::KernelTier vec = VectorTier();
  std::printf("active tier: %s (dispatched: %s)\n",
              simd::KernelTierName(vec),
              simd::KernelTierName(simd::ActiveKernelTier()));
  if (vec == simd::KernelTier::kScalar) {
    std::printf("no vector tier on this machine; speedups will be ~1.0x\n");
  }
  BenchOptimizers(flags, vec);
  BenchBulkPrimitives(flags, vec);
  return 0;
}

}  // namespace
}  // namespace mlkv

int main(int argc, char** argv) { return mlkv::Main(argc, argv); }
