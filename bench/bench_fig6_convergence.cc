// Figure 6: end-to-end convergence, in-memory regime. For each task
// (DLRM/Criteo-Ad, KGE/WikiKG2, GNN/Papers100M) trains the native
// configuration (specialized framework == InMemory backend) and the
// X-MLKV integration with identical application logic and staleness
// bounds, printing metric-vs-time series and the relative slowdown
// (paper: MLKV at most 2.5% / 2.6% / 22.2% slower than PERSIA / DGL-KE /
// DGL due to index traversal overhead).
#include <memory>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "train/ctr_trainer.h"
#include "train/gnn_trainer.h"
#include "train/kge_trainer.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

std::unique_ptr<KvBackend> Make(const TempDir& dir, BackendKind kind,
                                uint32_t dim, uint64_t buffer_mb) {
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = dim;
  cfg.buffer_bytes = buffer_mb << 20;  // large: in-memory regime
  cfg.staleness_bound = 16;
  std::unique_ptr<KvBackend> b;
  if (!MakeBackend(kind, cfg, &b).ok()) std::exit(1);
  return b;
}

void PrintCurves(const char* task, const char* metric,
                 const TrainResult& native, const TrainResult& with_mlkv) {
  Banner(std::string("Fig 6: ") + task + " convergence (" + metric + ")");
  Table t({"series", "t25%", "t50%", "t75%", "final", "samples/s"});
  t.PrintHeader();
  auto row = [&](const char* name, const TrainResult& r) {
    t.Cell(std::string(name));
    const auto& c = r.metric_curve;
    for (double q : {0.25, 0.5, 0.75}) {
      if (c.empty()) {
        t.Cell(std::string("-"));
      } else {
        const size_t i =
            std::min(c.size() - 1, static_cast<size_t>(q * c.size()));
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", c[i].second);
        t.Cell(std::string(buf));
      }
    }
    t.Cell(r.final_metric, "%.4f");
    t.Cell(Human(r.throughput()));
    t.EndRow();
  };
  row("Native", native);
  row("X-MLKV", with_mlkv);
  const double slowdown =
      native.throughput() > 0
          ? 100.0 * (1.0 - with_mlkv.throughput() / native.throughput())
          : 0.0;
  std::printf("MLKV slowdown vs native: %.1f%% (paper: 2.5%%-22.2%%)\n",
              slowdown);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("fig6: in-memory convergence, native vs X-MLKV\n"
                "  --batches=150 --compute_us=1500\n");
    return 0;
  }
  const uint64_t batches = flags.Int("batches", 150, 5);
  const uint64_t compute_us = flags.Int("compute_us", 1500, 50);

  // --- DLRM on Criteo-Ad (PERSIA vs PERSIA-MLKV) ---
  {
    CtrTrainerOptions o;
    o.data.num_fields = 8;
    o.data.field_cardinality = 10000;
    o.dim = 8;
    o.batch_size = 128;
    o.num_workers = 2;
    o.train_batches = batches;
    o.eval_every = static_cast<int>(batches / 5);
    o.eval_samples = 1500;
    o.compute_micros_per_batch = compute_us;
    TempDir d1, d2;
    auto native_b = Make(d1, BackendKind::kInMemory, o.dim, 256);
    auto mlkv_b = Make(d2, BackendKind::kMlkv, o.dim, 256);
    CtrTrainer t1(native_b.get(), o), t2(mlkv_b.get(), o);
    PrintCurves("DLRM on Criteo-Ad (FFNN-Dim8)", "AUC", t1.Train(),
                t2.Train());
  }

  // --- KGE on WikiKG2 (DGL-KE vs DGL-KE-MLKV) ---
  {
    KgeTrainerOptions o;
    o.data.num_entities = 20000;
    o.data.num_relations = 8;
    o.data.num_clusters = 16;
    o.dim = 32;
    o.batch_size = 128;
    o.num_workers = 2;
    o.train_batches = batches;
    o.eval_every = static_cast<int>(batches / 5);
    o.eval_triples = 300;
    o.compute_micros_per_batch = compute_us;
    TempDir d1, d2;
    auto native_b = Make(d1, BackendKind::kInMemory, o.dim, 256);
    auto mlkv_b = Make(d2, BackendKind::kMlkv, o.dim, 256);
    KgeTrainer t1(native_b.get(), o), t2(mlkv_b.get(), o);
    PrintCurves("KGE on WikiKG2 (DistMult)", "Hits@10", t1.Train(),
                t2.Train());
  }

  // --- GNN on Papers100M (DGL vs DGL-MLKV) ---
  {
    GnnTrainerOptions o;
    o.graph.num_nodes = 20000;
    o.graph.num_classes = 8;
    o.graph.fanout = 8;
    o.dim = 32;
    o.hidden = 32;
    o.batch_size = 64;
    o.num_workers = 2;
    o.train_batches = batches;
    o.eval_every = static_cast<int>(batches / 5);
    o.eval_nodes = 600;
    o.compute_micros_per_batch = compute_us;
    TempDir d1, d2;
    auto native_b = Make(d1, BackendKind::kInMemory, o.dim, 256);
    auto mlkv_b = Make(d2, BackendKind::kMlkv, o.dim, 256);
    GnnTrainer t1(native_b.get(), o), t2(mlkv_b.get(), o);
    PrintCurves("GNN on Papers100M (GraphSage)", "accuracy", t1.Train(),
                t2.Train());
  }
  return 0;
}
