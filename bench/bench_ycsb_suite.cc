// Extension bench (beyond the paper's Fig. 10): the full YCSB core suite
// A-F across all four storage engines (MLKV, FASTER-mode, LSM, B+tree).
//
// The paper evaluates only the A-style 50/50 mix; this binary characterizes
// each engine across the standard mixes so the trade-offs DESIGN.md cites
// are visible: log-structured engines win write-heavy mixes (A, F), the
// B+tree wins scans (E), bounded-staleness tracking costs a few percent on
// read-heavy mixes (B, C), and the LSM pays read amplification everywhere.
//
// Scans on the hash-indexed log engines are emulated as `scan_length`
// consecutive point reads (keys are dense 64-bit integers), the standard
// approach for hash KV stores, and are labelled as such.
#include <atomic>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "btree/btree_store.h"
#include "cluster/cluster_map.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"
#include "lsm/lsm_store.h"
#include "net/kv_server.h"
#include "obs/metrics.h"
#include "workloads/ycsb.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

struct RunConfig {
  uint64_t num_keys = 100000;
  uint64_t buffer_mb = 8;
  int threads = 4;
  uint32_t value_size = 64;
  uint64_t ops_per_thread = 50000;
  // Batched-sweep extras: exact buffer override (cold mode sizes the
  // buffer below 1 MiB granularity) and the hybrid-log engines' read-path
  // mode (two-phase async pipeline vs blocking).
  uint64_t buffer_bytes_override = 0;
  IoMode io_mode = IoMode::kSync;
  size_t io_threads = 4;
};

// Minimal engine seam for this benchmark: the four engines expose slightly
// different native interfaces; each adapter maps the five YCSB op kinds.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual Status Read(Key key, char* buf, uint32_t n) = 0;
  virtual Status Update(Key key, const char* buf, uint32_t n) = 0;
  virtual Status Insert(Key key, const char* buf, uint32_t n) {
    return Update(key, buf, n);
  }
  virtual Status Scan(Key from, uint32_t count, uint32_t value_size) = 0;
  virtual Status Rmw(Key key, uint32_t n) = 0;
};

class FasterEngine : public Engine {
 public:
  FasterEngine(const RunConfig& rc, const TempDir& dir, bool staleness) {
    FasterOptions o;
    o.path = dir.File(staleness ? "mlkv.log" : "faster.log");
    o.index_slots = rc.num_keys;
    o.mem_size = rc.buffer_mb << 20;
    o.track_staleness = staleness;
    o.staleness_bound = UINT32_MAX - 1;  // ASP: clocks maintained, no waits
    if (!store_.Open(o).ok()) std::exit(1);
  }
  Status Read(Key key, char* buf, uint32_t n) override {
    return store_.Read(key, buf, n);
  }
  Status Update(Key key, const char* buf, uint32_t n) override {
    return store_.Upsert(key, buf, n);
  }
  Status Scan(Key from, uint32_t count, uint32_t value_size) override {
    // Emulated: consecutive point reads (dense key space).
    std::vector<char> buf(value_size);
    for (uint32_t i = 0; i < count; ++i) {
      store_.Read(from + i, buf.data(), value_size).ok();  // misses OK
    }
    return Status::OK();
  }
  Status Rmw(Key key, uint32_t n) override {
    return store_.Rmw(key, n, [](char* value, uint32_t size, bool) {
      for (uint32_t i = 0; i < size; ++i) value[i] = static_cast<char>(
          value[i] + 1);
    });
  }
  FasterStore store_;
};

class LsmEngine : public Engine {
 public:
  LsmEngine(const RunConfig& rc, const TempDir& dir) {
    LsmOptions o;
    o.dir = dir.path() + "/lsm";
    o.memtable_bytes = (rc.buffer_mb << 20) / 4;
    o.block_cache_bytes = (rc.buffer_mb << 20) * 3 / 4;
    if (!store_.Open(o).ok()) std::exit(1);
  }
  Status Read(Key key, char* buf, uint32_t n) override {
    std::string v;
    Status s = store_.Get(key, &v);
    if (s.ok()) std::memcpy(buf, v.data(), std::min<size_t>(n, v.size()));
    return s;
  }
  Status Update(Key key, const char* buf, uint32_t n) override {
    return store_.Put(key, buf, n);
  }
  Status Scan(Key from, uint32_t count, uint32_t) override {
    uint32_t seen = 0;
    return store_.Scan(from, from + count - 1,
                       [&seen](Key, const std::string&) { ++seen; });
  }
  Status Rmw(Key key, uint32_t n) override {
    std::string v;
    Status s = store_.Get(key, &v);
    if (!s.ok() && !s.IsNotFound()) return s;
    if (v.size() < n) v.resize(n);
    for (auto& c : v) c = static_cast<char>(c + 1);
    std::lock_guard<std::mutex> lk(rmw_mu_);  // LSM has no native RMW
    return store_.Put(key, v.data(), static_cast<uint32_t>(v.size()));
  }
  LsmStore store_;
  std::mutex rmw_mu_;
};

class BtreeEngine : public Engine {
 public:
  BtreeEngine(const RunConfig& rc, const TempDir& dir) {
    BTreeOptions o;
    o.path = dir.File("btree.db");
    o.buffer_pool_bytes = rc.buffer_mb << 20;
    o.value_size = rc.value_size;
    if (!store_.Open(o).ok()) std::exit(1);
  }
  Status Read(Key key, char* buf, uint32_t) override {
    return store_.Get(key, buf);
  }
  Status Update(Key key, const char* buf, uint32_t) override {
    return store_.Put(key, buf);
  }
  Status Scan(Key from, uint32_t count, uint32_t) override {
    uint32_t seen = 0;
    return store_.Scan(from, from + count - 1,
                       [&seen](Key, const void*) { ++seen; });
  }
  Status Rmw(Key key, uint32_t n) override {
    std::vector<char> buf(store_.value_size());
    Status s = store_.Get(key, buf.data());
    if (!s.ok() && !s.IsNotFound()) return s;
    for (auto& c : buf) c = static_cast<char>(c + 1);
    (void)n;
    return store_.Put(key, buf.data());
  }
  BTreeStore store_;
};

std::unique_ptr<Engine> MakeEngine(const std::string& name,
                                   const RunConfig& rc, const TempDir& dir) {
  if (name == "MLKV") return std::make_unique<FasterEngine>(rc, dir, true);
  if (name == "FASTER") return std::make_unique<FasterEngine>(rc, dir, false);
  if (name == "LSM") return std::make_unique<LsmEngine>(rc, dir);
  return std::make_unique<BtreeEngine>(rc, dir);
}

double RunWorkload(char which, const std::string& engine_name,
                   const RunConfig& rc) {
  TempDir dir;
  auto engine = MakeEngine(engine_name, rc, dir);
  YcsbConfig cfg = YcsbStandardConfig(which, rc.num_keys, rc.value_size);

  // Load phase.
  {
    YcsbWorkload loader(cfg, 0);
    std::vector<char> value(rc.value_size);
    for (Key k = 0; k < rc.num_keys; ++k) {
      loader.FillValue(k, 0, value.data());
      if (!engine->Insert(k, value.data(), rc.value_size).ok()) {
        std::exit(1);
      }
    }
  }

  // Run phase. Scans count one op per range, matching YCSB accounting.
  std::atomic<uint64_t> total_ops{0};
  StopWatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < rc.threads; ++t) {
    threads.emplace_back([&, t] {
      YcsbWorkload w(cfg, t + 1, rc.threads);
      std::vector<char> buf(rc.value_size);
      for (uint64_t i = 0; i < rc.ops_per_thread; ++i) {
        const auto op = w.Next();
        switch (op.type) {
          case YcsbOpType::kRead:
            engine->Read(op.key, buf.data(), rc.value_size).ok();
            break;
          case YcsbOpType::kUpdate:
          case YcsbOpType::kInsert:
            w.FillValue(op.key, i, buf.data());
            engine->Update(op.key, buf.data(), rc.value_size).ok();
            break;
          case YcsbOpType::kScan:
            engine->Scan(op.key, op.scan_length, rc.value_size).ok();
            break;
          case YcsbOpType::kRmw:
            engine->Rmw(op.key, rc.value_size).ok();
            break;
        }
      }
      total_ops.fetch_add(rc.ops_per_thread);
    });
  }
  for (auto& th : threads) th.join();
  return static_cast<double>(total_ops.load()) / watch.ElapsedSeconds();
}

// ---- batch-size sweep over the batched KvBackend seam ----

BackendKind KindFor(const std::string& name) {
  if (name == "MLKV") return BackendKind::kMlkv;
  if (name == "FASTER") return BackendKind::kFaster;
  if (name == "LSM") return BackendKind::kLsm;
  return BackendKind::kBtree;
}

// YCSB-A-style 50/50 read/update zipfian pass issued through MultiGet /
// MultiPut, one call per batch. Returns keys/s — the same accounting across
// batch sizes, so the table isolates the per-call overhead the batch API
// amortizes (virtual dispatch, index re-walks, and — with batch_threads —
// intra-batch parallelism for the I/O-bound engines). With `remote`, the
// engine sits behind an in-process loopback KvServer and every call pays
// the full wire round trip — the one-flag remote mode of the net/
// subsystem, measured against the same in-process baseline.
double RunBatchedWorkload(const std::string& engine_name, const RunConfig& rc,
                          size_t batch_size, size_t batch_threads,
                          uint32_t shard_bits, bool remote,
                          Histogram* get_latency = nullptr) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.path() + "/backend";
  cfg.dim = rc.value_size / sizeof(float);
  cfg.buffer_bytes = rc.buffer_bytes_override != 0 ? rc.buffer_bytes_override
                                                   : rc.buffer_mb << 20;
  cfg.index_slots = rc.num_keys;
  cfg.staleness_bound = UINT32_MAX - 1;  // ASP: clocks maintained, no waits
  cfg.batch_threads = batch_threads;
  cfg.shard_bits = shard_bits;  // MLKV / FASTER scatter-gather fan-out
  cfg.io_mode = rc.io_mode;
  cfg.io_threads = rc.io_threads;
  std::unique_ptr<net::KvServer> server;  // outlives the remote backend
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(KindFor(engine_name), cfg, &backend).ok()) std::exit(1);
  if (remote) {
    net::KvServerOptions so;
    so.num_workers = static_cast<size_t>(rc.threads);
    server = std::make_unique<net::KvServer>(std::move(backend), so);
    if (!server->Start().ok()) std::exit(1);
    BackendConfig rcfg;
    rcfg.remote_addr = server->addr();
    if (!MakeBackend(BackendKind::kRemote, rcfg, &backend).ok()) {
      std::exit(1);
    }
  }
  const uint32_t dim = backend->dim();

  // Load phase: batched puts in large chunks.
  {
    constexpr size_t kChunk = 1024;
    std::vector<Key> keys(kChunk);
    std::vector<float> values(kChunk * dim);
    for (Key base = 0; base < rc.num_keys; base += kChunk) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(kChunk, rc.num_keys - base));
      for (size_t i = 0; i < n; ++i) {
        keys[i] = base + i;
        for (uint32_t d = 0; d < dim; ++d) {
          values[i * dim + d] = static_cast<float>(keys[i] + d);
        }
      }
      if (backend->MultiPut({keys.data(), n}, values.data()).failed > 0) {
        std::exit(1);
      }
    }
  }

  std::atomic<uint64_t> total_keys{0};
  StopWatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < rc.threads; ++t) {
    threads.emplace_back([&, t] {
      ZipfianGenerator zg(rc.num_keys, 0.99, 7000 + t);
      std::vector<Key> keys(batch_size);
      std::vector<float> buf(batch_size * dim);
      uint64_t done = 0;
      for (uint64_t round = 0; done < rc.ops_per_thread; ++round) {
        for (auto& k : keys) k = zg.NextScrambled();
        if (round % 2 == 0) {
          const uint64_t t0 = NowMicros();
          backend->MultiGet(keys, buf.data());
          if (get_latency != nullptr) get_latency->Record(NowMicros() - t0);
        } else {
          backend->MultiPut(keys, buf.data());
        }
        done += batch_size;
      }
      total_keys.fetch_add(done);
    });
  }
  for (auto& th : threads) th.join();
  backend->WaitIdle();
  const double keys_per_sec =
      static_cast<double>(total_keys.load()) / watch.ElapsedSeconds();
  if (server) {
    backend.reset();  // close client sockets before the server stops
    server->Stop();
  }
  return keys_per_sec;
}

// ---- metrics/tracing overhead A/B (docs/OBSERVABILITY.md) ----

// One loopback serving phase: a FASTER backend behind a KvServer, zipfian
// MultiGet-only rounds from rc.threads client threads. `observed` runs the
// full observability pipeline (registry cells + per-request trace spans);
// otherwise tracing is off and SetMetricsEnabled(false) no-ops every
// native record path — the same binary, counters frozen.
double RunMetricsOverheadPhase(const RunConfig& rc, size_t batch,
                               bool observed) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.path() + "/backend";
  cfg.dim = rc.value_size / sizeof(float);
  cfg.buffer_bytes = rc.buffer_mb << 20;
  cfg.index_slots = rc.num_keys;
  cfg.staleness_bound = UINT32_MAX - 1;
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(BackendKind::kFaster, cfg, &backend).ok()) std::exit(1);
  net::KvServerOptions so;
  so.num_workers = static_cast<size_t>(rc.threads);
  so.enable_tracing = observed;
  net::KvServer server(std::move(backend), so);
  if (!server.Start().ok()) std::exit(1);
  BackendConfig rcfg;
  rcfg.remote_addr = server.addr();
  std::unique_ptr<KvBackend> client;
  if (!MakeBackend(BackendKind::kRemote, rcfg, &client).ok()) std::exit(1);
  const uint32_t dim = client->dim();

  {
    constexpr size_t kChunk = 1024;
    std::vector<Key> keys(kChunk);
    std::vector<float> values(kChunk * dim);
    for (Key base = 0; base < rc.num_keys; base += kChunk) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(kChunk, rc.num_keys - base));
      for (size_t i = 0; i < n; ++i) {
        keys[i] = base + i;
        for (uint32_t d = 0; d < dim; ++d) {
          values[i * dim + d] = static_cast<float>(keys[i] + d);
        }
      }
      if (client->MultiPut({keys.data(), n}, values.data()).failed > 0) {
        std::exit(1);
      }
    }
  }

  obs::SetMetricsEnabled(observed);
  std::atomic<uint64_t> total_keys{0};
  StopWatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < rc.threads; ++t) {
    threads.emplace_back([&, t] {
      ZipfianGenerator zg(rc.num_keys, 0.99, 9000 + t);
      std::vector<Key> keys(batch);
      std::vector<float> buf(batch * dim);
      uint64_t done = 0;
      while (done < rc.ops_per_thread) {
        for (auto& k : keys) k = zg.NextScrambled();
        client->MultiGet(keys, buf.data());
        done += batch;
      }
      total_keys.fetch_add(done);
    });
  }
  for (auto& th : threads) th.join();
  const double keys_per_sec =
      static_cast<double>(total_keys.load()) / watch.ElapsedSeconds();
  obs::SetMetricsEnabled(true);
  client.reset();  // close client sockets before the server stops
  server.Stop();
  return keys_per_sec;
}

// ---- cluster scatter-gather (docs/CLUSTER.md) ----

// Loads rc.num_keys through `backend`, then hammers it with MultiGet-only
// rounds from rc.threads client threads. Returns aggregate keys/s — the
// number the cluster sweep compares across one server vs two. Keys are
// drawn uniformly, not zipfian: MLKV promotes hot records into the mutable
// region, so a skewed draw collapses into one box's buffer and measures the
// cache, while the cluster question is aggregate capacity (buffer + IOPS)
// over a working set one box cannot hold.
double RunGetThroughput(KvBackend* backend, const RunConfig& rc,
                        size_t batch_size) {
  const uint32_t dim = backend->dim();
  {
    constexpr size_t kChunk = 1024;
    std::vector<Key> keys(kChunk);
    std::vector<float> values(kChunk * dim);
    for (Key base = 0; base < rc.num_keys; base += kChunk) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(kChunk, rc.num_keys - base));
      for (size_t i = 0; i < n; ++i) {
        keys[i] = base + i;
        for (uint32_t d = 0; d < dim; ++d) {
          values[i * dim + d] = static_cast<float>(keys[i] + d);
        }
      }
      if (backend->MultiPut({keys.data(), n}, values.data()).failed > 0) {
        std::exit(1);
      }
    }
  }
  std::atomic<uint64_t> total_keys{0};
  StopWatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < rc.threads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(9000 + t);
      std::uniform_int_distribution<Key> pick(0, rc.num_keys - 1);
      std::vector<Key> keys(batch_size);
      std::vector<float> buf(batch_size * dim);
      for (uint64_t done = 0; done < rc.ops_per_thread;
           done += batch_size) {
        for (auto& k : keys) k = pick(rng);
        backend->MultiGet(keys, buf.data());
      }
      total_keys.fetch_add(rc.ops_per_thread);
    });
  }
  for (auto& th : threads) th.join();
  return static_cast<double>(total_keys.load()) / watch.ElapsedSeconds();
}

// One self-hosted serving tier: `num_servers` loopback KvServers over the
// same engine (each holding 1/num_servers of the shards) plus the matching
// client — RemoteBackend for one server, ClusterBackend for several (epoch-1
// map installed on every server, so ownership is enforced like production).
struct ServingTier {
  std::vector<std::unique_ptr<net::KvServer>> servers;
  std::unique_ptr<KvBackend> client;

  ~ServingTier() {
    client.reset();  // close sockets before the servers stop
    for (auto& s : servers) s->Stop();
  }
};

std::unique_ptr<ServingTier> MakeServingTier(
    const std::string& engine_name, const RunConfig& rc, const TempDir& dir,
    uint32_t shard_bits, size_t num_servers, size_t workers_per_server) {
  auto tier = std::make_unique<ServingTier>();
  // Per-server capacity stays fixed as the tier grows — the scale-out
  // question is what a second box buys, not what a bigger box would.
  const uint32_t per_server_bits =
      num_servers > 1 && shard_bits > 0 ? shard_bits - 1 : shard_bits;
  for (size_t i = 0; i < num_servers; ++i) {
    BackendConfig cfg;
    cfg.dir = dir.path() + "/node" + std::to_string(i);
    cfg.dim = rc.value_size / sizeof(float);
    cfg.buffer_bytes = rc.buffer_mb << 20;
    cfg.index_slots = rc.num_keys;
    cfg.staleness_bound = UINT32_MAX - 1;
    cfg.shard_bits = per_server_bits;
    cfg.io_mode = rc.io_mode;
    cfg.io_threads = rc.io_threads;
    std::unique_ptr<KvBackend> engine;
    if (!MakeBackend(KindFor(engine_name), cfg, &engine).ok()) std::exit(1);
    net::KvServerOptions so;
    so.num_workers = workers_per_server;
    tier->servers.push_back(
        std::make_unique<net::KvServer>(std::move(engine), so));
    if (!tier->servers.back()->Start().ok()) std::exit(1);
  }
  if (num_servers == 1) {
    BackendConfig rcfg;
    rcfg.remote_addr = tier->servers[0]->addr();
    if (!MakeBackend(BackendKind::kRemote, rcfg, &tier->client).ok()) {
      std::exit(1);
    }
    return tier;
  }
  std::vector<std::string> addrs;
  for (const auto& s : tier->servers) addrs.push_back(s->addr());
  auto map = std::make_shared<cluster::ClusterMap>();
  if (!cluster::BuildClusterMap(addrs, {}, /*route_bits=*/0,
                                cluster::ReadPreference::kPrimary,
                                /*epoch=*/1, map.get())
           .ok()) {
    std::exit(1);
  }
  std::string joined;
  for (size_t i = 0; i < tier->servers.size(); ++i) {
    tier->servers[i]->UpdateClusterMap(map, static_cast<uint32_t>(i));
    joined += (i == 0 ? "" : ",") + addrs[i];
  }
  BackendConfig ccfg;
  ccfg.cluster_addrs = joined;
  if (!MakeBackend(BackendKind::kCluster, ccfg, &tier->client).ok()) {
    std::exit(1);
  }
  return tier;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("ycsb_suite: YCSB A-F across MLKV/FASTER/LSM/BTree\n"
                "  --keys=100000 --ops=50000 --threads=4\n"
                "  --batch_size=N     pin the batch sweep to one size\n"
                "  --batch_threads=2  intra-batch fan-out for I/O engines\n"
                "  --shard_bits=2     MLKV/FASTER shard count (log2) in the\n"
                "                     batch sweep (0 = single store)\n"
                "  --no_batch_sweep   skip the KvBackend batch-size sweep\n"
                "  --no_suite         skip the YCSB A-F table\n"
                "  --remote           run the batch sweep through a loopback\n"
                "                     KvServer (RemoteBackend, full wire\n"
                "                     round trip per batch)\n"
                "  --cold_fraction=F  add a cold-working-set io sweep: the\n"
                "                     buffer shrinks so ~F of the records\n"
                "                     are disk-resident, and MLKV/FASTER\n"
                "                     run io_mode=sync vs async x\n"
                "                     io_threads with per-MultiGet p50/p99\n"
                "  --io_mode=sync|async --io_threads=4  io mode for the\n"
                "                     regular batch sweep\n"
                "  --cluster_addrs=self|a,b,...  cluster MultiGet sweep:\n"
                "                     'self' hosts a 2-server loopback\n"
                "                     cluster and compares it against one\n"
                "                     server of the same size; an endpoint\n"
                "                     list measures a running cluster\n"
                "  --server_workers=2 per-server worker threads in the\n"
                "                     cluster sweep (capacity per box)\n"
                "  --hedge_us=N | --hedge_auto   when measuring a running\n"
                "                     cluster: hedge read sub-batches after\n"
                "                     N us (auto = per-endpoint p99)\n"
                "  --hot_replicate_top_k=K  spread the K hottest keys'\n"
                "                     reads across primary + replicas\n"
                "  --metrics_overhead A/B the observability pipeline over a\n"
                "                     loopback server: registry + tracing on\n"
                "                     vs SetMetricsEnabled(false) + tracing\n"
                "                     off, MultiGet-only at --batch_size\n"
                "                     (default 64)\n");
    return 0;
  }
  RunConfig rc;
  rc.num_keys = flags.Int("keys", 100000, 2000);
  rc.ops_per_thread = flags.Int("ops", 50000, 500);
  rc.threads = static_cast<int>(flags.Int("threads", 4, 2));
  rc.buffer_mb = flags.Int("buffer_mb", 8);
  if (!ParseIoMode(flags.Str("io_mode", "sync"), &rc.io_mode)) {
    std::fprintf(stderr, "bad --io_mode (sync|async)\n");
    return 2;
  }
  rc.io_threads = static_cast<size_t>(flags.Int("io_threads", 4));

  if (!flags.Has("no_suite")) {
    Banner("YCSB core suite A-F, ops/s per engine (extension bench)");
    std::printf("A: 50r/50u zipf  B: 95r/5u zipf  C: 100r zipf\n"
                "D: 95r/5i latest E: 95scan/5i    F: 50r/50rmw\n"
                "(scans on MLKV/FASTER are emulated as consecutive reads)\n\n");
    Table t({"workload", "MLKV", "FASTER", "LSM", "BTree"});
    t.PrintHeader();
    for (char which : {'A', 'B', 'C', 'D', 'E', 'F'}) {
      t.Cell(std::string(1, which));
      for (const char* engine : {"MLKV", "FASTER", "LSM", "BTree"}) {
        t.Cell(Human(RunWorkload(which, engine, rc)));
      }
      t.EndRow();
    }
    std::printf("\nExpected shape: MLKV within ~10-20%% of FASTER everywhere "
                "(vector-clock cost, paper §IV-E); LSM trails on reads (read "
                "amplification); BTree leads scans (E) but trails on "
                "write-heavy mixes (A, F).\n");
  }

  if (!flags.Has("no_batch_sweep")) {
    const bool remote = flags.Has("remote");
    const size_t batch_threads =
        static_cast<size_t>(flags.Int("batch_threads", 2));
    const uint32_t shard_bits =
        static_cast<uint32_t>(flags.Int("shard_bits", 2));
    std::vector<int64_t> batch_sizes;
    if (flags.Has("batch_size")) {
      batch_sizes = {flags.Int("batch_size", 256)};
    } else if (flags.Smoke()) {
      batch_sizes = {1, 64};
    } else {
      batch_sizes = {1, 8, 64, 256, 1024};
    }
    Banner(remote
               ? "Batch-size sweep: keys/s through RemoteBackend (loopback)"
               : "Batch-size sweep: keys/s through the batched KvBackend "
                 "seam");
    std::printf("50r/50u zipfian, one MultiGet/MultiPut per batch; "
                "batch_threads=%zu for the I/O-bound engines, "
                "shard_bits=%u for MLKV/FASTER%s\n\n",
                batch_threads, shard_bits,
                remote ? "; every batch pays a full TCP round trip "
                         "(in-process loopback KvServer)"
                       : "");
    Table bt({"batch", "MLKV", "FASTER", "LSM", "BTree"});
    bt.PrintHeader();
    for (const int64_t batch : batch_sizes) {
      bt.Cell(batch);
      for (const char* engine : {"MLKV", "FASTER", "LSM", "BTree"}) {
        bt.Cell(Human(RunBatchedWorkload(engine, rc,
                                         static_cast<size_t>(batch),
                                         batch_threads, shard_bits, remote)));
      }
      bt.EndRow();
    }
    std::printf("\nExpected shape: throughput rises with batch size as "
                "per-call overhead amortizes and (for the disk engines) "
                "intra-batch fan-out overlaps I/O; batch=1 reproduces the "
                "single-key seam.%s\n",
                remote ? " Remote mode adds a fixed per-batch wire cost, so "
                         "the batch-size win is steeper: at batch=1 the "
                         "round trip dominates, by batch=1024 the gap to "
                         "in-process narrows to the serialization cost."
                       : "");
  }

  if (flags.Has("cold_fraction")) {
    // Cold-working-set io sweep: shrink the buffer so roughly
    // cold_fraction of the records sit below the log head, then compare
    // the blocking read path with the two-phase pending-read pipeline.
    const double f =
        std::min(1.0, std::max(0.1, flags.Double("cold_fraction", 0.9)));
    RunConfig cold = rc;
    const uint64_t dataset_bytes =
        rc.num_keys * (32 + uint64_t{rc.value_size});
    cold.buffer_bytes_override = std::max<uint64_t>(
        static_cast<uint64_t>(static_cast<double>(dataset_bytes) * (1.0 - f)),
        128 * 1024);
    cold.threads = 1;  // isolate the per-batch pipeline, not caller fan-out
    const size_t batch =
        static_cast<size_t>(flags.Int("batch_size", 256, 128));
    Banner("Cold-working-set 50r/50u: io_mode=sync vs async x io_threads");
    std::printf("cold_fraction=%.2f (buffer=%llu KiB), batch=%zu, zipfian; "
                "p50/p99 are per-MultiGet-call latencies\n\n",
                f, (unsigned long long)(cold.buffer_bytes_override >> 10),
                batch);
    Table ct({"engine", "io_mode", "io_thr", "keys/s", "p50_ms", "p99_ms"});
    ct.PrintHeader();
    struct IoConfig {
      IoMode mode;
      size_t threads;
    };
    std::vector<IoConfig> io_configs = {{IoMode::kSync, 0}};
    for (const size_t n : flags.Smoke() ? std::vector<size_t>{4}
                                        : std::vector<size_t>{1, 4, 8}) {
      io_configs.push_back({IoMode::kAsync, n});
    }
    for (const char* engine : {"MLKV", "FASTER"}) {
      for (const IoConfig& io : io_configs) {
        cold.io_mode = io.mode;
        cold.io_threads = io.threads;
        Histogram lat;
        const double kps = RunBatchedWorkload(
            engine, cold, batch,
            /*batch_threads=*/0, /*shard_bits=*/
            static_cast<uint32_t>(flags.Int("shard_bits", 2)),
            /*remote=*/false, &lat);
        ct.Cell(std::string(engine));
        ct.Cell(std::string(IoModeName(io.mode)));
        ct.Cell(io.mode == IoMode::kSync ? std::string("-")
                                         : std::to_string(io.threads));
        ct.Cell(Human(kps));
        ct.Cell(static_cast<double>(lat.Percentile(0.50)) / 1000.0, "%.2f");
        ct.Cell(static_cast<double>(lat.Percentile(0.99)) / 1000.0, "%.2f");
        ct.EndRow();
      }
    }
    std::printf("\nExpected shape: async hides the cold misses a zipfian "
                "tail still takes, so the gap vs sync grows with "
                "cold_fraction; the hot head of the distribution keeps the "
                "gap smaller than the uniform-random fig9 --cold sweep.\n");
  }

  if (flags.Has("metrics_overhead")) {
    const size_t batch = static_cast<size_t>(flags.Int("batch_size", 64));
    Banner("Observability overhead: loopback MultiGet keys/s, metrics + "
           "tracing on vs off (docs/OBSERVABILITY.md)");
    std::printf("zipfian MultiGet-only, batch=%zu, %d client thread(s); "
                "'off' freezes every registry cell and skips trace spans\n\n",
                batch, rc.threads);
    // Two reps each, interleaved, best-of: the comparison should measure
    // the record path, not which phase won the page cache.
    double on = 0, off = 0;
    for (int rep = 0; rep < 2; ++rep) {
      off = std::max(off, RunMetricsOverheadPhase(rc, batch, false));
      on = std::max(on, RunMetricsOverheadPhase(rc, batch, true));
    }
    const double overhead_pct = off > 0 ? (off - on) / off * 100.0 : 0.0;
    Table mt({"observability", "keys/s"});
    mt.PrintHeader();
    mt.Cell(std::string("off (noop cells)"));
    mt.Cell(Human(off));
    mt.EndRow();
    mt.Cell(std::string("on (cells+spans)"));
    mt.Cell(Human(on));
    mt.EndRow();
    std::printf("\nmetrics_overhead: %.2f%% (target < 5%%)\n", overhead_pct);
    std::printf("Expected shape: the hot path adds a handful of relaxed "
                "atomic increments and ~10 span timestamps per request, "
                "lost in the wire round trip at batch>=64.\n");
  }

  if (flags.Has("cluster_addrs")) {
    const std::string addrs = flags.Str("cluster_addrs", "self");
    const size_t batch =
        static_cast<size_t>(flags.Int("batch_size", 256, 64));
    const uint32_t shard_bits =
        static_cast<uint32_t>(flags.Int("shard_bits", 2));
    Banner("Cluster scatter-gather: aggregate MultiGet keys/s "
           "(docs/CLUSTER.md)");
    if (addrs == "self") {
      const size_t workers =
          static_cast<size_t>(flags.Int("server_workers", 2));
      std::printf("uniform MultiGet-only, batch=%zu, %d client thread(s); "
                  "each server gets %zu worker(s) — per-box capacity is "
                  "fixed, the question is what the second box buys\n\n",
                  batch, rc.threads, workers);
      Table ct({"engine", "1 server", "2-server cluster", "speedup"});
      ct.PrintHeader();
      for (const char* engine : {"MLKV", "FASTER"}) {
        double single = 0, dual = 0;
        {
          TempDir dir;
          auto tier = MakeServingTier(engine, rc, dir, shard_bits,
                                      /*num_servers=*/1, workers);
          single = RunGetThroughput(tier->client.get(), rc, batch);
        }
        {
          TempDir dir;
          auto tier = MakeServingTier(engine, rc, dir, shard_bits,
                                      /*num_servers=*/2, workers);
          dual = RunGetThroughput(tier->client.get(), rc, batch);
        }
        ct.Cell(std::string(engine));
        ct.Cell(Human(single));
        ct.Cell(Human(dual));
        ct.Cell(single > 0 ? dual / single : 0.0, "%.2fx");
        ct.EndRow();
      }
      std::printf("\nExpected shape: sub-batches fan out to both primaries "
                  "in parallel over separate sockets, so aggregate MultiGet "
                  "throughput approaches 2x one server once the client "
                  "offers enough load; the gap to ideal is the scatter/"
                  "gather merge on the client.\n");
    } else {
      BackendConfig ccfg;
      ccfg.cluster_addrs = addrs;
      // Client-side tail controls (docs/SERVING.md) only apply when
      // pointed at a running cluster; the self-hosted A/B keeps them off
      // so it measures scale-out, not hedging.
      ccfg.cluster_hedge_us = flags.Has("hedge_us")
                                  ? static_cast<uint64_t>(
                                        flags.Int("hedge_us", 0))
                                  : 0;
      if (flags.Bool("hedge_auto", false)) ccfg.cluster_hedge_us = kHedgeAuto;
      ccfg.cluster_hot_replicate_top_k =
          static_cast<size_t>(flags.Int("hot_replicate_top_k", 0));
      std::unique_ptr<KvBackend> client;
      if (!MakeBackend(BackendKind::kCluster, ccfg, &client).ok()) {
        std::fprintf(stderr, "cannot reach cluster at %s\n", addrs.c_str());
        return 1;
      }
      std::printf("measuring running cluster %s: uniform MultiGet-only, "
                  "batch=%zu, %d client thread(s)\n\n",
                  addrs.c_str(), batch, rc.threads);
      const double kps = RunGetThroughput(client.get(), rc, batch);
      std::printf("aggregate MultiGet: %s keys/s\n", Human(kps).c_str());
    }
  }
  return 0;
}
