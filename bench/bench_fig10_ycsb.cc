// Figure 10: YCSB throughput, MLKV vs FASTER, isolating the storage engine
// from application code (paper §IV-E). 50% reads / 50% writes; three
// sweeps: buffer size, thread count, value size; uniform and zipfian.
//
// Paper result: MLKV overhead <= 10% uniform, <= 20% zipfian (the vector
// clock costs more under skew because hot records contend on the control
// word); zero performance overhead when staleness tracking is disabled.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"
#include "workloads/ycsb.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

struct RunConfig {
  uint64_t num_keys = 200000;
  uint64_t buffer_mb = 8;
  int threads = 4;
  uint32_t value_size = 64;
  YcsbDistribution dist = YcsbDistribution::kUniform;
  bool track_staleness = false;  // MLKV vs FASTER
  uint64_t ops_per_thread = 100000;
};

double RunYcsb(const RunConfig& rc) {
  TempDir dir;
  FasterOptions o;
  o.path = dir.File("ycsb.log");
  o.index_slots = rc.num_keys;
  o.mem_size = rc.buffer_mb << 20;
  o.track_staleness = rc.track_staleness;
  o.staleness_bound = UINT32_MAX - 1;  // ASP: maintain clocks, never wait
  FasterStore store;
  if (!store.Open(o).ok()) std::exit(1);

  // Load phase.
  YcsbConfig cfg;
  cfg.num_keys = rc.num_keys;
  cfg.value_size = rc.value_size;
  cfg.distribution = rc.dist;
  {
    YcsbWorkload loader(cfg, 0);
    std::vector<char> value(rc.value_size);
    for (Key k = 0; k < rc.num_keys; ++k) {
      loader.FillValue(k, 0, value.data());
      if (!store.Upsert(k, value.data(), rc.value_size).ok()) std::exit(1);
    }
  }

  // Run phase.
  std::atomic<uint64_t> total_ops{0};
  StopWatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < rc.threads; ++t) {
    threads.emplace_back([&, t] {
      YcsbWorkload w(cfg, t + 1);
      std::vector<char> buf(rc.value_size);
      uint64_t done = 0;
      for (uint64_t i = 0; i < rc.ops_per_thread; ++i) {
        const auto op = w.Next();
        if (op.is_read()) {
          store.Read(op.key, buf.data(), rc.value_size).ok();
        } else {
          w.FillValue(op.key, i, buf.data());
          store.Upsert(op.key, buf.data(), rc.value_size).ok();
        }
        ++done;
      }
      total_ops.fetch_add(done);
    });
  }
  for (auto& th : threads) th.join();
  return static_cast<double>(total_ops.load()) / watch.ElapsedSeconds();
}

const char* DistName(YcsbDistribution d) {
  return d == YcsbDistribution::kUniform ? "uniform" : "zipfian";
}

void SweepRow(Table* t, const char* sweep, const std::string& x,
              const RunConfig& base) {
  for (YcsbDistribution dist :
       {YcsbDistribution::kUniform, YcsbDistribution::kZipfian}) {
    RunConfig rc = base;
    rc.dist = dist;
    rc.track_staleness = true;
    const double mlkv = RunYcsb(rc);
    rc.track_staleness = false;
    const double faster = RunYcsb(rc);
    t->Cell(std::string(sweep));
    t->Cell(x);
    t->Cell(std::string(DistName(dist)));
    t->Cell(Human(mlkv));
    t->Cell(Human(faster));
    t->Cell(faster > 0 ? 100.0 * (1.0 - mlkv / faster) : 0.0, "%.1f%%");
    t->EndRow();
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf("fig10: YCSB 50/50, MLKV vs FASTER\n"
                "  --keys=200000 --ops=100000\n");
    return 0;
  }
  RunConfig base;
  base.num_keys = flags.Int("keys", 200000, 4000);
  base.ops_per_thread = flags.Int("ops", 100000, 1000);

  Banner("Fig 10: YCSB 50% read / 50% write — MLKV vs FASTER (ops/s)");
  Table t({"sweep", "x", "dist", "MLKV", "FASTER", "overhead"});
  t.PrintHeader();

  for (uint64_t mb : {2ull, 4ull, 8ull, 16ull}) {
    RunConfig rc = base;
    rc.buffer_mb = mb;
    SweepRow(&t, "buffer_mb", std::to_string(mb), rc);
  }
  for (int threads : {2, 4, 8, 16}) {
    RunConfig rc = base;
    rc.threads = threads;
    SweepRow(&t, "threads", std::to_string(threads), rc);
  }
  for (uint32_t vs : {16u, 32u, 64u, 128u, 256u}) {
    RunConfig rc = base;
    rc.value_size = vs;
    SweepRow(&t, "value_size", std::to_string(vs), rc);
  }

  std::printf("\nExpected shape (paper): overhead <= ~10%% uniform, <= ~20%% "
              "zipfian; throughput scales with buffer and threads and falls "
              "with value size.\n");
  return 0;
}
