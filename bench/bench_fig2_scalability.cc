// Figure 2: the scalability problem statement. Trains a DLRM (FFNN) on a
// synthetic Criteo stream over a larger-than-memory MLKV store twice:
//
//   Sync        staleness bound 0 (BSP): data stalls dominate, low
//               throughput, best model quality.
//   Fully Async unbounded staleness (ASP): stalls hidden, high throughput,
//               degraded AUC.
//
// Prints the paper's three panels: latency breakdown (Emb Access /
// NN Forward / NN Backward %), throughput (samples/s), and final AUC.
#include <memory>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "train/ctr_trainer.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

struct ModeResult {
  TrainResult train;
  const char* label;
};

ModeResult RunMode(const Flags& flags, const char* label, uint32_t bound,
                   int workers) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = 8;
  cfg.buffer_bytes = static_cast<uint64_t>(flags.Int("buffer_mb", 4)) << 20;
  cfg.staleness_bound = bound;
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &backend).ok()) {
    std::fprintf(stderr, "backend open failed\n");
    std::exit(1);
  }

  CtrTrainerOptions o;
  o.data.num_fields = 8;
  // Larger-than-memory with weak skew so the cold tail actually hits disk
  // (the regime Fig. 2 demonstrates).
  o.data.field_cardinality = flags.Int("cardinality", 200000, 2000);
  o.data.zipf_theta = flags.Double("theta", 0.6);
  o.dim = 16;
  o.batch_size = 128;
  o.num_workers = workers;
  o.train_batches = flags.Int("batches", 120, 5);
  o.eval_every = o.train_batches / 2;
  o.eval_samples = flags.Int("eval_samples", 2000, 200);
  o.embedding_lr = 0.3f;
  o.compute_micros_per_batch = flags.Int("compute_us", 500, 50);
  o.preload_keys = static_cast<uint64_t>(o.data.num_fields) *
                   o.data.field_cardinality;
  CtrTrainer trainer(backend.get(), o);
  return {trainer.Train(), label};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf(
        "fig2: sync vs fully-async DLRM training on out-of-core MLKV\n"
        "  --buffer_mb=4 --cardinality=200000 --batches=120 "
        "--compute_us=500 --eval_samples=2000 --smoke\n");
    return 0;
  }

  Banner("Figure 2: scalability issues in embedding model training");
  std::printf("(DLRM/FFNN on synthetic Criteo; MLKV store, %lld MiB buffer; "
              "larger-than-memory)\n",
              static_cast<long long>(flags.Int("buffer_mb", 4)));

  const ModeResult sync = RunMode(flags, "Sync", 0, 1);
  const ModeResult async =
      RunMode(flags, "FullyAsync", UINT32_MAX - 1, 4);

  Table t({"mode", "emb_access%", "nn_fwd%", "nn_bwd%", "samples/s", "AUC"});
  t.PrintHeader();
  for (const ModeResult* m : {&sync, &async}) {
    const TrainResult& r = m->train;
    const double total =
        r.embedding_seconds + r.forward_seconds + r.backward_seconds;
    t.Cell(std::string(m->label));
    t.Cell(100.0 * r.embedding_seconds / total, "%.1f");
    t.Cell(100.0 * r.forward_seconds / total, "%.1f");
    t.Cell(100.0 * r.backward_seconds / total, "%.1f");
    t.Cell(Human(r.throughput()));
    t.Cell(r.final_metric, "%.4f");
    t.EndRow();
  }
  std::printf(
      "\nExpected shape (paper): sync spends most latency in Emb Access and "
      "has far lower\nthroughput; fully-async recovers throughput but gives "
      "up AUC.\n");
  return 0;
}
