// Figure 2: the scalability problem statement. Trains a DLRM (FFNN) on a
// synthetic Criteo stream over a larger-than-memory MLKV store twice:
//
//   Sync        staleness bound 0 (BSP): data stalls dominate, low
//               throughput, best model quality.
//   Fully Async unbounded staleness (ASP): stalls hidden, high throughput,
//               degraded AUC.
//
// Prints the paper's three panels: latency breakdown (Emb Access /
// NN Forward / NN Backward %), throughput (samples/s), and final AUC.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "train/batch_io.h"
#include "train/ctr_trainer.h"

using namespace mlkv;
using namespace mlkv::bench;

namespace {

struct ModeResult {
  TrainResult train;
  const char* label;
};

ModeResult RunMode(const Flags& flags, const char* label, uint32_t bound,
                   int workers) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = 8;
  cfg.buffer_bytes = static_cast<uint64_t>(flags.Int("buffer_mb", 4)) << 20;
  cfg.staleness_bound = bound;
  cfg.shard_bits = static_cast<uint32_t>(flags.Int("shard_bits", 2));
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &backend).ok()) {
    std::fprintf(stderr, "backend open failed\n");
    std::exit(1);
  }

  CtrTrainerOptions o;
  o.data.num_fields = 8;
  // Larger-than-memory with weak skew so the cold tail actually hits disk
  // (the regime Fig. 2 demonstrates).
  o.data.field_cardinality = flags.Int("cardinality", 200000, 2000);
  o.data.zipf_theta = flags.Double("theta", 0.6);
  o.dim = 16;
  o.batch_size = 128;
  o.num_workers = workers;
  o.train_batches = flags.Int("batches", 120, 5);
  o.eval_every = o.train_batches / 2;
  o.eval_samples = flags.Int("eval_samples", 2000, 200);
  o.embedding_lr = 0.3f;
  o.compute_micros_per_batch = flags.Int("compute_us", 500, 50);
  o.preload_keys = static_cast<uint64_t>(o.data.num_fields) *
                   o.data.field_cardinality;
  CtrTrainer trainer(backend.get(), o);
  return {trainer.Train(), label};
}

// ---- Sharded-store scaling sweep (tentpole: scatter/gather batching) ----
//
// Raw aggregate MultiGet/MultiPut throughput of the MLKV backend over a
// larger-than-memory table, swept over shard_bits x caller threads. This is
// the regime where a single FasterStore serializes: cold reads pay the
// simulated NVMe latency one at a time per caller, and every log page roll
// flushes (and charges write bandwidth) while holding the store's single
// allocation lock. Shards overlap both — per-shard sub-batches run
// concurrently on the lookahead pool, and a flush in one shard's log never
// blocks appends to another.

struct SweepPoint {
  uint32_t shard_bits = 0;
  int threads = 0;
  double get_rate = 0, put_rate = 0, aggregate = 0;
};

SweepPoint RunSweepPoint(const Flags& flags, uint32_t shard_bits,
                         int threads) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = 16;
  cfg.buffer_bytes =
      static_cast<uint64_t>(flags.Int("sweep_buffer_mb", 4, 1)) << 20;
  cfg.staleness_bound = UINT32_MAX - 1;  // ASP: clocks maintained, no waits
  cfg.shard_bits = shard_bits;
  // Scatter executor: sized so every shard sub-batch of every concurrent
  // caller can be in flight (the single-store baseline runs inline and
  // leaves the pool idle, so extra workers do not flatter it).
  cfg.lookahead_threads = static_cast<size_t>(flags.Int("sweep_pool", 8));
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &backend).ok()) {
    std::fprintf(stderr, "backend open failed\n");
    std::exit(1);
  }
  const uint32_t dim = backend->dim();
  const uint64_t num_keys = flags.Int("sweep_keys", 200000, 20000);
  const size_t batch = static_cast<size_t>(flags.Int("sweep_batch", 512));
  const int rounds = static_cast<int>(flags.Int("sweep_rounds", 40, 8));
  PreloadKeys(backend.get(), num_keys);

  SweepPoint p;
  p.shard_bits = shard_bits;
  p.threads = threads;
  double elapsed_total = 0;
  uint64_t keys_total = 0;

  // Phase A (MultiGet), then phase B (MultiPut); each thread draws uniform
  // keys so the cold tail hits disk throughout.
  for (const bool puts : {false, true}) {
    std::atomic<uint64_t> keys_done{0};
    StopWatch watch;
    std::vector<std::thread> callers;
    for (int t = 0; t < threads; ++t) {
      callers.emplace_back([&, t] {
        Rng rng(1000 + 17 * t + (puts ? 1 : 0));
        std::vector<Key> keys(batch);
        std::vector<float> buf(batch * dim, 1.0f);
        for (int round = 0; round < rounds; ++round) {
          for (auto& k : keys) k = rng.Next() % num_keys;
          if (puts) {
            backend->MultiPut(keys, buf.data());
          } else {
            backend->MultiGet(keys, buf.data());
          }
        }
        keys_done.fetch_add(static_cast<uint64_t>(rounds) * batch);
      });
    }
    for (auto& th : callers) th.join();
    backend->WaitIdle();
    const double elapsed = watch.ElapsedSeconds();
    const double rate = static_cast<double>(keys_done.load()) / elapsed;
    if (puts) p.put_rate = rate;
    else p.get_rate = rate;
    elapsed_total += elapsed;
    keys_total += keys_done.load();
  }
  p.aggregate = static_cast<double>(keys_total) / elapsed_total;
  return p;
}

void RunShardSweep(const Flags& flags) {
  Banner("Sharded store: aggregate MultiGet/MultiPut throughput (MLKV)");
  std::printf(
      "(uniform keys over a larger-than-memory table; keys/s aggregated "
      "across callers)\n");
  std::vector<uint32_t> bits_sweep;
  if (flags.Has("sweep_shard_bits")) {
    bits_sweep = {static_cast<uint32_t>(flags.Int("sweep_shard_bits", 2))};
  } else if (flags.Smoke()) {
    bits_sweep = {0, 2};
  } else {
    bits_sweep = {0, 1, 2, 3};
  }
  std::vector<int> thread_sweep =
      flags.Smoke() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};

  Table t({"shard_bits", "threads", "get k/s", "put k/s", "aggregate"});
  t.PrintHeader();
  std::vector<SweepPoint> points;
  for (const uint32_t bits : bits_sweep) {
    for (const int threads : thread_sweep) {
      const SweepPoint p = RunSweepPoint(flags, bits, threads);
      points.push_back(p);
      t.Cell(static_cast<int>(bits));
      t.Cell(p.threads);
      t.Cell(Human(p.get_rate));
      t.Cell(Human(p.put_rate));
      t.Cell(Human(p.aggregate));
      t.EndRow();
    }
  }
  // Headline ratio: sharded vs single-store at the highest thread count.
  const int top_threads = thread_sweep.back();
  const SweepPoint* base = nullptr;
  const SweepPoint* sharded = nullptr;
  for (const SweepPoint& p : points) {
    if (p.threads != top_threads) continue;
    if (p.shard_bits == 0) base = &p;
    if (p.shard_bits == 2) sharded = &p;
  }
  if (base != nullptr && sharded != nullptr && base->aggregate > 0) {
    std::printf("\nshard_bits=2 vs 0 at %d threads: %.2fx aggregate\n",
                top_threads, sharded->aggregate / base->aggregate);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  // Simulated NVMe (DESIGN.md substitutions): files land in the OS page
  // cache here, so out-of-core costs must be charged explicitly.
  FileDevice::SetGlobalSimulatedCosts(
      flags.Int("nvme_read_us", 30), flags.Double("nvme_read_gbps", 1.0),
      flags.Double("nvme_write_gbps", 1.0));
  if (flags.Has("help")) {
    std::printf(
        "fig2: sync vs fully-async DLRM training on out-of-core MLKV\n"
        "  --buffer_mb=4 --cardinality=200000 --batches=120 "
        "--compute_us=500 --eval_samples=2000 --shard_bits=2 --smoke\n"
        "shard sweep (aggregate MultiGet/MultiPut vs shard_bits x threads):\n"
        "  --no_shard_sweep --sweep_shard_bits=N --sweep_keys=200000 "
        "--sweep_batch=512\n"
        "  --sweep_rounds=40 --sweep_buffer_mb=4 --sweep_pool=8\n");
    return 0;
  }

  Banner("Figure 2: scalability issues in embedding model training");
  std::printf("(DLRM/FFNN on synthetic Criteo; MLKV store, %lld MiB buffer; "
              "larger-than-memory)\n",
              static_cast<long long>(flags.Int("buffer_mb", 4)));

  const ModeResult sync = RunMode(flags, "Sync", 0, 1);
  const ModeResult async =
      RunMode(flags, "FullyAsync", UINT32_MAX - 1, 4);

  Table t({"mode", "emb_access%", "nn_fwd%", "nn_bwd%", "samples/s", "AUC"});
  t.PrintHeader();
  for (const ModeResult* m : {&sync, &async}) {
    const TrainResult& r = m->train;
    const double total =
        r.embedding_seconds + r.forward_seconds + r.backward_seconds;
    t.Cell(std::string(m->label));
    t.Cell(100.0 * r.embedding_seconds / total, "%.1f");
    t.Cell(100.0 * r.forward_seconds / total, "%.1f");
    t.Cell(100.0 * r.backward_seconds / total, "%.1f");
    t.Cell(Human(r.throughput()));
    t.Cell(r.final_metric, "%.4f");
    t.EndRow();
  }
  std::printf(
      "\nExpected shape (paper): sync spends most latency in Emb Access and "
      "has far lower\nthroughput; fully-async recovers throughput but gives "
      "up AUC.\n");

  if (!flags.Has("no_shard_sweep")) {
    RunShardSweep(flags);
  }
  return 0;
}
