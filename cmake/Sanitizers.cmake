# Global sanitizer toggles. Applied to all targets (compile + link) so the
# whole dependency chain, including GoogleTest, is instrumented consistently.

set(_mlkv_san_flags "")

if(MLKV_ENABLE_ASAN)
  list(APPEND _mlkv_san_flags -fsanitize=address)
endif()

if(MLKV_ENABLE_UBSAN)
  list(APPEND _mlkv_san_flags -fsanitize=undefined)
endif()

if(MLKV_ENABLE_TSAN)
  if(MLKV_ENABLE_ASAN)
    message(FATAL_ERROR "TSan cannot be combined with ASan")
  endif()
  list(APPEND _mlkv_san_flags -fsanitize=thread)
endif()

if(_mlkv_san_flags)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "Sanitizers require GCC or Clang")
  endif()
  list(APPEND _mlkv_san_flags -fno-omit-frame-pointer -g)
  add_compile_options(${_mlkv_san_flags})
  add_link_options(${_mlkv_san_flags})
endif()
