# Provides GTest::gtest and GTest::gtest_main, preferring offline sources:
#   1. an installed GoogleTest (system package or prior install)
#   2. the Debian/Ubuntu source drop at /usr/src/googletest
#   3. FetchContent from GitHub (needs network; last resort)
#
# All three paths yield the same imported/alias target names, so consumers
# just link GTest::gtest_main.

if(TARGET GTest::gtest_main)
  return()
endif()

find_package(GTest QUIET)
if(GTest_FOUND AND TARGET GTest::gtest_main)
  message(STATUS "mlkv: using installed GoogleTest")
  return()
endif()

set(_mlkv_gtest_src "/usr/src/googletest")
if(EXISTS "${_mlkv_gtest_src}/CMakeLists.txt")
  message(STATUS "mlkv: building GoogleTest from ${_mlkv_gtest_src}")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  add_subdirectory("${_mlkv_gtest_src}" "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
  return()
endif()

message(STATUS "mlkv: fetching GoogleTest via FetchContent")
include(FetchContent)
FetchContent_Declare(
  googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
  DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
