# Defines mlkv::warnings, an interface target carrying the project's
# warning flags. Linked by every first-party target; kept out of
# mlkv_core's PUBLIC surface so downstream embedders are unaffected.

add_library(mlkv_warnings INTERFACE)
add_library(mlkv::warnings ALIAS mlkv_warnings)

if(MLKV_ENABLE_WARNINGS)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(mlkv_warnings INTERFACE
      -Wall
      -Wextra
      -Wno-unused-parameter)
    if(MLKV_WARNINGS_AS_ERRORS)
      target_compile_options(mlkv_warnings INTERFACE -Werror)
    endif()
  elseif(MSVC)
    target_compile_options(mlkv_warnings INTERFACE /W4)
    if(MLKV_WARNINGS_AS_ERRORS)
      target_compile_options(mlkv_warnings INTERFACE /WX)
    endif()
  endif()
endif()
