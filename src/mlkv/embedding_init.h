// The shared embedding bootstrap: scaled-uniform values derived from the
// key alone, so every engine — and every thread racing on the same key —
// produces the identical vector and convergence comparisons start from the
// same model. EmbeddingTable::GetOrInit, the baseline backend adapters,
// and the conformance tests all share this one derivation.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/hash.h"
#include "common/random.h"
#include "kv/record.h"

namespace mlkv {

inline void InitEmbedding(Key key, uint32_t dim, float* out) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
  Rng rng(Hash64(key ^ 0xE5B0C47Aull));
  for (uint32_t d = 0; d < dim; ++d) {
    out[d] = static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale;
  }
}

}  // namespace mlkv
