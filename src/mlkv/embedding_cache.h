// EmbeddingCache: a sharded LRU cache of key -> embedding vector, playing
// the role of the "application cache" in the paper's Fig. 5(b). Conventional
// prefetching (and Lookahead with an application-cache destination) fills
// this cache; trainers consult it before going to the store.
//
// Admission control (CacheAdmission::kTinyLfu, see docs/SERVING.md): each
// shard owns a TinyLfu sketch, updated on Get under the shard mutex. On
// eviction pressure a new key is inserted only if its sketch frequency
// strictly beats the LRU victim's — zipfian one-hit-wonders bounce off the
// doorkeeper instead of washing out the hot working set. Admission applies
// to every fill (including Warm/prefetch Puts into a full cache): an
// unproven key never displaces a proven one.
//
// Eviction reuses the victim's storage: the map node is extracted and
// re-keyed and the victim's row vector and LRU list node are recycled, so a
// full cache runs with zero per-insert allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "kv/record.h"
#include "serve/tinylfu.h"

namespace mlkv {

class EmbeddingCache {
 public:
  // `capacity` is the max number of cached vectors; `dim` their length.
  // `shards` rounds up via ShardMask so routing is the shared mask-based
  // ShardOf (common/hash.h) instead of a hash-mod.
  EmbeddingCache(size_t capacity, uint32_t dim, size_t shards = 16,
                 CacheAdmission admission = CacheAdmission::kLru)
      : dim_(dim), shard_mask_(ShardMask(shards)), admission_(admission) {
    per_shard_capacity_ = capacity / (shard_mask_ + 1);
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    shard_data_ = std::vector<Shard>(shard_mask_ + 1);
    if (admission_ == CacheAdmission::kTinyLfu) {
      for (auto& s : shard_data_) {
        // Counters sized to the slots the sketch guards; the window (10x
        // capacity, Caffeine's default shape) bounds how long a dead hot
        // key can hold its seat before aging decays it.
        s.sketch = std::make_unique<TinyLfu>(
            per_shard_capacity_ * 4,
            std::max<uint64_t>(512, per_shard_capacity_ * 10));
      }
    }
  }

  uint32_t dim() const { return dim_; }
  CacheAdmission admission() const { return admission_; }

  bool Get(Key key, float* out) {
    const uint64_t h = Hash64(key);
    Shard& s = shard_data_[ShardOf(h, shard_mask_)];
    std::lock_guard<std::mutex> lk(s.mu);
    // Every lookup (hit or miss) feeds the frequency sketch — misses are
    // exactly the accesses a later admission decision needs to know about.
    if (s.sketch) s.sketch->RecordAccess(h);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return false;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
    std::copy(it->second.value.begin(), it->second.value.end(), out);
    ++s.hits;
    return true;
  }

  void Put(Key key, const float* value) {
    const uint64_t h = Hash64(key);
    Shard& s = shard_data_[ShardOf(h, shard_mask_)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      std::copy(value, value + dim_, it->second.value.begin());
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
      return;
    }
    if (s.map.size() >= per_shard_capacity_) {
      const Key victim = s.lru.back();
      if (s.sketch && !s.sketch->Admit(h, Hash64(victim))) {
        ++s.admission_rejects;
        return;
      }
      // Evict the victim, recycling its map node (extract + re-key keeps
      // the row vector's heap block) and its LRU list node.
      auto node = s.map.extract(victim);
      node.key() = key;
      std::copy(value, value + dim_, node.mapped().value.begin());
      s.lru.back() = key;
      s.lru.splice(s.lru.begin(), s.lru, std::prev(s.lru.end()));
      node.mapped().lru_it = s.lru.begin();
      s.map.insert(std::move(node));
      ++s.evictions;
      return;
    }
    s.lru.push_front(key);
    Entry e;
    e.value.assign(value, value + dim_);
    e.lru_it = s.lru.begin();
    s.map.emplace(key, std::move(e));
  }

  void Erase(Key key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return;
    s.lru.erase(it->second.lru_it);
    s.map.erase(it);
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& s : shard_data_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

  struct CacheStats {
    uint64_t hits = 0, misses = 0, evictions = 0;
    // TinyLFU admission outcomes (zero under kLru): inserts refused
    // because the candidate's frequency lost to the victim's, and sketch
    // aging resets (counter halving + doorkeeper clear).
    uint64_t admission_rejects = 0;
    uint64_t admission_agings = 0;
  };

  // Per-shard visibility for labeled metrics families (no obs dependency
  // here — callers own the emission).
  size_t num_cache_shards() const { return shard_data_.size(); }
  CacheStats shard_stats(size_t i) const {
    const Shard& s = shard_data_[i];
    std::lock_guard<std::mutex> lk(s.mu);
    CacheStats c;
    c.hits = s.hits;
    c.misses = s.misses;
    c.evictions = s.evictions;
    c.admission_rejects = s.admission_rejects;
    if (s.sketch) c.admission_agings = s.sketch->agings();
    return c;
  }

  CacheStats stats() const {
    CacheStats c;
    for (size_t i = 0; i < shard_data_.size(); ++i) {
      const CacheStats cs = shard_stats(i);
      c.hits += cs.hits;
      c.misses += cs.misses;
      c.evictions += cs.evictions;
      c.admission_rejects += cs.admission_rejects;
      c.admission_agings += cs.admission_agings;
    }
    return c;
  }

  // Zeroes the hit/miss/eviction/admission counters (owners expose these
  // as the single source of truth — see EmbeddingServer::ResetStats).
  // Cached rows and sketch frequencies are untouched.
  void ResetStats() {
    for (auto& s : shard_data_) {
      std::lock_guard<std::mutex> lk(s.mu);
      s.hits = s.misses = s.evictions = s.admission_rejects = 0;
    }
  }

 private:
  struct Entry {
    std::vector<float> value;
    std::list<Key>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry> map;
    std::list<Key> lru;
    std::unique_ptr<TinyLfu> sketch;  // set iff admission == kTinyLfu
    uint64_t hits = 0, misses = 0, evictions = 0, admission_rejects = 0;
  };

  Shard& ShardFor(Key key) {
    return shard_data_[ShardOf(Hash64(key), shard_mask_)];
  }

  uint32_t dim_;
  uint64_t shard_mask_;
  CacheAdmission admission_;
  size_t per_shard_capacity_;
  std::vector<Shard> shard_data_;
};

}  // namespace mlkv
