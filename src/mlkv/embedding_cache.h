// EmbeddingCache: a sharded LRU cache of key -> embedding vector, playing
// the role of the "application cache" in the paper's Fig. 5(b). Conventional
// prefetching (and Lookahead with an application-cache destination) fills
// this cache; trainers consult it before going to the store.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "kv/record.h"

namespace mlkv {

class EmbeddingCache {
 public:
  // `capacity` is the max number of cached vectors; `dim` their length.
  // `shards` rounds up via ShardMask so routing is the shared mask-based
  // ShardOf (common/hash.h) instead of a hash-mod.
  EmbeddingCache(size_t capacity, uint32_t dim, size_t shards = 16)
      : dim_(dim), shard_mask_(ShardMask(shards)) {
    per_shard_capacity_ = capacity / (shard_mask_ + 1);
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    shard_data_ = std::vector<Shard>(shard_mask_ + 1);
  }

  uint32_t dim() const { return dim_; }

  bool Get(Key key, float* out) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return false;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
    std::copy(it->second.value.begin(), it->second.value.end(), out);
    ++s.hits;
    return true;
  }

  void Put(Key key, const float* value) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      it->second.value.assign(value, value + dim_);
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
      return;
    }
    if (s.map.size() >= per_shard_capacity_) {
      const Key victim = s.lru.back();
      s.lru.pop_back();
      s.map.erase(victim);
      ++s.evictions;
    }
    s.lru.push_front(key);
    Entry e;
    e.value.assign(value, value + dim_);
    e.lru_it = s.lru.begin();
    s.map.emplace(key, std::move(e));
  }

  void Erase(Key key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return;
    s.lru.erase(it->second.lru_it);
    s.map.erase(it);
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& s : shard_data_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

  struct CacheStats {
    uint64_t hits = 0, misses = 0, evictions = 0;
  };

  // Per-shard visibility for labeled metrics families (no obs dependency
  // here — callers own the emission).
  size_t num_cache_shards() const { return shard_data_.size(); }
  CacheStats shard_stats(size_t i) const {
    const Shard& s = shard_data_[i];
    std::lock_guard<std::mutex> lk(s.mu);
    CacheStats c;
    c.hits = s.hits;
    c.misses = s.misses;
    c.evictions = s.evictions;
    return c;
  }

  CacheStats stats() const {
    CacheStats c;
    for (const auto& s : shard_data_) {
      std::lock_guard<std::mutex> lk(s.mu);
      c.hits += s.hits;
      c.misses += s.misses;
      c.evictions += s.evictions;
    }
    return c;
  }

 private:
  struct Entry {
    std::vector<float> value;
    std::list<Key>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry> map;
    std::list<Key> lru;
    uint64_t hits = 0, misses = 0, evictions = 0;
  };

  Shard& ShardFor(Key key) {
    return shard_data_[ShardOf(Hash64(key), shard_mask_)];
  }

  uint32_t dim_;
  uint64_t shard_mask_;
  size_t per_shard_capacity_;
  std::vector<Shard> shard_data_;
};

}  // namespace mlkv
