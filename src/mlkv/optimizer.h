// Fused embedding optimizers (the `emb_optimizer` of the paper's Fig. 3,
// line 18, executed inside the store).
//
// Sparse optimizers keep per-embedding state (momentum / second-moment
// accumulators) that must live and die with the embedding row. MLKV fuses
// that state into the record value itself:
//
//   value = [ dim floats: embedding | state floats: optimizer slots ]
//
// and applies updates through Rmw, so a gradient application is one atomic
// per-record read-modify-write even under fully asynchronous training —
// the same trick HugeCTR/Persia-style frameworks implement privately, here
// democratized behind the EmbeddingTable interface. Plain SGD carries no
// state and keeps the value layout of a bare embedding.
#pragma once

#include <cstdint>
#include <string>

namespace mlkv {

enum class OptimizerKind : uint32_t {
  kSgd = 0,       // w -= lr * g                              (no state)
  kMomentum = 1,  // u = m*u + g; w -= lr * u                 (dim floats)
  kAdagrad = 2,   // a += g^2; w -= lr * g / (sqrt(a)+eps)    (dim floats)
  kAdam = 3,      // bias-corrected Adam                      (2*dim+1 floats)
};

const char* OptimizerKindName(OptimizerKind kind);

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kSgd;
  float lr = 0.05f;
  float momentum = 0.9f;      // kMomentum
  float beta1 = 0.9f;         // kAdam
  float beta2 = 0.999f;       // kAdam
  float eps = 1e-8f;          // kAdagrad / kAdam
  float weight_decay = 0.0f;  // L2 added to the gradient, all kinds
};

// Number of state floats stored after the embedding for `kind`.
uint32_t OptimizerStateFloats(OptimizerKind kind, uint32_t dim);

// Total record value bytes for an embedding of `dim` floats under `kind`.
inline uint32_t OptimizerValueBytes(OptimizerKind kind, uint32_t dim) {
  return (dim + OptimizerStateFloats(kind, dim)) *
         static_cast<uint32_t>(sizeof(float));
}

// Applies one optimizer step in place. `emb` holds `dim` floats, `state`
// holds OptimizerStateFloats(kind, dim) floats (all-zero on first touch,
// which is the correct initial state for every kind), `grad` holds `dim`
// floats. Called from inside a store Rmw, so it must stay allocation-free.
void ApplyOptimizerUpdate(const OptimizerConfig& config, uint32_t dim,
                          float* emb, float* state, const float* grad);

}  // namespace mlkv
