// EmbeddingTable: the embedding-model face of MLKV. Maps 64-bit sparse
// feature ids to `dim`-float vectors stored in a bounded-staleness
// FasterStore, and exposes the four paper interfaces — Get, Put, Rmw-style
// gradient application, and the non-blocking Lookahead (§III-A).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/batch_result.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "kv/sharded_store.h"
#include "mlkv/embedding_cache.h"
#include "mlkv/optimizer.h"

namespace mlkv {

class EmbeddingTable {
 public:
  // Destination of a Lookahead (paper Fig. 5(b)): the store's own mutable
  // memory buffer, or an application-side cache.
  enum class LookaheadDest { kStorageBuffer, kApplicationCache };

  EmbeddingTable(std::string model_id, uint32_t dim, uint32_t staleness_bound,
                 std::unique_ptr<ShardedStore> store,
                 ThreadPool* lookahead_pool, OptimizerConfig optimizer = {})
      : model_id_(std::move(model_id)),
        dim_(dim),
        staleness_bound_(staleness_bound),
        optimizer_(optimizer),
        store_(std::move(store)),
        lookahead_pool_(lookahead_pool) {}

  const std::string& model_id() const { return model_id_; }
  uint32_t dim() const { return dim_; }
  uint32_t staleness_bound() const { return staleness_bound_; }
  const OptimizerConfig& optimizer() const { return optimizer_; }
  // Bytes of the embedding vector itself (what Get/Put exchange).
  uint32_t value_bytes() const { return dim_ * sizeof(float); }
  // Bytes of the stored record value: embedding plus fused optimizer state.
  uint32_t record_bytes() const {
    return OptimizerValueBytes(optimizer_.kind, dim_);
  }

  // Each span API takes an optional BatchResult sink. Without one the call
  // fails fast on the first per-key error (the original contract; with a
  // sharded store each shard's sub-batch stops at its first error and the
  // earliest failure in caller order is returned). With one, the call
  // serves every key it can, records a per-key Status code plus
  // found/missing/busy counts, and returns the first hard error (OK when
  // every problem was a NotFound or Busy) — the batch-first contract the
  // KvBackend seam builds on.
  //
  // Every span call is scattered into per-shard sub-batches executed in
  // parallel on the lookahead pool (ShardedStore::MultiExecute); per-key
  // results land at the caller's indices regardless of shard routing.

  // Fetches embeddings for `keys`; `out` must hold keys.size()*dim floats.
  // Missing keys are NotFound.
  Status Get(std::span<const Key> keys, float* out,
             BatchResult* result = nullptr);

  // Fetches embeddings, initializing missing keys with scaled-uniform
  // random values (the standard embedding-table bootstrap). Thread-safe.
  // Initialized keys record code kOk but count as missing.
  Status GetOrInit(std::span<const Key> keys, float* out,
                   BatchResult* result = nullptr);

  // Untracked batched read (serving / evaluation): neither waits on nor
  // advances any staleness state, never initializes. Missing keys are
  // NotFound per key.
  Status Peek(std::span<const Key> keys, float* out,
              BatchResult* result = nullptr);

  // Untracked read that still bootstraps never-stored keys: like GetOrInit
  // but without the tracked read, so it never waits on (or advances) an
  // existing record's staleness clock — the only write is the first-touch
  // Rmw that creates the record. The evaluation/serving flavor of the
  // bootstrap contract.
  Status PeekOrInit(std::span<const Key> keys, float* out,
                    BatchResult* result = nullptr);

  // Upserts embeddings; `values` holds keys.size()*dim floats. When the
  // table carries fused optimizer state, the state floats of existing
  // records are preserved (the Put becomes a per-record atomic Rmw).
  Status Put(std::span<const Key> keys, const float* values,
             BatchResult* result = nullptr);

  // Applies SGD-style updates in-store: v <- v - lr * grad. Uses Rmw so the
  // read-modify-write is atomic per record even under ASP training. Ignores
  // the table's optimizer config (but still preserves its state floats).
  Status ApplyGradients(std::span<const Key> keys, const float* grads,
                        float lr, BatchResult* result = nullptr);

  // Applies the table's configured optimizer (paper Fig. 3 line 18,
  // `emb_optimizer` fused into the store): one atomic Rmw per record that
  // advances both the embedding and its optimizer state.
  Status ApplyGradients(std::span<const Key> keys, const float* grads);

  // Non-blocking look-ahead prefetch (§III-C2). Asynchronously brings the
  // records for `keys` from disk into the chosen destination; returns
  // immediately. `cache` is required for kApplicationCache.
  Status Lookahead(std::span<const Key> keys,
                   LookaheadDest dest = LookaheadDest::kStorageBuffer,
                   EmbeddingCache* cache = nullptr);

  // Blocks until all queued Lookahead work for this table has completed.
  void WaitLookahead();

  // Writes every live embedding (key + dim floats, optimizer state
  // stripped) to `path` in a flat binary format — the serving-export /
  // cloud-upload step of the paper's heterogeneous-storage story. Quiesced:
  // callers must pause training and Lookahead traffic.
  Status Export(const std::string& path);

  // Bulk-loads an Export()-format file via Put (optimizer state resets to
  // zero). The file's dim must match this table's.
  Status Import(const std::string& path);

  // Garbage-collects this table's log up to the read-only boundary when the
  // log span exceeds `max_log_bytes` (0 forces a pass). Embedding training
  // overwrites rows in place most of the time, but RCU appends from
  // size-changing or cold updates still accrete garbage over long runs.
  Status CompactStorage(uint64_t max_log_bytes = 0);

  // Synchronous single-key helpers (tests / examples).
  Status GetOne(Key key, float* out) { return Get({&key, 1}, out); }
  Status PutOne(Key key, const float* value) { return Put({&key, 1}, value); }

  ShardedStore* store() { return store_.get(); }
  uint64_t num_embeddings() const { return store_->approximate_size(); }

 private:
  // Shared body of the span APIs: runs `op` through the sharded
  // scatter/gather and reconciles the two result contracts (sink vs
  // fail-fast; see the span-API comment above).
  Status ExecuteSpan(std::span<const Key> keys,
                     const ShardedStore::ShardOp& op, BatchResult* result);
  // Read-flavored ExecuteSpan: with an AsyncIoEngine configured, cold
  // misses across the whole batch go into flight together through the
  // pending-read pipeline (kv/pending_read.h); without one this is
  // exactly ExecuteSpan. The fail-fast (sink-less) contract always takes
  // the blocking path.
  Status ExecuteReadSpan(std::span<const Key> keys,
                         const ShardedStore::ShardReadOp& op,
                         BatchResult* result);
  // Group-durability epilogue for the write batches (Put/ApplyGradients):
  // under DurabilityMode::kGroup, persists every shard before returning, so
  // the batch's records are on disk (concurrent batches share fsyncs via
  // the per-shard group committers). A persist failure downgrades the
  // sink's still-kOk keys — those writes applied but are not durable. A
  // no-op under kSync. GetOrInit's bootstrap inserts intentionally skip
  // this: InitEmbedding is deterministic per key, so a lost bootstrap
  // re-creates identically on the next access, and reads shouldn't pay
  // for fsyncs.
  Status CommitIfGroup(Status s, BatchResult* result);

  std::string model_id_;
  uint32_t dim_;
  uint32_t staleness_bound_;
  OptimizerConfig optimizer_;
  std::unique_ptr<ShardedStore> store_;
  ThreadPool* lookahead_pool_;
  std::atomic<uint64_t> pending_lookaheads_{0};
};

}  // namespace mlkv
