#include "mlkv/embedding_table.h"

#include <cmath>
#include <cstring>
#include <thread>

#include "common/spin_wait.h"
#include "io/file_device.h"
#include "kv/log_iterator.h"
#include "mlkv/embedding_init.h"

namespace mlkv {

namespace {

// Export file header. Values are embeddings only (optimizer state is an
// internal representation and is stripped on the way out).
struct ExportHeader {
  uint64_t magic = 0x4D4C4B5645585031ull;  // "MLKVEXP1"
  uint32_t dim = 0;
  uint32_t reserved = 0;
  uint64_t count = 0;
};

}  // namespace

namespace {

// Per-key epilogue shared by the span APIs: with a BatchResult sink the
// call records and keeps going (batch-first contract); without one it
// fail-fasts like the original single-status API. Returns true when the
// caller should return `s` immediately.
bool FinishKey(BatchResult* result, size_t i, const Status& s, Status* out) {
  if (result != nullptr) {
    result->Record(i, s);
    return false;
  }
  if (!s.ok()) {
    *out = s;
    return true;
  }
  return false;
}

}  // namespace

Status EmbeddingTable::Get(std::span<const Key> keys, float* out,
                           BatchResult* result) {
  if (result != nullptr) result->Reset(keys.size());
  const uint32_t bytes = value_bytes();
  Status fail;
  for (size_t i = 0; i < keys.size(); ++i) {
    const Status s = store_->Read(keys[i], out + i * dim_, bytes, nullptr,
                                  staleness_bound_);
    if (FinishKey(result, i, s, &fail)) return fail;
  }
  return result != nullptr ? result->first_error : Status::OK();
}

Status EmbeddingTable::GetOrInit(std::span<const Key> keys, float* out,
                                 BatchResult* result) {
  if (result != nullptr) result->Reset(keys.size());
  const uint32_t emb_bytes = value_bytes();
  const uint32_t rec_bytes = record_bytes();
  Status fail;
  for (size_t i = 0; i < keys.size(); ++i) {
    const Key key = keys[i];
    Status s = store_->Read(key, out + i * dim_, emb_bytes, nullptr,
                            staleness_bound_);
    if (s.IsNotFound()) {
      // First touch: the shared deterministic bootstrap, so all threads
      // racing on the same key produce the same vector. Optimizer state
      // starts all-zero — the correct initial value for every kind — which
      // the zero-filled Rmw scratch provides for free.
      float* dst = out + i * dim_;
      InitEmbedding(key, dim_, dst);
      // Rmw keeps a concurrent initializer from double-inserting: only the
      // missing case writes, and losers retry and observe the winner.
      s = store_->Rmw(key, rec_bytes,
                      [&](char* value, uint32_t, bool exists) {
                        if (!exists) {
                          std::memcpy(value, dst, emb_bytes);
                        } else {
                          std::memcpy(dst, value, emb_bytes);
                        }
                      });
      if (s.ok() && result != nullptr) {
        result->RecordInitialized(i);
        continue;
      }
    }
    if (FinishKey(result, i, s, &fail)) return fail;
  }
  return result != nullptr ? result->first_error : Status::OK();
}

Status EmbeddingTable::Peek(std::span<const Key> keys, float* out,
                            BatchResult* result) {
  if (result != nullptr) result->Reset(keys.size());
  const uint32_t bytes = value_bytes();
  Status fail;
  for (size_t i = 0; i < keys.size(); ++i) {
    const Status s = store_->Peek(keys[i], out + i * dim_, bytes);
    if (FinishKey(result, i, s, &fail)) return fail;
  }
  return result != nullptr ? result->first_error : Status::OK();
}

Status EmbeddingTable::PeekOrInit(std::span<const Key> keys, float* out,
                                  BatchResult* result) {
  if (result != nullptr) result->Reset(keys.size());
  const uint32_t emb_bytes = value_bytes();
  const uint32_t rec_bytes = record_bytes();
  Status fail;
  for (size_t i = 0; i < keys.size(); ++i) {
    const Key key = keys[i];
    float* dst = out + i * dim_;
    Status s = store_->Peek(key, dst, emb_bytes);
    if (s.IsNotFound()) {
      InitEmbedding(key, dim_, dst);
      // Rmw creates the record if still absent; a concurrent creator wins
      // and we adopt its value. No tracked read anywhere on this path.
      s = store_->Rmw(key, rec_bytes,
                      [&](char* value, uint32_t, bool exists) {
                        if (!exists) {
                          std::memcpy(value, dst, emb_bytes);
                        } else {
                          std::memcpy(dst, value, emb_bytes);
                        }
                      });
      if (s.ok() && result != nullptr) {
        result->RecordInitialized(i);
        continue;
      }
    }
    if (FinishKey(result, i, s, &fail)) return fail;
  }
  return result != nullptr ? result->first_error : Status::OK();
}

Status EmbeddingTable::Put(std::span<const Key> keys, const float* values,
                           BatchResult* result) {
  if (result != nullptr) result->Reset(keys.size());
  const uint32_t emb_bytes = value_bytes();
  const uint32_t rec_bytes = record_bytes();
  Status fail;
  if (rec_bytes == emb_bytes) {
    // Stateless layout: a Put is a plain upsert.
    for (size_t i = 0; i < keys.size(); ++i) {
      const Status s = store_->Upsert(keys[i], values + i * dim_, emb_bytes);
      if (FinishKey(result, i, s, &fail)) return fail;
    }
    return result != nullptr ? result->first_error : Status::OK();
  }
  // Fused-state layout: overwrite the embedding floats, keep the optimizer
  // slots (zero for fresh keys, courtesy of the Rmw scratch).
  for (size_t i = 0; i < keys.size(); ++i) {
    const float* src = values + i * dim_;
    const Status s = store_->Rmw(
        keys[i], rec_bytes, [src, emb_bytes](char* value, uint32_t, bool) {
          std::memcpy(value, src, emb_bytes);
        });
    if (FinishKey(result, i, s, &fail)) return fail;
  }
  return result != nullptr ? result->first_error : Status::OK();
}

Status EmbeddingTable::ApplyGradients(std::span<const Key> keys,
                                      const float* grads, float lr,
                                      BatchResult* result) {
  if (result != nullptr) result->Reset(keys.size());
  const uint32_t rec_bytes = record_bytes();
  const uint32_t dim = dim_;
  Status fail;
  for (size_t i = 0; i < keys.size(); ++i) {
    const float* g = grads + i * dim;
    const Status s = store_->Rmw(
        keys[i], rec_bytes, [g, dim, lr](char* value, uint32_t, bool) {
          float* v = reinterpret_cast<float*>(value);
          for (uint32_t d = 0; d < dim; ++d) v[d] -= lr * g[d];
        });
    if (FinishKey(result, i, s, &fail)) return fail;
  }
  return result != nullptr ? result->first_error : Status::OK();
}

Status EmbeddingTable::ApplyGradients(std::span<const Key> keys,
                                      const float* grads) {
  const uint32_t rec_bytes = record_bytes();
  const uint32_t dim = dim_;
  const OptimizerConfig config = optimizer_;
  for (size_t i = 0; i < keys.size(); ++i) {
    const float* g = grads + i * dim;
    MLKV_RETURN_NOT_OK(store_->Rmw(
        keys[i], rec_bytes, [&config, g, dim](char* value, uint32_t, bool) {
          float* emb = reinterpret_cast<float*>(value);
          ApplyOptimizerUpdate(config, dim, emb, emb + dim, g);
        }));
  }
  return Status::OK();
}

Status EmbeddingTable::Lookahead(std::span<const Key> keys, LookaheadDest dest,
                                 EmbeddingCache* cache) {
  if (dest == LookaheadDest::kApplicationCache && cache == nullptr) {
    return Status::InvalidArgument("application-cache lookahead needs cache");
  }
  // Copy the keys: the call is non-blocking and the caller's span may die.
  auto batch = std::make_shared<std::vector<Key>>(keys.begin(), keys.end());
  pending_lookaheads_.fetch_add(1, std::memory_order_acq_rel);
  const bool submitted = lookahead_pool_->TrySubmit([this, batch, dest,
                                                     cache] {
    if (dest == LookaheadDest::kStorageBuffer) {
      for (const Key key : *batch) {
        store_->Promote(key).ok();  // NotFound is fine: nothing to prefetch
      }
    } else {
      std::vector<float> value(dim_);
      for (const Key key : *batch) {
        // Conventional-prefetch path: populate the application cache. Uses
        // Peek, not Read — a prefetch is not a training access, so it must
        // neither wait on nor advance any record's staleness clock
        // (§III-C2: lookahead leaves the vector clocks untouched). A miss
        // is simply skipped.
        if (store_->Peek(key, value.data(), value_bytes()).ok()) {
          cache->Put(key, value.data());
        }
      }
    }
    pending_lookaheads_.fetch_sub(1, std::memory_order_acq_rel);
  });
  if (!submitted) {
    // Queue full: prefetching is best-effort, drop the batch (backpressure).
    pending_lookaheads_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return Status::OK();
}

void EmbeddingTable::WaitLookahead() {
  SpinWaitUntil([this] {
    return pending_lookaheads_.load(std::memory_order_acquire) == 0;
  });
}

Status EmbeddingTable::Export(const std::string& path) {
  WaitLookahead();
  FileDevice dev;
  MLKV_RETURN_NOT_OK(dev.Open(path));
  const uint32_t emb_bytes = value_bytes();
  uint64_t offset = sizeof(ExportHeader);
  uint64_t count = 0;
  LiveLogIterator it(store_.get());
  for (; it.Valid(); it.Next()) {
    if (it.value().size() < emb_bytes) {
      return Status::Corruption("record smaller than an embedding");
    }
    MLKV_RETURN_NOT_OK(dev.WriteAt(offset, &it.meta().key, sizeof(Key)));
    offset += sizeof(Key);
    MLKV_RETURN_NOT_OK(dev.WriteAt(offset, it.value().data(), emb_bytes));
    offset += emb_bytes;
    ++count;
  }
  MLKV_RETURN_NOT_OK(it.status());
  ExportHeader header;
  header.dim = dim_;
  header.count = count;
  MLKV_RETURN_NOT_OK(dev.WriteAt(0, &header, sizeof(header)));
  return dev.Sync();
}

Status EmbeddingTable::Import(const std::string& path) {
  FileDevice dev;
  MLKV_RETURN_NOT_OK(dev.Open(path, /*truncate=*/false));
  ExportHeader header;
  MLKV_RETURN_NOT_OK(dev.ReadAt(0, &header, sizeof(header)));
  if (header.magic != ExportHeader().magic) {
    return Status::Corruption("bad export magic");
  }
  if (header.dim != dim_) {
    return Status::InvalidArgument("export dim mismatch");
  }
  const uint32_t emb_bytes = value_bytes();
  std::vector<float> value(dim_);
  uint64_t offset = sizeof(ExportHeader);
  for (uint64_t i = 0; i < header.count; ++i) {
    Key key = 0;
    MLKV_RETURN_NOT_OK(dev.ReadAt(offset, &key, sizeof(Key)));
    offset += sizeof(Key);
    MLKV_RETURN_NOT_OK(dev.ReadAt(offset, value.data(), emb_bytes));
    offset += emb_bytes;
    MLKV_RETURN_NOT_OK(Put({&key, 1}, value.data()));
  }
  return Status::OK();
}

Status EmbeddingTable::CompactStorage(uint64_t max_log_bytes) {
  WaitLookahead();
  if (max_log_bytes == 0) {
    return store_->Compact(store_->log().read_only_address(), nullptr);
  }
  return store_->MaybeCompact(max_log_bytes, nullptr);
}

}  // namespace mlkv
