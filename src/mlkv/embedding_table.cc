#include "mlkv/embedding_table.h"

#include <cmath>
#include <cstring>
#include <thread>

#include "common/simd.h"
#include "common/spin_wait.h"
#include "io/file_device.h"
#include "kv/batch_read.h"
#include "kv/log_iterator.h"
#include "mlkv/embedding_init.h"

namespace mlkv {

namespace {

// Export file header. Values are embeddings only (optimizer state is an
// internal representation and is stripped on the way out).
struct ExportHeader {
  uint64_t magic = 0x4D4C4B5645585031ull;  // "MLKVEXP1"
  uint32_t dim = 0;
  uint32_t reserved = 0;
  uint64_t count = 0;
};

}  // namespace

namespace {
// Reconciles the two span-API result contracts (see the header comment):
// with a sink, serve everything and return the first hard error; without
// one, fail fast on the earliest per-key problem in caller order.
Status ReconcileSpanResult(const BatchResult& r, bool caller_has_sink) {
  if (caller_has_sink) return r.first_error;
  for (size_t i = 0; i < r.codes.size(); ++i) {
    if (r.codes[i] != Status::Code::kOk) return r.StatusAt(i);
  }
  return Status::OK();
}
}  // namespace

Status EmbeddingTable::ExecuteSpan(std::span<const Key> keys,
                                   const ShardedStore::ShardOp& op,
                                   BatchResult* result) {
  BatchResult local;
  BatchResult* r = result != nullptr ? result : &local;
  // Without a sink the caller wants the original fail-fast contract, so
  // each shard's sub-batch stops at its first problem.
  store_->MultiExecute(keys, op, r, /*stop_on_error=*/result == nullptr);
  return ReconcileSpanResult(*r, result != nullptr);
}

Status EmbeddingTable::ExecuteReadSpan(std::span<const Key> keys,
                                       const ShardedStore::ShardReadOp& op,
                                       BatchResult* result) {
  BatchResult local;
  BatchResult* r = result != nullptr ? result : &local;
  // Without a sink the caller wants the original fail-fast contract
  // (MultiExecuteRead then takes the blocking path with per-sub-batch
  // early exit).
  store_->MultiExecuteRead(keys, op, r, /*stop_on_error=*/result == nullptr);
  return ReconcileSpanResult(*r, result != nullptr);
}

Status EmbeddingTable::Get(std::span<const Key> keys, float* out,
                           BatchResult* result) {
  const uint32_t bytes = value_bytes();
  return ExecuteReadSpan(
      keys,
      [this, out, bytes](FasterStore* shard, Key key, size_t i,
                         BatchResult* part, size_t pi, PendingSink* sink) {
        BatchReadOrPark(shard, key, out + i * dim_, bytes, staleness_bound_,
                        /*tracked=*/true, part, pi, sink);
      },
      result);
}

Status EmbeddingTable::GetOrInit(std::span<const Key> keys, float* out,
                                 BatchResult* result) {
  const uint32_t emb_bytes = value_bytes();
  const uint32_t rec_bytes = record_bytes();
  return ExecuteReadSpan(
      keys,
      [this, out, emb_bytes, rec_bytes](FasterStore* shard, Key key, size_t i,
                                        BatchResult* part, size_t pi,
                                        PendingSink* sink) {
        float* dst = out + i * dim_;
        // First touch of an absent key: the shared deterministic bootstrap,
        // so all threads racing on the same key produce the same vector.
        // Optimizer state starts all-zero — the correct initial value for
        // every kind — which the zero-filled Rmw scratch provides for free.
        // Rmw keeps a concurrent initializer from double-inserting: only
        // the missing case writes, and losers observe the winner.
        const auto init_missing = [this, shard, key, dst, rec_bytes]() {
          InitEmbedding(key, dim_, dst);
          return shard->Rmw(key, rec_bytes,
                            [&](char* value, uint32_t, bool exists) {
                              float* row = reinterpret_cast<float*>(value);
                              if (!exists) {
                                simd::CopyFloats(row, dst, dim_);
                              } else {
                                simd::CopyFloats(dst, row, dim_);
                              }
                            });
        };
        BatchReadOrPark(shard, key, dst, emb_bytes, staleness_bound_,
                        /*tracked=*/true, part, pi, sink, &init_missing);
      },
      result);
}

Status EmbeddingTable::Peek(std::span<const Key> keys, float* out,
                            BatchResult* result) {
  const uint32_t bytes = value_bytes();
  return ExecuteReadSpan(
      keys,
      [this, out, bytes](FasterStore* shard, Key key, size_t i,
                         BatchResult* part, size_t pi, PendingSink* sink) {
        BatchReadOrPark(shard, key, out + i * dim_, bytes, UINT32_MAX,
                        /*tracked=*/false, part, pi, sink);
      },
      result);
}

Status EmbeddingTable::PeekOrInit(std::span<const Key> keys, float* out,
                                  BatchResult* result) {
  const uint32_t emb_bytes = value_bytes();
  const uint32_t rec_bytes = record_bytes();
  return ExecuteReadSpan(
      keys,
      [this, out, emb_bytes, rec_bytes](FasterStore* shard, Key key, size_t i,
                                        BatchResult* part, size_t pi,
                                        PendingSink* sink) {
        float* dst = out + i * dim_;
        // Rmw creates the record if still absent; a concurrent creator
        // wins and we adopt its value. No tracked read on this path.
        const auto init_missing = [this, shard, key, dst, rec_bytes]() {
          InitEmbedding(key, dim_, dst);
          return shard->Rmw(key, rec_bytes,
                            [&](char* value, uint32_t, bool exists) {
                              float* row = reinterpret_cast<float*>(value);
                              if (!exists) {
                                simd::CopyFloats(row, dst, dim_);
                              } else {
                                simd::CopyFloats(dst, row, dim_);
                              }
                            });
        };
        BatchReadOrPark(shard, key, dst, emb_bytes, UINT32_MAX,
                        /*tracked=*/false, part, pi, sink, &init_missing);
      },
      result);
}

Status EmbeddingTable::CommitIfGroup(Status s, BatchResult* result) {
  if (store_->options().store.durability_mode != DurabilityMode::kGroup) {
    return s;
  }
  const Status d = store_->PersistAll();
  if (!d.ok() && result != nullptr) result->DowngradeOk(d);
  return s.ok() ? d : s;
}

Status EmbeddingTable::Put(std::span<const Key> keys, const float* values,
                           BatchResult* result) {
  const uint32_t emb_bytes = value_bytes();
  const uint32_t rec_bytes = record_bytes();
  if (rec_bytes == emb_bytes) {
    // Stateless layout: a Put is a plain upsert.
    return CommitIfGroup(
        ExecuteSpan(
            keys,
            [this, values, emb_bytes](FasterStore* shard, Key key, size_t i,
                                      BatchResult* part, size_t pi) {
              part->Record(pi,
                           shard->Upsert(key, values + i * dim_, emb_bytes));
            },
            result),
        result);
  }
  // Fused-state layout: overwrite the embedding floats, keep the optimizer
  // slots (zero for fresh keys, courtesy of the Rmw scratch).
  return CommitIfGroup(
      ExecuteSpan(
          keys,
          [this, values, rec_bytes](FasterStore* shard, Key key, size_t i,
                                    BatchResult* part, size_t pi) {
            const float* src = values + i * dim_;
            part->Record(
                pi, shard->Rmw(key, rec_bytes,
                               [src, dim = dim_](char* value, uint32_t, bool) {
                                 simd::CopyFloats(
                                     reinterpret_cast<float*>(value), src, dim);
                               }));
          },
          result),
      result);
}

Status EmbeddingTable::ApplyGradients(std::span<const Key> keys,
                                      const float* grads, float lr,
                                      BatchResult* result) {
  const uint32_t rec_bytes = record_bytes();
  const uint32_t dim = dim_;
  return CommitIfGroup(
      ExecuteSpan(
          keys,
          [grads, lr, dim, rec_bytes](FasterStore* shard, Key key, size_t i,
                                      BatchResult* part, size_t pi) {
            const float* g = grads + i * dim;
            part->Record(pi,
                         shard->Rmw(key, rec_bytes,
                                    [g, dim, lr](char* value, uint32_t, bool) {
                                      simd::SubScaled(
                                          reinterpret_cast<float*>(value), g,
                                          lr, dim);
                                    }));
          },
          result),
      result);
}

Status EmbeddingTable::ApplyGradients(std::span<const Key> keys,
                                      const float* grads) {
  const uint32_t rec_bytes = record_bytes();
  const uint32_t dim = dim_;
  const OptimizerConfig config = optimizer_;
  return CommitIfGroup(
      ExecuteSpan(
          keys,
          [&config, grads, dim, rec_bytes](FasterStore* shard, Key key,
                                           size_t i, BatchResult* part,
                                           size_t pi) {
            const float* g = grads + i * dim;
            part->Record(
                pi, shard->Rmw(key, rec_bytes,
                               [&config, g, dim](char* value, uint32_t, bool) {
                                 float* emb = reinterpret_cast<float*>(value);
                                 ApplyOptimizerUpdate(config, dim, emb,
                                                      emb + dim, g);
                               }));
          },
          nullptr),
      nullptr);
}

Status EmbeddingTable::Lookahead(std::span<const Key> keys, LookaheadDest dest,
                                 EmbeddingCache* cache) {
  if (dest == LookaheadDest::kApplicationCache && cache == nullptr) {
    return Status::InvalidArgument("application-cache lookahead needs cache");
  }
  // Partition the batch by shard so the prefetch itself scales with the
  // store: one pool task per shard sub-batch, each touching only its own
  // shard's log and index. (Keys are copied: the call is non-blocking and
  // the caller's span may die.)
  std::vector<std::shared_ptr<std::vector<Key>>> per_shard(
      store_->num_shards());
  for (const Key key : keys) {
    auto& batch = per_shard[store_->ShardIndexOf(key)];
    if (batch == nullptr) batch = std::make_shared<std::vector<Key>>();
    batch->push_back(key);
  }
  for (size_t s = 0; s < per_shard.size(); ++s) {
    const auto& batch = per_shard[s];
    if (batch == nullptr) continue;
    FasterStore* shard = store_->shard(s);
    pending_lookaheads_.fetch_add(1, std::memory_order_acq_rel);
    const bool submitted = lookahead_pool_->TrySubmit([this, shard, batch,
                                                       dest, cache] {
      if (dest == LookaheadDest::kStorageBuffer) {
        AsyncIoEngine* io = store_->options().io;
        if (io != nullptr) {
          // Pending-read pipeline: every cold key in this shard batch goes
          // into flight together, and promotions complete from the landed
          // record images instead of one blocking read at a time.
          PendingSink sink;
          for (const Key key : *batch) {
            auto p = std::make_unique<PendingRead>();
            bool parked = false;
            // cap = the full stored value, so the copy never truncates.
            shard->StartPromote(key, record_bytes(), p.get(), &parked).ok();
            if (parked) {
              sink.Park(shard, std::move(p), [shard](PendingRead* done) {
                shard->PromoteFromPending(*done).ok();  // best-effort
              });
            }
          }
          PendingReadWave wave(io);
          wave.Adopt(&sink);
          wave.CompleteAll();
        } else {
          for (const Key key : *batch) {
            shard->Promote(key).ok();  // NotFound: nothing to prefetch
          }
        }
      } else {
        std::vector<float> value(dim_);
        for (const Key key : *batch) {
          // Conventional-prefetch path: populate the application cache.
          // Uses Peek, not Read — a prefetch is not a training access, so
          // it must neither wait on nor advance any record's staleness
          // clock (§III-C2: lookahead leaves the vector clocks untouched).
          // A miss is simply skipped.
          if (shard->Peek(key, value.data(), value_bytes()).ok()) {
            cache->Put(key, value.data());
          }
        }
      }
      pending_lookaheads_.fetch_sub(1, std::memory_order_acq_rel);
    });
    if (!submitted) {
      // Queue full: prefetching is best-effort, drop this shard's batch
      // (backpressure).
      pending_lookaheads_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  return Status::OK();
}

void EmbeddingTable::WaitLookahead() {
  SpinWaitUntil([this] {
    return pending_lookaheads_.load(std::memory_order_acquire) == 0;
  });
}

Status EmbeddingTable::Export(const std::string& path) {
  WaitLookahead();
  FileDevice dev;
  MLKV_RETURN_NOT_OK(dev.Open(path));
  const uint32_t emb_bytes = value_bytes();
  uint64_t offset = sizeof(ExportHeader);
  uint64_t count = 0;
  // One live scan per shard; shard order is arbitrary but stable, and the
  // export format carries explicit keys, so consumers are unaffected.
  for (size_t s = 0; s < store_->num_shards(); ++s) {
    LiveLogIterator it(store_->shard(s));
    for (; it.Valid(); it.Next()) {
      if (it.value().size() < emb_bytes) {
        return Status::Corruption("record smaller than an embedding");
      }
      MLKV_RETURN_NOT_OK(dev.WriteAt(offset, &it.meta().key, sizeof(Key)));
      offset += sizeof(Key);
      MLKV_RETURN_NOT_OK(dev.WriteAt(offset, it.value().data(), emb_bytes));
      offset += emb_bytes;
      ++count;
    }
    MLKV_RETURN_NOT_OK(it.status());
  }
  ExportHeader header;
  header.dim = dim_;
  header.count = count;
  MLKV_RETURN_NOT_OK(dev.WriteAt(0, &header, sizeof(header)));
  return dev.Sync();
}

Status EmbeddingTable::Import(const std::string& path) {
  FileDevice dev;
  MLKV_RETURN_NOT_OK(dev.Open(path, /*truncate=*/false));
  ExportHeader header;
  MLKV_RETURN_NOT_OK(dev.ReadAt(0, &header, sizeof(header)));
  if (header.magic != ExportHeader().magic) {
    return Status::Corruption("bad export magic");
  }
  if (header.dim != dim_) {
    return Status::InvalidArgument("export dim mismatch");
  }
  const uint32_t emb_bytes = value_bytes();
  std::vector<float> value(dim_);
  uint64_t offset = sizeof(ExportHeader);
  for (uint64_t i = 0; i < header.count; ++i) {
    Key key = 0;
    MLKV_RETURN_NOT_OK(dev.ReadAt(offset, &key, sizeof(Key)));
    offset += sizeof(Key);
    MLKV_RETURN_NOT_OK(dev.ReadAt(offset, value.data(), emb_bytes));
    offset += emb_bytes;
    MLKV_RETURN_NOT_OK(Put({&key, 1}, value.data()));
  }
  return Status::OK();
}

Status EmbeddingTable::CompactStorage(uint64_t max_log_bytes) {
  WaitLookahead();
  if (max_log_bytes == 0) {
    return store_->CompactAll();
  }
  return store_->MaybeCompact(max_log_bytes, nullptr);
}

}  // namespace mlkv
