#include "mlkv/mlkv.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "kv/sharded_store.h"

namespace mlkv {

namespace {

bool ValidModelId(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (const char c : id) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

Status ParseOptimizerKind(const std::string& name, OptimizerKind* out) {
  if (name == "sgd") {
    *out = OptimizerKind::kSgd;
  } else if (name == "momentum") {
    *out = OptimizerKind::kMomentum;
  } else if (name == "adagrad") {
    *out = OptimizerKind::kAdagrad;
  } else if (name == "adam") {
    *out = OptimizerKind::kAdam;
  } else {
    return Status::Corruption("unknown optimizer kind: " + name);
  }
  return Status::OK();
}

bool SameConfig(const OptimizerConfig& a, const OptimizerConfig& b) {
  return a.kind == b.kind && a.lr == b.lr && a.momentum == b.momentum &&
         a.beta1 == b.beta1 && a.beta2 == b.beta2 && a.eps == b.eps &&
         a.weight_decay == b.weight_decay;
}

}  // namespace

Status Mlkv::Open(const MlkvOptions& options, std::unique_ptr<Mlkv>* out) {
  static_assert(ShardedStore::kMaxShardBits == 8,
                "update the shard_bits doc in mlkv.h if the bound moves");
  if (options.shard_bits > ShardedStore::kMaxShardBits) {
    return Status::InvalidArgument("shard_bits must be <= 8");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("create_directories " + options.dir + ": " +
                           ec.message());
  }
  std::unique_ptr<Mlkv> db(new Mlkv(options));
  MLKV_RETURN_NOT_OK(db->LoadManifest());
  *out = std::move(db);
  return Status::OK();
}

Mlkv::~Mlkv() {
  // Stop background prefetching before tables (and their stores) go away.
  lookahead_pool_.Shutdown();
}

Status Mlkv::LoadManifest() {
  std::ifstream in(ManifestPath());
  if (!in.is_open()) return Status::OK();  // fresh directory
  std::string line;
  if (!std::getline(in, line) || line != "MLKV_MANIFEST v1") {
    return Status::Corruption("bad manifest header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag, id, kind_name;
    TableSpec spec;
    ls >> tag >> id >> spec.dim >> spec.staleness_bound >> kind_name >>
        spec.optimizer.lr >> spec.optimizer.momentum >>
        spec.optimizer.beta1 >> spec.optimizer.beta2 >> spec.optimizer.eps >>
        spec.optimizer.weight_decay;
    if (tag != "table" || ls.fail() || !ValidModelId(id)) {
      return Status::Corruption("bad manifest row: " + line);
    }
    // Optional trailing field added with sharding; rows written before it
    // describe the single-log layout (shard_bits 0).
    if (!(ls >> spec.shard_bits)) spec.shard_bits = 0;
    if (spec.shard_bits > ShardedStore::kMaxShardBits) {
      return Status::Corruption("bad manifest shard_bits: " + line);
    }
    MLKV_RETURN_NOT_OK(ParseOptimizerKind(kind_name, &spec.optimizer.kind));
    manifest_[id] = spec;
  }
  return Status::OK();
}

Status Mlkv::WriteManifest() const {
  // Write-then-rename so a crash mid-write never corrupts the manifest.
  const std::string tmp = ManifestPath() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return Status::IOError("open " + tmp);
    out << "MLKV_MANIFEST v1\n";
    for (const auto& [id, spec] : manifest_) {
      out << "table " << id << ' ' << spec.dim << ' ' << spec.staleness_bound
          << ' ' << OptimizerKindName(spec.optimizer.kind) << ' '
          << spec.optimizer.lr << ' ' << spec.optimizer.momentum << ' '
          << spec.optimizer.beta1 << ' ' << spec.optimizer.beta2 << ' '
          << spec.optimizer.eps << ' ' << spec.optimizer.weight_decay << ' '
          << spec.shard_bits << '\n';
    }
    out.flush();
    if (!out.good()) return Status::IOError("write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, ManifestPath(), ec);
  if (ec) return Status::IOError("rename manifest: " + ec.message());
  return Status::OK();
}

Status Mlkv::OpenTable(const std::string& model_id, uint32_t dim,
                       uint32_t staleness_bound, EmbeddingTable** out,
                       const OptimizerConfig& optimizer) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (!ValidModelId(model_id)) {
    return Status::InvalidArgument("model_id must be non-empty [A-Za-z0-9_.-]");
  }
  auto it = tables_.find(model_id);
  if (it != tables_.end()) {
    if (it->second->dim() != dim) {
      return Status::InvalidArgument("table exists with different dim");
    }
    *out = it->second.get();
    return Status::OK();
  }

  const auto spec_it = manifest_.find(model_id);
  if (spec_it != manifest_.end()) {
    const TableSpec& spec = spec_it->second;
    if (spec.dim != dim || spec.staleness_bound != staleness_bound ||
        !SameConfig(spec.optimizer, optimizer)) {
      return Status::InvalidArgument(
          "table " + model_id +
          " exists in the manifest with a different configuration");
    }
  }

  ShardedStoreOptions so;
  so.store.path = options_.dir + "/" + model_id + ".log";
  so.store.index_slots = options_.index_slots;
  so.store.page_size = options_.page_size;
  so.store.mem_size = options_.mem_size;
  so.store.mutable_fraction = options_.mutable_fraction;
  so.store.track_staleness = true;
  so.store.staleness_bound = staleness_bound;
  so.store.busy_spin_limit = options_.busy_spin_limit;
  so.store.skip_promote_if_in_memory = options_.skip_promote_if_in_memory;
  // Write pipeline: every shard log flushes through the shared engine (when
  // one exists) and inherits the durability / checkpoint knobs.
  so.store.io = io_engine_.get();
  so.store.durability_mode = options_.durability_mode;
  so.store.group_commit_window_us = options_.group_commit_window_us;
  so.store.group_commit_max_bytes = options_.group_commit_max_bytes;
  so.store.checkpoint_mode = options_.checkpoint_mode;
  // The manifest's shard_bits fixes an existing table's on-disk layout;
  // only fresh tables take the current option.
  so.shard_bits = spec_it != manifest_.end() ? spec_it->second.shard_bits
                                             : options_.shard_bits;
  so.pool = &lookahead_pool_;
  so.parallel_min_keys = std::max<size_t>(options_.scatter_min_keys, 1);
  // Read waves stay opt-in: the engine may exist purely for group
  // durability, in which case batched reads keep the blocking path.
  so.io = options_.io_mode == IoMode::kAsync ? io_engine_.get() : nullptr;
  auto store = std::make_unique<ShardedStore>();
  const std::string ckpt_prefix = options_.dir + "/" + model_id + ".ckpt";
  if (spec_it != manifest_.end() &&
      ShardedStore::CheckpointExists(so, ckpt_prefix)) {
    // Re-attach: recover the persisted state. Under kSync durability
    // anything written after the last checkpoint is gone — the paper's
    // durability unit is the checkpoint, not the individual Put. Under
    // kGroup, recovery additionally replays the group-committed records
    // past the checkpoint tail.
    MLKV_RETURN_NOT_OK(store->Recover(so, ckpt_prefix));
  } else {
    MLKV_RETURN_NOT_OK(store->Open(so));
  }
  auto table = std::make_unique<EmbeddingTable>(model_id, dim,
                                                staleness_bound,
                                                std::move(store),
                                                &lookahead_pool_, optimizer);
  *out = table.get();
  tables_.emplace(model_id, std::move(table));
  if (spec_it == manifest_.end()) {
    manifest_[model_id] =
        TableSpec{dim, staleness_bound, so.shard_bits, optimizer};
    MLKV_RETURN_NOT_OK(WriteManifest());
  }
  return Status::OK();
}

Status Mlkv::OpenExistingTable(const std::string& model_id,
                               EmbeddingTable** out) {
  const auto it = manifest_.find(model_id);
  if (it == manifest_.end()) {
    return Status::NotFound("table not in manifest: " + model_id);
  }
  const TableSpec& spec = it->second;
  return OpenTable(model_id, spec.dim, spec.staleness_bound, out,
                   spec.optimizer);
}

Status Mlkv::CheckpointAll() {
  for (auto& [id, table] : tables_) {
    table->WaitLookahead();
    MLKV_RETURN_NOT_OK(table->store()->Checkpoint(options_.dir + "/" + id +
                                                  ".ckpt"));
  }
  return Status::OK();
}

Status Mlkv::CompactAll() {
  for (auto& [id, table] : tables_) {
    table->WaitLookahead();
    MLKV_RETURN_NOT_OK(table->store()->CompactAll());
  }
  return Status::OK();
}

std::vector<std::string> Mlkv::ListTables() const {
  std::vector<std::string> ids;
  ids.reserve(manifest_.size());
  for (const auto& [id, spec] : manifest_) ids.push_back(id);
  return ids;
}

}  // namespace mlkv
