#include "mlkv/optimizer.h"

#include "mlkv/optimizer_kernels.h"

namespace mlkv {

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return "sgd";
    case OptimizerKind::kMomentum:
      return "momentum";
    case OptimizerKind::kAdagrad:
      return "adagrad";
    case OptimizerKind::kAdam:
      return "adam";
  }
  return "unknown";
}

uint32_t OptimizerStateFloats(OptimizerKind kind, uint32_t dim) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return 0;
    case OptimizerKind::kMomentum:
    case OptimizerKind::kAdagrad:
      return dim;
    case OptimizerKind::kAdam:
      return 2 * dim + 1;  // m, v, step counter
  }
  return 0;
}

void ApplyOptimizerUpdate(const OptimizerConfig& config, uint32_t dim,
                          float* emb, float* state, const float* grad) {
  // The loops themselves live in optimizer_kernels.cc: a scalar reference
  // (bit-identical to the original code here) plus AVX2/FMA and NEON tiers
  // selected once at startup. See common/simd.h for the dispatch rules and
  // the MLKV_FORCE_SCALAR override.
  ApplyOptimizerUpdateKernel(config, dim, emb, state, grad);
}

}  // namespace mlkv
