#include "mlkv/optimizer.h"

#include <cmath>

namespace mlkv {

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return "sgd";
    case OptimizerKind::kMomentum:
      return "momentum";
    case OptimizerKind::kAdagrad:
      return "adagrad";
    case OptimizerKind::kAdam:
      return "adam";
  }
  return "unknown";
}

uint32_t OptimizerStateFloats(OptimizerKind kind, uint32_t dim) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return 0;
    case OptimizerKind::kMomentum:
    case OptimizerKind::kAdagrad:
      return dim;
    case OptimizerKind::kAdam:
      return 2 * dim + 1;  // m, v, step counter
  }
  return 0;
}

void ApplyOptimizerUpdate(const OptimizerConfig& config, uint32_t dim,
                          float* emb, float* state, const float* grad) {
  const float lr = config.lr;
  const float wd = config.weight_decay;
  switch (config.kind) {
    case OptimizerKind::kSgd: {
      for (uint32_t d = 0; d < dim; ++d) {
        const float g = grad[d] + wd * emb[d];
        emb[d] -= lr * g;
      }
      break;
    }
    case OptimizerKind::kMomentum: {
      float* velocity = state;
      for (uint32_t d = 0; d < dim; ++d) {
        const float g = grad[d] + wd * emb[d];
        velocity[d] = config.momentum * velocity[d] + g;
        emb[d] -= lr * velocity[d];
      }
      break;
    }
    case OptimizerKind::kAdagrad: {
      float* accum = state;
      for (uint32_t d = 0; d < dim; ++d) {
        const float g = grad[d] + wd * emb[d];
        accum[d] += g * g;
        emb[d] -= lr * g / (std::sqrt(accum[d]) + config.eps);
      }
      break;
    }
    case OptimizerKind::kAdam: {
      float* m = state;
      float* v = state + dim;
      float* step = state + 2 * dim;
      // The step counter is a float slot: exactly representable up to 2^24
      // updates per row, far beyond any embedding's update count here.
      *step += 1.0f;
      const float t = *step;
      const float bias1 = 1.0f - std::pow(config.beta1, t);
      const float bias2 = 1.0f - std::pow(config.beta2, t);
      for (uint32_t d = 0; d < dim; ++d) {
        const float g = grad[d] + wd * emb[d];
        m[d] = config.beta1 * m[d] + (1.0f - config.beta1) * g;
        v[d] = config.beta2 * v[d] + (1.0f - config.beta2) * g * g;
        const float m_hat = m[d] / bias1;
        const float v_hat = v[d] / bias2;
        emb[d] -= lr * m_hat / (std::sqrt(v_hat) + config.eps);
      }
      break;
    }
  }
}

}  // namespace mlkv
