#include "mlkv/optimizer_kernels.h"

#include <cmath>

namespace mlkv {

// ---------------------------------------------------------------------------
// Scalar reference. These are the original ApplyOptimizerUpdate loops moved
// here unchanged — the scalar tier must stay bit-identical to what the store
// shipped with, so the hand-computed traces in tests/optimizer_test.cc keep
// pinning the math.
// ---------------------------------------------------------------------------

void ApplyOptimizerUpdateScalar(const OptimizerConfig& config, uint32_t dim,
                                float* emb, float* state, const float* grad) {
  const float lr = config.lr;
  const float wd = config.weight_decay;
  switch (config.kind) {
    case OptimizerKind::kSgd: {
      for (uint32_t d = 0; d < dim; ++d) {
        const float g = grad[d] + wd * emb[d];
        emb[d] -= lr * g;
      }
      break;
    }
    case OptimizerKind::kMomentum: {
      float* velocity = state;
      for (uint32_t d = 0; d < dim; ++d) {
        const float g = grad[d] + wd * emb[d];
        velocity[d] = config.momentum * velocity[d] + g;
        emb[d] -= lr * velocity[d];
      }
      break;
    }
    case OptimizerKind::kAdagrad: {
      float* accum = state;
      for (uint32_t d = 0; d < dim; ++d) {
        const float g = grad[d] + wd * emb[d];
        accum[d] += g * g;
        emb[d] -= lr * g / (std::sqrt(accum[d]) + config.eps);
      }
      break;
    }
    case OptimizerKind::kAdam: {
      float* m = state;
      float* v = state + dim;
      float* step = state + 2 * dim;
      // The step counter is a float slot: exactly representable up to 2^24
      // updates per row, far beyond any embedding's update count here.
      *step += 1.0f;
      const float t = *step;
      const float bias1 = 1.0f - std::pow(config.beta1, t);
      const float bias2 = 1.0f - std::pow(config.beta2, t);
      for (uint32_t d = 0; d < dim; ++d) {
        const float g = grad[d] + wd * emb[d];
        m[d] = config.beta1 * m[d] + (1.0f - config.beta1) * g;
        v[d] = config.beta2 * v[d] + (1.0f - config.beta2) * g * g;
        const float m_hat = m[d] / bias1;
        const float v_hat = v[d] / bias2;
        emb[d] -= lr * m_hat / (std::sqrt(v_hat) + config.eps);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2/FMA tier. Each kind is its own `target("avx2,fma")` function so the
// rest of the binary stays baseline x86-64; the runtime gate is
// simd::DetectKernelTier()'s __builtin_cpu_supports check. 8 floats per
// iteration, scalar tail for dim % 8.
// ---------------------------------------------------------------------------

#if MLKV_SIMD_X86

namespace {

__attribute__((target("avx2,fma"))) void SgdAvx2(const OptimizerConfig& c,
                                                 uint32_t dim, float* emb,
                                                 const float* grad) {
  const __m256 lr = _mm256_set1_ps(c.lr);
  const __m256 wd = _mm256_set1_ps(c.weight_decay);
  uint32_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 w = _mm256_loadu_ps(emb + d);
    const __m256 g = _mm256_fmadd_ps(wd, w, _mm256_loadu_ps(grad + d));
    _mm256_storeu_ps(emb + d, _mm256_fnmadd_ps(lr, g, w));
  }
  for (; d < dim; ++d) {
    const float g = grad[d] + c.weight_decay * emb[d];
    emb[d] -= c.lr * g;
  }
}

__attribute__((target("avx2,fma"))) void MomentumAvx2(const OptimizerConfig& c,
                                                      uint32_t dim, float* emb,
                                                      float* velocity,
                                                      const float* grad) {
  const __m256 lr = _mm256_set1_ps(c.lr);
  const __m256 wd = _mm256_set1_ps(c.weight_decay);
  const __m256 mu = _mm256_set1_ps(c.momentum);
  uint32_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 w = _mm256_loadu_ps(emb + d);
    const __m256 g = _mm256_fmadd_ps(wd, w, _mm256_loadu_ps(grad + d));
    const __m256 u = _mm256_fmadd_ps(mu, _mm256_loadu_ps(velocity + d), g);
    _mm256_storeu_ps(velocity + d, u);
    _mm256_storeu_ps(emb + d, _mm256_fnmadd_ps(lr, u, w));
  }
  for (; d < dim; ++d) {
    const float g = grad[d] + c.weight_decay * emb[d];
    velocity[d] = c.momentum * velocity[d] + g;
    emb[d] -= c.lr * velocity[d];
  }
}

__attribute__((target("avx2,fma"))) void AdagradAvx2(const OptimizerConfig& c,
                                                     uint32_t dim, float* emb,
                                                     float* accum,
                                                     const float* grad) {
  const __m256 lr = _mm256_set1_ps(c.lr);
  const __m256 wd = _mm256_set1_ps(c.weight_decay);
  const __m256 eps = _mm256_set1_ps(c.eps);
  uint32_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 w = _mm256_loadu_ps(emb + d);
    const __m256 g = _mm256_fmadd_ps(wd, w, _mm256_loadu_ps(grad + d));
    const __m256 a = _mm256_fmadd_ps(g, g, _mm256_loadu_ps(accum + d));
    _mm256_storeu_ps(accum + d, a);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(a), eps);
    const __m256 step = _mm256_div_ps(_mm256_mul_ps(lr, g), denom);
    _mm256_storeu_ps(emb + d, _mm256_sub_ps(w, step));
  }
  for (; d < dim; ++d) {
    const float g = grad[d] + c.weight_decay * emb[d];
    accum[d] += g * g;
    emb[d] -= c.lr * g / (std::sqrt(accum[d]) + c.eps);
  }
}

__attribute__((target("avx2,fma"))) void AdamAvx2(const OptimizerConfig& c,
                                                  uint32_t dim, float* emb,
                                                  float* state,
                                                  const float* grad) {
  float* m = state;
  float* v = state + dim;
  float* step = state + 2 * dim;
  *step += 1.0f;
  const float t = *step;
  const float bias1 = 1.0f - std::pow(c.beta1, t);
  const float bias2 = 1.0f - std::pow(c.beta2, t);
  const __m256 lr = _mm256_set1_ps(c.lr);
  const __m256 wd = _mm256_set1_ps(c.weight_decay);
  const __m256 eps = _mm256_set1_ps(c.eps);
  const __m256 b1 = _mm256_set1_ps(c.beta1);
  const __m256 b2 = _mm256_set1_ps(c.beta2);
  const __m256 one_minus_b1 = _mm256_set1_ps(1.0f - c.beta1);
  const __m256 one_minus_b2 = _mm256_set1_ps(1.0f - c.beta2);
  const __m256 vbias1 = _mm256_set1_ps(bias1);
  const __m256 vbias2 = _mm256_set1_ps(bias2);
  uint32_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 w = _mm256_loadu_ps(emb + d);
    const __m256 g = _mm256_fmadd_ps(wd, w, _mm256_loadu_ps(grad + d));
    const __m256 md =
        _mm256_fmadd_ps(b1, _mm256_loadu_ps(m + d), _mm256_mul_ps(one_minus_b1, g));
    const __m256 g2 = _mm256_mul_ps(g, g);
    const __m256 vd =
        _mm256_fmadd_ps(b2, _mm256_loadu_ps(v + d), _mm256_mul_ps(one_minus_b2, g2));
    _mm256_storeu_ps(m + d, md);
    _mm256_storeu_ps(v + d, vd);
    const __m256 m_hat = _mm256_div_ps(md, vbias1);
    const __m256 v_hat = _mm256_div_ps(vd, vbias2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), eps);
    const __m256 update = _mm256_div_ps(_mm256_mul_ps(lr, m_hat), denom);
    _mm256_storeu_ps(emb + d, _mm256_sub_ps(w, update));
  }
  for (; d < dim; ++d) {
    const float g = grad[d] + c.weight_decay * emb[d];
    m[d] = c.beta1 * m[d] + (1.0f - c.beta1) * g;
    v[d] = c.beta2 * v[d] + (1.0f - c.beta2) * g * g;
    const float m_hat = m[d] / bias1;
    const float v_hat = v[d] / bias2;
    emb[d] -= c.lr * m_hat / (std::sqrt(v_hat) + c.eps);
  }
}

void ApplyAvx2(const OptimizerConfig& config, uint32_t dim, float* emb,
               float* state, const float* grad) {
  switch (config.kind) {
    case OptimizerKind::kSgd:
      SgdAvx2(config, dim, emb, grad);
      break;
    case OptimizerKind::kMomentum:
      MomentumAvx2(config, dim, emb, state, grad);
      break;
    case OptimizerKind::kAdagrad:
      AdagradAvx2(config, dim, emb, state, grad);
      break;
    case OptimizerKind::kAdam:
      AdamAvx2(config, dim, emb, state, grad);
      break;
  }
}

}  // namespace

#endif  // MLKV_SIMD_X86

// ---------------------------------------------------------------------------
// NEON tier (aarch64; NEON is baseline there, so plain intrinsics, no
// target attribute or runtime check). 4 floats per iteration.
// ---------------------------------------------------------------------------

#if MLKV_SIMD_NEON

namespace {

void SgdNeon(const OptimizerConfig& c, uint32_t dim, float* emb,
             const float* grad) {
  const float32x4_t lr = vdupq_n_f32(c.lr);
  const float32x4_t wd = vdupq_n_f32(c.weight_decay);
  uint32_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const float32x4_t w = vld1q_f32(emb + d);
    const float32x4_t g = vfmaq_f32(vld1q_f32(grad + d), wd, w);
    vst1q_f32(emb + d, vfmsq_f32(w, lr, g));
  }
  for (; d < dim; ++d) {
    const float g = grad[d] + c.weight_decay * emb[d];
    emb[d] -= c.lr * g;
  }
}

void MomentumNeon(const OptimizerConfig& c, uint32_t dim, float* emb,
                  float* velocity, const float* grad) {
  const float32x4_t lr = vdupq_n_f32(c.lr);
  const float32x4_t wd = vdupq_n_f32(c.weight_decay);
  const float32x4_t mu = vdupq_n_f32(c.momentum);
  uint32_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const float32x4_t w = vld1q_f32(emb + d);
    const float32x4_t g = vfmaq_f32(vld1q_f32(grad + d), wd, w);
    const float32x4_t u = vfmaq_f32(g, mu, vld1q_f32(velocity + d));
    vst1q_f32(velocity + d, u);
    vst1q_f32(emb + d, vfmsq_f32(w, lr, u));
  }
  for (; d < dim; ++d) {
    const float g = grad[d] + c.weight_decay * emb[d];
    velocity[d] = c.momentum * velocity[d] + g;
    emb[d] -= c.lr * velocity[d];
  }
}

void AdagradNeon(const OptimizerConfig& c, uint32_t dim, float* emb,
                 float* accum, const float* grad) {
  const float32x4_t lr = vdupq_n_f32(c.lr);
  const float32x4_t wd = vdupq_n_f32(c.weight_decay);
  const float32x4_t eps = vdupq_n_f32(c.eps);
  uint32_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const float32x4_t w = vld1q_f32(emb + d);
    const float32x4_t g = vfmaq_f32(vld1q_f32(grad + d), wd, w);
    const float32x4_t a = vfmaq_f32(vld1q_f32(accum + d), g, g);
    vst1q_f32(accum + d, a);
    const float32x4_t denom = vaddq_f32(vsqrtq_f32(a), eps);
    vst1q_f32(emb + d, vsubq_f32(w, vdivq_f32(vmulq_f32(lr, g), denom)));
  }
  for (; d < dim; ++d) {
    const float g = grad[d] + c.weight_decay * emb[d];
    accum[d] += g * g;
    emb[d] -= c.lr * g / (std::sqrt(accum[d]) + c.eps);
  }
}

void AdamNeon(const OptimizerConfig& c, uint32_t dim, float* emb, float* state,
              const float* grad) {
  float* m = state;
  float* v = state + dim;
  float* step = state + 2 * dim;
  *step += 1.0f;
  const float t = *step;
  const float bias1 = 1.0f - std::pow(c.beta1, t);
  const float bias2 = 1.0f - std::pow(c.beta2, t);
  const float32x4_t lr = vdupq_n_f32(c.lr);
  const float32x4_t wd = vdupq_n_f32(c.weight_decay);
  const float32x4_t eps = vdupq_n_f32(c.eps);
  const float32x4_t b1 = vdupq_n_f32(c.beta1);
  const float32x4_t b2 = vdupq_n_f32(c.beta2);
  const float32x4_t omb1 = vdupq_n_f32(1.0f - c.beta1);
  const float32x4_t omb2 = vdupq_n_f32(1.0f - c.beta2);
  const float32x4_t vbias1 = vdupq_n_f32(bias1);
  const float32x4_t vbias2 = vdupq_n_f32(bias2);
  uint32_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const float32x4_t w = vld1q_f32(emb + d);
    const float32x4_t g = vfmaq_f32(vld1q_f32(grad + d), wd, w);
    const float32x4_t md = vfmaq_f32(vmulq_f32(omb1, g), b1, vld1q_f32(m + d));
    const float32x4_t g2 = vmulq_f32(g, g);
    const float32x4_t vd = vfmaq_f32(vmulq_f32(omb2, g2), b2, vld1q_f32(v + d));
    vst1q_f32(m + d, md);
    vst1q_f32(v + d, vd);
    const float32x4_t m_hat = vdivq_f32(md, vbias1);
    const float32x4_t v_hat = vdivq_f32(vd, vbias2);
    const float32x4_t denom = vaddq_f32(vsqrtq_f32(v_hat), eps);
    vst1q_f32(emb + d, vsubq_f32(w, vdivq_f32(vmulq_f32(lr, m_hat), denom)));
  }
  for (; d < dim; ++d) {
    const float g = grad[d] + c.weight_decay * emb[d];
    m[d] = c.beta1 * m[d] + (1.0f - c.beta1) * g;
    v[d] = c.beta2 * v[d] + (1.0f - c.beta2) * g * g;
    const float m_hat = m[d] / bias1;
    const float v_hat = v[d] / bias2;
    emb[d] -= c.lr * m_hat / (std::sqrt(v_hat) + c.eps);
  }
}

void ApplyNeon(const OptimizerConfig& config, uint32_t dim, float* emb,
               float* state, const float* grad) {
  switch (config.kind) {
    case OptimizerKind::kSgd:
      SgdNeon(config, dim, emb, grad);
      break;
    case OptimizerKind::kMomentum:
      MomentumNeon(config, dim, emb, state, grad);
      break;
    case OptimizerKind::kAdagrad:
      AdagradNeon(config, dim, emb, state, grad);
      break;
    case OptimizerKind::kAdam:
      AdamNeon(config, dim, emb, state, grad);
      break;
  }
}

}  // namespace

#endif  // MLKV_SIMD_NEON

void ApplyOptimizerUpdateWithTier(simd::KernelTier tier,
                                  const OptimizerConfig& config, uint32_t dim,
                                  float* emb, float* state, const float* grad) {
  switch (tier) {
#if MLKV_SIMD_X86
    case simd::KernelTier::kAvx2Fma:
      ApplyAvx2(config, dim, emb, state, grad);
      return;
#endif
#if MLKV_SIMD_NEON
    case simd::KernelTier::kNeon:
      ApplyNeon(config, dim, emb, state, grad);
      return;
#endif
    default:
      break;
  }
  ApplyOptimizerUpdateScalar(config, dim, emb, state, grad);
}

void ApplyOptimizerUpdateKernel(const OptimizerConfig& config, uint32_t dim,
                                float* emb, float* state, const float* grad) {
  ApplyOptimizerUpdateWithTier(simd::ActiveKernelTier(), config, dim, emb,
                               state, grad);
}

}  // namespace mlkv
