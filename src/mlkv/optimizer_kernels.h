// Vectorized bodies for the four fused optimizer updates.
//
// mlkv/optimizer.h defines the math and the in-record state layout;
// this layer provides the implementations: a scalar reference (the exact
// loops the store shipped with, still the behavioral baseline) and
// AVX2/FMA + NEON versions dispatched at runtime via
// simd::ActiveKernelTier(). `ApplyOptimizerUpdate` in optimizer.cc is a
// thin forward to ApplyOptimizerUpdateKernel, so every Rmw in the store
// rides the dispatched path without callers changing.
//
// Numerics: the vector tiers contract multiply+add into FMA and keep an
// element's value in one register across the update, so results can
// differ from the scalar reference by a few ULP per step (FMA rounds
// once where scalar rounds twice). The parity suite in
// tests/simd_kernels_test.cc pins the tolerance; the scalar tier itself
// is bit-identical to the pre-kernel code. Tail elements (dim not a
// multiple of the vector width) run the scalar loop.
#pragma once

#include <cstdint>

#include "common/simd.h"
#include "mlkv/optimizer.h"

namespace mlkv {

// The pre-SIMD scalar loops, verbatim. Always built, always callable —
// the parity tests compare tiers against this in one process, and it is
// the fallback for any tier the build or CPU lacks.
void ApplyOptimizerUpdateScalar(const OptimizerConfig& config, uint32_t dim,
                                float* emb, float* state, const float* grad);

// One optimizer step on the tier `ActiveKernelTier()` picked at startup
// (honors MLKV_FORCE_SCALAR). Same contract as ApplyOptimizerUpdate:
// called from inside a store Rmw, must stay allocation-free.
void ApplyOptimizerUpdateKernel(const OptimizerConfig& config, uint32_t dim,
                                float* emb, float* state, const float* grad);

// Explicit-tier entry for tests and bench_micro_kernels: runs `tier` if
// this build has it, otherwise falls back to scalar. Callers on x86 must
// still ensure the CPU has AVX2+FMA before passing kAvx2Fma.
void ApplyOptimizerUpdateWithTier(simd::KernelTier tier,
                                  const OptimizerConfig& config, uint32_t dim,
                                  float* emb, float* state, const float* grad);

}  // namespace mlkv
