// MLKV public API (paper §III-A).
//
//   auto db = Mlkv::Open(options);
//   EmbeddingTable* table;
//   db->OpenTable("user_emb", /*dim=*/16, /*staleness_bound=*/4, &table);
//   table->GetOrInit(keys, values);          // forward pass
//   ... train ...
//   table->Put(keys, updated_values);        // backward pass
//   table->Lookahead(next_batch_keys);       // hide future disk accesses
//
// Staleness bound 0 trains in BSP mode, kAspBound (UINT32_MAX - 1, the
// largest admissible value of the 32-bit staleness counter — effectively
// unbounded) in ASP mode, anything between in SSP mode (paper §III-C1).
// Each table owns its own log-structured store; Lookahead work is executed
// on a shared background thread pool.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "io/async_io.h"
#include "kv/faster_store.h"
#include "mlkv/embedding_cache.h"
#include "mlkv/embedding_table.h"

namespace mlkv {

struct MlkvOptions {
  std::string dir;                     // directory for table log files
  // TOTAL hash-index slots per table, split evenly across that table's
  // shards: each shard receives index_slots >> shard_bits (floored at
  // ShardedStore::kMinShardIndexSlots), then rounds its slice up to a
  // power of two — so the realized total can exceed the configured value.
  uint64_t index_slots = 1ull << 20;
  uint64_t page_size = 1ull << 20;
  // TOTAL per-table in-memory log buffer, split evenly across shards the
  // same way (mem_size >> shard_bits per shard, floored at
  // ShardedStore::kMinShardMemBytes; each shard then halves page_size
  // until at least four pages fit its slice).
  uint64_t mem_size = 64ull << 20;
  double mutable_fraction = 0.5;
  // log2 of the per-table shard count: each table's store is 1 <<
  // shard_bits independent FasterStore shards (own index, log, epoch
  // domain) with log/checkpoint files under dir/shard-NN/. 0 preserves the
  // legacy single-log layout exactly. Mlkv::Open rejects values > 8
  // (ShardedStore::kMaxShardBits). Tables recorded in the directory's
  // MANIFEST keep the shard_bits they were created with — the on-disk
  // layout wins over this option when re-attaching.
  uint32_t shard_bits = 2;
  size_t lookahead_threads = 2;
  // Minimum keys in one shard sub-batch (or single-shard chunk) before a
  // batched span call offloads it to the lookahead pool; see
  // ShardedStoreOptions::parallel_min_keys.
  size_t scatter_min_keys = 32;
  // Spin iterations before a bounded Get aborts with Busy (kv/record.h).
  uint64_t busy_spin_limit = kDefaultBusySpinLimit;
  bool skip_promote_if_in_memory = true;  // DESIGN.md ablation D2
  // Read-path mode for every table's store. kAsync routes the cold misses
  // of batched gets/peeks (and Lookahead promotions) through one shared
  // per-DB AsyncIoEngine, so a batch's disk reads go into flight together;
  // kSync (the default) keeps the blocking path, byte-identical to the
  // pre-pipeline behavior.
  IoMode io_mode = IoMode::kSync;
  // AsyncIoEngine workers (and, with io_uring, rings) for kAsync.
  size_t io_threads = 4;
  // Write-durability mode for every table's store (io/async_io.h). kGroup
  // makes each batched Put/ApplyGradients durable before it returns: the
  // shard logs flush only dirty pages (as one engine wave — kGroup implies
  // the shared engine even under io_mode == kSync) and concurrent
  // committers share fsyncs through per-shard GroupCommitters; recovery
  // replays group-committed records past the last checkpoint. kSync (the
  // default) keeps checkpoint-only durability, byte-identical on disk.
  DurabilityMode durability_mode = DurabilityMode::kSync;
  uint64_t group_commit_window_us = 200;
  uint64_t group_commit_max_bytes = 1ull << 20;
  // Checkpoint shape for CheckpointAll (io/async_io.h): kIncremental
  // chains index deltas + dirty-page flushes onto the previous checkpoint
  // instead of rewriting everything.
  CheckpointMode checkpoint_mode = CheckpointMode::kFull;
};

// Consistency presets (paper §III-C1).
inline constexpr uint32_t kBspBound = 0;
inline constexpr uint32_t kAspBound = UINT32_MAX - 1;  // effectively unbounded

// kAspBound must stay one below the staleness counter's saturation value:
// the counter is the low 32 bits of the record control word (a uint32_t
// that saturates at UINT32_MAX), and FasterStore::Read() reserves
// UINT32_MAX as its "use the store-level bound" sentinel, so UINT32_MAX - 1
// is the largest bound that admits every reachable counter value.
static_assert(
    std::is_same_v<decltype(FasterOptions::staleness_bound), uint32_t>,
    "staleness bounds are 32-bit; update kAspBound if the counter widens");
static_assert(
    kAspBound ==
        std::numeric_limits<decltype(FasterOptions::staleness_bound)>::max() -
            1,
    "kAspBound must track the staleness-counter type in faster_store.h");
static_assert(kAspBound == ControlWord::kStalenessMask - 1,
              "kAspBound must track the control-word staleness field");

class Mlkv {
 public:
  // Opens (creates) an MLKV instance rooted at options.dir.
  static Status Open(const MlkvOptions& options, std::unique_ptr<Mlkv>* out);

  ~Mlkv();

  // Creates or opens the embedding model `model_id` with embedding dimension
  // `dim`, the given staleness bound, and (optionally) a fused sparse
  // optimizer whose state lives inside each record. The returned table is
  // owned by this Mlkv instance and stays valid until destruction.
  //
  // `model_id` must be non-empty and use only [A-Za-z0-9_.-] (it names
  // files). Opening an id recorded in the directory's MANIFEST re-attaches
  // the existing table: the configuration must match, and if a checkpoint
  // exists the table recovers from it.
  Status OpenTable(const std::string& model_id, uint32_t dim,
                   uint32_t staleness_bound, EmbeddingTable** out,
                   const OptimizerConfig& optimizer = {});

  // Re-attaches a table recorded in the manifest using its stored
  // configuration (tools and inspection paths that don't know dim/bound up
  // front). NotFound if the id was never created in this directory.
  Status OpenExistingTable(const std::string& model_id, EmbeddingTable** out);

  // Checkpoints every open table under dir/<model_id>.ckpt.*. The paper
  // pairs local-NVMe logs with periodic checkpoints for durability (§II-B,
  // heterogeneous storage). A later Mlkv::Open on the same dir recovers
  // every table from its latest checkpoint.
  Status CheckpointAll();

  // Garbage-collects every open table's log up to its read-only boundary.
  Status CompactAll();

  // Model ids recorded in this directory's manifest (open or not).
  std::vector<std::string> ListTables() const;

  ThreadPool* lookahead_pool() { return &lookahead_pool_; }
  // Null unless options() ask for it: io_mode == kAsync (batched cold
  // reads) or durability_mode == kGroup (coalesced flush waves).
  AsyncIoEngine* io_engine() { return io_engine_.get(); }
  const MlkvOptions& options() const { return options_; }

 private:
  // One manifest row: the durable configuration of a table. `shard_bits`
  // fixes the on-disk layout, so re-attaching uses the recorded value, not
  // the current MlkvOptions default (rows written before sharding carry no
  // field and parse as 0 — the single-log layout they describe).
  struct TableSpec {
    uint32_t dim = 0;
    uint32_t staleness_bound = 0;
    uint32_t shard_bits = 0;
    OptimizerConfig optimizer;
  };

  explicit Mlkv(const MlkvOptions& options)
      : options_(options),
        io_engine_(options.io_mode == IoMode::kAsync ||
                           options.durability_mode == DurabilityMode::kGroup
                       ? std::make_unique<AsyncIoEngine>([&options] {
                           AsyncIoEngine::Options o;
                           o.io_threads = options.io_threads;
                           return o;
                         }())
                       : nullptr),
        lookahead_pool_(options.lookahead_threads) {}

  std::string ManifestPath() const { return options_.dir + "/MANIFEST"; }
  Status LoadManifest();
  Status WriteManifest() const;

  MlkvOptions options_;
  // Shared across every table/shard of this DB; destroyed after the
  // lookahead pool is shut down (the destructor orders that explicitly).
  std::unique_ptr<AsyncIoEngine> io_engine_;
  ThreadPool lookahead_pool_;
  std::unordered_map<std::string, std::unique_ptr<EmbeddingTable>> tables_;
  // All tables ever created in this directory, including not-yet-reopened
  // ones from a previous process.
  std::unordered_map<std::string, TableSpec> manifest_;
};

}  // namespace mlkv
