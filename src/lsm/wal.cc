#include "lsm/wal.h"

#include <cstring>
#include <filesystem>
#include <vector>

#include "common/hash.h"

namespace mlkv {

namespace {

constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;
constexpr uint32_t kRecordHeader = 4 + 1 + 8 + 4;  // crc, op, key, vlen
// Caps a parsed value length so a corrupt length field cannot drive a
// gigantic allocation during replay.
constexpr uint32_t kMaxValueLen = 64u << 20;

uint32_t Checksum(const void* data, size_t n) {
  return static_cast<uint32_t>(HashBytes(data, n));
}

}  // namespace

Status WalWriter::Open(const std::string& path) {
  offset_ = 0;
  return file_.Open(path, /*truncate=*/true);
}

Status WalWriter::AppendRecord(uint8_t op, Key key, const void* value,
                               uint32_t size) {
  std::vector<char> buf(kRecordHeader + size);
  char* p = buf.data() + 4;  // checksum written last
  std::memcpy(p, &op, 1);
  std::memcpy(p + 1, &key, 8);
  std::memcpy(p + 9, &size, 4);
  if (size > 0) std::memcpy(p + 13, value, size);
  const uint32_t crc = Checksum(p, buf.size() - 4);
  std::memcpy(buf.data(), &crc, 4);
  MLKV_RETURN_NOT_OK(file_.WriteAt(offset_, buf.data(), buf.size()));
  offset_ += buf.size();
  return Status::OK();
}

Status WalWriter::AppendPut(Key key, const void* value, uint32_t size) {
  return AppendRecord(kOpPut, key, value, size);
}

Status WalWriter::AppendDelete(Key key) {
  return AppendRecord(kOpDelete, key, nullptr, 0);
}

Status WalWriter::Sync() { return file_.Sync(); }

Status WalWriter::Reset() {
  MLKV_RETURN_NOT_OK(file_.Truncate(0));
  offset_ = 0;
  return Status::OK();
}

Status ReplayWal(
    const std::string& path,
    const std::function<void(Key, const std::string&, bool)>& fn,
    uint64_t* replayed) {
  if (replayed != nullptr) *replayed = 0;
  if (!std::filesystem::exists(path)) return Status::OK();
  FileDevice file;
  MLKV_RETURN_NOT_OK(file.Open(path, /*truncate=*/false));
  const uint64_t size = file.FileSize();
  uint64_t offset = 0;
  std::vector<char> header(kRecordHeader);
  std::string value;
  while (offset + kRecordHeader <= size) {
    MLKV_RETURN_NOT_OK(file.ReadAt(offset, header.data(), kRecordHeader));
    uint32_t crc = 0;
    uint8_t op = 0;
    Key key = 0;
    uint32_t vlen = 0;
    std::memcpy(&crc, header.data(), 4);
    std::memcpy(&op, header.data() + 4, 1);
    std::memcpy(&key, header.data() + 5, 8);
    std::memcpy(&vlen, header.data() + 13, 4);
    if (vlen > kMaxValueLen || offset + kRecordHeader + vlen > size) {
      break;  // torn tail
    }
    // Re-read op..value contiguously for the checksum.
    std::vector<char> body(kRecordHeader - 4 + vlen);
    MLKV_RETURN_NOT_OK(file.ReadAt(offset + 4, body.data(), body.size()));
    if (Checksum(body.data(), body.size()) != crc) break;  // corrupt tail
    if (op == kOpPut) {
      value.assign(body.data() + 13, vlen);
      fn(key, value, false);
    } else if (op == kOpDelete) {
      fn(key, std::string(), true);
    } else {
      break;  // unknown op: treat as corruption boundary
    }
    offset += kRecordHeader + vlen;
    if (replayed != nullptr) ++(*replayed);
  }
  return Status::OK();
}

}  // namespace mlkv
