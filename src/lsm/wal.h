// Write-ahead log for the LSM baseline (RocksDB-style durability).
//
// Every Put/Delete is appended to the active WAL before it reaches the
// memtable; after a memtable flush produces an SSTable, the WAL resets.
// Recovery replays intact records in order and stops cleanly at the first
// torn or corrupt record (the standard crash-consistent tail rule).
//
// Record layout (little-endian):
//   u32 checksum   over everything after this field
//   u8  op         (1 = put, 2 = delete)
//   u64 key
//   u32 value_len  (0 for deletes)
//   value bytes
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "io/file_device.h"
#include "kv/record.h"

namespace mlkv {

class WalWriter {
 public:
  WalWriter() = default;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Creates (or truncates) the WAL at `path`.
  Status Open(const std::string& path);

  Status AppendPut(Key key, const void* value, uint32_t size);
  Status AppendDelete(Key key);

  // Durability barrier (fdatasync). Callers choose the cadence; the LSM
  // store syncs on memtable rotation by default.
  Status Sync();

  // Empties the log (the covered memtable reached an SSTable).
  Status Reset();

  uint64_t bytes() const { return offset_; }

 private:
  Status AppendRecord(uint8_t op, Key key, const void* value, uint32_t size);

  FileDevice file_;
  uint64_t offset_ = 0;
};

// Replays `path` in append order: fn(key, value, is_tombstone) per intact
// record. A missing file is OK (no records). Returns the number of records
// applied via `replayed` (optional); a torn/corrupt tail ends the replay
// without error.
Status ReplayWal(
    const std::string& path,
    const std::function<void(Key, const std::string&, bool)>& fn,
    uint64_t* replayed = nullptr);

}  // namespace mlkv
