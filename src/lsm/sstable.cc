#include "lsm/sstable.h"

#include <algorithm>
#include <cstring>
#include <functional>

namespace mlkv {

namespace {

// Footer: fixed-size trailer locating bloom + index.
struct Footer {
  uint64_t magic = 0x4D4C4B565353544Cull;  // "MLKVSSTL"
  uint64_t bloom_offset = 0;
  uint64_t bloom_size = 0;
  uint64_t index_offset = 0;
  uint64_t index_count = 0;
  uint64_t num_entries = 0;
};

void AppendEntry(std::string* block, Key key, const std::string& value,
                 bool tombstone) {
  const uint32_t vsize = static_cast<uint32_t>(value.size());
  const uint8_t tomb = tombstone ? 1 : 0;
  block->append(reinterpret_cast<const char*>(&key), 8);
  block->append(reinterpret_cast<const char*>(&vsize), 4);
  block->append(reinterpret_cast<const char*>(&tomb), 1);
  block->append(value);
}

}  // namespace

SSTableBuilder::SSTableBuilder(std::string path, uint32_t block_size,
                               int bloom_bits_per_key)
    : path_(std::move(path)),
      block_size_(block_size),
      bloom_bits_per_key_(bloom_bits_per_key) {}

Status SSTableBuilder::Add(Key key, const std::string& value,
                           bool tombstone) {
  if (!opened_) {
    MLKV_RETURN_NOT_OK(file_.Open(path_));
    opened_ = true;
  }
  if (!all_keys_.empty() && key <= all_keys_.back()) {
    return Status::InvalidArgument("keys must be added in increasing order");
  }
  if (!block_has_entries_) {
    current_block_first_key_ = key;
    block_has_entries_ = true;
  }
  AppendEntry(&current_block_, key, value, tombstone);
  all_keys_.push_back(key);
  ++num_entries_;
  if (current_block_.size() >= block_size_) {
    MLKV_RETURN_NOT_OK(FlushBlock());
  }
  return Status::OK();
}

Status SSTableBuilder::FlushBlock() {
  if (!block_has_entries_) return Status::OK();
  index_.push_back({current_block_first_key_, offset_,
                    static_cast<uint32_t>(current_block_.size())});
  MLKV_RETURN_NOT_OK(
      file_.WriteAt(offset_, current_block_.data(), current_block_.size()));
  offset_ += current_block_.size();
  current_block_.clear();
  block_has_entries_ = false;
  return Status::OK();
}

Status SSTableBuilder::Finish() {
  if (!opened_) {
    MLKV_RETURN_NOT_OK(file_.Open(path_));
    opened_ = true;
  }
  MLKV_RETURN_NOT_OK(FlushBlock());

  BloomFilter bloom;
  bloom.Build(all_keys_, bloom_bits_per_key_);
  const std::string bloom_bytes = bloom.Serialize();
  Footer footer;
  footer.bloom_offset = offset_;
  footer.bloom_size = bloom_bytes.size();
  MLKV_RETURN_NOT_OK(file_.WriteAt(offset_, bloom_bytes.data(),
                                   bloom_bytes.size()));
  offset_ += bloom_bytes.size();

  footer.index_offset = offset_;
  footer.index_count = index_.size();
  for (const IndexEntry& e : index_) {
    char buf[20];
    std::memcpy(buf, &e.first_key, 8);
    std::memcpy(buf + 8, &e.offset, 8);
    std::memcpy(buf + 16, &e.length, 4);
    MLKV_RETURN_NOT_OK(file_.WriteAt(offset_, buf, sizeof(buf)));
    offset_ += sizeof(buf);
  }
  footer.num_entries = num_entries_;
  MLKV_RETURN_NOT_OK(file_.WriteAt(offset_, &footer, sizeof(footer)));
  return file_.Sync();
}

Status SSTable::Open(const std::string& path, uint64_t table_id,
                     BlockCache* cache, std::unique_ptr<SSTable>* out) {
  std::unique_ptr<SSTable> t(new SSTable());
  t->path_ = path;
  t->table_id_ = table_id;
  t->cache_ = cache;
  MLKV_RETURN_NOT_OK(t->file_.Open(path, /*truncate=*/false));
  const uint64_t file_size = t->file_.FileSize();
  if (file_size < sizeof(Footer)) return Status::Corruption("sstable short");
  Footer footer;
  MLKV_RETURN_NOT_OK(
      t->file_.ReadAt(file_size - sizeof(Footer), &footer, sizeof(footer)));
  if (footer.magic != Footer().magic) {
    return Status::Corruption("bad sstable magic");
  }
  std::string bloom_bytes(footer.bloom_size, '\0');
  MLKV_RETURN_NOT_OK(t->file_.ReadAt(footer.bloom_offset, bloom_bytes.data(),
                                     bloom_bytes.size()));
  if (!t->bloom_.Deserialize(bloom_bytes.data(), bloom_bytes.size())) {
    return Status::Corruption("bad bloom filter");
  }
  t->index_.resize(footer.index_count);
  uint64_t off = footer.index_offset;
  for (auto& e : t->index_) {
    char buf[20];
    MLKV_RETURN_NOT_OK(t->file_.ReadAt(off, buf, sizeof(buf)));
    std::memcpy(&e.first_key, buf, 8);
    std::memcpy(&e.offset, buf + 8, 8);
    std::memcpy(&e.length, buf + 16, 4);
    off += sizeof(buf);
  }
  t->num_entries_ = footer.num_entries;
  if (!t->index_.empty()) {
    t->min_key_ = t->index_.front().first_key;
    // The max key requires scanning the last block.
    std::string block;
    MLKV_RETURN_NOT_OK(t->ReadBlock(t->index_.size() - 1, &block));
    size_t pos = 0;
    Key last = t->min_key_;
    while (pos + 13 <= block.size()) {
      Key k;
      uint32_t vsize;
      std::memcpy(&k, block.data() + pos, 8);
      std::memcpy(&vsize, block.data() + pos + 8, 4);
      pos += 13 + vsize;
      last = k;
    }
    t->max_key_ = last;
  }
  *out = std::move(t);
  return Status::OK();
}

Status SSTable::ReadBlock(size_t block_idx, std::string* out) const {
  const IndexEntry& e = index_[block_idx];
  const BlockCache::BlockId id{table_id_, e.offset};
  if (cache_ != nullptr && cache_->Get(id, out)) return Status::OK();
  out->resize(e.length);
  MLKV_RETURN_NOT_OK(file_.ReadAt(e.offset, out->data(), e.length));
  if (cache_ != nullptr) cache_->Insert(id, *out);
  return Status::OK();
}

Status SSTable::SearchBlock(const std::string& block, Key key,
                            GetResult* out) const {
  size_t pos = 0;
  while (pos + 13 <= block.size()) {
    Key k;
    uint32_t vsize;
    uint8_t tomb;
    std::memcpy(&k, block.data() + pos, 8);
    std::memcpy(&vsize, block.data() + pos + 8, 4);
    std::memcpy(&tomb, block.data() + pos + 12, 1);
    if (k == key) {
      out->found = true;
      out->tombstone = tomb != 0;
      out->value.assign(block.data() + pos + 13, vsize);
      return Status::OK();
    }
    if (k > key) break;  // sorted within block
    pos += 13 + vsize;
  }
  out->found = false;
  return Status::OK();
}

Status SSTable::Get(Key key, GetResult* out) const {
  out->found = false;
  if (index_.empty() || key < min_key_ || key > max_key_) return Status::OK();
  if (!bloom_.MayContain(key)) return Status::OK();
  // Binary search the index for the last block whose first_key <= key.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](Key k, const IndexEntry& e) { return k < e.first_key; });
  if (it == index_.begin()) return Status::OK();
  --it;
  std::string block;
  MLKV_RETURN_NOT_OK(ReadBlock(static_cast<size_t>(it - index_.begin()),
                               &block));
  return SearchBlock(block, key, out);
}

Status SSTable::Scan(
    const std::function<void(Key, const std::string&, bool)>& fn) const {
  for (size_t b = 0; b < index_.size(); ++b) {
    std::string block;
    MLKV_RETURN_NOT_OK(ReadBlock(b, &block));
    size_t pos = 0;
    while (pos + 13 <= block.size()) {
      Key k;
      uint32_t vsize;
      uint8_t tomb;
      std::memcpy(&k, block.data() + pos, 8);
      std::memcpy(&vsize, block.data() + pos + 8, 4);
      std::memcpy(&tomb, block.data() + pos + 12, 1);
      fn(k, std::string(block.data() + pos + 13, vsize), tomb != 0);
      pos += 13 + vsize;
    }
  }
  return Status::OK();
}

Status SSTable::RangeScan(
    Key from, Key to,
    const std::function<void(Key, const std::string&, bool)>& fn) const {
  if (index_.empty() || from > to || to < min_key_ || from > max_key_) {
    return Status::OK();
  }
  // First candidate block: the last block whose first_key <= from (an
  // earlier block cannot contain `from`), or block 0 when from < all.
  size_t b = 0;
  {
    size_t lo = 0, hi = index_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (index_[mid].first_key <= from) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    b = lo > 0 ? lo - 1 : 0;
  }
  for (; b < index_.size() && index_[b].first_key <= to; ++b) {
    std::string block;
    MLKV_RETURN_NOT_OK(ReadBlock(b, &block));
    size_t pos = 0;
    while (pos + 13 <= block.size()) {
      Key k;
      uint32_t vsize;
      uint8_t tomb;
      std::memcpy(&k, block.data() + pos, 8);
      std::memcpy(&vsize, block.data() + pos + 8, 4);
      std::memcpy(&tomb, block.data() + pos + 12, 1);
      if (k > to) return Status::OK();
      if (k >= from) {
        fn(k, std::string(block.data() + pos + 13, vsize), tomb != 0);
      }
      pos += 13 + vsize;
    }
  }
  return Status::OK();
}

}  // namespace mlkv
