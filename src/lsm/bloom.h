// Bloom filter over 64-bit keys (double-hashing scheme, as in LevelDB /
// RocksDB filter blocks). ~1% false positives at 10 bits/key.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/hash.h"
#include "kv/record.h"

namespace mlkv {

class BloomFilter {
 public:
  BloomFilter() = default;

  // Builds a filter sized for `keys.size()` keys at `bits_per_key`.
  void Build(const std::vector<Key>& keys, int bits_per_key) {
    num_probes_ = static_cast<int>(bits_per_key * 0.69);  // ln2 * bits/key
    if (num_probes_ < 1) num_probes_ = 1;
    if (num_probes_ > 30) num_probes_ = 30;
    size_t bits = keys.size() * static_cast<size_t>(bits_per_key);
    if (bits < 64) bits = 64;
    bits_.assign((bits + 7) / 8, 0);
    for (const Key key : keys) AddHash(Hash64(key));
  }

  bool MayContain(Key key) const {
    if (bits_.empty()) return true;
    uint64_t h = Hash64(key);
    const uint64_t delta = (h >> 17) | (h << 47);
    const size_t nbits = bits_.size() * 8;
    for (int i = 0; i < num_probes_; ++i) {
      const size_t pos = h % nbits;
      if ((bits_[pos / 8] & (1u << (pos % 8))) == 0) return false;
      h += delta;
    }
    return true;
  }

  // Serialization (stored in the SSTable tail).
  std::string Serialize() const {
    std::string out;
    const uint32_t probes = static_cast<uint32_t>(num_probes_);
    const uint64_t nbytes = bits_.size();
    out.append(reinterpret_cast<const char*>(&probes), 4);
    out.append(reinterpret_cast<const char*>(&nbytes), 8);
    out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
    return out;
  }

  bool Deserialize(const char* data, size_t n) {
    if (n < 12) return false;
    uint32_t probes;
    uint64_t nbytes;
    std::memcpy(&probes, data, 4);
    std::memcpy(&nbytes, data + 4, 8);
    if (n < 12 + nbytes || probes == 0 || probes > 30) return false;
    num_probes_ = static_cast<int>(probes);
    bits_.assign(data + 12, data + 12 + nbytes);
    return true;
  }

  size_t SerializedSize() const { return 12 + bits_.size(); }

 private:
  void AddHash(uint64_t h) {
    const uint64_t delta = (h >> 17) | (h << 47);
    const size_t nbits = bits_.size() * 8;
    for (int i = 0; i < num_probes_; ++i) {
      const size_t pos = h % nbits;
      bits_[pos / 8] |= static_cast<uint8_t>(1u << (pos % 8));
      h += delta;
    }
  }

  int num_probes_ = 0;
  std::vector<uint8_t> bits_;
};

}  // namespace mlkv
