#include "lsm/lsm_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace mlkv {

Status LsmStore::Open(const LsmOptions& options) {
  options_ = options;
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) return Status::IOError("create dir: " + ec.message());
  active_ = std::make_shared<MemTable>();
  cache_.reset(new BlockCache(options.block_cache_bytes));
  if (std::filesystem::exists(LevelsPath())) {
    MLKV_RETURN_NOT_OK(Recover());
  }
  // The WAL tail may carry writes even when no flush (and hence no LEVELS
  // manifest) ever happened; replay it regardless.
  MLKV_RETURN_NOT_OK(ReplayWal(
      WalPath(),
      [this](Key key, const std::string& value, bool tombstone) {
        if (tombstone) {
          active_->Delete(key);
        } else {
          active_->Put(key, value.data(),
                       static_cast<uint32_t>(value.size()));
        }
      },
      nullptr));
  if (options_.enable_wal) {
    // Recover() already replayed the previous WAL contents into the active
    // memtable; the fresh writer re-logs them so they stay covered.
    auto snapshot = active_->Snapshot();
    wal_ = std::make_unique<WalWriter>();
    MLKV_RETURN_NOT_OK(wal_->Open(WalPath()));
    for (const auto& [key, entry] : snapshot) {
      if (entry.tombstone) {
        MLKV_RETURN_NOT_OK(wal_->AppendDelete(key));
      } else {
        MLKV_RETURN_NOT_OK(
            wal_->AppendPut(key, entry.value.data(),
                            static_cast<uint32_t>(entry.value.size())));
      }
    }
    if (!snapshot.empty()) MLKV_RETURN_NOT_OK(wal_->Sync());
  }
  return Status::OK();
}

Status LsmStore::Recover() {
  std::ifstream in(LevelsPath());
  if (!in.is_open()) return Status::IOError("open " + LevelsPath());
  std::string line;
  if (!std::getline(in, line) || line != "LSM_LEVELS v1") {
    return Status::Corruption("bad LEVELS header");
  }
  uint64_t next_id = 1;
  std::vector<uint64_t> l0_ids, l1_ids;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "next_id") {
      ls >> next_id;
    } else if (tag == "l0" || tag == "l1") {
      uint64_t id = 0;
      auto& ids = tag == "l0" ? l0_ids : l1_ids;
      while (ls >> id) ids.push_back(id);
    } else {
      return Status::Corruption("bad LEVELS row: " + line);
    }
    if (ls.fail() && !ls.eof()) {
      return Status::Corruption("bad LEVELS row: " + line);
    }
  }
  next_table_id_.store(next_id);
  auto open_into = [this](const std::vector<uint64_t>& ids,
                          std::vector<std::shared_ptr<SSTable>>* level) {
    for (const uint64_t id : ids) {
      std::unique_ptr<SSTable> t;
      MLKV_RETURN_NOT_OK(SSTable::Open(TablePath(id), id, cache_.get(), &t));
      level->push_back(std::shared_ptr<SSTable>(t.release()));
    }
    return Status::OK();
  };
  MLKV_RETURN_NOT_OK(open_into(l0_ids, &l0_));
  MLKV_RETURN_NOT_OK(open_into(l1_ids, &l1_));
  return Status::OK();
}

Status LsmStore::WriteLevels() {
  const std::string tmp = LevelsPath() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return Status::IOError("open " + tmp);
    out << "LSM_LEVELS v1\n";
    out << "next_id " << next_table_id_.load() << '\n';
    out << "l0";
    for (const auto& t : l0_) out << ' ' << t->table_id();
    out << "\nl1";
    for (const auto& t : l1_) out << ' ' << t->table_id();
    out << '\n';
    out.flush();
    if (!out.good()) return Status::IOError("write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, LevelsPath(), ec);
  if (ec) return Status::IOError("rename LEVELS: " + ec.message());
  return Status::OK();
}

std::string LsmStore::TablePath(uint64_t id) const {
  return options_.dir + "/sst_" + std::to_string(id) + ".sst";
}

std::string LsmStore::NextTablePath() {
  return TablePath(next_table_id_.fetch_add(1));
}

Status LsmStore::Put(Key key, const void* value, uint32_t size) {
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lk(mu_);
  if (wal_ != nullptr) {
    MLKV_RETURN_NOT_OK(wal_->AppendPut(key, value, size));
    if (options_.sync_every_write) MLKV_RETURN_NOT_OK(wal_->Sync());
  }
  active_->Put(key, value, size);
  return MaybeScheduleFlush();
}

Status LsmStore::Delete(Key key) {
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lk(mu_);
  if (wal_ != nullptr) {
    MLKV_RETURN_NOT_OK(wal_->AppendDelete(key));
    if (options_.sync_every_write) MLKV_RETURN_NOT_OK(wal_->Sync());
  }
  active_->Delete(key);
  return MaybeScheduleFlush();
}

Status LsmStore::MaybeScheduleFlush() {
  if (active_->ApproximateBytes() < options_.memtable_bytes) {
    return Status::OK();
  }
  immutables_.push_front(active_);
  active_ = std::make_shared<MemTable>();
  // Synchronous flush keeps the design single-writer-simple; the paper's
  // baseline comparisons measure steady-state I/O volume, not flush
  // latency hiding.
  auto imm = immutables_.back();
  immutables_.pop_back();
  MLKV_RETURN_NOT_OK(FlushMemTable(imm));
  MLKV_RETURN_NOT_OK(MaybeCompact());
  MLKV_RETURN_NOT_OK(WriteLevels());
  if (wal_ != nullptr) {
    // Everything the WAL covered now lives in an SSTable; the new active
    // memtable is empty, so the log restarts from scratch.
    MLKV_RETURN_NOT_OK(wal_->Reset());
  }
  return Status::OK();
}

Status LsmStore::FlushMemTable(std::shared_ptr<MemTable> imm) {
  const uint64_t table_id = next_table_id_.fetch_add(1);
  const std::string path = TablePath(table_id);
  SSTableBuilder builder(path, options_.block_size,
                         options_.bloom_bits_per_key);
  for (const auto& [key, entry] : imm->Snapshot()) {
    MLKV_RETURN_NOT_OK(builder.Add(key, entry.value, entry.tombstone));
  }
  MLKV_RETURN_NOT_OK(builder.Finish());
  std::unique_ptr<SSTable> table;
  MLKV_RETURN_NOT_OK(SSTable::Open(path, table_id, cache_.get(), &table));
  l0_.insert(l0_.begin(), std::shared_ptr<SSTable>(table.release()));
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LsmStore::MaybeCompact() {
  if (l0_.size() < options_.l0_compaction_trigger) return Status::OK();
  // Full compaction of L0 + L1 into a fresh L1 run: merge newest-first so
  // the latest version of each key wins; drop tombstones at the bottom.
  std::map<Key, std::pair<std::string, bool>> merged;
  auto absorb = [&merged](const std::shared_ptr<SSTable>& t) {
    return t->Scan([&merged](Key k, const std::string& v, bool tomb) {
      merged.emplace(k, std::make_pair(v, tomb));  // first writer (newest) wins
    });
  };
  for (const auto& t : l0_) MLKV_RETURN_NOT_OK(absorb(t));
  for (const auto& t : l1_) MLKV_RETURN_NOT_OK(absorb(t));

  const uint64_t table_id = next_table_id_.fetch_add(1);
  const std::string path = TablePath(table_id);
  SSTableBuilder builder(path, options_.block_size,
                         options_.bloom_bits_per_key);
  for (const auto& [key, vt] : merged) {
    if (vt.second) continue;  // bottom level: tombstones die here
    MLKV_RETURN_NOT_OK(builder.Add(key, vt.first, false));
  }
  MLKV_RETURN_NOT_OK(builder.Finish());
  std::unique_ptr<SSTable> table;
  MLKV_RETURN_NOT_OK(SSTable::Open(path, table_id, cache_.get(), &table));

  // Retire old tables.
  std::vector<std::shared_ptr<SSTable>> old;
  old.swap(l0_);
  for (auto& t : l1_) old.push_back(std::move(t));
  l1_.clear();
  l1_.push_back(std::shared_ptr<SSTable>(table.release()));
  for (const auto& t : old) {
    cache_->EraseTable(t->table_id());
    std::error_code ec;
    std::filesystem::remove(t->path(), ec);
  }
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LsmStore::Get(Key key, std::string* value) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<MemTable> active;
  std::vector<std::shared_ptr<MemTable>> imms;
  std::vector<std::shared_ptr<SSTable>> l0, l1;
  {
    std::shared_lock lk(mu_);
    active = active_;
    imms.assign(immutables_.begin(), immutables_.end());
    l0 = l0_;
    l1 = l1_;
  }
  if (auto e = active->Get(key)) {
    stats_.memtable_hits.fetch_add(1, std::memory_order_relaxed);
    if (e->tombstone) return Status::NotFound();
    *value = e->value;
    return Status::OK();
  }
  for (const auto& imm : imms) {
    if (auto e = imm->Get(key)) {
      stats_.memtable_hits.fetch_add(1, std::memory_order_relaxed);
      if (e->tombstone) return Status::NotFound();
      *value = e->value;
      return Status::OK();
    }
  }
  for (const auto& t : l0) {  // newest first
    SSTable::GetResult r;
    MLKV_RETURN_NOT_OK(t->Get(key, &r));
    if (r.found) {
      stats_.l0_hits.fetch_add(1, std::memory_order_relaxed);
      if (r.tombstone) return Status::NotFound();
      *value = std::move(r.value);
      return Status::OK();
    }
  }
  for (const auto& t : l1) {
    SSTable::GetResult r;
    MLKV_RETURN_NOT_OK(t->Get(key, &r));
    if (r.found) {
      stats_.l1_hits.fetch_add(1, std::memory_order_relaxed);
      if (r.tombstone) return Status::NotFound();
      *value = std::move(r.value);
      return Status::OK();
    }
  }
  return Status::NotFound();
}

Status LsmStore::Flush() {
  std::unique_lock lk(mu_);
  if (active_->size() == 0) return Status::OK();
  auto imm = active_;
  active_ = std::make_shared<MemTable>();
  MLKV_RETURN_NOT_OK(FlushMemTable(imm));
  MLKV_RETURN_NOT_OK(WriteLevels());
  if (wal_ != nullptr) MLKV_RETURN_NOT_OK(wal_->Reset());
  return Status::OK();
}

Status LsmStore::Scan(Key from, Key to,
                      const std::function<void(Key, const std::string&)>& fn) {
  if (from > to) return Status::OK();
  std::shared_ptr<MemTable> active;
  std::vector<std::shared_ptr<MemTable>> imms;
  std::vector<std::shared_ptr<SSTable>> l0, l1;
  {
    std::shared_lock lk(mu_);
    active = active_;
    imms.assign(immutables_.begin(), immutables_.end());
    l0 = l0_;
    l1 = l1_;
  }
  // Merge newest-source-first: the first writer of a key wins, so absorbing
  // memtables before L0 before L1 yields the live version.
  std::map<Key, std::pair<std::string, bool>> merged;
  for (const auto& [k, e] : active->SnapshotRange(from, to)) {
    merged.emplace(k, std::make_pair(e.value, e.tombstone));
  }
  for (const auto& imm : imms) {
    for (const auto& [k, e] : imm->SnapshotRange(from, to)) {
      merged.emplace(k, std::make_pair(e.value, e.tombstone));
    }
  }
  auto absorb = [&merged, from, to](const std::shared_ptr<SSTable>& t) {
    return t->RangeScan(from, to,
                        [&merged](Key k, const std::string& v, bool tomb) {
                          merged.emplace(k, std::make_pair(v, tomb));
                        });
  };
  for (const auto& t : l0) MLKV_RETURN_NOT_OK(absorb(t));
  for (const auto& t : l1) MLKV_RETURN_NOT_OK(absorb(t));
  for (const auto& [k, vt] : merged) {
    if (!vt.second) fn(k, vt.first);
  }
  return Status::OK();
}

size_t LsmStore::l0_run_count() const {
  std::shared_lock lk(mu_);
  return l0_.size();
}
size_t LsmStore::l1_run_count() const {
  std::shared_lock lk(mu_);
  return l1_.size();
}

LsmStatsSnapshot LsmStore::stats() const {
  LsmStatsSnapshot s;
  s.gets = stats_.gets.load(std::memory_order_relaxed);
  s.puts = stats_.puts.load(std::memory_order_relaxed);
  s.deletes = stats_.deletes.load(std::memory_order_relaxed);
  s.memtable_hits = stats_.memtable_hits.load(std::memory_order_relaxed);
  s.l0_hits = stats_.l0_hits.load(std::memory_order_relaxed);
  s.l1_hits = stats_.l1_hits.load(std::memory_order_relaxed);
  s.flushes = stats_.flushes.load(std::memory_order_relaxed);
  s.compactions = stats_.compactions.load(std::memory_order_relaxed);
  const auto cs = cache_->stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  return s;
}

}  // namespace mlkv
