// MemTable for the LSM baseline: an ordered in-memory write buffer. The
// RocksDB-equivalent component uses a skiplist; we use a reader/writer-locked
// std::map, which preserves the behaviour Fig. 7 measures (memory-buffered
// writes, sorted flush) with far less machinery — MLKV is the system under
// test, this is the comparator.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "kv/record.h"

namespace mlkv {

class MemTable {
 public:
  struct Entry {
    std::string value;
    bool tombstone = false;
  };

  void Put(Key key, const void* value, uint32_t size) {
    std::unique_lock lk(mu_);
    auto [it, inserted] = map_.insert_or_assign(
        key, Entry{std::string(static_cast<const char*>(value), size), false});
    (void)it;
    bytes_ += size + sizeof(Key);
  }

  void Delete(Key key) {
    std::unique_lock lk(mu_);
    map_.insert_or_assign(key, Entry{std::string(), true});
    bytes_ += sizeof(Key);
  }

  // Returns nullopt when the key is not present; a present tombstone is
  // returned so readers stop searching older levels.
  std::optional<Entry> Get(Key key) const {
    std::shared_lock lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  uint64_t ApproximateBytes() const {
    std::shared_lock lk(mu_);
    return bytes_;
  }

  size_t size() const {
    std::shared_lock lk(mu_);
    return map_.size();
  }

  // Sorted snapshot for flushing to an SSTable.
  std::vector<std::pair<Key, Entry>> Snapshot() const {
    std::shared_lock lk(mu_);
    return {map_.begin(), map_.end()};
  }

  // Sorted snapshot of entries with keys in [from, to] (range scans).
  std::vector<std::pair<Key, Entry>> SnapshotRange(Key from, Key to) const {
    std::shared_lock lk(mu_);
    auto lo = map_.lower_bound(from);
    auto hi = map_.upper_bound(to);
    return {lo, hi};
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<Key, Entry> map_;
  uint64_t bytes_ = 0;
};

}  // namespace mlkv
