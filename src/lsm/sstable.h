// SSTable: immutable sorted run on disk for the LSM baseline.
//
// File layout:
//   [data blocks ...][bloom filter][index][footer]
// Data blocks hold (key, value_size, tombstone, value) entries; the index
// maps each block's first key to (offset, length); the bloom filter covers
// all keys in the table. Blocks are read through a shared LRU BlockCache so
// the buffer-size sweep in Fig. 7 applies to this backend too.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/file_device.h"
#include "kv/record.h"
#include "lsm/bloom.h"
#include "lsm/block_cache.h"

namespace mlkv {

class SSTableBuilder {
 public:
  // `block_size` is the uncompressed data-block payload target.
  SSTableBuilder(std::string path, uint32_t block_size = 4096,
                 int bloom_bits_per_key = 10);

  Status Add(Key key, const std::string& value, bool tombstone);
  // Finalizes the file; the builder is unusable afterwards.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }

 private:
  Status FlushBlock();

  std::string path_;
  uint32_t block_size_;
  int bloom_bits_per_key_;
  FileDevice file_;
  bool opened_ = false;

  std::string current_block_;
  Key current_block_first_key_ = 0;
  bool block_has_entries_ = false;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;

  struct IndexEntry {
    Key first_key;
    uint64_t offset;
    uint32_t length;
  };
  std::vector<IndexEntry> index_;
  std::vector<Key> all_keys_;
};

class SSTable {
 public:
  // Opens the table and loads index + bloom into memory (data stays on
  // disk and is fetched through `cache`).
  static Status Open(const std::string& path, uint64_t table_id,
                     BlockCache* cache, std::unique_ptr<SSTable>* out);

  struct GetResult {
    bool found = false;
    bool tombstone = false;
    std::string value;
  };
  Status Get(Key key, GetResult* out) const;

  // Full scan in key order (compaction input).
  Status Scan(
      const std::function<void(Key, const std::string&, bool)>& fn) const;

  // Scan limited to keys in [from, to]; uses the block index to skip
  // non-overlapping blocks (YCSB-E range reads).
  Status RangeScan(
      Key from, Key to,
      const std::function<void(Key, const std::string&, bool)>& fn) const;

  Key min_key() const { return min_key_; }
  Key max_key() const { return max_key_; }
  uint64_t num_entries() const { return num_entries_; }
  const std::string& path() const { return path_; }
  uint64_t table_id() const { return table_id_; }

 private:
  SSTable() = default;

  Status ReadBlock(size_t block_idx, std::string* out) const;
  Status SearchBlock(const std::string& block, Key key, GetResult* out) const;

  std::string path_;
  uint64_t table_id_ = 0;
  mutable FileDevice file_;
  BlockCache* cache_ = nullptr;
  BloomFilter bloom_;
  struct IndexEntry {
    Key first_key;
    uint64_t offset;
    uint32_t length;
  };
  std::vector<IndexEntry> index_;
  Key min_key_ = 0, max_key_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace mlkv
