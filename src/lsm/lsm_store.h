// LsmStore: the RocksDB-style baseline backend — active memtable, immutable
// memtables awaiting flush, and two levels of SSTables (L0: overlapping
// runs, L1: one sorted non-overlapping run set produced by compaction), all
// read through a shared LRU block cache with bloom filters.
//
// The paper's Fig. 7 integrates PERSIA/DGL/DGL-KE with RocksDB as an
// offloading baseline; this class plays that role. It favours fidelity of
// the performance-relevant mechanisms (write buffering, sorted-run reads,
// read amplification across levels, compaction I/O) over RocksDB's full
// feature surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/wal.h"

namespace mlkv {

struct LsmOptions {
  std::string dir;
  uint64_t memtable_bytes = 8ull << 20;   // flush threshold
  uint64_t block_cache_bytes = 32ull << 20;
  uint32_t block_size = 4096;
  int bloom_bits_per_key = 10;
  size_t l0_compaction_trigger = 4;       // L0 runs before compaction

  // Write-ahead logging. Every Put/Delete is appended to dir/WAL before it
  // reaches the memtable; the WAL resets once its memtable is an SSTable.
  // Opening a directory that contains a LEVELS manifest recovers the tree
  // and replays the WAL tail.
  bool enable_wal = true;
  // fdatasync the WAL on every write (true) or only at rotation (false).
  // Per-write syncing is the RocksDB `sync=true` equivalent and costs
  // throughput; rotation syncing loses at most one memtable on power loss.
  bool sync_every_write = false;
};

struct LsmStatsSnapshot {
  uint64_t gets = 0, puts = 0, deletes = 0;
  uint64_t memtable_hits = 0, l0_hits = 0, l1_hits = 0;
  uint64_t flushes = 0, compactions = 0;
  uint64_t cache_hits = 0, cache_misses = 0;
};

class LsmStore {
 public:
  LsmStore() = default;
  ~LsmStore() = default;

  LsmStore(const LsmStore&) = delete;
  LsmStore& operator=(const LsmStore&) = delete;

  Status Open(const LsmOptions& options);

  Status Put(Key key, const void* value, uint32_t size);
  Status Get(Key key, std::string* value);
  Status Delete(Key key);

  // Visits every live key in [from, to] in ascending key order, merging the
  // memtables and both levels with newest-version-wins (YCSB-E scans).
  Status Scan(Key from, Key to,
              const std::function<void(Key, const std::string&)>& fn);

  // Forces the active memtable to disk (tests / shutdown).
  Status Flush();

  LsmStatsSnapshot stats() const;
  size_t l0_run_count() const;
  size_t l1_run_count() const;

 private:
  Status MaybeScheduleFlush();         // called with write lock held
  Status FlushMemTable(std::shared_ptr<MemTable> imm);
  Status MaybeCompact();
  std::string NextTablePath();
  std::string TablePath(uint64_t id) const;
  std::string WalPath() const { return options_.dir + "/WAL"; }
  std::string LevelsPath() const { return options_.dir + "/LEVELS"; }
  // Persists the level structure (write-then-rename); called after every
  // flush/compaction with the write lock held.
  Status WriteLevels();
  // Rebuilds the tree from LEVELS and replays the WAL (called from Open).
  Status Recover();

  LsmOptions options_;
  mutable std::shared_mutex mu_;  // guards memtables + level lists
  std::shared_ptr<MemTable> active_;
  std::deque<std::shared_ptr<MemTable>> immutables_;
  std::vector<std::shared_ptr<SSTable>> l0_;  // newest first
  std::vector<std::shared_ptr<SSTable>> l1_;  // sorted, non-overlapping
  std::unique_ptr<BlockCache> cache_;
  std::atomic<uint64_t> next_table_id_{1};
  std::unique_ptr<WalWriter> wal_;  // null when WAL disabled

  struct Stats {
    std::atomic<uint64_t> gets{0}, puts{0}, deletes{0};
    std::atomic<uint64_t> memtable_hits{0}, l0_hits{0}, l1_hits{0};
    std::atomic<uint64_t> flushes{0}, compactions{0};
  };
  mutable Stats stats_;
};

}  // namespace mlkv
