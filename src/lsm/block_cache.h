// Sharded LRU block cache keyed by (table_id, block_offset), charging by
// block byte size — the LSM analogue of the hybrid log's in-memory buffer.
// Fig. 7 sweeps this capacity for the RocksDB-style baseline.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"

namespace mlkv {

class BlockCache {
 public:
  // `shards` rounds up via ShardMask so routing is the shared mask-based
  // ShardOf (common/hash.h) instead of a hash-mod.
  explicit BlockCache(uint64_t capacity_bytes, size_t shards = 16)
      : shard_mask_(ShardMask(shards)) {
    per_shard_capacity_ = capacity_bytes / (shard_mask_ + 1);
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    shard_data_ = std::vector<Shard>(shard_mask_ + 1);
  }

  using BlockId = std::pair<uint64_t, uint64_t>;  // (table_id, offset)

  bool Get(BlockId id, std::string* out) {
    Shard& s = ShardFor(id);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(Pack(id));
    if (it == s.map.end()) {
      ++s.misses;
      return false;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
    *out = *it->second.block;
    ++s.hits;
    return true;
  }

  void Insert(BlockId id, std::string block) {
    Shard& s = ShardFor(id);
    std::lock_guard<std::mutex> lk(s.mu);
    const uint64_t packed = Pack(id);
    if (s.map.count(packed)) return;
    const uint64_t charge = block.size();
    while (!s.lru.empty() && s.used + charge > per_shard_capacity_) {
      const uint64_t victim = s.lru.back();
      s.lru.pop_back();
      auto vit = s.map.find(victim);
      s.used -= vit->second.block->size();
      s.map.erase(vit);
      ++s.evictions;
    }
    if (charge > per_shard_capacity_) return;  // block larger than shard
    s.lru.push_front(packed);
    Entry e;
    e.block = std::make_shared<std::string>(std::move(block));
    e.lru_it = s.lru.begin();
    s.map.emplace(packed, std::move(e));
    s.used += charge;
  }

  // Drops every block of `table_id` (called when a table is deleted after
  // compaction). Linear in shard size; compactions are rare.
  void EraseTable(uint64_t table_id) {
    for (auto& s : shard_data_) {
      std::lock_guard<std::mutex> lk(s.mu);
      for (auto it = s.map.begin(); it != s.map.end();) {
        if ((it->first >> 40) == table_id) {
          s.used -= it->second.block->size();
          s.lru.erase(it->second.lru_it);
          it = s.map.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  struct CacheStats {
    uint64_t hits = 0, misses = 0, evictions = 0, used_bytes = 0;
  };
  CacheStats stats() const {
    CacheStats c;
    for (const auto& s : shard_data_) {
      std::lock_guard<std::mutex> lk(s.mu);
      c.hits += s.hits;
      c.misses += s.misses;
      c.evictions += s.evictions;
      c.used_bytes += s.used;
    }
    return c;
  }

 private:
  struct Entry {
    std::shared_ptr<std::string> block;
    std::list<uint64_t>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
    std::list<uint64_t> lru;
    uint64_t used = 0;
    uint64_t hits = 0, misses = 0, evictions = 0;
  };

  // 24 bits of table id, 40 bits of offset — ample for the benchmarks.
  static uint64_t Pack(BlockId id) {
    return (id.first << 40) | (id.second & ((1ull << 40) - 1));
  }

  Shard& ShardFor(BlockId id) {
    return shard_data_[ShardOf(Hash64(Pack(id)), shard_mask_)];
  }

  uint64_t shard_mask_;
  uint64_t per_shard_capacity_;
  std::vector<Shard> shard_data_;
};

}  // namespace mlkv
