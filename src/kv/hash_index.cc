#include "kv/hash_index.h"

#include <vector>

#include "io/file_device.h"

namespace mlkv {

HashIndex::HashIndex(uint64_t num_slots) {
  const uint64_t n = RoundUpPow2(num_slots < 16 ? 16 : num_slots);
  mask_ = n - 1;
  slots_.reset(new std::atomic<Address>[n]);
  for (uint64_t i = 0; i < n; ++i) {
    slots_[i].store(kInvalidAddress, std::memory_order_relaxed);
  }
}

Status HashIndex::Grow(uint32_t factor_log2) {
  if (factor_log2 == 0) return Status::OK();
  if (factor_log2 > 16) {
    return Status::InvalidArgument("index growth factor too large");
  }
  const uint64_t old_n = mask_ + 1;
  const uint64_t new_n = old_n << factor_log2;
  std::unique_ptr<std::atomic<Address>[]> grown(
      new std::atomic<Address>[new_n]);
  // hash & new_mask == (hash & old_mask) + k * old_n for some k, so slot i's
  // keys can only rehash to slots {i, i+old_n, i+2*old_n, ...}; seed each
  // with the old chain head.
  for (uint64_t i = 0; i < old_n; ++i) {
    const Address head = slots_[i].load(std::memory_order_relaxed);
    for (uint64_t k = 0; k < (1ull << factor_log2); ++k) {
      grown[i + k * old_n].store(head, std::memory_order_relaxed);
    }
  }
  slots_ = std::move(grown);
  mask_ = new_n - 1;
  return Status::OK();
}

uint64_t HashIndex::CountUsed() const {
  uint64_t used = 0;
  for (uint64_t i = 0; i <= mask_; ++i) {
    if (slots_[i].load(std::memory_order_relaxed) != kInvalidAddress) ++used;
  }
  return used;
}

Status HashIndex::WriteTo(FileDevice* dev, uint64_t offset) const {
  // Snapshot into a plain buffer; checkpoints are taken quiesced, so a
  // relaxed copy of each slot is a consistent image.
  const uint64_t n = mask_ + 1;
  std::vector<Address> buf(n);
  for (uint64_t i = 0; i < n; ++i) {
    buf[i] = slots_[i].load(std::memory_order_relaxed);
  }
  return dev->WriteAt(offset, buf.data(), n * sizeof(Address));
}

Status HashIndex::ReadFrom(const FileDevice& dev, uint64_t offset) {
  const uint64_t n = mask_ + 1;
  std::vector<Address> buf(n);
  MLKV_RETURN_NOT_OK(dev.ReadAt(offset, buf.data(), n * sizeof(Address)));
  for (uint64_t i = 0; i < n; ++i) {
    slots_[i].store(buf[i], std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace mlkv
