// FasterStore: a from-scratch, FASTER-style embedded key-value store over a
// HybridLog + latch-free HashIndex, extended with MLKV's two optimizations:
//
//  * Bounded staleness consistency (paper §III-C1). When
//    `track_staleness` is on, every record carries a 32-bit staleness
//    counter in its control word. Get spins until `staleness <= bound`,
//    then lock-CASes the word with staleness+1; Put never waits and
//    releases with staleness-1 and generation+1. Bound 0 = BSP, huge bound
//    = ASP, anything between = SSP.
//
//  * Promotion (the storage half of look-ahead prefetching, §III-C2).
//    Promote(key) copies a disk-resident record — with its original
//    staleness and value — to the mutable tail region so later Get/Put hit
//    memory. Records already resident in the immutable (read-only) region
//    are skipped by default, mirroring the paper's page-write-saving rule.
//
// With `track_staleness == false` the store behaves as plain FASTER and is
// used as the "X-FASTER" baseline in the benchmarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "kv/hash_index.h"
#include "kv/hybrid_log.h"
#include "kv/pending_read.h"
#include "kv/record.h"

namespace mlkv {

struct FasterOptions {
  std::string path;                    // backing log file
  uint64_t index_slots = 1ull << 20;   // hash index size (rounded to pow2)
  // Log page size. Open() halves it (down to 4 KiB) until at least four
  // pages fit in mem_size, so tiny buffer budgets work out of the box.
  uint64_t page_size = 1ull << 20;
  uint64_t mem_size = 64ull << 20;     // in-memory log buffer
  double mutable_fraction = 0.5;

  // MLKV mode. When false, staleness fields are carried but never checked
  // and Get never waits (plain FASTER behaviour).
  bool track_staleness = false;
  uint32_t staleness_bound = UINT32_MAX;
  // Get retries (index re-lookups) while waiting out the staleness bound
  // before giving up with Status::Busy. Each retry yields the CPU. The
  // default is shared across layers (kv/record.h).
  uint64_t busy_spin_limit = kDefaultBusySpinLimit;

  // Promote records touched by cold Gets to the tail (FASTER's
  // "copy reads to tail"). Off by default; Lookahead drives promotion.
  bool promote_cold_reads = false;
  // Ablation knob (DESIGN.md D2): when false, Promote() also copies records
  // from the immutable in-memory region, re-dirtying pages.
  bool skip_promote_if_in_memory = true;

  // Builds the log's backing device; null uses a plain FileDevice. Tests
  // inject fault decorators here (io/faulty_file_device.h).
  std::function<std::unique_ptr<FileDevice>()> device_factory;

  // Shared engine for the log's coalesced flush waves (page roll, FlushAll,
  // Persist); null keeps flushes sequential blocking writes. Not owned.
  AsyncIoEngine* io = nullptr;
  // kGroup: Persist() commits through a per-log GroupCommitter (concurrent
  // callers share one fsync) and Recover() replays group-committed records
  // past the checkpoint tail. kSync keeps the classic checkpoint-only
  // durability, byte-identical on disk.
  DurabilityMode durability_mode = DurabilityMode::kSync;
  uint64_t group_commit_window_us = 200;
  uint64_t group_commit_max_bytes = 1ull << 20;
  // kIncremental: Checkpoint() persists only dirty/undurable log pages and
  // an index delta chained onto the previous checkpoint under the same
  // prefix; kFull keeps the classic full-flush + full-index-dump layout.
  CheckpointMode checkpoint_mode = CheckpointMode::kFull;
};

struct FasterStatsSnapshot {
  uint64_t reads = 0, upserts = 0, rmws = 0, deletes = 0;
  uint64_t inplace_updates = 0, rcu_appends = 0, inserts = 0;
  uint64_t promotions = 0, promotions_skipped = 0;
  uint64_t staleness_waits = 0, busy_aborts = 0;
  uint64_t disk_record_reads = 0, pages_flushed = 0, pages_evicted = 0;
  uint64_t compactions = 0, compaction_live_copied = 0;
  // Pending-read pipeline: record fetches handed to the AsyncIoEngine,
  // fetches that landed, and keys that fell back to a synchronous re-read
  // (record moved mid-flight / staleness wait).
  uint64_t async_reads_submitted = 0, async_reads_completed = 0;
  uint64_t async_reads_refetched = 0;
  // Write pipeline: pages submitted to / completed by async flush waves,
  // fdatasyncs issued (log's own plus the GroupCommitter's), and fsyncs
  // that covered more than one committer (the group-commit win).
  uint64_t async_writes_submitted = 0, async_writes_completed = 0;
  uint64_t fsyncs = 0, group_commits = 0;
};

// Outcome of one Compact() pass.
struct CompactionResult {
  uint64_t scanned = 0;            // records visited in the dead-candidate
                                   // region (valid headers only)
  uint64_t live_copied = 0;        // still-newest records re-appended at tail
  uint64_t dead_skipped = 0;       // superseded versions dropped
  uint64_t tombstones_dropped = 0; // newest-version tombstones retired
  Address new_begin = kInvalidAddress;
};

class FasterStore {
 public:
  FasterStore() = default;
  ~FasterStore() = default;

  FasterStore(const FasterStore&) = delete;
  FasterStore& operator=(const FasterStore&) = delete;

  Status Open(const FasterOptions& options);

  // Reads the value for `key` into `out` (at most `cap` bytes); the full
  // value size is returned via `size` when non-null. Under staleness
  // tracking, waits until the record's staleness is within `bound` and
  // increments it. `bound == UINT32_MAX` uses the store-level bound.
  Status Read(Key key, void* out, uint32_t cap, uint32_t* size = nullptr,
              uint32_t bound = UINT32_MAX);
  Status Read(Key key, std::string* out, uint32_t bound = UINT32_MAX);

  // Reads without participating in the staleness protocol (no wait, no
  // increment). Used by evaluation passes, which must not perturb the
  // training pipeline's vector clocks.
  Status Peek(Key key, void* out, uint32_t cap, uint32_t* size = nullptr);

  // Inserts or updates. In-place when the record lives in the mutable
  // region with an equal value size; RCU (append new version) otherwise.
  // Under staleness tracking, decrements staleness and bumps generation.
  Status Upsert(Key key, const void* value, uint32_t size);

  // Read-modify-write. `modifier(value, size, exists)` mutates the value
  // in place; when the key is absent it receives a zeroed buffer of
  // `value_size` bytes and `exists == false`. Atomic per record.
  Status Rmw(Key key, uint32_t value_size,
             const std::function<void(char* value, uint32_t size,
                                      bool exists)>& modifier);

  Status Delete(Key key);

  // Copies a cold record to the mutable tail (look-ahead prefetch target).
  // Returns OK whether promoted or skipped; inspect stats for which.
  Status Promote(Key key);

  // --- Two-phase pending-read pipeline (kv/pending_read.h) ---

  // Phase 1 of a batched read: resolves `key` against the in-memory log
  // only. Returns true when the read completed (pending->status and the
  // output buffer are final — including NotFound and Busy, with the exact
  // synchronous semantics); returns false when the newest candidate record
  // is disk-resident, in which case *pending is primed (target address +
  // landing buffer) for submission through a PendingReadWave. Never issues
  // disk I/O itself. `bound == UINT32_MAX` uses the store-level bound.
  bool StartRead(Key key, void* out, uint32_t cap, uint32_t* size,
                 uint32_t bound, bool tracked, PendingRead* pending);

  // Phase 1 of a Lookahead promotion: memory-resident and absent keys run
  // the classic Promote inline (its status is returned, *parked stays
  // false); a disk-resident key primes *pending for wave submission (`cap`
  // must cover the full record value) — finish it with PromoteFromPending.
  // Unlike StartRead this never counts as a read: a prefetch is not a
  // training access.
  Status StartPromote(Key key, uint32_t cap, PendingRead* pending,
                      bool* parked);

  enum class PendingStep { kDone, kResubmit };
  // Phase 2: consumes the landed bytes in pending->buf. kDone means the
  // key's outcome is final; kResubmit means the hash chain continues at
  // another disk address (pending re-primed — submit again). A record the
  // I/O caught mid-move (compaction invalidated the address, eviction beat
  // the classification) or whose frozen staleness fails the bound falls
  // back to a synchronous re-read internally, preserving exact blocking-
  // path semantics; a failed I/O becomes the key's status as-is.
  PendingStep CompletePendingRead(PendingRead* pending,
                                  const Status& io_status);

  // Completes a Lookahead promotion from a landed pending read (tracked ==
  // false, cap >= value size): appends a copy of the fetched record at the
  // tail with its original control word, exactly like Promote's disk case.
  // Skips (OK + promotions_skipped) when a concurrent writer superseded
  // the record in flight.
  Status PromoteFromPending(const PendingRead& pending);

  // Pending-pipeline accounting (called by PendingReadWave per I/O, so the
  // two balance even when several waiters coalesce onto one fetch).
  void CountAsyncSubmitted() {
    stats_.async_reads_submitted.fetch_add(1, std::memory_order_relaxed);
  }
  void CountAsyncCompleted() {
    stats_.async_reads_completed.fetch_add(1, std::memory_order_relaxed);
  }

  // Reads the full record image at a log address: sanitized header plus
  // value bytes. Works for memory- and disk-resident addresses; the basis
  // for log scans, compaction, and table export.
  Status ReadRecordAt(Address address, RecordMeta* meta,
                      std::vector<char>* value);

  // Log garbage collection. Scans [begin, until), re-appends records that
  // are still the newest version of their key at the tail (preserving
  // control word and flags — a compaction copy is not an update), then
  // advances the begin address and punches the dead file range. `until` is
  // clamped to the read-only boundary; the mutable region is never
  // compacted. Safe under concurrent reads and writes: liveness is decided
  // by an index CAS, so a record updated mid-compaction simply loses the
  // race and is dropped as superseded.
  Status Compact(Address until, CompactionResult* result = nullptr);

  // Convenience policy: compacts up to the read-only boundary when the live
  // log span (tail - begin) exceeds `max_log_bytes`. Returns OK without
  // compacting when under the threshold.
  Status MaybeCompact(uint64_t max_log_bytes,
                      CompactionResult* result = nullptr);

  // Doubles the hash index `factor_log2` times. Existing chains stay
  // reachable immediately; they thin out as subsequent publishes use the
  // refined slots. Quiesced operation: callers must ensure no concurrent
  // store operations (same contract as Checkpoint).
  Status GrowIndex(uint32_t factor_log2 = 1);

  // Quiesced maintenance policy: grows the index (doubling as many times as
  // needed) whenever live keys exceed `max_load` keys per slot.
  Status MaybeGrowIndex(double max_load = 1.5);

  // Durability point: makes every operation that completed before this call
  // crash-durable (incremental log flush + fsync; see HybridLog::Persist).
  // Unlike Checkpoint this is safe under concurrent operations and does not
  // write index files — recovery re-derives post-checkpoint publishes by
  // replaying the log tail (durability_mode == kGroup only).
  Status Persist() { return log_.Persist(); }
  // Highest log address known durable on media.
  Address durable_address() const { return log_.durable_address(); }

  // Quiesced checkpoint under `prefix`; callers must ensure no concurrent
  // operations. checkpoint_mode == kFull writes the classic pair
  // (<prefix>.meta, <prefix>.idx: full log flush + full index dump).
  // kIncremental persists only dirty/undurable pages and appends an index
  // delta (<prefix>.idx.d<N>: slots whose head moved since the previous
  // checkpoint) onto the chain under the same prefix, committing by
  // atomically renaming the v2 .meta into place; a fresh base (full .idx)
  // is forced on a new prefix, after index growth, or past the delta cap.
  Status Checkpoint(const std::string& prefix);
  // Reopens the store from a checkpoint taken with the same options: base
  // index plus deltas in order, then — in durability_mode == kGroup — a
  // replay of valid group-committed records found past the checkpoint tail
  // (stopping at the first torn record and truncating the log there).
  Status Recover(const FasterOptions& options, const std::string& prefix);

  // True if `key` currently resolves to an in-memory record.
  bool IsInMemory(Key key);

  // True if `address` holds the newest version of `key` (scan liveness).
  bool IsLiveVersion(Key key, Address address);

  FasterStatsSnapshot stats() const;
  void ResetStats();
  uint64_t index_slots() const { return index_->num_slots(); }
  const HybridLog& log() const { return log_; }
  HybridLog* mutable_log() { return &log_; }
  const FasterOptions& options() const { return options_; }

  // Effective number of live keys (approximate: counts inserts - deletes).
  uint64_t approximate_size() const {
    return stats_.inserts.load(std::memory_order_relaxed);
  }

 private:
  struct FindResult {
    Address address = kInvalidAddress;  // the matching record (if found)
    // Chain head observed in the index slot at lookup time. All publishes
    // CAS the slot from this value and link the new record's prev to it, so
    // colliding keys in one slot keep a single consistent chain.
    Address chain_head = kInvalidAddress;
    RecordMeta meta;
    bool in_memory = false;
    bool found = false;
  };

  // Shared implementation for Read/Peek; `tracked` selects whether the
  // bounded-staleness protocol applies. Does not bump the reads stat (the
  // public entry points and StartRead own that, so a pending read that
  // falls back to this path is still counted once).
  Status ReadInternal(Key key, void* out, uint32_t cap, uint32_t* size,
                      uint32_t bound, bool tracked);
  // Synchronous fallback for an in-flight pending read whose record moved
  // (or whose staleness needs the blocking wait); finalizes *pending.
  void RefetchPending(PendingRead* pending);
  // Memory-only chain walk shared by StartRead / StartPromote.
  enum class WalkOutcome { kMemory, kDisk, kNotFound };
  WalkOutcome WalkForPending(Key key, Address* address, Address* chain_head);

  // Loads the record header at `address`, transparently falling back to the
  // disk image if the frame is evicted mid-read.
  Status LoadMeta(Address address, RecordMeta* meta, bool* in_memory);
  // Copies the value bytes of the record at `address`.
  Status LoadValue(Address address, const RecordMeta& meta, void* out,
                   uint32_t cap);
  // Walks the hash chain from the index slot looking for `key`.
  Status Find(Key key, FindResult* out);

  // Appends a record and publishes it via index CAS against `expected`.
  // On publish failure the appended record is abandoned (log garbage) and
  // kBusy is returned so the caller retries.
  Status AppendAndPublish(Key key, const void* value, uint32_t value_size,
                          uint64_t control, uint32_t flags, Address expected,
                          Address* out_address);

  // Marks the in-memory record at `address` replaced (no-op if evicted).
  void MarkReplaced(Address address);

  Record* MutableRecord(Address address) {
    return reinterpret_cast<Record*>(log_.MutablePointer(address));
  }

  struct Stats {
    std::atomic<uint64_t> reads{0}, upserts{0}, rmws{0}, deletes{0};
    std::atomic<uint64_t> inplace_updates{0}, rcu_appends{0}, inserts{0};
    std::atomic<uint64_t> promotions{0}, promotions_skipped{0};
    std::atomic<uint64_t> staleness_waits{0}, busy_aborts{0};
    std::atomic<uint64_t> compactions{0}, compaction_live_copied{0};
    std::atomic<uint64_t> async_reads_submitted{0}, async_reads_completed{0};
    std::atomic<uint64_t> async_reads_refetched{0};
  };

  // Maps the (page-size-adjusted) store options onto the log's.
  HybridLogOptions LogOptions(bool truncate) const;

  // Incremental checkpoint helpers (kv/faster_store.cc).
  Status CheckpointFull(const std::string& prefix);
  Status CheckpointIncremental(const std::string& prefix);
  // Scans [from, end-of-file) for valid records the last checkpoint missed
  // and republishes them against the recovered index (address-ordered
  // passes to a fixpoint); *recovered is the end of the last valid record.
  Status ReplayTail(Address from, Address* recovered);

  // Chain state for incremental checkpoints: what the last checkpoint
  // under `prefix` covered. Reset on Open; restored by Recover.
  struct CheckpointChain {
    std::string prefix;       // empty: no chain, next checkpoint is a base
    Address tail = 0;         // log tail the last checkpoint covered
    uint64_t deltas = 0;      // delta files written under this prefix
    uint64_t index_slots = 0; // slot count the chain's files assume
  };
  // Replaying an ever-longer delta chain on recovery caps here; the next
  // checkpoint then rolls a fresh base.
  static constexpr uint64_t kMaxCheckpointDeltas = 64;
  CheckpointChain ckpt_;

  // At most one Compact() runs at a time; concurrent calls return early.
  std::atomic_flag compact_lock_ = ATOMIC_FLAG_INIT;

  FasterOptions options_;
  HashIndex* index() { return index_.get(); }
  std::unique_ptr<HashIndex> index_;
  HybridLog log_;
  Stats stats_;
};

}  // namespace mlkv
