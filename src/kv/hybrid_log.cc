#include "kv/hybrid_log.h"

#include <cassert>
#include <cstring>
#include <thread>

#include "common/spin_wait.h"

namespace mlkv {

namespace {

class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag* f) : f_(f) {
    while (f_->test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  ~SpinGuard() { f_->clear(std::memory_order_release); }

 private:
  std::atomic_flag* f_;
};

int Log2(uint64_t v) {
  int b = 0;
  while ((1ull << b) < v) ++b;
  return b;
}

}  // namespace

HybridLog::~HybridLog() = default;

Status HybridLog::Open(const HybridLogOptions& options) {
  options_ = options;
  if ((options_.page_size & (options_.page_size - 1)) != 0) {
    return Status::InvalidArgument("page_size must be a power of two");
  }
  page_bits_ = Log2(options_.page_size);
  mem_pages_ = options_.mem_size / options_.page_size;
  if (mem_pages_ < 4) {
    return Status::InvalidArgument("mem_size must hold at least 4 pages");
  }
  mutable_pages_ =
      static_cast<uint64_t>(static_cast<double>(mem_pages_) *
                            options_.mutable_fraction);
  if (mutable_pages_ < 1) mutable_pages_ = 1;
  // At least two non-mutable resident pages so eviction never outruns the
  // flush boundary (head <= read_only must always hold).
  if (mutable_pages_ > mem_pages_ - 2) mutable_pages_ = mem_pages_ - 2;

  file_ = options_.device_factory ? options_.device_factory()
                                  : std::make_unique<FileDevice>();
  MLKV_RETURN_NOT_OK(file_->Open(options_.path, options_.truncate));

  frames_.resize(mem_pages_);
  frame_page_ = std::vector<std::atomic<uint64_t>>(mem_pages_);
  frame_writers_ = std::vector<std::atomic<int>>(mem_pages_);
  frame_dirty_ = std::vector<std::atomic<uint8_t>>(mem_pages_);
  for (uint64_t i = 0; i < mem_pages_; ++i) {
    frames_[i].reset(new char[options_.page_size]);
    frame_page_[i].store(kInvalidPage, std::memory_order_relaxed);
    frame_writers_[i].store(0, std::memory_order_relaxed);
    frame_dirty_[i].store(0, std::memory_order_relaxed);
  }

  if (options_.durability == DurabilityMode::kGroup) {
    GroupCommitter::Options co;
    co.window_us = options_.group_commit_window_us;
    co.max_bytes = options_.group_commit_max_bytes;
    committer_ = std::make_unique<GroupCommitter>(file_.get(), co);
  }

  // Provision page 0 directly (no flushing can be needed yet).
  std::memset(frames_[0].get(), 0, options_.page_size);
  frame_page_[0].store(0, std::memory_order_release);

  tail_.store(kLogBegin, std::memory_order_release);
  read_only_.store(kLogBegin, std::memory_order_release);
  head_.store(kLogBegin, std::memory_order_release);
  begin_.store(kLogBegin, std::memory_order_release);
  durable_.store(kLogBegin, std::memory_order_release);
  flushed_until_page_ = 0;
  highest_provisioned_page_ = 0;
  return Status::OK();
}

Status HybridLog::ShiftBeginAddress(Address new_begin) {
  for (;;) {
    Address cur = begin_.load(std::memory_order_acquire);
    if (new_begin <= cur) return Status::OK();  // monotonic, no regress
    if (new_begin > read_only_.load(std::memory_order_acquire)) {
      return Status::InvalidArgument(
          "begin address cannot pass the read-only boundary");
    }
    if (begin_.compare_exchange_weak(cur, new_begin,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      break;
    }
  }
  // Reclaim whole dead pages. The page containing new_begin may still hold
  // live bytes, so only pages strictly below it are punched.
  const uint64_t first_live_page = PageOf(new_begin);
  if (first_live_page > 0) {
    MLKV_RETURN_NOT_OK(
        file_->PunchHole(0, PageStart(first_live_page)));
  }
  return Status::OK();
}

uint32_t HybridLog::PreparePageFlush(uint64_t page, Address tail_now) {
  const uint64_t f = FrameOf(page);
  // Clear the dirty bit BEFORE draining writers and snapshotting bytes: a
  // writer that slips in mid-flush re-marks it, so a torn value image is
  // rewritten by the next flush instead of being treated as current.
  frame_dirty_[f].store(0, std::memory_order_release);
  // Wait for in-flight in-place value writes. For below-read-only pages
  // this is exact (the boundary advanced first, so no new writer can
  // register); for mutable pages flushed by Persist it is best-effort — see
  // the drain note in the header comment.
  while (frame_writers_[f].load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  const uint64_t start = PageStart(page);
  if (start >= tail_now) return 0;
  uint64_t len = options_.page_size;
  if (start + len > tail_now) len = tail_now - start;  // partial tail page
  return static_cast<uint32_t>(len);
}

Status HybridLog::FlushPage(uint64_t page) {
  const uint32_t len =
      PreparePageFlush(page, tail_.load(std::memory_order_acquire));
  if (len == 0) return Status::OK();
  MLKV_RETURN_NOT_OK(
      file_->WriteAt(PageStart(page), frames_[FrameOf(page)].get(), len));
  stats_.pages_flushed.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status HybridLog::FlushPageSet(const std::vector<uint64_t>& pages) {
  if (pages.empty()) return Status::OK();
  if (options_.io == nullptr || pages.size() == 1) {
    for (uint64_t p : pages) {
      MLKV_RETURN_NOT_OK(FlushPage(p));
    }
    return Status::OK();
  }
  // One coalesced wave: prepare every page up front, submit them all, then
  // drain completions. The alloc lock (held by the caller) keeps the tail
  // and frame assignments stable for the duration.
  const Address tail_now = tail_.load(std::memory_order_acquire);
  AsyncIoEngine::Batch batch(options_.io);
  uint64_t submitted = 0;
  Status first_error;
  for (uint64_t p : pages) {
    const uint32_t len = PreparePageFlush(p, tail_now);
    if (len == 0) continue;
    const Status s = batch.SubmitWrite(file_.get(), PageStart(p),
                                       frames_[FrameOf(p)].get(), len, p);
    if (!s.ok()) {
      if (first_error.ok()) first_error = s;
      break;
    }
    ++submitted;
  }
  stats_.async_writes_submitted.fetch_add(submitted,
                                          std::memory_order_relaxed);
  AsyncIoEngine::Completion c;
  while (batch.WaitOne(&c)) {
    stats_.async_writes_completed.fetch_add(1, std::memory_order_relaxed);
    if (c.status.ok()) {
      stats_.pages_flushed.fetch_add(1, std::memory_order_relaxed);
    } else if (first_error.ok()) {
      first_error = c.status;
    }
  }
  return first_error;
}

Status HybridLog::ProvisionPage(uint64_t page) {
  // 1. Advance the read-only boundary so page `page` keeps exactly
  //    `mutable_pages_` pages of mutable region behind it, then flush the
  //    pages that just became read-only.
  if (page + 1 > mutable_pages_) {
    const uint64_t ro_page = page + 1 - mutable_pages_;
    const Address ro_addr = PageStart(ro_page);
    if (ro_addr > read_only_.load(std::memory_order_relaxed)) {
      read_only_.store(ro_addr, std::memory_order_release);
    }
    if (flushed_until_page_ < ro_page) {
      std::vector<uint64_t> to_flush;
      to_flush.reserve(ro_page - flushed_until_page_);
      for (uint64_t p = flushed_until_page_; p < ro_page; ++p) {
        to_flush.push_back(p);
      }
      MLKV_RETURN_NOT_OK(FlushPageSet(to_flush));
      flushed_until_page_ = ro_page;
    }
  }

  // 2. Evict frames for pages that fall out of the residency window.
  if (page + 1 > mem_pages_) {
    const uint64_t head_page = page + 1 - mem_pages_;
    const Address head_addr = PageStart(head_page);
    const Address cur_head = head_.load(std::memory_order_relaxed);
    if (head_addr > cur_head) {
      assert(head_page <= flushed_until_page_);
      for (uint64_t p = PageOf(cur_head); p < head_page; ++p) {
        frame_page_[FrameOf(p)].store(kInvalidPage, std::memory_order_release);
        stats_.pages_evicted.fetch_add(1, std::memory_order_relaxed);
      }
      head_.store(head_addr, std::memory_order_release);
    }
  }

  // 3. Claim the frame for the new page.
  const uint64_t f = FrameOf(page);
  assert(frame_page_[f].load(std::memory_order_relaxed) == kInvalidPage ||
         page == 0);
  std::memset(frames_[f].get(), 0, options_.page_size);
  frame_page_[f].store(page, std::memory_order_release);
  return Status::OK();
}

Status HybridLog::Allocate(uint32_t size, Address* address, char** memory) {
  size = (size + 7u) & ~7u;
  if (size == 0 || size > options_.page_size) {
    return Status::InvalidArgument("allocation exceeds page size");
  }
  SpinGuard g(&alloc_lock_);
  Address t = tail_.load(std::memory_order_relaxed);
  const uint64_t page_end = PageStart(PageOf(t)) + options_.page_size;
  if (t + size > page_end) {
    // Skip the remainder of the current page (frames are zeroed, so the gap
    // scans as invalid records) and roll to the next page.
    t = page_end;
  }
  // Provision lazily by page number, not by boundary crossing: an
  // allocation that exactly fills a page leaves the tail on the next page
  // start without crossing anything.
  const uint64_t page = PageOf(t);
  if (page > highest_provisioned_page_) {
    MLKV_RETURN_NOT_OK(ProvisionPage(page));
    highest_provisioned_page_ = page;
  }
  tail_.store(t + size, std::memory_order_release);
  *address = t;
  *memory = FramePointer(t);
  // Register the caller as a writer on this frame while the lock still
  // excludes page rolls: until EndAppend(), no flush can snapshot (and no
  // eviction can recycle) the frame under the half-written record.
  frame_writers_[FrameOf(page)].fetch_add(1, std::memory_order_acq_rel);
  MarkDirty(page);
  return Status::OK();
}

bool HybridLog::TryReadMemory(Address a, void* out, uint32_t n) const {
  const uint64_t page = PageOf(a);
  const uint64_t f = page % mem_pages_;
  if (frame_page_[f].load(std::memory_order_acquire) != page) return false;
  std::memcpy(out, FramePointer(a), n);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (frame_page_[f].load(std::memory_order_relaxed) != page) {
    stats_.seqlock_retries.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

Status HybridLog::ReadFromDisk(Address a, RecordMeta* meta, void* value_out,
                               uint32_t value_cap) const {
  struct RawHeader {
    uint64_t control;
    Address prev;
    Key key;
    uint32_t value_size;
    uint32_t flags;
  } raw;
  static_assert(sizeof(RawHeader) == sizeof(Record));
  MLKV_RETURN_NOT_OK(file_->ReadAt(a, &raw, sizeof(raw)));
  meta->control = ControlWord::Sanitize(raw.control);
  meta->prev = raw.prev;
  meta->key = raw.key;
  meta->value_size = raw.value_size;
  meta->flags = raw.flags;
  stats_.disk_record_reads.fetch_add(1, std::memory_order_relaxed);
  if (value_out != nullptr && raw.value_size > 0) {
    const uint32_t n = raw.value_size < value_cap ? raw.value_size : value_cap;
    MLKV_RETURN_NOT_OK(file_->ReadAt(a + sizeof(Record), value_out, n));
  }
  return Status::OK();
}

Status HybridLog::ReadRaw(Address a, void* out, uint32_t n) const {
  if (((a ^ (a + n - 1)) >> page_bits_) != 0) {
    return Status::InvalidArgument("raw read crosses a page boundary");
  }
  if (a >= head_.load(std::memory_order_acquire)) {
    if (TryReadMemory(a, out, n)) return Status::OK();
  }
  MLKV_RETURN_NOT_OK(file_->ReadAt(a, out, n));
  stats_.disk_record_reads.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool HybridLog::BeginInPlaceWrite(Address a) {
  const uint64_t f = FrameOf(PageOf(a));
  frame_writers_[f].fetch_add(1, std::memory_order_acq_rel);
  if (a < read_only_.load(std::memory_order_acquire)) {
    // Boundary moved while we registered; this page may be flushing.
    frame_writers_[f].fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  // Dirty before the caller touches a byte: if a Persist flush snapshots
  // this frame concurrently, the re-marked bit forces a rewrite next time.
  MarkDirty(PageOf(a));
  return true;
}

void HybridLog::EndInPlaceWrite(Address a) {
  const uint64_t f = FrameOf(PageOf(a));
  frame_writers_[f].fetch_sub(1, std::memory_order_acq_rel);
}

Address HybridLog::SealMutableRegion() {
  const Address t = tail_.load(std::memory_order_acquire);
  Address cur = read_only_.load(std::memory_order_acquire);
  while (cur < t && !read_only_.compare_exchange_weak(
                        cur, t, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
  }
  // Drain writers that registered before the boundary moved. Once a frame's
  // count reaches zero, any later registration re-checks the boundary and
  // falls back to RCU, so record bytes below `t` are quiescent — a cursor
  // reading them sees each writer's bytes in full or not at all, never a
  // version it can no longer be told about.
  for (uint64_t f = 0; f < mem_pages_; ++f) {
    SpinWaitUntil([this, f]() {
      return frame_writers_[f].load(std::memory_order_acquire) == 0;
    });
  }
  return t;
}

Status HybridLog::FlushAll() {
  SpinGuard g(&alloc_lock_);
  const Address t = tail_.load(std::memory_order_acquire);
  if (t == kLogBegin) return Status::OK();
  const uint64_t last_page = PageOf(t - 1);
  std::vector<uint64_t> pages;
  for (uint64_t p = flushed_until_page_; p <= last_page; ++p) {
    if (frame_page_[FrameOf(p)].load(std::memory_order_acquire) != p) {
      continue;
    }
    pages.push_back(p);
  }
  MLKV_RETURN_NOT_OK(FlushPageSet(pages));
  MLKV_RETURN_NOT_OK(file_->Sync());
  stats_.fsyncs.fetch_add(1, std::memory_order_relaxed);
  // CAS-max: a concurrent Persist may already have published a later
  // watermark; never regress it.
  Address cur = durable_.load(std::memory_order_acquire);
  while (cur < t && !durable_.compare_exchange_weak(
                        cur, t, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
  }
  return Status::OK();
}

Status HybridLog::Persist() {
  std::vector<uint64_t> pages;
  Address t;
  {
    SpinGuard g(&alloc_lock_);
    t = tail_.load(std::memory_order_acquire);
    const Address durable = durable_.load(std::memory_order_acquire);
    if (t > kLogBegin) {
      const uint64_t last_page = PageOf(t - 1);
      const uint64_t first_page = PageOf(head_.load(std::memory_order_acquire));
      for (uint64_t p = first_page; p <= last_page; ++p) {
        const uint64_t f = FrameOf(p);
        if (frame_page_[f].load(std::memory_order_acquire) != p) continue;
        // A resident page needs rewriting when its bytes diverged from the
        // disk image (dirty) or when it holds never-synced bytes in
        // [durable, t). The second arm matters after recovery: frames are
        // fresh (dirty bits clean) but the file tail may postdate the
        // watermark.
        const bool holds_undurable =
            durable < t && PageStart(p) + options_.page_size > durable;
        if (frame_dirty_[f].load(std::memory_order_acquire) == 0 &&
            !holds_undurable) {
          continue;
        }
        pages.push_back(p);
      }
      MLKV_RETURN_NOT_OK(FlushPageSet(pages));
    }
    if (pages.empty() && durable >= t) {
      return Status::OK();  // nothing changed since the last sync point
    }
  }
  // Commit outside the alloc lock so concurrent Persist callers can stage
  // into the same window and share the fsync.
  if (committer_ != nullptr) {
    const uint64_t ticket =
        committer_->StageWrite(pages.size() * options_.page_size);
    MLKV_RETURN_NOT_OK(committer_->Wait(ticket));
  } else {
    MLKV_RETURN_NOT_OK(file_->Sync());
    stats_.fsyncs.fetch_add(1, std::memory_order_relaxed);
  }
  Address cur = durable_.load(std::memory_order_acquire);
  while (cur < t && !durable_.compare_exchange_weak(
                        cur, t, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
  }
  return Status::OK();
}

Status HybridLog::DiscardDiskBeyond(Address a) {
  // Truncate exactly at `a`: reads past EOF zero-fill (io/file_device.cc),
  // so the discarded suffix scans as a page-roll gap instead of stale
  // record bytes. Later flushes re-extend the file past the hole.
  return file_->Truncate(a);
}

Status HybridLog::RestoreBoundaries(Address tail, Address begin) {
  begin_.store(begin, std::memory_order_release);
  // Everything up to `tail` is disk-resident; start allocating on a fresh
  // page so recovered data is never overwritten in a partially filled page.
  const uint64_t next_page = PageOf(tail - 1) + 1;
  const Address a = PageStart(next_page);
  for (uint64_t i = 0; i < mem_pages_; ++i) {
    frame_page_[i].store(kInvalidPage, std::memory_order_relaxed);
    frame_dirty_[i].store(0, std::memory_order_relaxed);
  }
  tail_.store(a, std::memory_order_release);
  read_only_.store(a, std::memory_order_release);
  head_.store(a, std::memory_order_release);
  // Recovery only restores boundaries over bytes it has verified on disk,
  // so the restored tail is the durable watermark.
  durable_.store(a, std::memory_order_release);
  flushed_until_page_ = next_page;
  highest_provisioned_page_ = next_page;
  const uint64_t f = FrameOf(next_page);
  std::memset(frames_[f].get(), 0, options_.page_size);
  frame_page_[f].store(next_page, std::memory_order_release);
  return Status::OK();
}

}  // namespace mlkv
