#include "kv/pending_read.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "io/async_io.h"
#include "kv/faster_store.h"

namespace mlkv {

void PendingSink::Park(FasterStore* store, std::unique_ptr<PendingRead> read,
                       std::function<void(PendingRead*)> finish) {
  entries_.push_back(Entry{store, std::move(read), std::move(finish)});
}

void PendingReadWave::Adopt(PendingSink* sink) {
  if (entries_.empty()) {
    entries_ = std::move(sink->entries_);
  } else {
    for (auto& e : sink->entries_) entries_.push_back(std::move(e));
  }
  sink->entries_.clear();
}

void PendingReadWave::CompleteAll() {
  if (entries_.empty()) return;
  AsyncIoEngine::Batch batch(engine_);

  // Coalescing: duplicate cold keys in a batch — and distinct keys whose
  // chains meet at the same cold record — fetch each (store, address)
  // image once. The member with the largest landing buffer leads a group;
  // followers copy its bytes on completion. `by_target` maps each target
  // to its in-flight group, so chain-hop resubmissions piggyback on an
  // I/O that is already on its way instead of duplicating it.
  using Target = std::pair<const FasterStore*, Address>;
  struct Group {
    Target target;
    std::vector<size_t> members;
    size_t leader = 0;
  };
  std::vector<Group> groups;
  std::map<Target, size_t> by_target;

  for (size_t i = 0; i < entries_.size(); ++i) {
    const Target target(entries_[i].store, entries_[i].read->address);
    const auto [it, fresh] = by_target.emplace(target, groups.size());
    if (fresh) {
      groups.push_back(Group{target, {i}, i});
    } else {
      Group& g = groups[it->second];
      g.members.push_back(i);
      if (entries_[i].read->buf.size() >
          entries_[g.leader].read->buf.size()) {
        g.leader = i;  // pre-submission: the largest buffer leads
      }
    }
  }

  // Fails every remaining member of a group whose submission was refused
  // (engine shutdown): the submit error is each key's outcome.
  const auto fail_group = [&](size_t g, const Status& s) {
    std::vector<size_t> members;
    members.swap(groups[g].members);
    entries_[groups[g].leader].store->CountAsyncCompleted();
    for (const size_t m : members) {
      PendingSink::Entry& e = entries_[m];
      (void)e.store->CompletePendingRead(e.read.get(), s);  // always kDone
      if (e.finish) e.finish(e.read.get());
    }
  };

  const auto submit_group = [&](size_t g) {
    PendingSink::Entry& lead = entries_[groups[g].leader];
    lead.store->CountAsyncSubmitted();
    const Status s = batch.Submit(
        lead.store->mutable_log()->device(), lead.read->address,
        lead.read->buf.data(), static_cast<uint32_t>(lead.read->buf.size()),
        g);
    if (!s.ok()) {
      const auto it = by_target.find(groups[g].target);
      if (it != by_target.end() && it->second == g) by_target.erase(it);
      fail_group(g, s);
    }
  };

  // Advances entry `i` with its landed (or failed) I/O. A chain hop joins
  // the in-flight fetch of its next address when one exists (and its
  // buffer fits inside the leader's), otherwise opens a fresh group and
  // submits it immediately.
  const auto step = [&](size_t i, const Status& io_status) {
    PendingSink::Entry& e = entries_[i];
    if (e.store->CompletePendingRead(e.read.get(), io_status) ==
        FasterStore::PendingStep::kDone) {
      if (e.finish) e.finish(e.read.get());
      return;
    }
    const Target target(e.store, e.read->address);
    const auto it = by_target.find(target);
    if (it != by_target.end() &&
        e.read->buf.size() <=
            entries_[groups[it->second].leader].read->buf.size()) {
      groups[it->second].members.push_back(i);  // rides the in-flight I/O
      return;
    }
    const size_t g = groups.size();
    groups.push_back(Group{target, {i}, i});
    if (it == by_target.end()) by_target.emplace(target, g);
    submit_group(g);
  };

  // One submission wave: every group's I/O goes into flight before any
  // completion is waited on.
  const size_t initial_groups = groups.size();
  for (size_t g = 0; g < initial_groups; ++g) submit_group(g);

  AsyncIoEngine::Completion c;
  while (batch.WaitOne(&c)) {
    // Copy the group fields out before stepping: a member's chain-hop
    // resubmission grows `groups`, invalidating references into it.
    const size_t leader = groups[c.tag].leader;
    const Target target = groups[c.tag].target;
    std::vector<size_t> members;
    members.swap(groups[c.tag].members);
    // Close the group before stepping members, so a member's own hop back
    // to this address opens a fresh fetch rather than joining a dead one.
    {
      const auto it = by_target.find(target);
      if (it != by_target.end() && it->second == c.tag) by_target.erase(it);
    }
    if (members.empty()) continue;
    PendingSink::Entry& lead = entries_[leader];  // entries_ never grows
    lead.store->CountAsyncCompleted();
    if (c.status.ok()) lead.store->mutable_log()->NoteDiskRecordRead();
    // Followers copy the shared bytes first: the leader's continuation may
    // reuse its buffer for a chain-hop resubmission.
    for (const size_t m : members) {
      if (m == leader) continue;
      PendingRead* r = entries_[m].read.get();
      const size_t n = std::min(r->buf.size(), lead.read->buf.size());
      std::memcpy(r->buf.data(), lead.read->buf.data(), n);
      step(m, c.status);
    }
    step(leader, c.status);
  }
}

}  // namespace mlkv
