#include "kv/sharded_store.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/spin_wait.h"
#include "obs/trace.h"

namespace mlkv {

std::string ShardedStore::ShardFilePath(const std::string& path,
                                        uint32_t shard, uint32_t shard_bits) {
  if (shard_bits == 0) return path;
  char dir_name[16];
  std::snprintf(dir_name, sizeof(dir_name), "shard-%02u", shard);
  const std::filesystem::path p(path);
  return (p.parent_path() / dir_name / p.filename()).string();
}

bool ShardedStore::CheckpointExists(const ShardedStoreOptions& options,
                                    const std::string& prefix) {
  if (options.shard_bits == 0) {
    return std::filesystem::exists(prefix + ".meta");
  }
  // Sharded checkpoints are only valid once the commit marker exists (see
  // Checkpoint): a partial set of shard files is not a checkpoint.
  return std::filesystem::exists(prefix + ".shards");
}

FasterOptions ShardedStore::ShardOptions(size_t i) const {
  // Note options_.io (the batched-read wave engine) and options_.store.io
  // (each shard's flush-wave engine) are set independently by the caller:
  // group durability wants coalesced flushes even when reads stay blocking.
  FasterOptions o = options_.store;
  if (options_.shard_bits == 0) return o;
  o.path = ShardFilePath(options_.store.path, static_cast<uint32_t>(i),
                         options_.shard_bits);
  o.mem_size = std::max(options_.store.mem_size >> options_.shard_bits,
                        kMinShardMemBytes);
  o.index_slots = std::max(options_.store.index_slots >> options_.shard_bits,
                           kMinShardIndexSlots);
  return o;
}

Status ShardedStore::OpenShards(const ShardedStoreOptions& options,
                                const std::string* recover_prefix) {
  if (options.shard_bits > kMaxShardBits) {
    return Status::InvalidArgument("shard_bits must be <= 8");
  }
  options_ = options;
  const size_t n = size_t{1} << options.shard_bits;
  mask_ = n - 1;
  shards_.clear();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const FasterOptions so = ShardOptions(i);
    if (options.shard_bits > 0) {
      std::error_code ec;
      std::filesystem::create_directories(
          std::filesystem::path(so.path).parent_path(), ec);
      if (ec) {
        return Status::IOError("create shard dir: " + ec.message());
      }
    }
    auto shard = std::make_unique<FasterStore>();
    if (recover_prefix != nullptr) {
      MLKV_RETURN_NOT_OK(shard->Recover(
          so, ShardFilePath(*recover_prefix, static_cast<uint32_t>(i),
                            options.shard_bits)));
    } else {
      MLKV_RETURN_NOT_OK(shard->Open(so));
    }
    shards_.push_back(std::move(shard));
  }
  return Status::OK();
}

Status ShardedStore::Open(const ShardedStoreOptions& options) {
  return OpenShards(options, nullptr);
}

Status ShardedStore::Recover(const ShardedStoreOptions& options,
                             const std::string& prefix) {
  return OpenShards(options, &prefix);
}

// The batch is decomposed into tasks — each a stable run of `order`
// (caller indices) against one shard. Multi-shard stores get one task per
// non-empty shard (the scatter). A single-shard store partitions by an
// independent slice of the key hash instead, so shard_bits = 0 keeps
// intra-batch parallelism; either way a given key lands in exactly one
// sub-batch, in caller order, so same-key operations never race and a
// duplicate-key Put still resolves last-occurrence-wins.
bool ShardedStore::BuildScatter(std::span<const Key> keys, bool stop_on_error,
                                bool force_tasks,
                                std::vector<uint32_t>* order,
                                std::vector<SubBatch>* tasks) const {
  const size_t n = keys.size();
  size_t num_buckets = shards_.size();
  bool hash_buckets = false;
  if (shards_.size() == 1) {
    size_t chunks = 1;
    // stop_on_error keeps the exact sequential fail-fast contract, so it
    // never fans out on a single shard.
    if (!stop_on_error && options_.chunk_single_shard &&
        options_.pool != nullptr && options_.parallel_min_keys > 0) {
      chunks = std::min(options_.pool->num_threads() + 1,
                        n / options_.parallel_min_keys);
    }
    if (chunks <= 1) {
      if (!force_tasks) return false;  // caller runs the inline loop
      order->resize(n);
      for (size_t i = 0; i < n; ++i) (*order)[i] = static_cast<uint32_t>(i);
      tasks->push_back({shards_[0].get(), 0, static_cast<uint32_t>(n)});
      return true;
    }
    num_buckets = chunks;
    hash_buckets = true;
  }

  // Stable counting sort of caller indices by bucket: bucket b's sub-batch
  // is order[offset[b] .. offset[b+1]), in caller order. Hash buckets use
  // bits 32..47 of the key hash — disjoint from both ShardOf (bits 48..)
  // and the HashIndex slot bits (low) — so chunking stays balanced and
  // index-neutral.
  std::vector<uint32_t> bucket_of(n);
  std::vector<uint32_t> offset(num_buckets + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    bucket_of[i] = static_cast<uint32_t>(
        hash_buckets ? ((Hash64(keys[i]) >> 32) & 0xFFFF) % num_buckets
                     : ShardIndexOf(keys[i]));
    ++offset[bucket_of[i] + 1];
  }
  for (size_t b = 0; b < num_buckets; ++b) offset[b + 1] += offset[b];
  order->resize(n);
  {
    std::vector<uint32_t> cursor(offset.begin(), offset.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      (*order)[cursor[bucket_of[i]]++] = static_cast<uint32_t>(i);
    }
  }
  for (size_t b = 0; b < num_buckets; ++b) {
    if (offset[b + 1] == offset[b]) continue;
    tasks->push_back({shards_[hash_buckets ? 0 : b].get(), offset[b],
                      offset[b + 1]});
  }
  return true;
}

void ShardedStore::MultiExecute(std::span<const Key> keys, const ShardOp& op,
                                BatchResult* result, bool stop_on_error) {
  // No-op without an active request trace; otherwise the scatter span
  // parents every shard_execute span RunTasks opens (including on pool
  // threads — RunTasks captures this thread's context before fanning out).
  obs::ScopedSpan scatter_span("scatter");
  const size_t n = keys.size();
  result->Reset(n);
  if (n == 0) return;
  if (n == 1) {  // single-key wrappers: no partitioning machinery
    op(ShardFor(keys[0]), keys[0], 0, result, 0);
    return;
  }

  std::vector<uint32_t> order;
  std::vector<SubBatch> tasks;
  if (!BuildScatter(keys, stop_on_error, /*force_tasks=*/false, &order,
                    &tasks)) {
    FasterStore* s = shards_[0].get();
    for (size_t i = 0; i < n; ++i) {
      op(s, keys[i], i, result, i);
      if (stop_on_error && result->codes[i] != Status::Code::kOk) break;
    }
    return;
  }

  std::vector<BatchResult> parts(tasks.size());
  auto run_task = [&](size_t t) {
    const SubBatch& task = tasks[t];
    BatchResult* part = &parts[t];
    part->Reset(task.end - task.begin);
    for (uint32_t j = 0; j < task.end - task.begin; ++j) {
      const uint32_t i = order[task.begin + j];
      op(task.store, keys[i], i, part, j);
      if (stop_on_error && part->codes[j] != Status::Code::kOk) break;
    }
  };
  RunTasks(tasks, run_task);

  // Gather: scatter codes back to caller indices; sum the counts. The
  // first hard error of the lowest-numbered task survives.
  GatherParts(order, tasks, parts, result);
}

void ShardedStore::RunTasks(const std::vector<SubBatch>& tasks,
                            const std::function<void(size_t)>& run_task) {
  // Snapshot the caller's trace context here: pool helpers run on threads
  // with no (or a stale) thread-local context, so each claimed sub-batch
  // re-installs the caller's before opening its shard_execute span.
  const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
  const auto traced_run = [&run_task, trace_ctx](size_t t) {
    obs::ScopedTraceContext ctx(trace_ctx);
    obs::ScopedSpan span("shard_execute");
    run_task(t);
  };
  if (options_.pool == nullptr || tasks.size() == 1) {
    // Nothing to overlap: run the sub-batches directly, skipping the
    // shared-state fan-in machinery entirely.
    for (size_t t = 0; t < tasks.size(); ++t) traced_run(t);
  } else {
    // Execute with work stealing off a shared claim counter: the caller
    // and up to `helpers` pool workers each grab the next unclaimed
    // sub-batch. The caller never waits on the pool's queue — if the
    // workers are busy (or stuck behind queued lookahead prefetches) it
    // simply runs every sub-batch itself, so the scatter can never be
    // slower than the inline loop by more than a queue handoff. Helpers
    // that start after all sub-batches are claimed only touch the
    // heap-shared state: the claim check fails and they exit without
    // dereferencing this frame (which is guaranteed alive for any
    // SUCCESSFUL claim — the fan-in below cannot pass until that task's
    // completion is counted).
    struct ScatterState {
      std::atomic<size_t> next{0};
      std::atomic<size_t> done{0};
      size_t count = 0;
      std::function<void(size_t)> run;  // only called on a successful claim
    };
    auto state = std::make_shared<ScatterState>();
    state->count = tasks.size();
    state->run = [&traced_run](size_t t) { traced_run(t); };
    const auto work = [](const std::shared_ptr<ScatterState>& s) {
      for (;;) {
        const size_t t = s->next.fetch_add(1, std::memory_order_acq_rel);
        if (t >= s->count) return;
        s->run(t);
        s->done.fetch_add(1, std::memory_order_acq_rel);
      }
    };
    size_t offloadable = 0;
    for (const SubBatch& task : tasks) {
      if (task.end - task.begin >= options_.parallel_min_keys) ++offloadable;
    }
    size_t helpers = std::min(offloadable, tasks.size() - 1);
    helpers = std::min(helpers, options_.pool->num_threads());
    for (size_t h = 0; h < helpers; ++h) {
      if (!options_.pool->TrySubmit([state, work] { work(state); })) {
        break;  // queue full / shutting down: the caller covers the rest
      }
    }
    work(state);
    SpinWaitUntil([&] {
      return state->done.load(std::memory_order_acquire) == tasks.size();
    });
  }
}

void ShardedStore::MultiExecuteRead(std::span<const Key> keys,
                                    const ShardReadOp& op,
                                    BatchResult* result, bool stop_on_error) {
  AsyncIoEngine* io = options_.io;
  if (io == nullptr || stop_on_error || keys.size() <= 1) {
    // No engine, the fail-fast legacy contract, or a single key (nothing
    // to overlap): the unchanged blocking path, op with a null sink.
    MultiExecute(
        keys,
        [&op](FasterStore* shard, Key key, size_t i, BatchResult* part,
              size_t pi) { op(shard, key, i, part, pi, nullptr); },
        result, stop_on_error);
    return;
  }

  obs::ScopedSpan scatter_span("scatter");
  const size_t n = keys.size();
  result->Reset(n);
  std::vector<uint32_t> order;
  std::vector<SubBatch> tasks;
  // force_tasks: even a lone unchunked shard goes through the task path —
  // the wave is exactly what overlaps its cold misses.
  BuildScatter(keys, /*stop_on_error=*/false, /*force_tasks=*/true, &order,
               &tasks);
  std::vector<BatchResult> parts(tasks.size());
  std::vector<PendingSink> sinks(tasks.size());
  auto run_task = [&](size_t t) {
    const SubBatch& task = tasks[t];
    BatchResult* part = &parts[t];
    part->Reset(task.end - task.begin);
    for (uint32_t j = 0; j < task.end - task.begin; ++j) {
      const uint32_t i = order[task.begin + j];
      op(task.store, keys[i], i, part, j, &sinks[t]);
    }
  };
  RunTasks(tasks, run_task);

  // One submission wave across every shard's sub-batch; completions (and
  // their finish callbacks, which record into the parts) run here on the
  // calling thread.
  {
    obs::ScopedSpan io_span("io_wave");
    PendingReadWave wave(io);
    for (PendingSink& sink : sinks) wave.Adopt(&sink);
    wave.CompleteAll();
  }

  GatherParts(order, tasks, parts, result);
}

// Gather: scatter codes back to caller indices; sum the counts. The first
// hard error of the lowest-numbered task survives.
void ShardedStore::GatherParts(const std::vector<uint32_t>& order,
                               const std::vector<SubBatch>& tasks,
                               const std::vector<BatchResult>& parts,
                               BatchResult* result) {
  for (size_t t = 0; t < tasks.size(); ++t) {
    const BatchResult& part = parts[t];
    for (uint32_t j = 0; j < part.codes.size(); ++j) {
      result->codes[order[tasks[t].begin + j]] = part.codes[j];
    }
    result->found += part.found;
    result->missing += part.missing;
    result->busy += part.busy;
    if (result->failed == 0 && part.failed > 0) {
      result->first_error = part.first_error;
    }
    result->failed += part.failed;
  }
}

Status ShardedStore::Checkpoint(const std::string& prefix) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    MLKV_RETURN_NOT_OK(shards_[i]->Checkpoint(ShardFilePath(
        prefix, static_cast<uint32_t>(i), options_.shard_bits)));
  }
  if (options_.shard_bits == 0) return Status::OK();
  // Commit: the marker appears (atomically, via rename) only after every
  // shard's files are durably in place.
  const std::string marker = prefix + ".shards";
  const std::string tmp = marker + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return Status::IOError("open " + tmp);
    out << options_.shard_bits << '\n';
    out.flush();
    if (!out.good()) return Status::IOError("write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, marker, ec);
  if (ec) return Status::IOError("commit checkpoint marker: " + ec.message());
  return Status::OK();
}

namespace {
void Accumulate(const CompactionResult& r, CompactionResult* total) {
  if (total == nullptr) return;
  total->scanned += r.scanned;
  total->live_copied += r.live_copied;
  total->dead_skipped += r.dead_skipped;
  total->tombstones_dropped += r.tombstones_dropped;
  // Aggregate new_begin is the SUM of per-shard begin addresses over the
  // shards that actually compacted — the quantity log_begin_total()
  // reports, so before/after comparisons stay meaningful across shard
  // counts. Shards skipped by MaybeCompact report kInvalidAddress.
  if (r.new_begin == kInvalidAddress) return;
  if (total->new_begin == kInvalidAddress) total->new_begin = 0;
  total->new_begin += r.new_begin;
}
}  // namespace

Status ShardedStore::PersistAll() {
  for (auto& shard : shards_) {
    MLKV_RETURN_NOT_OK(shard->Persist());
  }
  return Status::OK();
}

Status ShardedStore::CompactAll(CompactionResult* total) {
  for (auto& shard : shards_) {
    CompactionResult r;
    MLKV_RETURN_NOT_OK(shard->Compact(shard->log().read_only_address(), &r));
    Accumulate(r, total);
  }
  return Status::OK();
}

Status ShardedStore::MaybeCompact(uint64_t max_log_bytes,
                                  CompactionResult* total) {
  const uint64_t per_shard = max_log_bytes / shards_.size();
  for (auto& shard : shards_) {
    CompactionResult r;
    MLKV_RETURN_NOT_OK(shard->MaybeCompact(per_shard, &r));
    Accumulate(r, total);
  }
  return Status::OK();
}

FasterStatsSnapshot ShardedStore::stats() const {
  FasterStatsSnapshot total;
  for (const auto& shard : shards_) {
    const FasterStatsSnapshot s = shard->stats();
    total.reads += s.reads;
    total.upserts += s.upserts;
    total.rmws += s.rmws;
    total.deletes += s.deletes;
    total.inplace_updates += s.inplace_updates;
    total.rcu_appends += s.rcu_appends;
    total.inserts += s.inserts;
    total.promotions += s.promotions;
    total.promotions_skipped += s.promotions_skipped;
    total.staleness_waits += s.staleness_waits;
    total.busy_aborts += s.busy_aborts;
    total.disk_record_reads += s.disk_record_reads;
    total.pages_flushed += s.pages_flushed;
    total.pages_evicted += s.pages_evicted;
    total.compactions += s.compactions;
    total.compaction_live_copied += s.compaction_live_copied;
    total.async_reads_submitted += s.async_reads_submitted;
    total.async_reads_completed += s.async_reads_completed;
    total.async_reads_refetched += s.async_reads_refetched;
    total.async_writes_submitted += s.async_writes_submitted;
    total.async_writes_completed += s.async_writes_completed;
    total.fsyncs += s.fsyncs;
    total.group_commits += s.group_commits;
  }
  return total;
}

void ShardedStore::ResetStats() {
  for (auto& shard : shards_) shard->ResetStats();
}

uint64_t ShardedStore::approximate_size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->approximate_size();
  return total;
}

uint64_t ShardedStore::index_slots() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index_slots();
  return total;
}

uint64_t ShardedStore::log_begin_total() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->log().begin_address();
  return total;
}

uint64_t ShardedStore::log_read_only_total() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->log().read_only_address();
  }
  return total;
}

uint64_t ShardedStore::log_tail_total() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->log().tail();
  return total;
}

uint64_t ShardedStore::log_span_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->log().tail() - shard->log().begin_address();
  }
  return total;
}

uint64_t ShardedStore::device_bytes_read() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->mutable_log()->device()->bytes_read();
  }
  return total;
}

uint64_t ShardedStore::device_bytes_written() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->mutable_log()->device()->bytes_written();
  }
  return total;
}

}  // namespace mlkv
