// ShardedStore: N-way sharding over independent FasterStore instances — the
// scaling axis the paper's §IV experiments lean on once a single index/log
// pair saturates. Each shard owns its own HashIndex, HybridLog (with its
// frame seqlock / writer-pin reclamation domain), and backing file, so
// trainer threads touching different shards never contend on the same log
// tail, allocation lock, or index slot.
//
// Routing: shard = ShardOf(Hash64(key), mask) (common/hash.h), which takes
// the TOP hash bits so the per-shard HashIndex (low bits) still uses its
// whole slot array.
//
// Layout: with shard_bits == 0 the store is byte-for-byte the single
// FasterStore it wraps — same log file, same checkpoint files — so legacy
// directories keep working. With shard_bits == B > 0, shard i's files move
// to <dir(path)>/shard-NN/<file(path)> (same rule for checkpoint prefixes),
// and the configured mem_size / index_slots are TOTAL budgets split evenly:
// each shard gets budget >> B, floored at kMinShardMemBytes /
// kMinShardIndexSlots (the per-shard HashIndex then rounds its slice up to
// a power of two, so the realized total can exceed the configured one).
//
// Batched span APIs are built on MultiExecute: the key span is partitioned
// into per-shard sub-batches (stable, so per-key outcomes land back at the
// caller's indices in caller order) that run in parallel on an optional
// ThreadPool — MLKV hands in the lookahead pool — with the calling thread
// working through the sub-batches that were not offloaded.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/batch_result.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "kv/faster_store.h"
#include "kv/pending_read.h"

namespace mlkv {

class AsyncIoEngine;

struct ShardedStoreOptions {
  // Per-shard template. `path` names the UNSHARDED log file; `mem_size` and
  // `index_slots` are totals split across shards (see header comment).
  FasterOptions store;
  // log2 of the shard count; 0 preserves the exact single-store behavior
  // and on-disk layout. Bounded by kMaxShardBits.
  uint32_t shard_bits = 0;
  // Optional executor for batched scatter/gather; not owned, may be shared
  // (MLKV reuses the lookahead pool). Null runs every sub-batch inline.
  ThreadPool* pool = nullptr;
  // Minimum keys in a shard sub-batch before it is offloaded to the pool
  // (smaller sub-batches run on the calling thread; the handoff would cost
  // more than it hides).
  size_t parallel_min_keys = 32;
  // With shard_bits == 0, also split batches into hash-partitioned chunks
  // over the pool. Off by default: the single-store configuration promises
  // the exact legacy behavior (sequential span calls), and engines that
  // offered opt-in intra-batch parallelism before sharding (FASTER's
  // batch_threads) set this to keep it.
  bool chunk_single_shard = false;
  // Two-phase read pipeline (kv/pending_read.h). Non-null routes batched
  // reads' cold misses through this engine: disk-resident keys across ALL
  // shard sub-batches go into flight together instead of blocking one
  // ReadAt at a time. Null (the default) keeps the blocking path —
  // byte-identical to the pre-pipeline behavior. Not owned; typically
  // shared across every table/shard of a process (MLKV owns one per DB).
  AsyncIoEngine* io = nullptr;
};

class ShardedStore {
 public:
  // 256 shards is already far past the point where per-shard buffers get
  // starved on one machine; reject anything larger outright.
  static constexpr uint32_t kMaxShardBits = 8;
  // Floors for the per-shard split. 16 KiB always admits the four resident
  // pages HybridLog needs (FasterStore::Open shrinks pages to 4 KiB first).
  static constexpr uint64_t kMinShardMemBytes = 1ull << 14;
  static constexpr uint64_t kMinShardIndexSlots = 64;

  ShardedStore() = default;
  ~ShardedStore() = default;

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  Status Open(const ShardedStoreOptions& options);
  // Reopens every shard from a checkpoint taken with the same options.
  Status Recover(const ShardedStoreOptions& options,
                 const std::string& prefix);

  // Shard i's location for `path` (log file or checkpoint prefix):
  // identity when shard_bits == 0, <dir>/shard-NN/<file> otherwise.
  static std::string ShardFilePath(const std::string& path, uint32_t shard,
                                   uint32_t shard_bits);
  // True if a checkpoint written by Checkpoint(prefix) under these options
  // exists: probes the <prefix>.shards commit marker when shard_bits > 0
  // (shard files without it are NOT a checkpoint — see Checkpoint), or
  // <prefix>.meta for the single-store layout.
  static bool CheckpointExists(const ShardedStoreOptions& options,
                               const std::string& prefix);

  size_t num_shards() const { return shards_.size(); }
  uint32_t shard_bits() const { return options_.shard_bits; }
  FasterStore* shard(size_t i) { return shards_[i].get(); }
  size_t ShardIndexOf(Key key) const { return ShardOf(Hash64(key), mask_); }
  FasterStore* ShardFor(Key key) { return shards_[ShardIndexOf(key)].get(); }

  // --- Single-key operations: forwarded to the owning shard ---

  Status Read(Key key, void* out, uint32_t cap, uint32_t* size = nullptr,
              uint32_t bound = UINT32_MAX) {
    return ShardFor(key)->Read(key, out, cap, size, bound);
  }
  Status Peek(Key key, void* out, uint32_t cap, uint32_t* size = nullptr) {
    return ShardFor(key)->Peek(key, out, cap, size);
  }
  Status Upsert(Key key, const void* value, uint32_t size) {
    return ShardFor(key)->Upsert(key, value, size);
  }
  Status Rmw(Key key, uint32_t value_size,
             const std::function<void(char* value, uint32_t size,
                                      bool exists)>& modifier) {
    return ShardFor(key)->Rmw(key, value_size, modifier);
  }
  Status Delete(Key key) { return ShardFor(key)->Delete(key); }
  Status Promote(Key key) { return ShardFor(key)->Promote(key); }
  bool IsInMemory(Key key) { return ShardFor(key)->IsInMemory(key); }

  // --- Batched scatter/gather ---

  // Per-key operation run against the owning shard. `caller_index` selects
  // the caller's buffers (row i of a value matrix); the outcome must be
  // recorded at `part_index` of `part` (Record or RecordInitialized) —
  // MultiExecute gathers parts back into caller order afterwards.
  using ShardOp =
      std::function<void(FasterStore* shard, Key key, size_t caller_index,
                         BatchResult* part, size_t part_index)>;

  // Partitions `keys` into per-shard sub-batches (stable: a shard sees its
  // keys in caller order), executes them — in parallel on the pool when one
  // was provided — and gathers per-key codes into `result` at the caller's
  // indices. A single-shard store (shard_bits == 0) runs the batch
  // sequentially by default — the legacy contract — or, with
  // chunk_single_shard, partitions by an independent slice of the key hash
  // over the same pool (a given key still lands in exactly one sub-batch,
  // so same-key order — e.g. duplicate-key Put last-occurrence-wins —
  // holds either way). Summary counts aggregate across
  // sub-batches; first_error keeps the lowest-numbered sub-batch's first
  // hard error. With `stop_on_error` each sub-batch stops at its first
  // non-OK outcome (one shard then runs the batch inline, giving exactly
  // the sequential fail-fast contract; with several shards, other shards'
  // sub-batches still run).
  void MultiExecute(std::span<const Key> keys, const ShardOp& op,
                    BatchResult* result, bool stop_on_error = false);

  // Read-flavored per-key operation for the two-phase pipeline. When
  // `sink` is null the op MUST resolve synchronously (exactly a ShardOp);
  // when non-null it may instead park a primed PendingRead (see
  // FasterStore::StartRead) whose finish callback records the outcome
  // once the wave completes it.
  using ShardReadOp =
      std::function<void(FasterStore* shard, Key key, size_t caller_index,
                         BatchResult* part, size_t part_index,
                         PendingSink* sink)>;

  // MultiExecute for batched reads. Without an engine (options().io null),
  // with stop_on_error, or for single-key calls this is exactly
  // MultiExecute with a null sink — the unchanged blocking path. With an
  // engine, phase 1 scatters as usual but cold misses park instead of
  // blocking; after the scatter fan-in, every parked read across all
  // sub-batches is submitted to the engine as one wave and completed on
  // the calling thread (finish callbacks record into the sub-batch parts),
  // and only then are parts gathered back to caller order.
  void MultiExecuteRead(std::span<const Key> keys, const ShardReadOp& op,
                        BatchResult* result, bool stop_on_error = false);

  // --- Maintenance across all shards (quiesced where FasterStore is) ---

  // Durability point across all shards: each shard's FasterStore::Persist
  // in turn. Safe under concurrent operations; in durability_mode == kGroup
  // concurrent callers share fsyncs through each shard's GroupCommitter.
  Status PersistAll();
  // Checkpoints every shard, then commits by writing <prefix>.shards via
  // write+rename (shard_bits > 0 only; the single-shard layout stays
  // byte-identical to FasterStore's). CheckpointExists requires the commit
  // marker, so a crash part-way through never yields a "checkpoint" with
  // missing shard files. Residual window (same class as the single store's
  // .meta/.idx pair): re-checkpointing over an existing checkpoint that
  // crashes mid-loop can leave shards committed at different points in
  // time behind the old marker.
  Status Checkpoint(const std::string& prefix);
  // Compacts every shard up to its read-only boundary; aggregates into
  // `total` when non-null.
  Status CompactAll(CompactionResult* total = nullptr);
  // Per-shard threshold: each shard compacts when its own log span exceeds
  // max_log_bytes / num_shards (the total budget, split like mem_size).
  Status MaybeCompact(uint64_t max_log_bytes,
                      CompactionResult* total = nullptr);

  // --- Aggregated telemetry ---

  FasterStatsSnapshot stats() const;
  void ResetStats();
  uint64_t approximate_size() const;
  uint64_t index_slots() const;
  // Sums of the per-shard log boundaries; monotone under the same events
  // (appends, compaction, flushes) as their single-store counterparts.
  uint64_t log_begin_total() const;
  uint64_t log_read_only_total() const;
  uint64_t log_tail_total() const;
  // Live log span: sum of (tail - begin) over shards.
  uint64_t log_span_bytes() const;
  uint64_t device_bytes_read() const;
  uint64_t device_bytes_written() const;

  const ShardedStoreOptions& options() const { return options_; }

 private:
  FasterOptions ShardOptions(size_t i) const;
  Status OpenShards(const ShardedStoreOptions& options,
                    const std::string* recover_prefix);

  // One stable run of caller indices (a range of `order`) against one
  // shard — the unit the scatter decomposes a batch into.
  struct SubBatch {
    FasterStore* store;
    uint32_t begin, end;  // range of `order`
  };
  // Decomposes `keys` into sub-batches (stable counting sort by shard, or
  // by an independent hash slice for a chunked single shard). Returns
  // false when the batch should instead run as one inline sequential pass
  // (the legacy single-shard contract) — unless `force_tasks`, which then
  // emits a single identity-order task.
  bool BuildScatter(std::span<const Key> keys, bool stop_on_error,
                    bool force_tasks, std::vector<uint32_t>* order,
                    std::vector<SubBatch>* tasks) const;
  // Runs run(t) for every task with work stealing off a shared claim
  // counter across the calling thread and pool helpers.
  void RunTasks(const std::vector<SubBatch>& tasks,
                const std::function<void(size_t)>& run);
  // Scatters per-task codes back to caller indices and sums the counts.
  static void GatherParts(const std::vector<uint32_t>& order,
                          const std::vector<SubBatch>& tasks,
                          const std::vector<BatchResult>& parts,
                          BatchResult* result);

  ShardedStoreOptions options_;
  uint64_t mask_ = 0;
  std::vector<std::unique_ptr<FasterStore>> shards_;
};

}  // namespace mlkv
