#include "kv/log_iterator.h"

namespace mlkv {

LogIterator::LogIterator(FasterStore* store, Address from, Address to)
    : store_(store),
      end_(to != 0 ? to : store->log().tail()) {
  const Address begin = store->log().begin_address();
  Address start = from != 0 ? from : begin;
  if (start < begin) start = begin;
  SeekTo(start);
}

void LogIterator::SeekTo(Address a) {
  const uint64_t page_size = store_->log().options().page_size;
  while (a < end_) {
    // Page remainders smaller than a record header are always gap fill;
    // reading one would spill into the next page's first record.
    if (page_size - (a & (page_size - 1)) < sizeof(Record)) {
      a = (a & ~(page_size - 1)) + page_size;
      continue;
    }
    RecordMeta meta;
    Status s = store_->ReadRecordAt(a, &meta, nullptr);
    if (!s.ok()) {
      status_ = s;
      valid_ = false;
      return;
    }
    if ((meta.flags & kRecordValid) == 0) {
      // Gap: zero fill to the end of this page.
      a = (a & ~(page_size - 1)) + page_size;
      continue;
    }
    s = store_->ReadRecordAt(a, &meta_, &value_);
    if (!s.ok()) {
      status_ = s;
      valid_ = false;
      return;
    }
    current_ = a;
    next_ = a + Record::SizeFor(meta_.value_size);
    valid_ = true;
    return;
  }
  valid_ = false;
}

void LogIterator::Next() {
  if (!valid_) return;
  SeekTo(next_);
}

LiveLogIterator::LiveLogIterator(FasterStore* store)
    : store_(store), it_(store) {
  SkipDead();
}

void LiveLogIterator::SkipDead() {
  while (it_.Valid()) {
    if (!(it_.meta().flags & kRecordTombstone) &&
        store_->IsLiveVersion(it_.meta().key, it_.address())) {
      return;
    }
    it_.Next();
  }
}

}  // namespace mlkv
