#include "kv/log_iterator.h"

namespace mlkv {

LogIterator::LogIterator(FasterStore* store, Address from, Address to)
    : store_(store),
      end_(to != 0 ? to : store->log().tail()) {
  const Address begin = store->log().begin_address();
  Address start = from != 0 ? from : begin;
  if (start < begin) start = begin;
  SeekTo(start);
}

void LogIterator::SeekTo(Address a) {
  const uint64_t page_size = store_->log().options().page_size;
  while (a < end_) {
    // Page remainders smaller than a record header are always gap fill;
    // reading one would spill into the next page's first record.
    if (page_size - (a & (page_size - 1)) < sizeof(Record)) {
      a = (a & ~(page_size - 1)) + page_size;
      continue;
    }
    RecordMeta meta;
    Status s = store_->ReadRecordAt(a, &meta, nullptr);
    if (!s.ok()) {
      status_ = s;
      valid_ = false;
      return;
    }
    if ((meta.flags & kRecordValid) == 0) {
      // All-zero header: page-roll gap fill — skip to the next page. A
      // nonzero header with the valid bit cleared is a record retracted
      // after a lost index CAS; its size field is intact, so step over it.
      if (meta.control == 0 && meta.prev == 0 && meta.key == 0 &&
          meta.value_size == 0 && meta.flags == 0) {
        a = (a & ~(page_size - 1)) + page_size;
        continue;
      }
      const Address skip = a + Record::SizeFor(meta.value_size);
      if (skip > (a & ~(page_size - 1)) + page_size) {
        // Corrupt remnant: treat like gap fill.
        a = (a & ~(page_size - 1)) + page_size;
        continue;
      }
      a = skip;
      continue;
    }
    s = store_->ReadRecordAt(a, &meta_, &value_);
    if (!s.ok()) {
      status_ = s;
      valid_ = false;
      return;
    }
    current_ = a;
    next_ = a + Record::SizeFor(meta_.value_size);
    valid_ = true;
    return;
  }
  valid_ = false;
}

void LogIterator::Next() {
  if (!valid_) return;
  SeekTo(next_);
}

LiveLogIterator::LiveLogIterator(FasterStore* store)
    : store_(store), it_(store) {
  SkipDead();
}

void LiveLogIterator::SkipDead() {
  while (it_.Valid()) {
    if (!(it_.meta().flags & kRecordTombstone) &&
        store_->IsLiveVersion(it_.meta().key, it_.address())) {
      return;
    }
    it_.Next();
  }
}

}  // namespace mlkv
