// The pending-read half of the two-phase batched read pipeline.
//
// Phase 1 (FasterStore::StartRead) resolves a key against the in-memory
// log: memory-resident records complete inline with the exact synchronous
// semantics, and disk-resident ones prime a PendingRead — the key's
// continuation state (target address, landing buffer, output slot, and the
// staleness-tracking inputs of the read).
//
// Phase 2 collects every PendingRead a batch produced — across shard
// sub-batches — into one PendingReadWave, submits all of their record
// fetches to a shared AsyncIoEngine together (duplicate cold keys coalesce
// into one I/O per distinct log address), and completes them on the
// calling thread as I/Os land. A completion that finds the record moved —
// evicted, compacted, hash chain continuing at another cold address past
// the hop budget, or a staleness bound the frozen record fails — falls
// back to the synchronous read path, so per-key results are always exactly
// what the blocking path would have produced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "kv/record.h"

namespace mlkv {

class AsyncIoEngine;
class FasterStore;

// Continuation state for one key whose newest candidate record is being
// fetched from disk. Primed by FasterStore::StartRead, advanced by
// FasterStore::CompletePendingRead.
struct PendingRead {
  Key key = 0;
  Address address = kInvalidAddress;  // record image in flight
  Address chain_head = kInvalidAddress;
  void* out = nullptr;  // caller's value buffer (null: header-only read)
  uint32_t cap = 0;
  uint32_t* size = nullptr;
  uint32_t bound = UINT32_MAX;  // effective staleness bound
  bool tracked = false;
  uint32_t hops = 0;  // disk chain hops taken so far
  std::vector<char> buf;  // header + value landing area

  // Final state once the wave completes the key.
  Status status;
  RecordMeta meta;          // sanitized header of the served record
  bool served_from_disk = false;  // false when a fallback re-read served it
};

// Per-sub-batch collector the phase-1 read ops park into. Single-threaded
// (one sink per scatter task); merged into the wave after the fan-in.
class PendingSink {
 public:
  // Takes ownership of a primed pending read. `finish` runs on the wave
  // owner's thread once `read->status` (and the output buffer) are final.
  void Park(FasterStore* store, std::unique_ptr<PendingRead> read,
            std::function<void(PendingRead*)> finish);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

 private:
  friend class PendingReadWave;
  struct Entry {
    FasterStore* store = nullptr;
    std::unique_ptr<PendingRead> read;
    std::function<void(PendingRead*)> finish;
  };
  std::vector<Entry> entries_;
};

// One submission wave: everything parked across a batch's sub-batches goes
// to the engine in flight together; completions (and their continuations,
// including chain-hop resubmissions and synchronous fallbacks) run on the
// thread that calls CompleteAll.
class PendingReadWave {
 public:
  explicit PendingReadWave(AsyncIoEngine* engine) : engine_(engine) {}

  void Adopt(PendingSink* sink);
  bool empty() const { return entries_.empty(); }

  // Submits every parked read and blocks until each one's finish callback
  // has run. Engine-level submit failures (shutdown) surface as the
  // per-key status of the affected reads.
  void CompleteAll();

 private:
  AsyncIoEngine* engine_;
  std::vector<PendingSink::Entry> entries_;
};

}  // namespace mlkv
