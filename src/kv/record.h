// Record layout and control-word encoding for the hybrid-log store.
//
// The control word follows MLKV's record format (paper Fig. 5(a)):
//
//   | locked: 1 bit | replaced: 1 bit | generation: 30 bits | staleness: 32 bits |
//    bit 63           bit 62            bits 32..61            bits 0..31
//
// FASTER uses the locked/replaced/generation fields as a latch-free record
// lock; MLKV "steals" the remaining 32 bits for a per-record vector clock
// (staleness counter) to implement bounded staleness consistency. All state
// transitions are single compare-and-swap operations on this word.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/hash.h"

namespace mlkv {

using Key = uint64_t;
using Address = uint64_t;

inline constexpr Address kInvalidAddress = 0;

// Default number of bounded-Get retries — index re-lookups, each yielding
// the CPU — before a staleness wait gives up with Status::Busy. Multi-worker
// BSP can deadlock on crossed key waits; the cap converts that into a
// counted, recoverable abort (~65k yields, i.e. milliseconds of wall time).
// Shared by FasterOptions, MlkvOptions, and BackendConfig so every layer
// aborts on the same budget.
inline constexpr uint64_t kDefaultBusySpinLimit = 1ull << 16;

// Control-word bit manipulation. Plain functions over uint64_t so the same
// helpers serve atomic CAS loops and offline record inspection.
struct ControlWord {
  static constexpr uint64_t kLockedBit = 1ull << 63;
  static constexpr uint64_t kReplacedBit = 1ull << 62;
  static constexpr int kGenerationShift = 32;
  static constexpr uint64_t kGenerationMask = ((1ull << 30) - 1)
                                              << kGenerationShift;
  static constexpr uint64_t kStalenessMask = (1ull << 32) - 1;

  static bool Locked(uint64_t c) { return (c & kLockedBit) != 0; }
  static bool Replaced(uint64_t c) { return (c & kReplacedBit) != 0; }
  static uint32_t Generation(uint64_t c) {
    return static_cast<uint32_t>((c & kGenerationMask) >> kGenerationShift);
  }
  static uint32_t Staleness(uint64_t c) {
    return static_cast<uint32_t>(c & kStalenessMask);
  }

  static uint64_t SetLocked(uint64_t c) { return c | kLockedBit; }
  static uint64_t ClearLocked(uint64_t c) { return c & ~kLockedBit; }
  static uint64_t SetReplaced(uint64_t c) { return c | kReplacedBit; }

  static uint64_t WithStaleness(uint64_t c, uint32_t s) {
    return (c & ~kStalenessMask) | s;
  }
  static uint64_t IncrStaleness(uint64_t c) {
    const uint32_t s = Staleness(c);
    return WithStaleness(c, s == UINT32_MAX ? s : s + 1);
  }
  static uint64_t DecrStaleness(uint64_t c) {
    const uint32_t s = Staleness(c);
    return WithStaleness(c, s == 0 ? 0 : s - 1);
  }
  static uint64_t IncrGeneration(uint64_t c) {
    const uint32_t g = (Generation(c) + 1) & ((1u << 30) - 1);
    return (c & ~kGenerationMask)
           | (static_cast<uint64_t>(g) << kGenerationShift);
  }

  // Disk images may carry transient in-memory bits (a lock held during the
  // flush, a replaced mark applied after the page was written); reads from
  // disk sanitize them.
  static uint64_t Sanitize(uint64_t c) {
    return c & ~(kLockedBit | kReplacedBit);
  }

  static uint64_t Make(uint32_t generation, uint32_t staleness) {
    return (static_cast<uint64_t>(generation & ((1u << 30) - 1))
            << kGenerationShift)
           | staleness;
  }
};

// Record flags (stored next to value_size).
inline constexpr uint32_t kRecordTombstone = 1u << 0;
// Set on every record the store appends. Pages are zero-filled before use,
// so a log scan distinguishes real records from page-roll gap bytes by this
// bit alone (every other header field can legitimately be zero).
inline constexpr uint32_t kRecordValid = 1u << 1;

// In-log record. `control` is mutated concurrently; `prev`, `key`,
// `value_size`, and `flags` are immutable once the record is published via
// the index (release CAS), so readers may access them without the lock.
struct Record {
  std::atomic<uint64_t> control;
  Address prev;        // next-older record in this hash chain
  Key key;
  uint32_t value_size;
  uint32_t flags;
  // value bytes follow, padded so records stay 8-byte aligned.

  char* value() { return reinterpret_cast<char*>(this) + sizeof(Record); }
  const char* value() const {
    return reinterpret_cast<const char*>(this) + sizeof(Record);
  }

  bool tombstone() const { return (flags & kRecordTombstone) != 0; }
  bool valid() const { return (flags & kRecordValid) != 0; }

  static uint32_t SizeFor(uint32_t value_size) {
    const uint32_t raw = static_cast<uint32_t>(sizeof(Record)) + value_size;
    return (raw + 7u) & ~7u;
  }
};

static_assert(sizeof(Record) == 32, "record header must be 32 bytes");
static_assert(alignof(Record) == 8, "records are 8-byte aligned in the log");

// Plain (non-atomic) snapshot of a record header, used for disk reads and
// seqlock-validated memory copies.
struct RecordMeta {
  uint64_t control = 0;
  Address prev = kInvalidAddress;
  Key key = 0;
  uint32_t value_size = 0;
  uint32_t flags = 0;
};

}  // namespace mlkv
