// UpdateLog: a tailable cursor over a store's committed updates.
//
// The hybrid log doubles as a change feed: every Upsert/Rmw/Delete appends
// (or, for in-place updates, rewrites) a record in address order, and the
// durable watermark (HybridLog::durable_address) marks how far that history
// is crash-safe. UpdateLogCursor exposes the prefix below the watermark as
// a resumable stream — the primitive behind `mlkv_cli tail` and any
// follower that wants to replicate or audit committed state:
//
//   UpdateLogCursor cur(store, /*from=*/0);
//   UpdateEntry e;
//   while (cur.Next(&e)) { consume(e); }
//   // caught up: call cur.Next() again after the next Persist/FlushAll
//   // and it continues from where it stopped.
//
// Entries are record images in log-address order: inserts, RCU updates,
// compaction re-copies, promotions, and tombstones all appear (the cursor
// does not collapse history — that is the consumer's job); records
// retracted after a lost index CAS never do. In-place value updates do NOT
// append a new entry — consumers needing every write see them only via the
// bumped generation the next time the record is re-appended. The cursor
// never yields addresses at or above the durable watermark, so everything
// it returns survives a crash.
//
// Bounds: a cursor must not lag behind compaction (entries below the begin
// address are gone; Next reports Status::Corruption via status() when the
// position was truncated away). Single-threaded per cursor; different
// cursors are independent.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "kv/record.h"

namespace mlkv {

class FasterStore;
class LogIterator;

// One committed update.
struct UpdateEntry {
  Address address = kInvalidAddress;  // where the record lives in the log
  Key key = 0;
  uint32_t generation = 0;   // from the control word at read time
  uint32_t staleness = 0;
  bool tombstone = false;
  std::vector<char> value;   // empty for tombstones
};

class UpdateLogCursor {
 public:
  // Starts at `from` (0 = the store's begin address, i.e. the oldest
  // retained update).
  explicit UpdateLogCursor(FasterStore* store, Address from = 0);
  ~UpdateLogCursor();

  UpdateLogCursor(const UpdateLogCursor&) = delete;
  UpdateLogCursor& operator=(const UpdateLogCursor&) = delete;

  // Yields the next committed entry, advancing the cursor past it. Returns
  // false when caught up with the durable watermark (tail by calling again
  // later) or on error — distinguish via status().
  bool Next(UpdateEntry* out);

  // Resume position: the address the next entry is read from. Feed it to a
  // new cursor's `from` to continue a stream across processes.
  Address position() const { return position_; }

  // OK unless the scan hit an I/O error or the position was compacted away.
  const Status& status() const { return status_; }

 private:
  FasterStore* store_;
  Address position_;
  // Snapshot iterator for the current [position_, durable) window; renewed
  // whenever the watermark has advanced past it.
  std::unique_ptr<LogIterator> it_;
  Address window_end_ = 0;
  Status status_;
};

}  // namespace mlkv
