// HybridLog: FASTER's central data structure — a single logical log address
// space whose tail lives in an in-memory circular page buffer and whose cold
// prefix lives on disk.
//
//   0 ............ head ............ read_only ............ tail
//   |-- on disk --|-- in-memory, immutable (flushed) --|-- mutable --|
//
// * Records in the MUTABLE region [read_only, tail) are updated in place.
// * Records in the READ-ONLY region [head, read_only) are in memory but
//   frozen: updates go read-copy-update (append a new version at the tail).
//   Pages in this region have been written to the log file, so their frames
//   can be evicted when the buffer wraps.
// * Records below `head` are read from disk on demand.
//
// MLKV's look-ahead prefetching (paper Fig. 5(b)) promotes records from the
// DISK region back into the MUTABLE region ahead of use — and deliberately
// skips records already in the READ-ONLY in-memory region, because copying
// those would only re-dirty pages ("if the data is not on disk but in the
// immutable memory buffer, we will not copy it into the mutable memory").
//
// Concurrency design (documented deviations from FASTER in DESIGN.md):
// * Allocation takes a short spinlock; page roll-over (flush + eviction)
//   happens inside it on the rolling thread.
// * Readers of non-mutable frames validate with a per-frame page-id seqlock:
//   load frame_page, copy bytes, re-load frame_page; eviction invalidates
//   frame_page first, so torn copies are detected and retried via disk.
// * In-place writers register in a per-frame writer count and re-check the
//   read-only boundary after registering; the flusher advances the boundary
//   first and then waits for the count to drain, so a below-read-only page
//   is never flushed while a value write to it is in flight. For mutable
//   pages flushed by Persist(), the drain is best-effort — a writer that
//   registers after the drain check can tear the flushed value image, but
//   it marked the frame dirty before touching bytes, so the next Persist
//   rewrites the page; header and chain bytes are never torn because they
//   are written exactly once under the Allocate() registration.
// * Appenders hold the same per-frame registration from Allocate() until
//   EndAppend(): a page roll elsewhere cannot flush (let alone recycle) a
//   frame while a freshly allocated record in it is still being filled in —
//   otherwise a preempted appender's half-written header could reach disk
//   and sever the hash chain through it.
//
// Flush / device ownership:
// * The log owns its FileDevice, built through HybridLogOptions::
//   device_factory (tests inject fault decorators; see
//   io/faulty_file_device.h) and opened with options.truncate.
// * All page flushes funnel through one prepare step (writer drain + dirty
//   clear + partial-tail length). With an AsyncIoEngine configured the
//   pages of one flush — page roll, FlushAll, Persist — go to the device
//   as a single coalesced write wave; without one they are sequential
//   blocking WriteAt calls, byte-identical on disk either way.
// * A flushed page is in the page cache, not durable. The durable
//   watermark (`durable_address()`) advances only after a successful
//   device Sync: FlushAll/Persist in kSync mode issue their own, kGroup
//   mode parks on the shared GroupCommitter so concurrent Persist callers
//   share one fsync.
// * Per-frame dirty bits (set by Allocate and BeginInPlaceWrite, cleared
//   when a flush snapshots the frame) let Persist skip pages whose disk
//   image is already current — the incremental-flush contract checkpoints
//   build on.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/async_io.h"
#include "io/file_device.h"
#include "io/group_committer.h"
#include "kv/record.h"

namespace mlkv {

struct HybridLogOptions {
  uint64_t page_size = 1ull << 20;   // 1 MiB pages
  uint64_t mem_size = 64ull << 20;   // in-memory buffer (circular, pages)
  double mutable_fraction = 0.5;     // share of buffer kept mutable
  std::string path;                  // backing log file
  bool truncate = true;              // false: keep existing file (recovery)
  // Builds the backing device (before Open is called on it). Null uses a
  // plain FileDevice; tests inject decorators (io/faulty_file_device.h).
  std::function<std::unique_ptr<FileDevice>()> device_factory;
  // Shared write engine for flush waves; null keeps every flush a
  // sequential blocking WriteAt loop (byte-identical on disk).
  AsyncIoEngine* io = nullptr;
  // kGroup gives the log a GroupCommitter so concurrent Persist callers
  // share fsyncs; kSync (default) keeps each sync point its own fdatasync.
  DurabilityMode durability = DurabilityMode::kSync;
  uint64_t group_commit_window_us = 200;
  uint64_t group_commit_max_bytes = 1ull << 20;
};

struct HybridLogStats {
  std::atomic<uint64_t> pages_flushed{0};
  std::atomic<uint64_t> pages_evicted{0};
  std::atomic<uint64_t> disk_record_reads{0};
  std::atomic<uint64_t> seqlock_retries{0};
  // Write-pipeline counters: pages submitted to / completed by the async
  // write wave (zero when no engine is configured) and fdatasyncs issued
  // directly by this log (the GroupCommitter counts its own).
  std::atomic<uint64_t> async_writes_submitted{0};
  std::atomic<uint64_t> async_writes_completed{0};
  std::atomic<uint64_t> fsyncs{0};
};

class HybridLog {
 public:
  HybridLog() = default;
  ~HybridLog();

  HybridLog(const HybridLog&) = delete;
  HybridLog& operator=(const HybridLog&) = delete;

  Status Open(const HybridLogOptions& options);

  // --- Address-space boundaries (monotonically non-decreasing) ---
  Address tail() const { return tail_.load(std::memory_order_acquire); }
  Address read_only_address() const {
    return read_only_.load(std::memory_order_acquire);
  }
  Address head_address() const {
    return head_.load(std::memory_order_acquire);
  }
  Address begin_address() const {
    return begin_.load(std::memory_order_acquire);
  }

  bool InMutableRegion(Address a) const { return a >= read_only_address(); }
  bool InMemory(Address a) const { return a >= head_address(); }

  // Allocates `size` bytes (8-aligned) at the tail; may synchronously flush
  // and evict pages when rolling to a new page. Returns the address, and a
  // raw pointer to the (mutable-region) bytes. On success the caller holds
  // an append registration on the frame and MUST call EndAppend(*address)
  // once the bytes are fully written; flushes of the page wait for it.
  Status Allocate(uint32_t size, Address* address, char** memory);

  // Releases the append registration taken by Allocate().
  void EndAppend(Address a) { EndInPlaceWrite(a); }

  // Raw pointer to an in-memory address. Only safe for the mutable region
  // (frames there are never evicted); callers in the read-only region must
  // use the validated copy API below.
  char* MutablePointer(Address a) { return FramePointer(a); }

  // Seqlock-validated copy of `n` bytes at `a` from the in-memory buffer.
  // Fails (returns false) if the frame was evicted or replaced mid-copy; the
  // caller falls back to ReadFromDisk.
  bool TryReadMemory(Address a, void* out, uint32_t n) const;

  // Reads a record (header + value) at `a` from the log file. `value_cap` is
  // the size of `value_out`; values longer than the cap are truncated (the
  // full size is reported in meta->value_size).
  Status ReadFromDisk(Address a, RecordMeta* meta, void* value_out,
                      uint32_t value_cap) const;

  // Bulk copy of `n` raw log bytes at `a` (must not cross a page boundary):
  // seqlock-validated frame copy when resident, one file read otherwise.
  // Page-granular scans (compaction) use this instead of per-record reads.
  Status ReadRaw(Address a, void* out, uint32_t n) const;

  // Registers an in-place writer for the frame holding `a`, re-checking that
  // `a` is still mutable. Returns false if the region became read-only (the
  // caller must fall back to RCU). Pair with EndInPlaceWrite.
  bool BeginInPlaceWrite(Address a);
  void EndInPlaceWrite(Address a);

  // Advances the read-only boundary to the current tail and drains writers
  // already registered on the frames, then returns that tail. Afterwards
  // every update to a pre-seal record must RCU-append a fresh log record
  // instead of rewriting bytes in place — the property the replication feed
  // needs: a cursor that passed address A would otherwise never see an
  // in-place rewrite at A. The mutable region regrows as pages roll.
  Address SealMutableRegion();

  // Flushes all pages in [head, tail) to the log file (checkpoint support)
  // and syncs the device.
  Status FlushAll();

  // Incremental durability point: flushes only resident pages that are
  // dirty or hold bytes in [durable, tail), then makes the whole file
  // durable (one fdatasync in kSync mode, a shared GroupCommitter ticket
  // in kGroup mode) and advances the durable watermark to the tail
  // observed at entry. Returns without syncing when nothing changed since
  // the last Persist. Safe under concurrent operations — see the
  // best-effort drain note in the header comment.
  Status Persist();

  // Highest address known durable on media: every record below it survives
  // a crash (modulo later in-place updates, which re-dirty their page and
  // become durable at the next Persist/FlushAll).
  Address durable_address() const {
    return durable_.load(std::memory_order_acquire);
  }

  // Non-null only in DurabilityMode::kGroup.
  GroupCommitter* committer() { return committer_.get(); }

  // Reads raw file bytes at `a` regardless of the log boundaries — the
  // recovery scan uses this to walk group-committed records beyond the
  // checkpoint tail before the boundaries are extended over them. Reads
  // past EOF zero-fill.
  Status ReadDisk(Address a, void* out, uint32_t n) const {
    return file_->ReadAt(a, out, n);
  }

  // Truncates the backing file at `a` (recovery: discard a torn tail so
  // stale bytes cannot resurface as valid records — past-EOF reads
  // zero-fill, which scans as a gap).
  Status DiscardDiskBeyond(Address a);

  // Advances the begin address (log garbage collection). Addresses below
  // `new_begin` become permanently unreachable; whole pages below it have
  // their file blocks released via hole punching. Monotonic; `new_begin`
  // must not exceed the read-only boundary. The caller (FasterStore::
  // Compact) guarantees no chain walk can reach the dead region afterwards.
  Status ShiftBeginAddress(Address new_begin);

  const HybridLogOptions& options() const { return options_; }
  const HybridLogStats& stats() const { return stats_; }
  FileDevice* device() { return file_.get(); }
  const FileDevice* device() const { return file_.get(); }
  // Accounts a record read served from disk by an external path (the
  // pending-read pipeline issues its I/O through the AsyncIoEngine, not
  // ReadFromDisk, but the operator-facing counter must still move).
  void NoteDiskRecordRead() const {
    stats_.disk_record_reads.fetch_add(1, std::memory_order_relaxed);
  }

  // Used by recovery to restore boundaries after reloading metadata. All
  // in-memory state is discarded; everything in [begin, tail) is
  // disk-resident.
  Status RestoreBoundaries(Address tail, Address begin = kLogBegin);

  // First usable address (0 is reserved as kInvalidAddress).
  static constexpr Address kLogBegin = 64;

 private:
  uint64_t PageOf(Address a) const { return a >> page_bits_; }
  uint64_t PageStart(uint64_t page) const { return page << page_bits_; }
  uint64_t FrameOf(uint64_t page) const { return page % mem_pages_; }

  char* FramePointer(Address a) {
    const uint64_t page = PageOf(a);
    return frames_[FrameOf(page)].get() + (a & (options_.page_size - 1));
  }
  const char* FramePointer(Address a) const {
    return const_cast<HybridLog*>(this)->FramePointer(a);
  }

  // Rolls the log forward so that `page` has a clean, resident frame.
  // Called with alloc_lock_ held.
  Status ProvisionPage(uint64_t page);
  // Clears the dirty bit, drains in-place writers, and returns the flush
  // length for `page` (0 when the page holds no bytes below the tail).
  uint32_t PreparePageFlush(uint64_t page, Address tail_now);
  Status FlushPage(uint64_t page);
  // Flushes every resident page in `pages` — one coalesced engine wave
  // when options_.io is set, sequential FlushPage calls otherwise. Called
  // with alloc_lock_ held.
  Status FlushPageSet(const std::vector<uint64_t>& pages);
  void MarkDirty(uint64_t page) {
    frame_dirty_[FrameOf(page)].store(1, std::memory_order_release);
  }

  static constexpr uint64_t kInvalidPage = ~0ull;

  HybridLogOptions options_;
  std::unique_ptr<FileDevice> file_;
  int page_bits_ = 0;
  uint64_t mem_pages_ = 0;
  uint64_t mutable_pages_ = 0;

  std::vector<std::unique_ptr<char[]>> frames_;
  // Logical page currently resident in each frame (kInvalidPage if none);
  // doubles as the seqlock generation for validated reads.
  std::vector<std::atomic<uint64_t>> frame_page_;
  // Count of in-flight in-place value writes per frame.
  std::vector<std::atomic<int>> frame_writers_;
  // Set when a frame's bytes diverged from its disk image (new record or
  // in-place update); cleared when a flush snapshots the frame.
  std::vector<std::atomic<uint8_t>> frame_dirty_;
  // Highest page already flushed to the file (exclusive).
  uint64_t flushed_until_page_ = 0;
  // Highest page with a claimed, zeroed frame (allocation may proceed into
  // it). Guarded by alloc_lock_.
  uint64_t highest_provisioned_page_ = 0;

  std::atomic<Address> tail_{kLogBegin};
  std::atomic<Address> read_only_{kLogBegin};
  std::atomic<Address> head_{kLogBegin};
  std::atomic<Address> begin_{kLogBegin};
  // Advances only after a successful device sync (see durable_address()).
  std::atomic<Address> durable_{kLogBegin};

  // Declared after file_ so the committer thread stops before the device
  // closes.
  std::unique_ptr<GroupCommitter> committer_;

  std::atomic_flag alloc_lock_ = ATOMIC_FLAG_INIT;
  mutable HybridLogStats stats_;
};

}  // namespace mlkv
