#include "kv/faster_store.h"

#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

namespace mlkv {

namespace {

// Checkpoint metadata block. The v1 layout ("MLKV3CHK", no delta_count
// field) is what full checkpoints still write — byte-identical to every
// prior release; incremental checkpoints write the extended v2 block
// ("MLKV4CHK") committed via write-tmp-then-rename. Recovery accepts both.
struct CheckpointMeta {
  uint64_t magic = 0x4D4C4B563343484Bull;  // "MLKV3CHK"
  uint64_t tail = 0;
  uint64_t index_slots = 0;
  uint64_t num_inserts = 0;
  uint64_t begin = HybridLog::kLogBegin;   // GC boundary at checkpoint time
  // Effective page size (Open may shrink the configured one for small
  // buffers); recovery must parse the log with the same geometry.
  uint64_t page_size = 0;
  // --- v2 only ---
  // Number of <prefix>.idx.d<k> delta files (k = 1..delta_count) to apply,
  // in order, on top of the <prefix>.idx base.
  uint64_t delta_count = 0;
};

constexpr uint64_t kMetaMagicV1 = 0x4D4C4B563343484Bull;  // "MLKV3CHK"
constexpr uint64_t kMetaMagicV2 = 0x4D4C4B563443484Bull;  // "MLKV4CHK"
constexpr size_t kMetaSizeV1 = sizeof(CheckpointMeta) - sizeof(uint64_t);

std::string DeltaPath(const std::string& prefix, uint64_t k) {
  return prefix + ".idx.d" + std::to_string(k);
}

// Applies `transform` to the control word with a CAS loop. Only the lock
// holder changes generation/staleness, but another thread may concurrently
// set the replaced bit, so a blind store is not safe.
template <typename Fn>
uint64_t TransformControl(std::atomic<uint64_t>* control, Fn transform) {
  uint64_t c = control->load(std::memory_order_acquire);
  for (;;) {
    const uint64_t desired = transform(c);
    if (control->compare_exchange_weak(c, desired, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return desired;
    }
  }
}

}  // namespace

Status FasterStore::Open(const FasterOptions& options) {
  options_ = options;
  // The circular buffer needs at least 4 resident pages; small memory
  // budgets (the tight end of the Fig. 7 sweep) shrink the page size
  // rather than failing.
  while (options_.page_size > 4096 &&
         options_.mem_size / options_.page_size < 4) {
    options_.page_size >>= 1;
  }
  index_.reset(new HashIndex(options.index_slots));
  ckpt_ = CheckpointChain();
  return log_.Open(LogOptions(/*truncate=*/true));
}

HybridLogOptions FasterStore::LogOptions(bool truncate) const {
  HybridLogOptions log_opts;
  log_opts.page_size = options_.page_size;
  log_opts.mem_size = options_.mem_size;
  log_opts.mutable_fraction = options_.mutable_fraction;
  log_opts.path = options_.path;
  log_opts.truncate = truncate;
  log_opts.device_factory = options_.device_factory;
  log_opts.io = options_.io;
  log_opts.durability = options_.durability_mode;
  log_opts.group_commit_window_us = options_.group_commit_window_us;
  log_opts.group_commit_max_bytes = options_.group_commit_max_bytes;
  return log_opts;
}

Status FasterStore::LoadMeta(Address address, RecordMeta* meta,
                             bool* in_memory) {
  for (;;) {
    if (address >= log_.head_address()) {
      char buf[sizeof(Record)];
      if (log_.TryReadMemory(address, buf, sizeof(buf))) {
        std::memcpy(&meta->control, buf + 0, 8);
        std::memcpy(&meta->prev, buf + 8, 8);
        std::memcpy(&meta->key, buf + 16, 8);
        std::memcpy(&meta->value_size, buf + 24, 4);
        std::memcpy(&meta->flags, buf + 28, 4);
        *in_memory = true;
        return Status::OK();
      }
      if (address >= log_.head_address()) {
        // Frame replaced mid-read but the address is still resident —
        // transient (page being claimed); retry.
        std::this_thread::yield();
        continue;
      }
    }
    *in_memory = false;
    return log_.ReadFromDisk(address, meta, nullptr, 0);
  }
}

Status FasterStore::LoadValue(Address address, const RecordMeta& meta,
                              void* out, uint32_t cap) {
  const uint32_t n = meta.value_size < cap ? meta.value_size : cap;
  for (;;) {
    if (address >= log_.head_address()) {
      if (log_.TryReadMemory(address + sizeof(Record), out, n)) {
        return Status::OK();
      }
      if (address >= log_.head_address()) {
        std::this_thread::yield();
        continue;
      }
    }
    RecordMeta disk_meta;
    return log_.ReadFromDisk(address, &disk_meta, out, cap);
  }
}

Status FasterStore::Find(Key key, FindResult* out) {
restart:
  Address a = index()->Load(key);
  out->chain_head = a;
  // Addresses below the begin boundary are log garbage: every record that
  // was live when the boundary moved has a newer copy above it, so the walk
  // treats them as end-of-chain.
  while (a != kInvalidAddress && a >= log_.begin_address()) {
    RecordMeta meta;
    bool in_memory = false;
    MLKV_RETURN_NOT_OK(LoadMeta(a, &meta, &in_memory));
    if (a < log_.begin_address()) {
      // Compaction advanced past `a` between the boundary check and the
      // load; the bytes read may already be punched. The live version (if
      // any) was republished first, so a restart observes it.
      goto restart;
    }
    if (meta.key == key) {
      out->address = a;
      out->meta = meta;
      out->in_memory = in_memory;
      out->found = true;
      return Status::OK();
    }
    a = meta.prev;
  }
  out->found = false;
  return Status::OK();
}

Status FasterStore::AppendAndPublish(Key key, const void* value,
                                     uint32_t value_size, uint64_t control,
                                     uint32_t flags, Address expected,
                                     Address* out_address) {
  const uint32_t size = Record::SizeFor(value_size);
  Address addr = kInvalidAddress;
  char* mem = nullptr;
  MLKV_RETURN_NOT_OK(log_.Allocate(size, &addr, &mem));
  Record* r = reinterpret_cast<Record*>(mem);
  r->control.store(control, std::memory_order_relaxed);
  r->prev = expected;
  r->key = key;
  r->value_size = value_size;
  r->flags = flags | kRecordValid;
  if (value_size > 0 && value != nullptr) {
    std::memcpy(r->value(), value, value_size);
  }
  // Publish: release-CAS makes all fields above visible to chain walkers.
  // The append pin from Allocate() is held across the CAS so a lost race
  // can retract the valid bit before any flush snapshots the frame: on
  // disk, abandoned records are never valid, which is what lets crash
  // recovery replay the group-committed tail without ambiguity (a record
  // whose valid bit is set was genuinely published; docs/DURABILITY.md).
  Address e = expected;
  if (!index()->CompareExchange(key, e, addr)) {
    // Lost the race; the appended record becomes unreachable log garbage.
    r->flags &= ~kRecordValid;
    log_.EndAppend(addr);
    return Status::Busy("index CAS lost");
  }
  log_.EndAppend(addr);
  if (out_address != nullptr) *out_address = addr;
  return Status::OK();
}

void FasterStore::MarkReplaced(Address address) {
  // Pin the frame so the pointer stays valid; if the record went cold this
  // is a no-op — read-only / disk images are superseded via the index, and
  // their replaced bit is advisory only.
  if (!log_.BeginInPlaceWrite(address)) return;
  MutableRecord(address)->control.fetch_or(ControlWord::kReplacedBit,
                                           std::memory_order_acq_rel);
  log_.EndInPlaceWrite(address);
}

Status FasterStore::Read(Key key, std::string* out, uint32_t bound) {
  // Two-step: size probe then fixed read; fine for the string convenience
  // path (hot paths use the fixed-buffer overload).
  FindResult f;
  MLKV_RETURN_NOT_OK(Find(key, &f));
  if (!f.found || (f.meta.flags & kRecordTombstone)) {
    return Status::NotFound();
  }
  out->resize(f.meta.value_size);
  uint32_t size = 0;
  return Read(key, out->data(), f.meta.value_size, &size, bound);
}

Status FasterStore::Read(Key key, void* out, uint32_t cap, uint32_t* size,
                         uint32_t bound) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return ReadInternal(key, out, cap, size, bound, options_.track_staleness);
}

Status FasterStore::Peek(Key key, void* out, uint32_t cap, uint32_t* size) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return ReadInternal(key, out, cap, size, UINT32_MAX, /*tracked=*/false);
}

Status FasterStore::ReadInternal(Key key, void* out, uint32_t cap,
                                 uint32_t* size, uint32_t bound,
                                 bool tracked) {
  const uint32_t effective_bound =
      bound != UINT32_MAX ? bound : options_.staleness_bound;
  uint64_t spins = 0;
  for (;;) {
    FindResult f;
    MLKV_RETURN_NOT_OK(Find(key, &f));
    if (!f.found || (f.meta.flags & kRecordTombstone)) {
      return Status::NotFound();
    }
    if (size != nullptr) *size = f.meta.value_size;

    if (f.address < log_.read_only_address()) {
      // Cold record (read-only region or disk): no in-place vector clock to
      // maintain. Check the frozen staleness value against the bound, copy
      // the value out, and optionally promote.
      if (tracked && ControlWord::Staleness(f.meta.control) > effective_bound) {
        // The counter can only drop via a Put, which will supersede this
        // version through the index; re-find until it does.
        stats_.staleness_waits.fetch_add(1, std::memory_order_relaxed);
        if (++spins > options_.busy_spin_limit) {
          stats_.busy_aborts.fetch_add(1, std::memory_order_relaxed);
          return Status::Busy("staleness bound");
        }
        std::this_thread::yield();
        continue;
      }
      MLKV_RETURN_NOT_OK(LoadValue(f.address, f.meta, out, cap));
      if (options_.promote_cold_reads && !f.in_memory) {
        // Carry the read's increment onto the promoted copy.
        const uint64_t control =
            tracked ? ControlWord::IncrStaleness(f.meta.control)
                    : f.meta.control;
        AppendAndPublish(key, out,
                         f.meta.value_size < cap ? f.meta.value_size : cap,
                         control, f.meta.flags, f.chain_head, nullptr)
            .ok();  // best-effort; a racing writer supersedes us anyway
      }
      return Status::OK();
    }

    // Mutable region: the paper's latch-free protocol. Pin the frame first
    // (BeginInPlaceWrite re-validates mutability and blocks flush/eviction
    // of the page while held) so the record pointer stays valid, then
    // acquire the record lock and bump staleness in one CAS. The pin is
    // never held across a staleness wait — that would stall the flusher.
    if (!log_.BeginInPlaceWrite(f.address)) continue;  // went cold: re-find
    Record* r = MutableRecord(f.address);
    uint64_t c = r->control.load(std::memory_order_acquire);
    if (ControlWord::Replaced(c)) {                  // superseded: re-find
      log_.EndInPlaceWrite(f.address);
      continue;
    }
    if (ControlWord::Locked(c)) {
      log_.EndInPlaceWrite(f.address);
      std::this_thread::yield();
      continue;
    }
    if (tracked && ControlWord::Staleness(c) > effective_bound) {
      log_.EndInPlaceWrite(f.address);
      stats_.staleness_waits.fetch_add(1, std::memory_order_relaxed);
      if (++spins > options_.busy_spin_limit) {
        stats_.busy_aborts.fetch_add(1, std::memory_order_relaxed);
        return Status::Busy("staleness bound");
      }
      std::this_thread::yield();
      continue;
    }
    uint64_t desired = ControlWord::SetLocked(c);
    if (tracked) desired = ControlWord::IncrStaleness(desired);
    if (!r->control.compare_exchange_strong(c, desired,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      log_.EndInPlaceWrite(f.address);
      continue;
    }
    const uint32_t n = f.meta.value_size < cap ? f.meta.value_size : cap;
    std::memcpy(out, r->value(), n);
    TransformControl(&r->control,
                     [](uint64_t w) { return ControlWord::ClearLocked(w); });
    log_.EndInPlaceWrite(f.address);
    return Status::OK();
  }
}

namespace {
// Disk chain hops a pending read follows before giving up on the async
// path and falling back to the blocking walk. Chains this deep mean the
// index is drastically undersized; the fallback keeps semantics exact.
constexpr uint32_t kMaxPendingHops = 4;

void ParseRecordHeader(const char* hdr, RecordMeta* meta) {
  std::memcpy(&meta->control, hdr + 0, 8);
  std::memcpy(&meta->prev, hdr + 8, 8);
  std::memcpy(&meta->key, hdr + 16, 8);
  std::memcpy(&meta->value_size, hdr + 24, 4);
  std::memcpy(&meta->flags, hdr + 28, 4);
}
}  // namespace

// Memory-only chain walk for phase 1 of the pending pipeline: classifies
// `key` without issuing any disk I/O. kMemory means the matching record is
// (still) memory-resident; kDisk stops at the first disk-resident chain
// address (*address), where the async fetch picks up.
FasterStore::WalkOutcome FasterStore::WalkForPending(Key key,
                                                     Address* address,
                                                     Address* chain_head) {
restart:
  Address a = index()->Load(key);
  *chain_head = a;
  while (a != kInvalidAddress && a >= log_.begin_address()) {
    if (!log_.InMemory(a)) break;  // disk-resident: park
    char hdr[sizeof(Record)];
    if (!log_.TryReadMemory(a, hdr, sizeof(hdr))) {
      if (log_.InMemory(a)) {
        // Frame replaced mid-read but still resident — transient (page
        // being claimed); retry.
        std::this_thread::yield();
        continue;
      }
      break;  // evicted mid-walk: now disk-resident
    }
    RecordMeta meta;
    ParseRecordHeader(hdr, &meta);
    if (a < log_.begin_address()) goto restart;  // compaction passed us
    if (meta.key == key) return WalkOutcome::kMemory;
    a = meta.prev;
  }
  if (a == kInvalidAddress || a < log_.begin_address()) {
    return WalkOutcome::kNotFound;
  }
  *address = a;
  return WalkOutcome::kDisk;
}

bool FasterStore::StartRead(Key key, void* out, uint32_t cap, uint32_t* size,
                            uint32_t bound, bool tracked,
                            PendingRead* pending) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  PendingRead* p = pending;
  p->key = key;
  p->out = out;
  p->cap = cap;
  p->size = size;
  p->bound = bound != UINT32_MAX ? bound : options_.staleness_bound;
  p->tracked = tracked;
  p->hops = 0;
  p->served_from_disk = false;

  switch (WalkForPending(key, &p->address, &p->chain_head)) {
    case WalkOutcome::kMemory:
      // Memory-resident: the blocking path resolves it with no disk I/O
      // (should an eviction demote it this instant, that path's disk
      // fallback is exactly the old behavior).
      p->status = ReadInternal(key, out, cap, size, p->bound, tracked);
      return true;
    case WalkOutcome::kNotFound:
      p->status = Status::NotFound();
      return true;
    case WalkOutcome::kDisk:
      break;
  }
  p->buf.resize(sizeof(Record) + cap);
  return false;
}

Status FasterStore::StartPromote(Key key, uint32_t cap, PendingRead* pending,
                                 bool* parked) {
  PendingRead* p = pending;
  *parked = false;
  p->key = key;
  p->out = nullptr;  // PromoteFromPending copies straight from the buffer
  p->cap = cap;
  p->size = nullptr;
  p->bound = UINT32_MAX;
  p->tracked = false;  // a prefetch never touches the vector clocks
  p->hops = 0;
  p->served_from_disk = false;

  switch (WalkForPending(key, &p->address, &p->chain_head)) {
    case WalkOutcome::kMemory:
      // In memory: the classic Promote decides (skip if mutable, skip if
      // immutable-resident under the paper's page-write-saving rule) with
      // no disk I/O.
      return Promote(key);
    case WalkOutcome::kNotFound:
      return Status::NotFound();
    case WalkOutcome::kDisk:
      break;
  }
  p->buf.resize(sizeof(Record) + cap);
  *parked = true;
  return Status::OK();
}

void FasterStore::RefetchPending(PendingRead* pending) {
  stats_.async_reads_refetched.fetch_add(1, std::memory_order_relaxed);
  pending->served_from_disk = false;
  if (pending->out == nullptr) {
    // Buffer-less read (a StartPromote fetch): the record moved while in
    // flight, so the prefetch is moot — report OK with nothing served and
    // PromoteFromPending skips it, mirroring Promote's lost-race skip.
    pending->status = Status::OK();
    return;
  }
  pending->status = ReadInternal(pending->key, pending->out, pending->cap,
                                 pending->size, pending->bound,
                                 pending->tracked);
}

FasterStore::PendingStep FasterStore::CompletePendingRead(
    PendingRead* pending, const Status& io_status) {
  PendingRead* p = pending;
  if (!io_status.ok()) {
    // The device itself failed; that is the key's outcome (a retry storm
    // against a failing disk helps nobody). Siblings are unaffected.
    p->status = io_status;
    return PendingStep::kDone;
  }
  RecordMeta meta;
  ParseRecordHeader(p->buf.data(), &meta);
  meta.control = ControlWord::Sanitize(meta.control);
  if ((meta.flags & kRecordValid) == 0 ||
      p->address < log_.begin_address()) {
    // Compaction reclaimed (or hole-punched) the fetched range while the
    // I/O was in flight; any live version was republished above it first.
    RefetchPending(p);
    return PendingStep::kDone;
  }
  if (meta.key != p->key) {
    // Collision: the chain continues below the fetched record.
    const Address prev = meta.prev;
    if (prev == kInvalidAddress || prev < log_.begin_address()) {
      p->status = Status::NotFound();
      return PendingStep::kDone;
    }
    if (prev >= p->address || ++p->hops >= kMaxPendingHops) {
      // A chain must strictly descend; anything else (or a degenerate
      // collision chain) goes to the blocking walk.
      RefetchPending(p);
      return PendingStep::kDone;
    }
    p->address = prev;
    return PendingStep::kResubmit;
  }
  if (meta.flags & kRecordTombstone) {
    p->status = Status::NotFound();
    return PendingStep::kDone;
  }
  if (p->tracked && ControlWord::Staleness(meta.control) > p->bound) {
    // The blocking path owns the staleness wait/abort protocol.
    RefetchPending(p);
    return PendingStep::kDone;
  }
  const uint32_t n = meta.value_size < p->cap ? meta.value_size : p->cap;
  if (p->out != nullptr && n > 0) {
    std::memcpy(p->out, p->buf.data() + sizeof(Record), n);
  }
  if (p->size != nullptr) *p->size = meta.value_size;
  p->meta = meta;
  p->served_from_disk = true;
  if (options_.promote_cold_reads && p->out != nullptr) {
    // Carry the read's increment onto the promoted copy (sync parity).
    const uint64_t control =
        p->tracked ? ControlWord::IncrStaleness(meta.control) : meta.control;
    AppendAndPublish(p->key, p->out, n, control, meta.flags, p->chain_head,
                     nullptr)
        .ok();  // best-effort; a racing writer supersedes us anyway
  }
  p->status = Status::OK();
  return PendingStep::kDone;
}

Status FasterStore::PromoteFromPending(const PendingRead& pending) {
  if (!pending.status.ok()) return pending.status;
  if (!pending.served_from_disk || pending.meta.value_size > pending.cap) {
    // A fallback already re-read it (promotion is best-effort) or the
    // landing buffer truncated the value; nothing safe to copy.
    stats_.promotions_skipped.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  // Same contract as Promote's disk case: original control word and flags
  // carry over — promotion is not an update.
  Status s = AppendAndPublish(
      pending.key, pending.buf.data() + sizeof(Record),
      pending.meta.value_size, ControlWord::Sanitize(pending.meta.control),
      pending.meta.flags, pending.chain_head, nullptr);
  if (s.IsBusy()) {
    // A concurrent update superseded the record in flight; theirs is newer.
    stats_.promotions_skipped.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  MLKV_RETURN_NOT_OK(s);
  MarkReplaced(pending.address);
  stats_.promotions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FasterStore::Upsert(Key key, const void* value, uint32_t size) {
  stats_.upserts.fetch_add(1, std::memory_order_relaxed);
  const bool tracked = options_.track_staleness;
  for (;;) {
    FindResult f;
    MLKV_RETURN_NOT_OK(Find(key, &f));
    if (!f.found) {
      // Fresh insert: generation 0, staleness 0.
      Status s = AppendAndPublish(key, value, size, ControlWord::Make(0, 0),
                                  0, f.chain_head, nullptr);
      if (s.IsBusy()) continue;
      MLKV_RETURN_NOT_OK(s);
      stats_.inserts.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    if (f.address < log_.read_only_address() ||
        f.meta.value_size != size || (f.meta.flags & kRecordTombstone)) {
      // RCU: append a new version. A Put only lowers staleness (§III-C1),
      // so it never waits; the new version carries staleness-1, gen+1.
      uint64_t control = ControlWord::Sanitize(f.meta.control);
      control = ControlWord::IncrGeneration(
          tracked ? ControlWord::DecrStaleness(control) : control);
      Status s = AppendAndPublish(key, value, size, control, 0, f.chain_head,
                                  nullptr);
      if (s.IsBusy()) continue;
      MLKV_RETURN_NOT_OK(s);
      MarkReplaced(f.address);
      stats_.rcu_appends.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    // Mutable region, same size: in-place update under the record lock.
    // Pin first so the record pointer stays valid (see Read).
    if (!log_.BeginInPlaceWrite(f.address)) continue;  // went cold: RCU
    Record* r = MutableRecord(f.address);
    uint64_t c = r->control.load(std::memory_order_acquire);
    if (ControlWord::Replaced(c)) {
      log_.EndInPlaceWrite(f.address);
      continue;
    }
    if (ControlWord::Locked(c)) {
      log_.EndInPlaceWrite(f.address);
      std::this_thread::yield();
      continue;
    }
    const uint64_t locked = ControlWord::SetLocked(c);
    if (!r->control.compare_exchange_strong(c, locked,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      log_.EndInPlaceWrite(f.address);
      continue;
    }
    std::memcpy(r->value(), value, size);
    TransformControl(&r->control, [tracked](uint64_t w) {
      uint64_t n = ControlWord::IncrGeneration(w);
      if (tracked) n = ControlWord::DecrStaleness(n);
      return ControlWord::ClearLocked(n);
    });
    log_.EndInPlaceWrite(f.address);
    stats_.inplace_updates.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
}

Status FasterStore::Rmw(Key key, uint32_t value_size,
                        const std::function<void(char*, uint32_t, bool)>&
                            modifier) {
  stats_.rmws.fetch_add(1, std::memory_order_relaxed);
  const bool tracked = options_.track_staleness;
  std::vector<char> scratch;
  for (;;) {
    FindResult f;
    MLKV_RETURN_NOT_OK(Find(key, &f));
    if (!f.found || (f.meta.flags & kRecordTombstone)) {
      scratch.assign(value_size, 0);
      modifier(scratch.data(), value_size, /*exists=*/false);
      Status s = AppendAndPublish(key, scratch.data(), value_size,
                                  ControlWord::Make(0, 0), 0, f.chain_head,
                                  nullptr);
      if (s.IsBusy()) continue;
      MLKV_RETURN_NOT_OK(s);
      stats_.inserts.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    if (f.address >= log_.read_only_address() &&
        f.meta.value_size == value_size) {
      // In-place modify under the record lock; pin first (see Read).
      if (!log_.BeginInPlaceWrite(f.address)) continue;
      Record* r = MutableRecord(f.address);
      uint64_t c = r->control.load(std::memory_order_acquire);
      if (ControlWord::Replaced(c)) {
        log_.EndInPlaceWrite(f.address);
        continue;
      }
      if (ControlWord::Locked(c)) {
        log_.EndInPlaceWrite(f.address);
        std::this_thread::yield();
        continue;
      }
      const uint64_t locked = ControlWord::SetLocked(c);
      if (!r->control.compare_exchange_strong(c, locked,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        log_.EndInPlaceWrite(f.address);
        continue;
      }
      modifier(r->value(), value_size, /*exists=*/true);
      TransformControl(&r->control, [tracked](uint64_t w) {
        uint64_t n = ControlWord::IncrGeneration(w);
        if (tracked) n = ControlWord::DecrStaleness(n);
        return ControlWord::ClearLocked(n);
      });
      log_.EndInPlaceWrite(f.address);
      stats_.inplace_updates.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    // Cold record: copy, modify, append (RCU).
    scratch.assign(value_size, 0);
    const uint32_t copy_n =
        f.meta.value_size < value_size ? f.meta.value_size : value_size;
    MLKV_RETURN_NOT_OK(LoadValue(f.address, f.meta, scratch.data(), copy_n));
    modifier(scratch.data(), value_size, /*exists=*/true);
    uint64_t control = ControlWord::IncrGeneration(
        tracked ? ControlWord::DecrStaleness(f.meta.control)
                : f.meta.control);
    Status s = AppendAndPublish(key, scratch.data(), value_size, control, 0,
                                f.chain_head, nullptr);
    if (s.IsBusy()) continue;
    MLKV_RETURN_NOT_OK(s);
    MarkReplaced(f.address);
    stats_.rcu_appends.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
}

Status FasterStore::Delete(Key key) {
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    FindResult f;
    MLKV_RETURN_NOT_OK(Find(key, &f));
    if (!f.found || (f.meta.flags & kRecordTombstone)) {
      return Status::NotFound();
    }
    Status s = AppendAndPublish(key, nullptr, 0,
                                ControlWord::IncrGeneration(f.meta.control),
                                kRecordTombstone, f.chain_head, nullptr);
    if (s.IsBusy()) continue;
    MLKV_RETURN_NOT_OK(s);
    MarkReplaced(f.address);
    return Status::OK();
  }
}

Status FasterStore::Promote(Key key) {
  for (;;) {
    FindResult f;
    MLKV_RETURN_NOT_OK(Find(key, &f));
    if (!f.found || (f.meta.flags & kRecordTombstone)) {
      return Status::NotFound();
    }
    if (f.address >= log_.read_only_address()) {
      // Already mutable: nothing to do.
      stats_.promotions_skipped.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    if (f.in_memory && options_.skip_promote_if_in_memory) {
      // Paper §III-C2: records in the immutable memory buffer are not
      // copied to the mutable region — it would only re-dirty pages.
      stats_.promotions_skipped.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    // Copy with the ORIGINAL staleness and value (§III-C2: "a new record
    // with the original staleness and value will be copied into the mutable
    // memory buffer"). Generation is preserved as well: promotion is not an
    // update.
    std::vector<char> value(f.meta.value_size);
    MLKV_RETURN_NOT_OK(
        LoadValue(f.address, f.meta, value.data(), f.meta.value_size));
    Status s = AppendAndPublish(key, value.data(), f.meta.value_size,
                                ControlWord::Sanitize(f.meta.control),
                                f.meta.flags, f.chain_head, nullptr);
    if (s.IsBusy()) {
      // Another thread updated the key concurrently ("no other threads
      // updating it"); their version is newer — skip.
      stats_.promotions_skipped.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    MLKV_RETURN_NOT_OK(s);
    MarkReplaced(f.address);
    stats_.promotions.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
}

Status FasterStore::ReadRecordAt(Address address, RecordMeta* meta,
                                 std::vector<char>* value) {
  if (address < log_.begin_address() || address >= log_.tail()) {
    return Status::InvalidArgument("address outside the live log");
  }
  bool in_memory = false;
  MLKV_RETURN_NOT_OK(LoadMeta(address, meta, &in_memory));
  meta->control = ControlWord::Sanitize(meta->control);
  if (value != nullptr) {
    value->resize(meta->value_size);
    if (meta->value_size > 0) {
      MLKV_RETURN_NOT_OK(
          LoadValue(address, *meta, value->data(), meta->value_size));
    }
  }
  return Status::OK();
}

Status FasterStore::Compact(Address until, CompactionResult* result) {
  CompactionResult local;
  CompactionResult* r = result != nullptr ? result : &local;
  if (compact_lock_.test_and_set(std::memory_order_acquire)) {
    return Status::Busy("compaction already running");
  }
  struct Release {
    std::atomic_flag* f;
    ~Release() { f->clear(std::memory_order_release); }
  } release{&compact_lock_};

  const Address begin = log_.begin_address();
  if (until > log_.read_only_address()) until = log_.read_only_address();
  if (until <= begin) {
    r->new_begin = begin;
    return Status::OK();  // nothing cold to compact
  }

  // Page-granular scan: records below the read-only boundary are immutable,
  // so each page is snapshotted with one bulk read (seqlock-validated copy
  // when resident, one pread otherwise) and parsed in memory — compaction
  // I/O is then proportional to pages, not records.
  const uint64_t page_size = log_.options().page_size;
  std::vector<char> page(page_size);
  Address a = begin;
  while (a < until) {
    const Address page_start = a & ~(page_size - 1);
    const Address page_end = page_start + page_size;
    // Snapshot the full page remainder: a record may start below `until`
    // but extend past it. Reads past EOF zero-fill, which scans as a gap.
    MLKV_RETURN_NOT_OK(
        log_.ReadRaw(a, page.data() + (a - page_start),
                     static_cast<uint32_t>(page_end - a)));
    while (a < until) {
      // A page remainder too small for a header is always gap fill.
      if (page_end - a < sizeof(Record)) break;
      RecordMeta meta;
      const char* rec = page.data() + (a - page_start);
      std::memcpy(&meta.control, rec + 0, 8);
      std::memcpy(&meta.prev, rec + 8, 8);
      std::memcpy(&meta.key, rec + 16, 8);
      std::memcpy(&meta.value_size, rec + 24, 4);
      std::memcpy(&meta.flags, rec + 28, 4);
      if ((meta.flags & kRecordValid) == 0) {
        // Invalid header: either page-roll gap fill (all zero — skip the
        // rest of the page) or a record retracted after a lost index CAS
        // (header intact, valid bit cleared — skip it in place).
        if (meta.control == 0 && meta.prev == 0 && meta.key == 0 &&
            meta.value_size == 0 && meta.flags == 0) {
          break;
        }
        const Address skip = a + Record::SizeFor(meta.value_size);
        if (skip > page_end) break;  // corrupt remnant: treat as gap
        a = skip;
        continue;
      }
      const Address next = a + Record::SizeFor(meta.value_size);
      if (next > page_end) {
        return Status::Corruption("record overruns its page");
      }
      ++r->scanned;

      // Liveness: the record is live iff the index still resolves its key
      // to exactly this address. Fast path: the slot head IS this address
      // (no chain walk, no I/O) — true for most live records.
      for (;;) {
        Address expected = index()->Load(meta.key);
        if (expected != a) {
          FindResult f;
          MLKV_RETURN_NOT_OK(Find(meta.key, &f));
          if (!f.found || f.address != a) {
            ++r->dead_skipped;
            break;
          }
          expected = f.chain_head;
        }
        if (meta.flags & kRecordTombstone) {
          // Newest version is a tombstone: once begin passes it the key
          // walks off the chain end and reads NotFound, so the tombstone
          // itself need not survive.
          ++r->tombstones_dropped;
          break;
        }
        // A compaction copy is not an update: control word (generation AND
        // staleness) and flags carry over unchanged, like Promote.
        Status s = AppendAndPublish(meta.key, rec + sizeof(Record),
                                    meta.value_size,
                                    ControlWord::Sanitize(meta.control),
                                    meta.flags, expected, nullptr);
        if (s.IsBusy()) continue;  // superseded mid-copy; re-check
        MLKV_RETURN_NOT_OK(s);
        ++r->live_copied;
        break;
      }
      a = next;
    }
    a = page_end;
  }

  MLKV_RETURN_NOT_OK(log_.ShiftBeginAddress(until));
  r->new_begin = until;
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  stats_.compaction_live_copied.fetch_add(r->live_copied,
                                          std::memory_order_relaxed);
  return Status::OK();
}

Status FasterStore::GrowIndex(uint32_t factor_log2) {
  return index()->Grow(factor_log2);
}

Status FasterStore::MaybeGrowIndex(double max_load) {
  if (max_load <= 0) return Status::InvalidArgument("max_load must be > 0");
  const double live = static_cast<double>(approximate_size());
  uint32_t doublings = 0;
  uint64_t slots = index()->num_slots();
  while (live / static_cast<double>(slots) > max_load && doublings < 16) {
    slots <<= 1;
    ++doublings;
  }
  if (doublings == 0) return Status::OK();
  return index()->Grow(doublings);
}

Status FasterStore::MaybeCompact(uint64_t max_log_bytes,
                                 CompactionResult* result) {
  const Address begin = log_.begin_address();
  const Address tail = log_.tail();
  if (tail - begin <= max_log_bytes) return Status::OK();
  return Compact(log_.read_only_address(), result);
}

bool FasterStore::IsInMemory(Key key) {
  FindResult f;
  if (!Find(key, &f).ok() || !f.found) return false;
  return f.address >= log_.head_address();
}

bool FasterStore::IsLiveVersion(Key key, Address address) {
  FindResult f;
  if (!Find(key, &f).ok() || !f.found) return false;
  return f.address == address;
}

Status FasterStore::Checkpoint(const std::string& prefix) {
  if (options_.checkpoint_mode == CheckpointMode::kIncremental) {
    return CheckpointIncremental(prefix);
  }
  return CheckpointFull(prefix);
}

Status FasterStore::CheckpointFull(const std::string& prefix) {
  MLKV_RETURN_NOT_OK(log_.FlushAll());
  FileDevice meta_dev;
  MLKV_RETURN_NOT_OK(meta_dev.Open(prefix + ".meta"));
  CheckpointMeta meta;
  meta.tail = log_.tail();
  meta.index_slots = index()->num_slots();
  meta.num_inserts = stats_.inserts.load(std::memory_order_relaxed);
  meta.begin = log_.begin_address();
  meta.page_size = options_.page_size;
  // v1 length: a full checkpoint stays byte-identical to prior releases
  // (delta_count is implicitly 0 — recovery's past-EOF read zero-fills it).
  MLKV_RETURN_NOT_OK(meta_dev.WriteAt(0, &meta, kMetaSizeV1));
  MLKV_RETURN_NOT_OK(meta_dev.Sync());
  FileDevice idx_dev;
  MLKV_RETURN_NOT_OK(idx_dev.Open(prefix + ".idx"));
  MLKV_RETURN_NOT_OK(index()->WriteTo(&idx_dev, 0));
  MLKV_RETURN_NOT_OK(idx_dev.Sync());
  // A full dump supersedes any incremental chain under this prefix.
  ckpt_.prefix = prefix;
  ckpt_.tail = meta.tail;
  ckpt_.deltas = 0;
  ckpt_.index_slots = meta.index_slots;
  return Status::OK();
}

Status FasterStore::CheckpointIncremental(const std::string& prefix) {
  // Incremental flush: only dirty/undurable pages are rewritten (the bytes
  // saving measured by bench_checkpoint), but after Persist the WHOLE log
  // below `tail` is durable, so base and delta checkpoints alike cover it.
  MLKV_RETURN_NOT_OK(log_.Persist());
  const Address tail = log_.tail();
  const bool chained = ckpt_.prefix == prefix &&
                       ckpt_.index_slots == index()->num_slots() &&
                       ckpt_.deltas < kMaxCheckpointDeltas;

  CheckpointMeta meta;
  meta.magic = kMetaMagicV2;
  meta.tail = tail;
  meta.index_slots = index()->num_slots();
  meta.num_inserts = stats_.inserts.load(std::memory_order_relaxed);
  meta.begin = log_.begin_address();
  meta.page_size = options_.page_size;

  if (!chained) {
    // Fresh base: full index dump, zero deltas.
    FileDevice idx_dev;
    MLKV_RETURN_NOT_OK(idx_dev.Open(prefix + ".idx"));
    MLKV_RETURN_NOT_OK(index()->WriteTo(&idx_dev, 0));
    MLKV_RETURN_NOT_OK(idx_dev.Sync());
    meta.delta_count = 0;
  } else {
    // Delta: (slot, head) pairs for slots whose head moved at or past the
    // previous checkpoint's tail. Publishes only ever install addresses at
    // the then-current tail, so every head changed since that checkpoint —
    // and no head captured by it — satisfies the predicate.
    std::vector<uint64_t> pairs;
    const uint64_t n = index()->num_slots();
    for (uint64_t s = 0; s < n; ++s) {
      const Address a = index()->LoadSlot(s);
      if (a == kInvalidAddress || a < ckpt_.tail) continue;
      pairs.push_back(s);
      pairs.push_back(a);
    }
    meta.delta_count = ckpt_.deltas + 1;
    FileDevice delta_dev;
    MLKV_RETURN_NOT_OK(delta_dev.Open(DeltaPath(prefix, meta.delta_count)));
    const uint64_t count = pairs.size() / 2;
    MLKV_RETURN_NOT_OK(delta_dev.WriteAt(0, &count, sizeof(count)));
    if (!pairs.empty()) {
      MLKV_RETURN_NOT_OK(delta_dev.WriteAt(sizeof(count), pairs.data(),
                                           pairs.size() * sizeof(uint64_t)));
    }
    MLKV_RETURN_NOT_OK(delta_dev.Sync());
  }

  // Commit point: the v2 meta names the base + delta set, and it appears
  // atomically via rename — a crash before this keeps the previous
  // checkpoint fully intact, after it the new chain is complete.
  const std::string tmp = prefix + ".meta.tmp";
  {
    FileDevice meta_dev;
    MLKV_RETURN_NOT_OK(meta_dev.Open(tmp));
    MLKV_RETURN_NOT_OK(meta_dev.WriteAt(0, &meta, sizeof(meta)));
    MLKV_RETURN_NOT_OK(meta_dev.Sync());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, prefix + ".meta", ec);
  if (ec) {
    return Status::IOError("commit checkpoint meta: " + ec.message());
  }
  ckpt_.prefix = prefix;
  ckpt_.tail = tail;
  ckpt_.deltas = meta.delta_count;
  ckpt_.index_slots = meta.index_slots;
  return Status::OK();
}

Status FasterStore::Recover(const FasterOptions& options,
                            const std::string& prefix) {
  options_ = options;
  FileDevice meta_dev;
  MLKV_RETURN_NOT_OK(meta_dev.Open(prefix + ".meta", /*truncate=*/false));
  CheckpointMeta meta;
  // One read serves both versions: a v1 file is sizeof(uint64_t) shorter
  // and the past-EOF zero-fill leaves delta_count == 0.
  MLKV_RETURN_NOT_OK(meta_dev.ReadAt(0, &meta, sizeof(meta)));
  if (meta.magic != kMetaMagicV1 && meta.magic != kMetaMagicV2) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (meta.page_size != 0) options_.page_size = meta.page_size;
  index_.reset(new HashIndex(meta.index_slots));
  FileDevice idx_dev;
  MLKV_RETURN_NOT_OK(idx_dev.Open(prefix + ".idx", /*truncate=*/false));
  MLKV_RETURN_NOT_OK(index()->ReadFrom(idx_dev, 0));
  for (uint64_t k = 1; k <= meta.delta_count; ++k) {
    FileDevice delta_dev;
    MLKV_RETURN_NOT_OK(delta_dev.Open(DeltaPath(prefix, k),
                                      /*truncate=*/false));
    uint64_t count = 0;
    MLKV_RETURN_NOT_OK(delta_dev.ReadAt(0, &count, sizeof(count)));
    std::vector<uint64_t> pairs(count * 2);
    if (count > 0) {
      MLKV_RETURN_NOT_OK(delta_dev.ReadAt(sizeof(count), pairs.data(),
                                          pairs.size() * sizeof(uint64_t)));
    }
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t slot = pairs[2 * i];
      if (slot >= index()->num_slots()) {
        return Status::Corruption("checkpoint delta slot out of range");
      }
      index()->StoreSlot(slot, pairs[2 * i + 1]);
    }
  }

  MLKV_RETURN_NOT_OK(log_.Open(LogOptions(/*truncate=*/false)));
  stats_.inserts.store(meta.num_inserts, std::memory_order_relaxed);
  Address recovered = meta.tail;
  if (options_.durability_mode == DurabilityMode::kGroup) {
    // Group-committed records past the checkpoint tail are durable without
    // being in any checkpoint; replay them, then cut the file at the last
    // valid record so torn bytes cannot resurface.
    MLKV_RETURN_NOT_OK(ReplayTail(meta.tail, &recovered));
    MLKV_RETURN_NOT_OK(log_.DiscardDiskBeyond(recovered));
  }
  MLKV_RETURN_NOT_OK(log_.RestoreBoundaries(recovered, meta.begin));
  ckpt_.prefix = prefix;
  ckpt_.tail = meta.tail;
  ckpt_.deltas = meta.delta_count;
  ckpt_.index_slots = meta.index_slots;
  return Status::OK();
}

Status FasterStore::ReplayTail(Address from, Address* recovered) {
  struct TailRecord {
    Address addr = kInvalidAddress;
    Address prev = kInvalidAddress;
    Key key = 0;
    uint32_t flags = 0;
    bool published = false;
  };
  std::vector<TailRecord> records;
  const uint64_t page_size = options_.page_size;
  const uint64_t fsize = log_.device()->FileSize();
  Address a = from;
  Address end = from;
  // Forward scan. The header fields parsed here (prev/key/value_size/flags)
  // are written exactly once under the append pin, so any record whose
  // bytes reached disk at all carries them intact; only the frontier where
  // a crash interrupted a page write can be torn, and the scan stops there.
  while (a + sizeof(Record) <= fsize) {
    const uint64_t page_end = (a / page_size + 1) * page_size;
    if (a + sizeof(Record) > page_end) {
      a = page_end;  // record headers never straddle pages
      continue;
    }
    char buf[sizeof(Record)];
    MLKV_RETURN_NOT_OK(log_.ReadDisk(a, buf, sizeof(buf)));
    TailRecord r;
    uint64_t control = 0;
    uint32_t value_size = 0;
    std::memcpy(&control, buf + 0, 8);
    std::memcpy(&r.prev, buf + 8, 8);
    std::memcpy(&r.key, buf + 16, 8);
    std::memcpy(&value_size, buf + 24, 4);
    std::memcpy(&r.flags, buf + 28, 4);
    if (control == 0 && r.prev == 0 && r.key == 0 && value_size == 0 &&
        r.flags == 0) {
      a = page_end;  // page-roll gap: zeroes run to the end of the page
      continue;
    }
    if (value_size > page_size) break;  // torn frontier
    const uint64_t rec_size = Record::SizeFor(value_size);
    if (a + rec_size > page_end) break;  // torn frontier
    if ((r.flags & kRecordValid) != 0) {
      r.addr = a;
      records.push_back(r);
      end = a + rec_size;
    }
    // Records without the valid bit were retracted after a lost index CAS
    // (AppendAndPublish); their sizes are sound, so skip them in place.
    a += rec_size;
  }

  // Republish in passes to a fixpoint: a record goes live only when its
  // prev equals the key's current chain head — exactly the CAS it won in
  // the original run, so replay reconstructs the same publish order even
  // though allocation order (address order) can differ from it.
  bool progress = true;
  while (progress) {
    progress = false;
    for (TailRecord& r : records) {
      if (r.published) continue;
      Address e = index()->Load(r.key);
      if (e != r.prev) continue;
      if (!index()->CompareExchange(r.key, e, r.addr)) continue;
      r.published = true;
      progress = true;
      if ((r.flags & kRecordTombstone) == 0 && r.prev == kInvalidAddress) {
        stats_.inserts.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  *recovered = end;
  return Status::OK();
}

FasterStatsSnapshot FasterStore::stats() const {
  FasterStatsSnapshot s;
  s.reads = stats_.reads.load(std::memory_order_relaxed);
  s.upserts = stats_.upserts.load(std::memory_order_relaxed);
  s.rmws = stats_.rmws.load(std::memory_order_relaxed);
  s.deletes = stats_.deletes.load(std::memory_order_relaxed);
  s.inplace_updates = stats_.inplace_updates.load(std::memory_order_relaxed);
  s.rcu_appends = stats_.rcu_appends.load(std::memory_order_relaxed);
  s.inserts = stats_.inserts.load(std::memory_order_relaxed);
  s.promotions = stats_.promotions.load(std::memory_order_relaxed);
  s.promotions_skipped =
      stats_.promotions_skipped.load(std::memory_order_relaxed);
  s.staleness_waits = stats_.staleness_waits.load(std::memory_order_relaxed);
  s.busy_aborts = stats_.busy_aborts.load(std::memory_order_relaxed);
  s.compactions = stats_.compactions.load(std::memory_order_relaxed);
  s.compaction_live_copied =
      stats_.compaction_live_copied.load(std::memory_order_relaxed);
  s.async_reads_submitted =
      stats_.async_reads_submitted.load(std::memory_order_relaxed);
  s.async_reads_completed =
      stats_.async_reads_completed.load(std::memory_order_relaxed);
  s.async_reads_refetched =
      stats_.async_reads_refetched.load(std::memory_order_relaxed);
  const auto& ls = log_.stats();
  s.disk_record_reads = ls.disk_record_reads.load(std::memory_order_relaxed);
  s.pages_flushed = ls.pages_flushed.load(std::memory_order_relaxed);
  s.pages_evicted = ls.pages_evicted.load(std::memory_order_relaxed);
  s.async_writes_submitted =
      ls.async_writes_submitted.load(std::memory_order_relaxed);
  s.async_writes_completed =
      ls.async_writes_completed.load(std::memory_order_relaxed);
  s.fsyncs = ls.fsyncs.load(std::memory_order_relaxed);
  if (const GroupCommitter* gc =
          const_cast<HybridLog&>(log_).committer()) {
    const GroupCommitter::Stats cs = gc->stats();
    s.fsyncs += cs.fsyncs;
    s.group_commits = cs.group_commits;
  }
  return s;
}

void FasterStore::ResetStats() {
  stats_.reads.store(0);
  stats_.upserts.store(0);
  stats_.rmws.store(0);
  stats_.deletes.store(0);
  stats_.inplace_updates.store(0);
  stats_.rcu_appends.store(0);
  stats_.promotions.store(0);
  stats_.promotions_skipped.store(0);
  stats_.staleness_waits.store(0);
  stats_.busy_aborts.store(0);
  stats_.async_reads_submitted.store(0);
  stats_.async_reads_completed.store(0);
  stats_.async_reads_refetched.store(0);
}

}  // namespace mlkv
