// LogIterator: forward scan over the hybrid log in address order.
//
// Yields every record image in [from, to) — live versions, superseded
// versions, and tombstones alike — skipping page-roll gap bytes (frames are
// zero-filled, and every real record carries kRecordValid). Callers that
// need only the newest version of each key pair the scan with a liveness
// check (see FasterStore::Compact) or use LiveLogIterator below.
//
// Concurrency: the iterator takes a snapshot of [from, to) at construction.
// Records below the read-only boundary are immutable, so scanning them is
// race-free; scanning into the mutable region observes in-place updates at
// whatever state the copy catches (values are copied with the same
// seqlock/disk fallback as reads). Scans must not outlive a concurrent
// Compact that passes `from`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "kv/faster_store.h"
#include "kv/record.h"

namespace mlkv {

class LogIterator {
 public:
  // Scans [from, to). Zero defaults: from = store begin, to = store tail at
  // construction time.
  explicit LogIterator(FasterStore* store, Address from = 0, Address to = 0);

  LogIterator(const LogIterator&) = delete;
  LogIterator& operator=(const LogIterator&) = delete;

  // True while positioned on a record. False at end or after an I/O error
  // (distinguish via status()).
  bool Valid() const { return valid_; }

  // Advances to the next record.
  void Next();

  Address address() const { return current_; }
  const RecordMeta& meta() const { return meta_; }
  // Value bytes of the current record (empty for tombstones).
  const std::vector<char>& value() const { return value_; }

  // OK unless the scan hit an I/O error; end-of-log is not an error.
  const Status& status() const { return status_; }

 private:
  // Positions on the first valid record at or after `a`.
  void SeekTo(Address a);

  FasterStore* store_;
  Address end_;
  Address current_ = kInvalidAddress;
  Address next_ = kInvalidAddress;
  RecordMeta meta_;
  std::vector<char> value_;
  bool valid_ = false;
  Status status_;
};

// LiveLogIterator: like LogIterator but yields only records that are the
// newest version of their key and not tombstones — i.e., one record per
// live key, in log order. Used by table export and verification.
class LiveLogIterator {
 public:
  explicit LiveLogIterator(FasterStore* store);

  bool Valid() const { return it_.Valid(); }
  void Next() {
    it_.Next();
    SkipDead();
  }

  Address address() const { return it_.address(); }
  const RecordMeta& meta() const { return it_.meta(); }
  const std::vector<char>& value() const { return it_.value(); }
  const Status& status() const { return it_.status(); }

 private:
  void SkipDead();

  FasterStore* store_;
  LogIterator it_;
};

}  // namespace mlkv
