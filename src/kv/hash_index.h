// Latch-free hash index: a fixed array of 64-bit atomic slots mapping
// hash(key) to the newest log address of that key's hash chain. Keys that
// collide on a slot share one chain linked through Record::prev (newest
// first); lookups walk the chain comparing full keys.
//
// This follows FASTER's index design with one simplification, documented in
// DESIGN.md: we omit the in-bucket tag bits and resolve all collisions
// through the record chain (chains stay short at the load factors we size
// for), which keeps every index transition a single CAS on one slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/hash.h"
#include "common/status.h"
#include "kv/record.h"

namespace mlkv {

class FileDevice;

class HashIndex {
 public:
  // `num_slots` is rounded up to a power of two.
  explicit HashIndex(uint64_t num_slots);

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  std::atomic<Address>& SlotFor(Key key) {
    return slots_[Hash64(key) & mask_];
  }

  Address Load(Key key) {
    return SlotFor(key).load(std::memory_order_acquire);
  }

  // Publishes `desired` as the chain head if the head is still `expected`.
  bool CompareExchange(Key key, Address& expected, Address desired) {
    return SlotFor(key).compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  uint64_t num_slots() const { return mask_ + 1; }

  // Slot-index access for incremental checkpoints: a delta record stores
  // (slot, address) pairs for slots whose head moved since the base, and
  // recovery reapplies them positionally.
  Address LoadSlot(uint64_t slot) const {
    return slots_[slot].load(std::memory_order_acquire);
  }
  void StoreSlot(uint64_t slot, Address a) {
    slots_[slot].store(a, std::memory_order_release);
  }

  // Number of non-empty slots (diagnostics / checkpoint metadata).
  uint64_t CountUsed() const;

  // Doubles the slot array `factor_log2` times (FASTER's index growth).
  // Every new slot that an old slot's keys can rehash to receives that old
  // slot's chain head, so existing chains remain reachable (lookups compare
  // full keys and simply skip entries that rehashed elsewhere); chains thin
  // out as later publishes go to the refined slots. NOT thread-safe: the
  // caller must guarantee no concurrent index operations, same as the
  // checkpoint contract (see FasterStore::GrowIndex).
  Status Grow(uint32_t factor_log2 = 1);

  // Serializes / restores the raw slot array for checkpointing.
  Status WriteTo(FileDevice* dev, uint64_t offset) const;
  Status ReadFrom(const FileDevice& dev, uint64_t offset);

 private:
  uint64_t mask_;
  std::unique_ptr<std::atomic<Address>[]> slots_;
};

}  // namespace mlkv
