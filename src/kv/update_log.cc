#include "kv/update_log.h"

#include "kv/faster_store.h"
#include "kv/log_iterator.h"

namespace mlkv {

UpdateLogCursor::UpdateLogCursor(FasterStore* store, Address from)
    : store_(store),
      position_(from != 0 ? from : store->log().begin_address()) {}

UpdateLogCursor::~UpdateLogCursor() = default;

bool UpdateLogCursor::Next(UpdateEntry* out) {
  if (!status_.ok()) return false;
  if (position_ < store_->log().begin_address()) {
    status_ = Status::Corruption("update-log position compacted away");
    return false;
  }
  if (it_ == nullptr || !it_->Valid()) {
    // (Re)open the scan window up to the current durable watermark. The
    // watermark only moves forward, so a stale window just ends early and
    // the next call picks up the growth.
    const Address durable = store_->durable_address();
    if (position_ >= durable) return false;  // caught up
    if (it_ == nullptr || durable > window_end_) {
      it_ = std::make_unique<LogIterator>(store_, position_, durable);
      window_end_ = durable;
    }
    if (!it_->Valid()) {
      status_ = it_->status();  // OK: window was all gap fill — caught up
      position_ = window_end_;
      return false;
    }
  }
  const RecordMeta& meta = it_->meta();
  out->address = it_->address();
  out->key = meta.key;
  out->generation = ControlWord::Generation(meta.control);
  out->staleness = ControlWord::Staleness(meta.control);
  out->tombstone = (meta.flags & kRecordTombstone) != 0;
  out->value = it_->value();
  position_ = it_->address() + Record::SizeFor(meta.value_size);
  it_->Next();
  return true;
}

}  // namespace mlkv
