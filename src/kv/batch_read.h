// BatchReadOrPark: the shared phase-1 body of every batched read op
// (EmbeddingTable gets/peeks, FasterBackend::MultiGet). One place owns the
// sync-vs-pipeline split and the miss-bootstrap contract:
//
//  * null `sink` — resolve synchronously (the unchanged blocking path);
//  * memory-resident or absent key — resolve inline either way;
//  * disk-resident key — park a primed PendingRead on the wave, with the
//    same outcome handling deferred to its finish callback.
//
// `init_missing` (pass nullptr for plain reads) initializes the caller's
// row and stores the bootstrap value when the key is absent; on success
// the key records as initialized (code kOk, counted missing). It is a
// templated callable so the warm path constructs no std::function — the
// copy into the continuation happens only for parked (cold) keys.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "common/batch_result.h"
#include "kv/faster_store.h"
#include "kv/pending_read.h"

namespace mlkv {

template <typename InitFn>
inline void BatchReadOrPark(FasterStore* shard, Key key, void* dst,
                            uint32_t cap, uint32_t bound, bool tracked,
                            BatchResult* part, size_t part_index,
                            PendingSink* sink, const InitFn* init_missing) {
  const auto resolve = [&](Status s) {
    if (s.IsNotFound() && init_missing != nullptr) {
      s = (*init_missing)();
      if (s.ok()) {
        part->RecordInitialized(part_index);
        return;
      }
    }
    part->Record(part_index, s);
  };
  if (sink == nullptr) {
    resolve(tracked ? shard->Read(key, dst, cap, nullptr, bound)
                    : shard->Peek(key, dst, cap));
    return;
  }
  PendingRead scratch;  // heap-allocated only if the key actually parks
  if (shard->StartRead(key, dst, cap, nullptr, bound, tracked, &scratch)) {
    resolve(scratch.status);
    return;
  }
  std::function<Status()> init;
  if (init_missing != nullptr) init = *init_missing;
  sink->Park(shard, std::make_unique<PendingRead>(std::move(scratch)),
             [init = std::move(init), part, part_index](PendingRead* done) {
               Status s = done->status;
               if (s.IsNotFound() && init) {
                 s = init();
                 if (s.ok()) {
                   part->RecordInitialized(part_index);
                   return;
                 }
               }
               part->Record(part_index, s);
             });
}

// Plain read (no miss bootstrap).
inline void BatchReadOrPark(FasterStore* shard, Key key, void* dst,
                            uint32_t cap, uint32_t bound, bool tracked,
                            BatchResult* part, size_t part_index,
                            PendingSink* sink) {
  BatchReadOrPark<std::function<Status()>>(shard, key, dst, cap, bound,
                                           tracked, part, part_index, sink,
                                           nullptr);
}

}  // namespace mlkv
