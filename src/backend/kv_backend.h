// KvBackend: the storage seam between training pipelines and key-value
// engines. The paper integrates PERSIA / DGL / DGL-KE with four storage
// backends (MLKV, FASTER, RocksDB, WiredTiger); here every trainer talks to
// this interface and each engine gets an adapter, so a benchmark varies the
// backend with one flag and nothing else changes (the reusability claim of
// Table I).
//
// The seam is batch-first: every caller — trainers, the serving path, the
// YCSB drivers — naturally operates on a minibatch of sparse ids, so the
// primary virtuals take key spans and report per-key outcomes in a
// BatchResult instead of failing the whole call on the first problem.
//
// Semantics expected by trainers:
//  * MultiGet: blocking read of keys.size() dim-float vectors, honoring the
//    backend's consistency model (MLKV: bounded staleness; others: last
//    write wins). By default missing keys are initialized with the shared
//    deterministic embedding bootstrap (per-key code kOk, counted in
//    BatchResult::missing); per-key kBusy marks bounded-staleness aborts
//    the caller may retry untracked.
//  * MultiPut: upsert of the updated vectors. Duplicate keys within a batch
//    resolve last-occurrence-wins.
//  * MultiApplyGradient: value <- value - lr * grad per key, preferably as
//    one atomic read-modify-write inside the engine (MLKV and FASTER use a
//    fused Rmw; under ASP that closes the read-apply-write race a Get+Put
//    pair has). Duplicate keys within a batch accumulate (SGD is linear in
//    the gradient).
//  * Lookahead: non-blocking hint that `keys` will be needed soon. Optional
//    (no-op where the engine has no such mechanism — exactly the paper's
//    point about baseline engines).
//
// The single-key methods (GetEmbedding & co.) remain as thin non-virtual
// wrappers over the batched virtuals for tests and examples.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/batch_result.h"
#include "common/status.h"
#include "io/async_io.h"
#include "kv/record.h"
#include "kv/update_log.h"
#include "serve/tinylfu.h"

namespace mlkv {

namespace obs {
class MetricsSink;
}  // namespace obs

// Sentinel for "derive the shard count from the backend itself"
// (KvBackend::shard_bits()) in config structs that carry a shard-count
// layout hint, so the hint cannot drift from the store's actual routing.
inline constexpr uint32_t kAutoShardBits = UINT32_MAX;

// Storage-I/O behavior counters aggregated across an engine's shards:
// what the disk path did (record reads, page traffic) and how the
// pending-read pipeline behaved (submissions, completions, fallback
// re-reads). Engines without a disk pipeline report zeros. Served over the
// wire by the kStats opcode so remote operators see the same numbers.
struct BackendIoStats {
  uint64_t disk_record_reads = 0;
  uint64_t pages_flushed = 0;
  uint64_t pages_evicted = 0;
  uint64_t async_reads_submitted = 0;
  uint64_t async_reads_completed = 0;
  uint64_t async_reads_refetched = 0;
  // Write pipeline: flush-wave submissions/completions through the
  // AsyncIoEngine, fsyncs issued (flush + group commits), and how many
  // group commits batched more than one committer behind a single fsync.
  uint64_t async_writes_submitted = 0;
  uint64_t async_writes_completed = 0;
  uint64_t fsyncs = 0;
  uint64_t group_commits = 0;
  // Network-path counters (kRemote / kCluster adapters; zeros elsewhere):
  // RPCs issued, transparent fresh-socket retries after a dead pooled
  // connection, and replication records applied / pending (replica role).
  uint64_t remote_requests = 0;
  uint64_t remote_retries = 0;
  uint64_t replicated_records = 0;
  uint64_t replica_lag_records = 0;
};

struct MultiGetOptions {
  // Initialize absent keys deterministically from the key (the standard
  // embedding-table bootstrap, identical across engines so convergence
  // comparisons start from the same vectors). When false, absent keys keep
  // code kNotFound and their output rows are untouched.
  bool init_missing = true;
  // Consistency-free read: must neither wait on nor advance any staleness
  // state (evaluation passes, serving replicas). Engines without a
  // staleness protocol treat this the same as a tracked read.
  bool untracked = false;
};

class KvBackend {
 public:
  virtual ~KvBackend() = default;

  virtual std::string name() const = 0;
  virtual uint32_t dim() const = 0;
  // log2 shard count of the engine's store (0 for unsharded engines).
  // Callers that lay out batches shard-contiguously (train/batch_io.h's
  // OrderKeysByShard) derive the mask from here so it can never drift from
  // the store's actual routing.
  virtual uint32_t shard_bits() const { return 0; }

  // --- Batch-first primary surface ---

  // Reads keys.size() vectors into `out` (keys.size() * dim() floats, row i
  // for keys[i]). Rows whose per-key code is not kOk are unspecified.
  virtual BatchResult MultiGet(std::span<const Key> keys, float* out,
                               const MultiGetOptions& options = {}) = 0;

  // Upserts keys.size() vectors from `values` (keys.size() * dim() floats).
  virtual BatchResult MultiPut(std::span<const Key> keys,
                               const float* values) = 0;

  // Gradient push: value <- value - lr * grad per key. The base
  // implementation emulates with MultiGet + axpy + MultiPut (deduplicating
  // and summing duplicate keys first), which is also what integrating a
  // training framework with a stock KV store gives you; every bundled
  // engine overrides it with a native batched loop.
  virtual BatchResult MultiApplyGradient(std::span<const Key> keys,
                                         const float* grads, float lr);

  // --- Single-key wrappers (tests / examples); not for hot paths ---

  Status GetEmbedding(Key key, float* out) {
    return MultiGet({&key, 1}, out).StatusAt(0);
  }
  Status PutEmbedding(Key key, const float* value) {
    return MultiPut({&key, 1}, value).StatusAt(0);
  }
  Status ApplyGradient(Key key, const float* grad, float lr) {
    return MultiApplyGradient({&key, 1}, grad, lr).StatusAt(0);
  }
  // Consistency-free single read (evaluation): still initializes missing
  // keys, but never waits on or advances staleness state.
  Status PeekEmbedding(Key key, float* out) {
    MultiGetOptions options;
    options.untracked = true;
    return MultiGet({&key, 1}, out, options).StatusAt(0);
  }

  // --- Prefetch / accounting ---

  // Prefetch hint; default no-op (plain FASTER / RocksDB / WiredTiger).
  virtual Status Lookahead(std::span<const Key> keys) {
    return Status::OK();
  }
  // Blocks until outstanding Lookahead work completes (benchmark teardown).
  virtual void WaitIdle() {}

  // Bytes read from / written to storage devices so far (energy model).
  virtual uint64_t device_bytes_read() const { return 0; }
  virtual uint64_t device_bytes_written() const { return 0; }

  // Aggregated storage-I/O counters (see BackendIoStats); engines without
  // a disk pipeline keep the zero default.
  virtual BackendIoStats io_stats() const { return {}; }

  // Scrape-time metrics: writes this backend's families into `sink`
  // (Prometheus exposition via obs::MetricsRegistry collectors — see
  // docs/OBSERVABILITY.md for the catalog). The base implementation emits
  // the io_stats() counters plus device byte totals; engines with richer
  // state (per-shard ops, cache shards, per-endpoint RPC counters) extend
  // it. Decorators and routing backends forward to their inner backends.
  virtual void CollectMetrics(obs::MetricsSink* sink) const;

  // --- Replication feed (cluster mode; see docs/CLUSTER.md) ---
  //
  // Engines whose store exposes a committed-update feed (the hybrid-log
  // engines, via kv/update_log.h) serve it per shard so a replica KvServer
  // can tail a primary. Engines without a feed keep the defaults:
  // replication_shards() == 0 means kSubscribe/kReplicate answer
  // NotSupported.

  // Number of independent feed streams (the store's shard count); 0 when
  // the engine cannot serve a replication feed.
  virtual uint32_t replication_shards() const { return 0; }

  // One poll of shard `shard`'s feed starting at resume token `from`
  // (0 = oldest retained update). Appends up to max_records entries (and
  // roughly max_bytes of value payload) to `out` in log order, then
  // reports the resume token after the last entry and the shard's durable
  // watermark. Implementations persist the shard first so the feed always
  // drains to the current tail, even in checkpoint-only durability mode.
  virtual Status ReadCommittedUpdates(uint32_t shard, uint64_t from,
                                      uint32_t max_records, uint32_t max_bytes,
                                      std::vector<UpdateEntry>* out,
                                      uint64_t* next_from, uint64_t* durable) {
    (void)shard, (void)from, (void)max_records, (void)max_bytes;
    (void)out, (void)next_from, (void)durable;
    return Status::NotSupported(name() + " has no replication feed");
  }

  // Applies one replicated entry (tombstone = delete, else upsert of the
  // raw value bytes). Routing is by key, so the replica's shard layout
  // need not match the primary's.
  virtual Status ApplyReplicatedUpdate(const UpdateEntry& entry) {
    (void)entry;
    return Status::NotSupported(name() + " cannot apply replicated updates");
  }
};

struct BackendConfig {
  std::string dir;           // working directory for files
  uint32_t dim = 16;         // embedding dimension
  uint64_t buffer_bytes = 64ull << 20;  // in-memory budget (the Fig. 7 knob)
  uint64_t index_slots = 1ull << 20;
  // log2 shard count for the log-structured engines (MLKV tables and the
  // FASTER baseline): each shard is an independent FasterStore (own index,
  // log, epoch domain) under dir/shard-NN/; buffer_bytes and index_slots
  // are totals split across shards. 0 = the legacy single-store layout;
  // max 8 (ShardedStore::kMaxShardBits). Batches are scatter/gathered into
  // per-shard sub-batches instead of generic contiguous chunks.
  uint32_t shard_bits = 2;
  uint32_t staleness_bound = 16;        // MLKV only
  size_t lookahead_threads = 2;         // MLKV only
  bool skip_promote_if_in_memory = true;
  // Spin iterations (index re-lookups, each yielding) before a bounded Get
  // aborts with Busy; see kDefaultBusySpinLimit in kv/record.h.
  uint64_t busy_spin_limit = kDefaultBusySpinLimit;
  // Intra-batch parallelism for the I/O-bound baseline engines
  // (FASTER/LSM/B-tree): each backend instance owns a ThreadPool of this
  // many workers, shared across its Multi* calls, and fans large batches
  // out across it. 0 runs batches inline. MLKV keeps its own async path
  // (Lookahead); the in-memory engine is lock-bound, not I/O-bound.
  size_t batch_threads = 0;
  // Read-path mode for the hybrid-log engines (MLKV tables and the FASTER
  // baseline): kAsync gives each backend a shared AsyncIoEngine so a
  // batch's cold misses go into flight together (io/async_io.h); kSync
  // (default) keeps the blocking path, byte-identical to before. The LSM's
  // SSTable reads may opt into the same engine later; engines that do not
  // participate ignore both fields.
  IoMode io_mode = IoMode::kSync;
  size_t io_threads = 4;  // AsyncIoEngine workers when io_mode == kAsync
  // Write-durability mode for the hybrid-log engines (docs/DURABILITY.md):
  // kGroup makes every MultiPut/MultiApplyGradient durable before it
  // returns — dirty pages flush as one engine wave and concurrent batches
  // share fsyncs through per-shard group committers (the two knobs below
  // bound how long/large a commit group may grow). kSync (default) keeps
  // checkpoint-only durability, byte-identical on disk. Engines without a
  // hybrid log ignore all three fields.
  DurabilityMode durability_mode = DurabilityMode::kSync;
  uint64_t group_commit_window_us = 200;
  uint64_t group_commit_max_bytes = 1ull << 20;
  // Checkpoint shape for the hybrid-log engines: kIncremental chains index
  // deltas + dirty-page flushes onto the previous checkpoint instead of
  // rewriting everything.
  CheckpointMode checkpoint_mode = CheckpointMode::kFull;
  // Minimum keys per chunk before a batch fans out (amortizes the handoff).
  size_t batch_min_chunk = 64;
  // kRemote only: "host:port" of a KvServer (src/net/). The storage
  // fields above are ignored — dim and shard layout are negotiated in the
  // connection handshake, and the server side owns the storage
  // configuration.
  std::string remote_addr;
  // kRemote only: idle client connections retained for reuse. Size to the
  // number of concurrently batching threads, or steady-state traffic pays
  // a fresh connect + handshake whenever a burst exceeds the pool.
  size_t remote_pool_size = 8;
  // kRemote only: cap on keys per RPC before the client chunks a batch
  // into sequential sub-RPCs (0 = derive the largest frame-cap-safe count
  // from the negotiated dim).
  size_t remote_max_keys_per_rpc = 0;
  // kCluster only: comma-separated seed endpoints ("h1:7700,h2:7701").
  // Any reachable cluster member supplies the routing map; the storage
  // fields above are ignored (each server owns its own). Connection
  // pooling and chunking reuse remote_pool_size / remote_max_keys_per_rpc
  // per endpoint.
  std::string cluster_addrs;
  // kCluster only: read-hedging delay in microseconds (docs/SERVING.md).
  // After this long without a response, a read sub-batch is re-issued to
  // the partition's next replica candidate and the first response wins.
  // 0 disables (default); kHedgeAuto derives the delay per endpoint from
  // its trailing p99. Writes never hedge.
  uint64_t cluster_hedge_us = 0;
  // kCluster only: route reads for the client's K hottest keys round-robin
  // across a partition's primary + replicas instead of primary-first.
  // 0 disables (default).
  size_t cluster_hot_replicate_top_k = 0;
};

// Sentinel for cluster_hedge_us: derive the hedge delay per endpoint from
// its trailing p99 latency instead of a fixed value.
inline constexpr uint64_t kHedgeAuto = UINT64_MAX;

enum class BackendKind {
  kMlkv, kFaster, kLsm, kBtree, kInMemory, kRemote, kCluster
};

// Human-readable names matching the paper's legends.
const char* BackendKindName(BackendKind kind);

// Factory: builds the requested backend rooted at config.dir.
Status MakeBackend(BackendKind kind, const BackendConfig& config,
                   std::unique_ptr<KvBackend>* out);

// Wraps `inner` in a serving-side EmbeddingCache decorator: untracked
// MultiGets probe a sharded LRU of `capacity` rows and only miss through to
// the engine; writes invalidate. Tracked (training) reads bypass the cache
// entirely — caching them would break the staleness protocol. Reads may
// observe a bounded-stale row when a fill races an invalidate, which the
// untracked read contract already permits. capacity == 0 is rejected.
Status MakeCachingBackend(std::unique_ptr<KvBackend> inner, size_t capacity,
                          std::unique_ptr<KvBackend>* out);
// As above with an explicit admission policy: kTinyLfu guards eviction with
// a per-shard frequency sketch (see serve/tinylfu.h and docs/SERVING.md).
Status MakeCachingBackend(std::unique_ptr<KvBackend> inner, size_t capacity,
                          CacheAdmission admission,
                          std::unique_ptr<KvBackend>* out);

}  // namespace mlkv
