// KvBackend: the storage seam between training pipelines and key-value
// engines. The paper integrates PERSIA / DGL / DGL-KE with four storage
// backends (MLKV, FASTER, RocksDB, WiredTiger); here every trainer talks to
// this interface and each engine gets an adapter, so a benchmark varies the
// backend with one flag and nothing else changes (the reusability claim of
// Table I).
//
// Semantics expected by trainers:
//  * GetEmbedding: blocking read of a dim-float vector, honoring the
//    backend's consistency model (MLKV: bounded staleness; others: last
//    write wins).
//  * PutEmbedding: upsert of the updated vector.
//  * Lookahead: non-blocking hint that `keys` will be needed soon. Optional
//    (no-op where the engine has no such mechanism — exactly the paper's
//    point about baseline engines).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "kv/record.h"

namespace mlkv {

class KvBackend {
 public:
  virtual ~KvBackend() = default;

  virtual std::string name() const = 0;
  virtual uint32_t dim() const = 0;

  virtual Status GetEmbedding(Key key, float* out) = 0;
  virtual Status PutEmbedding(Key key, const float* value) = 0;

  // Gradient push: value <- value - lr * grad, preferably as one atomic
  // read-modify-write inside the engine (MLKV overrides with a fused Rmw;
  // under ASP that closes the read-apply-write race a Get+Put pair has).
  // The default emulates with Get+axpy+Put, which is also what integrating
  // a training framework with a stock KV store gives you.
  virtual Status ApplyGradient(Key key, const float* grad, float lr) {
    std::vector<float> value(dim());
    MLKV_RETURN_NOT_OK(GetEmbedding(key, value.data()));
    for (uint32_t d = 0; d < dim(); ++d) value[d] -= lr * grad[d];
    return PutEmbedding(key, value.data());
  }

  // Consistency-free read for evaluation: must not wait on, or advance, any
  // staleness state. Defaults to GetEmbedding for engines without a
  // staleness protocol.
  virtual Status PeekEmbedding(Key key, float* out) {
    return GetEmbedding(key, out);
  }

  // Prefetch hint; default no-op (plain FASTER / RocksDB / WiredTiger).
  virtual Status Lookahead(std::span<const Key> keys) {
    return Status::OK();
  }
  // Blocks until outstanding Lookahead work completes (benchmark teardown).
  virtual void WaitIdle() {}

  // Bytes read from / written to storage devices so far (energy model).
  virtual uint64_t device_bytes_read() const { return 0; }
  virtual uint64_t device_bytes_written() const { return 0; }
};

struct BackendConfig {
  std::string dir;           // working directory for files
  uint32_t dim = 16;         // embedding dimension
  uint64_t buffer_bytes = 64ull << 20;  // in-memory budget (the Fig. 7 knob)
  uint64_t index_slots = 1ull << 20;
  uint32_t staleness_bound = 16;        // MLKV only
  size_t lookahead_threads = 2;         // MLKV only
  bool skip_promote_if_in_memory = true;
  // Retries before a bounded Get gives up with Busy. Multi-worker BSP can
  // deadlock on crossed key waits; the cap converts that into a counted,
  // recoverable abort.
  uint64_t busy_spin_limit = 1ull << 16;
};

enum class BackendKind { kMlkv, kFaster, kLsm, kBtree, kInMemory };

// Human-readable names matching the paper's legends.
const char* BackendKindName(BackendKind kind);

// Factory: builds the requested backend rooted at config.dir.
Status MakeBackend(BackendKind kind, const BackendConfig& config,
                   std::unique_ptr<KvBackend>* out);

}  // namespace mlkv
