// DelayedBackend: a KvBackend decorator that injects scripted latency —
// the storage-side twin of io/file_device.h's FaultyFileDevice, but for
// whole requests instead of device I/O. Serving it behind a KvServer
// makes that endpoint deterministically slow (every request, or only
// every Nth for an intermittent straggler), which is how the hedging
// tests and bench_serving's --hedge A/B manufacture a tail without
// touching the network stack. Header-only; test/bench scaffolding, not a
// production decorator.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "backend/kv_backend.h"

namespace mlkv {

class DelayedBackend : public KvBackend {
 public:
  struct Options {
    uint64_t delay_us = 0;   // sleep added to each delayed request
    uint64_t every_nth = 1;  // 1 = every request; N = every Nth (1-based)
    bool delay_reads = true;
    bool delay_writes = false;
  };

  DelayedBackend(std::unique_ptr<KvBackend> inner, Options options)
      : inner_(std::move(inner)), options_(options) {
    if (options_.every_nth == 0) options_.every_nth = 1;
  }

  std::string name() const override {
    return "Delayed(" + inner_->name() + ")";
  }
  uint32_t dim() const override { return inner_->dim(); }
  uint32_t shard_bits() const override { return inner_->shard_bits(); }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options = {}) override {
    if (options_.delay_reads) MaybeSleep();
    return inner_->MultiGet(keys, out, options);
  }
  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override {
    if (options_.delay_writes) MaybeSleep();
    return inner_->MultiPut(keys, values);
  }
  BatchResult MultiApplyGradient(std::span<const Key> keys, const float* grads,
                                 float lr) override {
    if (options_.delay_writes) MaybeSleep();
    return inner_->MultiApplyGradient(keys, grads, lr);
  }
  Status Lookahead(std::span<const Key> keys) override {
    return inner_->Lookahead(keys);
  }
  void WaitIdle() override { inner_->WaitIdle(); }
  uint64_t device_bytes_read() const override {
    return inner_->device_bytes_read();
  }
  uint64_t device_bytes_written() const override {
    return inner_->device_bytes_written();
  }
  BackendIoStats io_stats() const override { return inner_->io_stats(); }
  void CollectMetrics(obs::MetricsSink* sink) const override {
    inner_->CollectMetrics(sink);
  }

  // Requests that actually slept (tests assert the script fired).
  uint64_t delays() const { return delays_.load(std::memory_order_relaxed); }
  KvBackend* inner() const { return inner_.get(); }

 private:
  void MaybeSleep() {
    const uint64_t n = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % options_.every_nth != 0) return;
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(options_.delay_us));
  }

  std::unique_ptr<KvBackend> inner_;
  Options options_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> delays_{0};
};

}  // namespace mlkv
