// Adapters binding each storage engine to the KvBackend seam.
#include "backend/kv_backend.h"

#include <filesystem>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "btree/btree_store.h"
#include "kv/faster_store.h"
#include "lsm/lsm_store.h"
#include "mlkv/mlkv.h"

namespace mlkv {

namespace {

// MLKV: bounded staleness + look-ahead prefetching (the system under test).
class MlkvBackend : public KvBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    auto b = std::unique_ptr<MlkvBackend>(new MlkvBackend(config.dim));
    MlkvOptions o;
    o.dir = config.dir + "/mlkv";
    o.index_slots = config.index_slots;
    o.mem_size = config.buffer_bytes;
    o.lookahead_threads = config.lookahead_threads;
    o.skip_promote_if_in_memory = config.skip_promote_if_in_memory;
    o.busy_spin_limit = config.busy_spin_limit;
    MLKV_RETURN_NOT_OK(Mlkv::Open(o, &b->db_));
    MLKV_RETURN_NOT_OK(b->db_->OpenTable("emb", config.dim,
                                         config.staleness_bound, &b->table_));
    *out = std::move(b);
    return Status::OK();
  }

  std::string name() const override { return "MLKV"; }
  uint32_t dim() const override { return dim_; }

  Status GetEmbedding(Key key, float* out) override {
    return table_->GetOrInit({&key, 1}, out);
  }
  Status PutEmbedding(Key key, const float* value) override {
    return table_->Put({&key, 1}, value);
  }
  Status ApplyGradient(Key key, const float* grad, float lr) override {
    // Fused path: one atomic Rmw per record (also lowers the staleness
    // clock, like a Put).
    return table_->ApplyGradients({&key, 1}, grad, lr);
  }
  Status PeekEmbedding(Key key, float* out) override {
    Status s =
        table_->store()->Peek(key, out, dim_ * sizeof(float));
    if (s.IsNotFound()) return table_->GetOrInit({&key, 1}, out);
    return s;
  }
  Status Lookahead(std::span<const Key> keys) override {
    return table_->Lookahead(keys);
  }
  void WaitIdle() override { table_->WaitLookahead(); }

  uint64_t device_bytes_read() const override {
    return const_cast<EmbeddingTable*>(table_)
        ->store()
        ->mutable_log()
        ->device()
        ->bytes_read();
  }
  uint64_t device_bytes_written() const override {
    return const_cast<EmbeddingTable*>(table_)
        ->store()
        ->mutable_log()
        ->device()
        ->bytes_written();
  }

 private:
  explicit MlkvBackend(uint32_t dim) : dim_(dim) {}
  uint32_t dim_;
  std::unique_ptr<Mlkv> db_;
  EmbeddingTable* table_ = nullptr;
};

// Plain FASTER (staleness tracking off, no promotion): the strongest
// baseline engine in the paper's Fig. 7.
class FasterBackend : public KvBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    auto b = std::unique_ptr<FasterBackend>(new FasterBackend(config.dim));
    FasterOptions o;
    o.path = config.dir + "/faster.log";
    o.index_slots = config.index_slots;
    o.mem_size = config.buffer_bytes;
    o.track_staleness = false;
    MLKV_RETURN_NOT_OK(b->store_.Open(o));
    *out = std::move(b);
    return Status::OK();
  }

  std::string name() const override { return "FASTER"; }
  uint32_t dim() const override { return dim_; }

  Status GetEmbedding(Key key, float* out) override {
    const uint32_t bytes = dim_ * sizeof(float);
    Status s = store_.Read(key, out, bytes);
    if (s.IsNotFound()) return InitMissing(key, out);
    return s;
  }
  Status PutEmbedding(Key key, const float* value) override {
    return store_.Upsert(key, value, dim_ * sizeof(float));
  }

  uint64_t device_bytes_read() const override {
    return const_cast<FasterStore&>(store_).mutable_log()->device()
        ->bytes_read();
  }
  uint64_t device_bytes_written() const override {
    return const_cast<FasterStore&>(store_).mutable_log()->device()
        ->bytes_written();
  }

 private:
  explicit FasterBackend(uint32_t dim) : dim_(dim) {}

  Status InitMissing(Key key, float* out) {
    const uint32_t bytes = dim_ * sizeof(float);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
    Rng rng(Hash64(key ^ 0xE5B0C47Aull));
    for (uint32_t d = 0; d < dim_; ++d) {
      out[d] = static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale;
    }
    float* dst = out;
    const uint32_t dim = dim_;
    return store_.Rmw(key, bytes, [dst, bytes, dim](char* v, uint32_t,
                                                    bool exists) {
      if (!exists) std::memcpy(v, dst, bytes);
      else std::memcpy(dst, v, bytes);
    });
  }

  uint32_t dim_;
  FasterStore store_;
};

// RocksDB-style LSM baseline.
class LsmBackend : public KvBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    auto b = std::unique_ptr<LsmBackend>(new LsmBackend(config.dim));
    LsmOptions o;
    o.dir = config.dir + "/lsm";
    // Split the memory budget the way RocksDB deployments do: a write
    // buffer plus a block cache.
    o.memtable_bytes = std::max<uint64_t>(config.buffer_bytes / 4, 1u << 20);
    o.block_cache_bytes =
        std::max<uint64_t>(config.buffer_bytes - o.memtable_bytes, 1u << 20);
    MLKV_RETURN_NOT_OK(b->store_.Open(o));
    *out = std::move(b);
    return Status::OK();
  }

  std::string name() const override { return "RocksDB-like"; }
  uint32_t dim() const override { return dim_; }

  Status GetEmbedding(Key key, float* out) override {
    std::string value;
    Status s = store_.Get(key, &value);
    if (s.IsNotFound()) return InitMissing(key, out);
    MLKV_RETURN_NOT_OK(s);
    std::memcpy(out, value.data(),
                std::min(value.size(), size_t{dim_} * sizeof(float)));
    return Status::OK();
  }
  Status PutEmbedding(Key key, const float* value) override {
    return store_.Put(key, value, dim_ * sizeof(float));
  }

 private:
  explicit LsmBackend(uint32_t dim) : dim_(dim) {}

  Status InitMissing(Key key, float* out) {
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
    Rng rng(Hash64(key ^ 0xE5B0C47Aull));
    for (uint32_t d = 0; d < dim_; ++d) {
      out[d] = static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale;
    }
    return store_.Put(key, out, dim_ * sizeof(float));
  }

  uint32_t dim_;
  LsmStore store_;
};

// WiredTiger-style B+tree baseline.
class BtreeBackend : public KvBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    auto b = std::unique_ptr<BtreeBackend>(new BtreeBackend(config.dim));
    BTreeOptions o;
    o.path = config.dir + "/btree.db";
    o.buffer_pool_bytes = config.buffer_bytes;
    o.value_size = config.dim * sizeof(float);
    MLKV_RETURN_NOT_OK(b->store_.Open(o));
    *out = std::move(b);
    return Status::OK();
  }

  std::string name() const override { return "WiredTiger-like"; }
  uint32_t dim() const override { return dim_; }

  Status GetEmbedding(Key key, float* out) override {
    Status s = store_.Get(key, out);
    if (s.IsNotFound()) return InitMissing(key, out);
    return s;
  }
  Status PutEmbedding(Key key, const float* value) override {
    return store_.Put(key, value);
  }

 private:
  explicit BtreeBackend(uint32_t dim) : dim_(dim) {}

  Status InitMissing(Key key, float* out) {
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
    Rng rng(Hash64(key ^ 0xE5B0C47Aull));
    for (uint32_t d = 0; d < dim_; ++d) {
      out[d] = static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale;
    }
    return store_.Put(key, out);
  }

  uint32_t dim_;
  BTreeStore store_;
};

// Pure in-memory hash map: stands in for the specialized frameworks'
// proprietary in-memory embedding management (PERSIA/DGL/DGL-KE native) in
// the Fig. 6 convergence comparison.
class InMemoryBackend : public KvBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    out->reset(new InMemoryBackend(config.dim));
    return Status::OK();
  }

  std::string name() const override { return "InMemory"; }
  uint32_t dim() const override { return dim_; }

  Status GetEmbedding(Key key, float* out) override {
    {
      std::shared_lock lk(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        std::copy(it->second.begin(), it->second.end(), out);
        return Status::OK();
      }
    }
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
    Rng rng(Hash64(key ^ 0xE5B0C47Aull));
    std::vector<float> v(dim_);
    for (uint32_t d = 0; d < dim_; ++d) {
      v[d] = static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale;
    }
    std::copy(v.begin(), v.end(), out);
    std::unique_lock lk(mu_);
    map_.emplace(key, std::move(v));
    return Status::OK();
  }
  Status PutEmbedding(Key key, const float* value) override {
    std::unique_lock lk(mu_);
    map_[key].assign(value, value + dim_);
    return Status::OK();
  }

 private:
  explicit InMemoryBackend(uint32_t dim) : dim_(dim) {}
  uint32_t dim_;
  std::shared_mutex mu_;
  std::unordered_map<Key, std::vector<float>> map_;
};

}  // namespace

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMlkv: return "MLKV";
    case BackendKind::kFaster: return "FASTER";
    case BackendKind::kLsm: return "RocksDB-like";
    case BackendKind::kBtree: return "WiredTiger-like";
    case BackendKind::kInMemory: return "InMemory";
  }
  return "?";
}

Status MakeBackend(BackendKind kind, const BackendConfig& config,
                   std::unique_ptr<KvBackend>* out) {
  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  if (ec) return Status::IOError("create dir: " + ec.message());
  switch (kind) {
    case BackendKind::kMlkv: return MlkvBackend::Make(config, out);
    case BackendKind::kFaster: return FasterBackend::Make(config, out);
    case BackendKind::kLsm: return LsmBackend::Make(config, out);
    case BackendKind::kBtree: return BtreeBackend::Make(config, out);
    case BackendKind::kInMemory: return InMemoryBackend::Make(config, out);
  }
  return Status::InvalidArgument("unknown backend kind");
}

}  // namespace mlkv
