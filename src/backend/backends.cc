// Adapters binding each storage engine to the batch-first KvBackend seam.
//
// Layout of this file:
//  * batch scaffolding shared by the baseline engines — intra-batch key
//    dedup and a chunked fan-out helper that spreads large batches over a
//    per-backend ThreadPool (the deterministic embedding bootstrap lives
//    in mlkv/embedding_init.h, shared with EmbeddingTable);
//  * BatchedEngineBackend, an intermediate base turning per-key engine
//    primitives (ReadOne/WriteOne/ApplyOne) into MultiGet/MultiPut/
//    MultiApplyGradient with dedup + optional parallelism;
//  * the five adapters: MLKV (delegates whole spans to EmbeddingTable),
//    FASTER / LSM / B+tree (BatchedEngineBackend with native RMW where the
//    engine has one), and the in-memory map (native batch loops that take
//    each lock once per batch).
#include "backend/kv_backend.h"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "btree/btree_store.h"
#include "common/simd.h"
#include "common/spin_wait.h"
#include "common/thread_pool.h"
#include "kv/batch_read.h"
#include "kv/faster_store.h"
#include "kv/sharded_store.h"
#include "cluster/cluster_backend.h"
#include "kv/update_log.h"
#include "lsm/lsm_store.h"
#include "mlkv/embedding_cache.h"
#include "mlkv/embedding_init.h"
#include "mlkv/mlkv.h"
#include "net/remote_backend.h"
#include "obs/metrics.h"

namespace mlkv {

namespace {

BackendIoStats IoStatsFrom(const FasterStatsSnapshot& s) {
  BackendIoStats io;
  io.disk_record_reads = s.disk_record_reads;
  io.pages_flushed = s.pages_flushed;
  io.pages_evicted = s.pages_evicted;
  io.async_reads_submitted = s.async_reads_submitted;
  io.async_reads_completed = s.async_reads_completed;
  io.async_reads_refetched = s.async_reads_refetched;
  io.async_writes_submitted = s.async_writes_submitted;
  io.async_writes_completed = s.async_writes_completed;
  io.fsyncs = s.fsyncs;
  io.group_commits = s.group_commits;
  return io;
}

// Replication feed over a ShardedStore (shared by the MLKV and FASTER
// adapters): one poll of shard `shard`'s committed-update stream. Persists
// the shard first — replication is a durability consumer, and in
// checkpoint-only mode nothing else advances the durable watermark the
// cursor reads under.
Status ReadShardUpdates(ShardedStore* store, uint32_t shard, uint64_t from,
                        uint32_t max_records, uint32_t max_bytes,
                        std::vector<UpdateEntry>* out, uint64_t* next_from,
                        uint64_t* durable) {
  if (shard >= store->num_shards()) {
    return Status::InvalidArgument("replication shard out of range");
  }
  FasterStore* s = store->shard(shard);
  // Seal before persisting: updates racing with this read must RCU-append
  // above the window instead of rewriting bytes in place, or a cursor that
  // already passed their address would never be told about them.
  s->mutable_log()->SealMutableRegion();
  MLKV_RETURN_NOT_OK(s->Persist());
  UpdateLogCursor cur(s, from);
  UpdateEntry e;
  size_t bytes = 0;
  while (out->size() < max_records && cur.Next(&e)) {
    bytes += e.value.size() + 32;  // rough wire cost per entry
    out->push_back(std::move(e));
    if (max_bytes != 0 && bytes >= max_bytes) break;
  }
  MLKV_RETURN_NOT_OK(cur.status());
  *next_from = cur.position();
  *durable = s->durable_address();
  return Status::OK();
}

// Applies one replicated entry by key — the replica's shard layout need
// not match the primary's. A tombstone for a key the replica never saw is
// OK (the delete already "took").
Status ApplyShardUpdate(ShardedStore* store, const UpdateEntry& e) {
  if (e.tombstone) {
    const Status s = store->Delete(e.key);
    return s.IsNotFound() ? Status::OK() : s;
  }
  return store->Upsert(e.key, e.value.data(),
                       static_cast<uint32_t>(e.value.size()));
}

// Scrape-time families shared by the hybrid-log adapters (MLKV tables and
// the FASTER baseline): per-shard op counts — the live load signal ROADMAP
// item 3's shard balancing needs — plus aggregate store behavior and size
// gauges. The io_* families come from the base CollectMetrics.
void EmitStoreMetrics(ShardedStore* store, obs::MetricsSink* sink) {
  for (size_t i = 0; i < store->num_shards(); ++i) {
    const FasterStatsSnapshot s = store->shard(i)->stats();
    const std::string shard = std::to_string(i);
    const char* help = "Operations executed per store shard";
    sink->AddCounter("mlkv_shard_ops_total", help, s.reads,
                     {{"shard", shard}, {"op", "read"}});
    sink->AddCounter("mlkv_shard_ops_total", help, s.upserts,
                     {{"shard", shard}, {"op", "upsert"}});
    sink->AddCounter("mlkv_shard_ops_total", help, s.rmws,
                     {{"shard", shard}, {"op", "rmw"}});
    sink->AddCounter("mlkv_shard_ops_total", help, s.deletes,
                     {{"shard", shard}, {"op", "delete"}});
  }
  const FasterStatsSnapshot s = store->stats();
  sink->AddCounter("mlkv_store_inplace_updates_total",
                   "Writes absorbed in place in the mutable region",
                   s.inplace_updates);
  sink->AddCounter("mlkv_store_rcu_appends_total",
                   "Writes that appended a new record version",
                   s.rcu_appends);
  sink->AddCounter("mlkv_store_inserts_total",
                   "First-time key insertions", s.inserts);
  sink->AddCounter("mlkv_store_promotions_total",
                   "Cold records copied to the log tail", s.promotions);
  sink->AddCounter("mlkv_store_promotions_skipped_total",
                   "Promotions skipped (already in memory or superseded)",
                   s.promotions_skipped);
  sink->AddCounter("mlkv_store_staleness_waits_total",
                   "Reads that waited out the staleness bound",
                   s.staleness_waits);
  sink->AddCounter("mlkv_store_busy_aborts_total",
                   "Reads that gave up waiting with Busy", s.busy_aborts);
  sink->AddCounter("mlkv_store_compactions_total",
                   "Log compaction passes", s.compactions);
  sink->AddCounter("mlkv_store_compaction_live_copied_total",
                   "Live records re-appended by compaction",
                   s.compaction_live_copied);
  sink->AddGauge("mlkv_store_live_keys",
                 "Approximate number of live keys",
                 static_cast<double>(store->approximate_size()));
  sink->AddGauge("mlkv_store_log_span_bytes",
                 "Bytes spanned by the hybrid log (begin to tail)",
                 static_cast<double>(store->log_span_bytes()));
  sink->AddGauge("mlkv_store_index_slots", "Hash index slot count",
                 static_cast<double>(store->index_slots()));
}

// Deduplicated view of one batch: `unique` holds first occurrences in
// input order; `slot_of[i]` maps input position i to its unique slot.
// Trainers dedup their minibatches anyway, but serving and YCSB traffic
// under skew does not — dedup keeps a zipfian batch from hammering one
// record and keeps parallel chunks free of same-key write races.
struct DedupPlan {
  std::vector<Key> unique;
  std::vector<uint32_t> slot_of;
  bool has_dupes = false;

  explicit DedupPlan(std::span<const Key> keys) {
    slot_of.resize(keys.size());
    unique.reserve(keys.size());
    if (keys.size() <= 1) {  // single-key wrappers: no hashing needed
      unique.assign(keys.begin(), keys.end());
      if (!slot_of.empty()) slot_of[0] = 0;
      return;
    }
    std::unordered_map<Key, uint32_t> first;
    first.reserve(keys.size() * 2);
    for (size_t i = 0; i < keys.size(); ++i) {
      const auto [it, fresh] =
          first.emplace(keys[i], static_cast<uint32_t>(unique.size()));
      if (fresh) {
        unique.push_back(keys[i]);
      } else {
        has_dupes = true;
      }
      slot_of[i] = it->second;
    }
  }
};

// Runs fn(begin, end, &part) over [0, n), splitting into contiguous chunks
// across `pool` when the batch is large enough. fn records the outcome of
// key i at chunk-local index i - begin in its part (pre-sized to
// end - begin); parts are appended back together in input order after the
// fan-in. The calling thread works on the first chunk itself.
BatchResult RunChunked(
    ThreadPool* pool, size_t n, size_t min_chunk,
    const std::function<void(size_t, size_t, BatchResult*)>& fn) {
  size_t chunks = 1;
  if (pool != nullptr && min_chunk > 0) {
    chunks = std::min(pool->num_threads() + 1, n / min_chunk);
    if (chunks == 0) chunks = 1;
  }
  if (chunks <= 1) {
    BatchResult result(n);
    if (n > 0) fn(0, n, &result);
    return result;
  }
  const size_t per = (n + chunks - 1) / chunks;
  std::vector<std::pair<size_t, size_t>> ranges;
  std::vector<BatchResult> parts;
  for (size_t begin = 0; begin < n; begin += per) {
    const size_t end = std::min(n, begin + per);
    ranges.emplace_back(begin, end);
    parts.emplace_back(end - begin);
  }
  std::atomic<size_t> pending{0};
  for (size_t c = 1; c < ranges.size(); ++c) {
    pending.fetch_add(1, std::memory_order_acq_rel);
    const bool submitted = pool->Submit([&, c] {
      fn(ranges[c].first, ranges[c].second, &parts[c]);
      pending.fetch_sub(1, std::memory_order_acq_rel);
    });
    if (!submitted) {  // pool shutting down: degrade to inline
      fn(ranges[c].first, ranges[c].second, &parts[c]);
      pending.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  fn(ranges[0].first, ranges[0].second, &parts[0]);
  // The fan-in must not starve the pool workers it waits for.
  SpinWaitUntil([&] { return pending.load(std::memory_order_acquire) == 0; });
  BatchResult result;
  result.codes.reserve(n);
  for (const BatchResult& part : parts) result.Append(part);
  return result;
}

// Turns thread-safe per-key engine primitives into the batched KvBackend
// surface: key dedup, optional chunked fan-out over a per-backend pool,
// and per-key outcome bookkeeping live here once instead of per engine.
class BatchedEngineBackend : public KvBackend {
 public:
  uint32_t dim() const override { return dim_; }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override {
    const DedupPlan plan(keys);
    const size_t n = plan.unique.size();
    std::vector<float> scratch;
    float* ubuf = out;
    if (plan.has_dupes) {
      scratch.resize(n * size_t{dim_});
      ubuf = scratch.data();
    }
    // Disjoint byte writes per chunk; read back only after the fan-in.
    std::vector<uint8_t> fresh(n, 0);
    BatchResult uniq = RunChunked(
        pool_.get(), n, min_chunk_,
        [&](size_t begin, size_t end, BatchResult* r) {
          for (size_t u = begin; u < end; ++u) {
            const Key key = plan.unique[u];
            float* dst = ubuf + u * dim_;
            Status s = ReadOne(key, dst);
            if (s.IsNotFound() && options.init_missing) {
              InitEmbedding(key, dim_, dst);
              s = InitMissingOne(key, dst);
              if (s.ok()) {
                fresh[u] = 1;
                r->RecordInitialized(u - begin);
                continue;
              }
            }
            r->Record(u - begin, s);
          }
        });
    if (!plan.has_dupes) return uniq;
    // Scatter values and codes back to every occurrence; only the first
    // occurrence of a fresh key counts as missing, matching a sequential
    // per-key loop (the first get initializes, later ones find).
    BatchResult result(keys.size());
    std::vector<uint8_t> seen(n, 0);
    for (size_t i = 0; i < keys.size(); ++i) {
      const uint32_t u = plan.slot_of[i];
      if (uniq.codes[u] == Status::Code::kOk) {
        simd::CopyFloats(out + i * size_t{dim_}, ubuf + u * size_t{dim_},
                         dim_);
        if (fresh[u] && !seen[u]) {
          result.RecordInitialized(i);
        } else {
          result.Record(i, Status::OK());
        }
      } else {
        // Non-kOk rows stay untouched (the scratch row was never written).
        result.Record(i, uniq.StatusAt(u));
      }
      seen[u] = 1;
    }
    return result;
  }

  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override {
    const DedupPlan plan(keys);
    const size_t n = plan.unique.size();
    const float* ubuf = values;
    std::vector<float> scratch;
    if (plan.has_dupes) {
      // Last occurrence wins, matching a sequential per-key loop.
      scratch.resize(n * size_t{dim_});
      for (size_t i = 0; i < keys.size(); ++i) {
        simd::CopyFloats(&scratch[plan.slot_of[i] * size_t{dim_}],
                         values + i * size_t{dim_}, dim_);
      }
      ubuf = scratch.data();
    }
    BatchResult uniq = RunChunked(
        pool_.get(), n, min_chunk_,
        [&](size_t begin, size_t end, BatchResult* r) {
          for (size_t u = begin; u < end; ++u) {
            r->Record(u - begin, WriteOne(plan.unique[u], ubuf + u * dim_));
          }
        });
    if (!plan.has_dupes) return uniq;
    BatchResult result(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      result.Record(i, uniq.StatusAt(plan.slot_of[i]));
    }
    return result;
  }

  BatchResult MultiApplyGradient(std::span<const Key> keys, const float* grads,
                                 float lr) override {
    const DedupPlan plan(keys);
    const size_t n = plan.unique.size();
    const float* ubuf = grads;
    std::vector<float> scratch;
    if (plan.has_dupes) {
      // Duplicate keys accumulate: SGD is linear in the gradient, so one
      // fused apply of the sum equals sequential applies per occurrence.
      scratch.assign(n * size_t{dim_}, 0.0f);
      for (size_t i = 0; i < keys.size(); ++i) {
        simd::AccumulateFloats(&scratch[plan.slot_of[i] * size_t{dim_}],
                               grads + i * size_t{dim_}, dim_);
      }
      ubuf = scratch.data();
    }
    BatchResult uniq = RunChunked(
        pool_.get(), n, min_chunk_,
        [&](size_t begin, size_t end, BatchResult* r) {
          for (size_t u = begin; u < end; ++u) {
            r->Record(u - begin, ApplyOne(plan.unique[u], ubuf + u * dim_, lr));
          }
        });
    if (!plan.has_dupes) return uniq;
    BatchResult result(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      result.Record(i, uniq.StatusAt(plan.slot_of[i]));
    }
    return result;
  }

 protected:
  BatchedEngineBackend(uint32_t dim, const BackendConfig& config)
      : dim_(dim), min_chunk_(config.batch_min_chunk) {
    if (config.batch_threads > 0) {
      pool_ = std::make_unique<ThreadPool>(config.batch_threads);
    }
  }

  // Engine primitives; must be safe to call from multiple threads.
  virtual Status ReadOne(Key key, float* out) = 0;  // NotFound when absent
  virtual Status WriteOne(Key key, const float* value) = 0;
  // First-touch bootstrap: `out` already holds the init vector; store it
  // (or adopt a concurrent winner's value into `out`).
  virtual Status InitMissingOne(Key key, float* out) {
    return WriteOne(key, out);
  }
  // value <- value - lr * grad; emulated read-modify-write by default,
  // overridden where the engine has a native (atomic) RMW.
  virtual Status ApplyOne(Key key, const float* grad, float lr) {
    std::vector<float> value(dim_);
    Status s = ReadOne(key, value.data());
    if (s.IsNotFound()) {
      InitEmbedding(key, dim_, value.data());
      s = Status::OK();
    }
    MLKV_RETURN_NOT_OK(s);
    simd::SubScaled(value.data(), grad, lr, dim_);
    return WriteOne(key, value.data());
  }

  const uint32_t dim_;

 private:
  const size_t min_chunk_;
  std::unique_ptr<ThreadPool> pool_;
};

// MLKV: bounded staleness + look-ahead prefetching (the system under test).
// Batches are handed to EmbeddingTable's span APIs whole — the table owns
// dedup-free semantics (each occurrence participates in the staleness
// protocol) and the store is latch-free, so no adapter-level fan-out.
class MlkvBackend : public KvBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    auto b = std::unique_ptr<MlkvBackend>(new MlkvBackend(config.dim));
    MlkvOptions o;
    o.dir = config.dir + "/mlkv";
    o.index_slots = config.index_slots;
    o.mem_size = config.buffer_bytes;
    o.shard_bits = config.shard_bits;
    o.scatter_min_keys = std::max<size_t>(config.batch_min_chunk, 1);
    o.lookahead_threads = config.lookahead_threads;
    o.skip_promote_if_in_memory = config.skip_promote_if_in_memory;
    o.busy_spin_limit = config.busy_spin_limit;
    o.io_mode = config.io_mode;
    o.io_threads = config.io_threads;
    o.durability_mode = config.durability_mode;
    o.group_commit_window_us = config.group_commit_window_us;
    o.group_commit_max_bytes = config.group_commit_max_bytes;
    o.checkpoint_mode = config.checkpoint_mode;
    MLKV_RETURN_NOT_OK(Mlkv::Open(o, &b->db_));
    MLKV_RETURN_NOT_OK(b->db_->OpenTable("emb", config.dim,
                                         config.staleness_bound, &b->table_));
    *out = std::move(b);
    return Status::OK();
  }

  std::string name() const override { return "MLKV"; }
  uint32_t dim() const override { return dim_; }
  uint32_t shard_bits() const override {
    return const_cast<EmbeddingTable*>(table_)->store()->shard_bits();
  }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override {
    BatchResult result;
    if (!options.untracked) {
      if (options.init_missing) {
        table_->GetOrInit(keys, out, &result);
      } else {
        table_->Get(keys, out, &result);
      }
      return result;
    }
    // Untracked read: never waits on or advances staleness state, even
    // when bootstrapping never-stored keys.
    if (options.init_missing) {
      table_->PeekOrInit(keys, out, &result);
    } else {
      table_->Peek(keys, out, &result);
    }
    return result;
  }

  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override {
    BatchResult result;
    table_->Put(keys, values, &result);
    return result;
  }

  BatchResult MultiApplyGradient(std::span<const Key> keys, const float* grads,
                                 float lr) override {
    // Fused path: one atomic Rmw per record (also lowers the staleness
    // clock, like a Put).
    BatchResult result;
    table_->ApplyGradients(keys, grads, lr, &result);
    return result;
  }

  Status Lookahead(std::span<const Key> keys) override {
    return table_->Lookahead(keys);
  }
  void WaitIdle() override { table_->WaitLookahead(); }

  uint64_t device_bytes_read() const override {
    return const_cast<EmbeddingTable*>(table_)->store()->device_bytes_read();
  }
  uint64_t device_bytes_written() const override {
    return const_cast<EmbeddingTable*>(table_)
        ->store()
        ->device_bytes_written();
  }
  BackendIoStats io_stats() const override {
    return IoStatsFrom(const_cast<EmbeddingTable*>(table_)->store()->stats());
  }
  void CollectMetrics(obs::MetricsSink* sink) const override {
    KvBackend::CollectMetrics(sink);
    EmitStoreMetrics(const_cast<EmbeddingTable*>(table_)->store(), sink);
  }

  uint32_t replication_shards() const override {
    return static_cast<uint32_t>(
        const_cast<EmbeddingTable*>(table_)->store()->num_shards());
  }
  Status ReadCommittedUpdates(uint32_t shard, uint64_t from,
                              uint32_t max_records, uint32_t max_bytes,
                              std::vector<UpdateEntry>* out,
                              uint64_t* next_from,
                              uint64_t* durable) override {
    return ReadShardUpdates(table_->store(), shard, from, max_records,
                            max_bytes, out, next_from, durable);
  }
  Status ApplyReplicatedUpdate(const UpdateEntry& entry) override {
    return ApplyShardUpdate(table_->store(), entry);
  }

 private:
  explicit MlkvBackend(uint32_t dim) : dim_(dim) {}
  uint32_t dim_;
  std::unique_ptr<Mlkv> db_;
  EmbeddingTable* table_ = nullptr;
};

// Plain FASTER (staleness tracking off, no promotion): the strongest
// baseline engine in the paper's Fig. 7, now over the same ShardedStore
// core MLKV tables use. Batches route through shard-partitioned
// scatter/gather instead of BatchedEngineBackend's generic contiguous
// chunks: a sub-batch only ever touches one shard's index and log tail,
// and same-key duplicates land in the same in-order sub-batch, so no
// adapter-level dedup is needed — within one call a later occurrence
// always runs after an earlier one (last-write-wins Puts, accumulating
// gradient applies), exactly the sequential per-key semantics. Gradient
// pushes use the store's native Rmw, so applies are atomic per record.
class FasterBackend : public KvBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    auto b = std::unique_ptr<FasterBackend>(new FasterBackend(config));
    ShardedStoreOptions o;
    o.store.path = config.dir + "/faster.log";
    o.store.index_slots = config.index_slots;
    o.store.mem_size = config.buffer_bytes;
    o.store.track_staleness = false;
    o.shard_bits = config.shard_bits;
    o.pool = b->pool_.get();
    o.parallel_min_keys = std::max<size_t>(config.batch_min_chunk, 1);
    // batch_threads > 0 meant intra-batch fan-out before sharding; keep it
    // for the unsharded configuration too.
    o.chunk_single_shard = config.batch_threads > 0;
    // Read waves stay gated on io_mode; the flush path uses the engine
    // whenever one exists (group durability creates one even under kSync
    // reads).
    o.io = config.io_mode == IoMode::kAsync ? b->io_.get() : nullptr;
    o.store.io = b->io_.get();
    o.store.durability_mode = config.durability_mode;
    o.store.group_commit_window_us = config.group_commit_window_us;
    o.store.group_commit_max_bytes = config.group_commit_max_bytes;
    o.store.checkpoint_mode = config.checkpoint_mode;
    MLKV_RETURN_NOT_OK(b->store_.Open(o));
    *out = std::move(b);
    return Status::OK();
  }

  std::string name() const override { return "FASTER"; }
  uint32_t dim() const override { return dim_; }
  uint32_t shard_bits() const override { return store_.shard_bits(); }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override {
    const uint32_t bytes = dim_ * sizeof(float);
    BatchResult result;
    store_.MultiExecuteRead(
        keys,
        [this, out, bytes, &options](FasterStore* shard, Key key, size_t i,
                                     BatchResult* part, size_t pi,
                                     PendingSink* sink) {
          float* dst = out + i * size_t{dim_};
          // Rmw keeps a concurrent initializer from double-inserting: only
          // the missing case writes, and losers adopt the winner.
          const uint32_t dim = dim_;
          const auto init_missing = [shard, key, dst, bytes, dim]() {
            InitEmbedding(key, dim, dst);
            return shard->Rmw(key, bytes,
                              [dst, bytes](char* v, uint32_t, bool exists) {
                                if (!exists) std::memcpy(v, dst, bytes);
                                else std::memcpy(dst, v, bytes);
                              });
          };
          BatchReadOrPark(shard, key, dst, bytes, UINT32_MAX,
                          /*tracked=*/false, part, pi, sink,
                          options.init_missing ? &init_missing : nullptr);
        },
        &result);
    return result;
  }

  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override {
    const uint32_t bytes = dim_ * sizeof(float);
    BatchResult result;
    store_.MultiExecute(
        keys,
        [this, values, bytes](FasterStore* shard, Key key, size_t i,
                              BatchResult* part, size_t pi) {
          part->Record(pi,
                       shard->Upsert(key, values + i * size_t{dim_}, bytes));
        },
        &result);
    CommitIfGroup(&result);
    return result;
  }

  BatchResult MultiApplyGradient(std::span<const Key> keys, const float* grads,
                                 float lr) override {
    const uint32_t bytes = dim_ * sizeof(float);
    const uint32_t dim = dim_;
    BatchResult result;
    store_.MultiExecute(
        keys,
        [grads, lr, dim, bytes](FasterStore* shard, Key key, size_t i,
                                BatchResult* part, size_t pi) {
          const float* grad = grads + i * size_t{dim};
          part->Record(
              pi, shard->Rmw(key, bytes,
                             [key, grad, lr, dim](char* v, uint32_t,
                                                  bool exists) {
                               float* f = reinterpret_cast<float*>(v);
                               if (!exists) InitEmbedding(key, dim, f);
                               simd::SubScaled(f, grad, lr, dim);
                             }));
        },
        &result);
    CommitIfGroup(&result);
    return result;
  }

  uint64_t device_bytes_read() const override {
    return store_.device_bytes_read();
  }
  uint64_t device_bytes_written() const override {
    return store_.device_bytes_written();
  }
  BackendIoStats io_stats() const override {
    return IoStatsFrom(store_.stats());
  }
  void CollectMetrics(obs::MetricsSink* sink) const override {
    KvBackend::CollectMetrics(sink);
    EmitStoreMetrics(const_cast<ShardedStore*>(&store_), sink);
  }

  uint32_t replication_shards() const override {
    return static_cast<uint32_t>(store_.num_shards());
  }
  Status ReadCommittedUpdates(uint32_t shard, uint64_t from,
                              uint32_t max_records, uint32_t max_bytes,
                              std::vector<UpdateEntry>* out,
                              uint64_t* next_from,
                              uint64_t* durable) override {
    return ReadShardUpdates(&store_, shard, from, max_records, max_bytes, out,
                            next_from, durable);
  }
  Status ApplyReplicatedUpdate(const UpdateEntry& entry) override {
    return ApplyShardUpdate(&store_, entry);
  }

 private:
  explicit FasterBackend(const BackendConfig& config)
      : dim_(config.dim),
        group_(config.durability_mode == DurabilityMode::kGroup) {
    if (config.batch_threads > 0) {
      pool_ = std::make_unique<ThreadPool>(config.batch_threads);
    }
    if (config.io_mode == IoMode::kAsync || group_) {
      AsyncIoEngine::Options o;
      o.io_threads = config.io_threads;
      io_ = std::make_unique<AsyncIoEngine>(o);
    }
  }

  // Group-durability epilogue: the batch's records are on disk before the
  // result reaches the caller. A persist failure downgrades every
  // still-kOk key — the write happened but is not durable.
  void CommitIfGroup(BatchResult* result) {
    if (!group_) return;
    result->DowngradeOk(store_.PersistAll());
  }

  const uint32_t dim_;
  const bool group_;
  std::unique_ptr<ThreadPool> pool_;  // declared before store_ (store uses it)
  std::unique_ptr<AsyncIoEngine> io_;  // likewise shared by every shard
  ShardedStore store_;
};

// RocksDB-style LSM baseline.
class LsmBackend : public BatchedEngineBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    auto b = std::unique_ptr<LsmBackend>(new LsmBackend(config));
    LsmOptions o;
    o.dir = config.dir + "/lsm";
    // Split the memory budget the way RocksDB deployments do: a write
    // buffer plus a block cache.
    o.memtable_bytes = std::max<uint64_t>(config.buffer_bytes / 4, 1u << 20);
    o.block_cache_bytes =
        std::max<uint64_t>(config.buffer_bytes - o.memtable_bytes, 1u << 20);
    MLKV_RETURN_NOT_OK(b->store_.Open(o));
    *out = std::move(b);
    return Status::OK();
  }

  std::string name() const override { return "RocksDB-like"; }

 protected:
  Status ReadOne(Key key, float* out) override {
    std::string value;
    MLKV_RETURN_NOT_OK(store_.Get(key, &value));
    std::memcpy(out, value.data(),
                std::min(value.size(), size_t{dim_} * sizeof(float)));
    return Status::OK();
  }
  Status WriteOne(Key key, const float* value) override {
    return store_.Put(key, value, dim_ * sizeof(float));
  }

 private:
  explicit LsmBackend(const BackendConfig& config)
      : BatchedEngineBackend(config.dim, config) {}

  LsmStore store_;
};

// WiredTiger-style B+tree baseline.
class BtreeBackend : public BatchedEngineBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    auto b = std::unique_ptr<BtreeBackend>(new BtreeBackend(config));
    BTreeOptions o;
    o.path = config.dir + "/btree.db";
    o.buffer_pool_bytes = config.buffer_bytes;
    o.value_size = config.dim * sizeof(float);
    MLKV_RETURN_NOT_OK(b->store_.Open(o));
    *out = std::move(b);
    return Status::OK();
  }

  std::string name() const override { return "WiredTiger-like"; }

 protected:
  Status ReadOne(Key key, float* out) override { return store_.Get(key, out); }
  Status WriteOne(Key key, const float* value) override {
    return store_.Put(key, value);
  }

 private:
  explicit BtreeBackend(const BackendConfig& config)
      : BatchedEngineBackend(config.dim, config) {}

  BTreeStore store_;
};

// Pure in-memory hash map: stands in for the specialized frameworks'
// proprietary in-memory embedding management (PERSIA/DGL/DGL-KE native) in
// the Fig. 6 convergence comparison. Native batch loops: each Multi* call
// takes its lock once per batch instead of once per key; no thread-pool
// fan-out, since the lock — not I/O — is the bottleneck.
class InMemoryBackend : public KvBackend {
 public:
  static Status Make(const BackendConfig& config,
                     std::unique_ptr<KvBackend>* out) {
    out->reset(new InMemoryBackend(config.dim));
    return Status::OK();
  }

  std::string name() const override { return "InMemory"; }
  uint32_t dim() const override { return dim_; }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override {
    BatchResult result(keys.size());
    std::vector<size_t> misses;
    {
      std::shared_lock lk(mu_);
      for (size_t i = 0; i < keys.size(); ++i) {
        const auto it = map_.find(keys[i]);
        if (it != map_.end()) {
          std::copy(it->second.begin(), it->second.end(),
                    out + i * size_t{dim_});
          result.Record(i, Status::OK());
        } else {
          misses.push_back(i);
        }
      }
    }
    if (misses.empty()) return result;
    if (!options.init_missing) {
      for (const size_t i : misses) result.Record(i, Status::NotFound());
      return result;
    }
    std::unique_lock lk(mu_);
    for (const size_t i : misses) {
      float* dst = out + i * size_t{dim_};
      const auto it = map_.find(keys[i]);  // may have appeared meanwhile
      if (it != map_.end()) {
        std::copy(it->second.begin(), it->second.end(), dst);
        result.Record(i, Status::OK());
        continue;
      }
      std::vector<float> v(dim_);
      InitEmbedding(keys[i], dim_, v.data());
      std::copy(v.begin(), v.end(), dst);
      map_.emplace(keys[i], std::move(v));
      result.RecordInitialized(i);
    }
    return result;
  }

  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override {
    BatchResult result(keys.size());
    std::unique_lock lk(mu_);
    for (size_t i = 0; i < keys.size(); ++i) {
      const float* src = values + i * size_t{dim_};
      map_[keys[i]].assign(src, src + dim_);
      result.Record(i, Status::OK());
    }
    return result;
  }

  BatchResult MultiApplyGradient(std::span<const Key> keys, const float* grads,
                                 float lr) override {
    // One lock for the whole batch makes the apply atomic per batch —
    // strictly stronger than the per-record atomicity MLKV offers.
    BatchResult result(keys.size());
    std::unique_lock lk(mu_);
    for (size_t i = 0; i < keys.size(); ++i) {
      auto [it, fresh] = map_.try_emplace(keys[i]);
      if (fresh) {
        it->second.resize(dim_);
        InitEmbedding(keys[i], dim_, it->second.data());
      }
      simd::SubScaled(it->second.data(), grads + i * size_t{dim_}, lr, dim_);
      result.Record(i, Status::OK());
    }
    return result;
  }

 private:
  explicit InMemoryBackend(uint32_t dim) : dim_(dim) {}
  uint32_t dim_;
  std::shared_mutex mu_;
  std::unordered_map<Key, std::vector<float>> map_;
};

// Serving-side row cache decorator (see MakeCachingBackend in the header):
// untracked reads probe a sharded LRU before the engine; writes invalidate.
// Tracked reads bypass entirely — a cached row never participates in the
// staleness protocol, so caching them would let training reads dodge the
// bound. A fill racing an invalidate can briefly resurrect a row one write
// old, within the untracked read contract's bounded staleness.
class CachingBackend : public KvBackend {
 public:
  CachingBackend(std::unique_ptr<KvBackend> inner, size_t capacity,
                 CacheAdmission admission)
      : inner_(std::move(inner)),
        cache_(capacity, inner_->dim(), /*shards=*/16, admission) {}

  std::string name() const override {
    return "Cached(" + inner_->name() + ")";
  }
  uint32_t dim() const override { return inner_->dim(); }
  uint32_t shard_bits() const override { return inner_->shard_bits(); }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override {
    if (!options.untracked) return inner_->MultiGet(keys, out, options);
    const uint32_t d = inner_->dim();
    BatchResult result(keys.size());
    std::vector<Key> miss_keys;
    std::vector<size_t> miss_pos;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (cache_.Get(keys[i], out + i * size_t{d})) {
        result.Record(i, Status::OK());
      } else {
        miss_keys.push_back(keys[i]);
        miss_pos.push_back(i);
      }
    }
    if (miss_keys.empty()) return result;
    std::vector<float> rows(miss_keys.size() * size_t{d});
    const BatchResult got = inner_->MultiGet(miss_keys, rows.data(), options);
    for (size_t m = 0; m < miss_keys.size(); ++m) {
      const size_t i = miss_pos[m];
      if (got.codes[m] == Status::Code::kOk) {
        const float* row = rows.data() + m * size_t{d};
        simd::CopyFloats(out + i * size_t{d}, row, d);
        cache_.Put(miss_keys[m], row);
      }
      result.Record(i, got.StatusAt(m));
    }
    // Fresh keys the engine initialized were recorded kOk above (per-key
    // codes carry no initialized flag); move them found -> missing so the
    // summary counts match what the engine reported.
    result.found -= got.missing;
    result.missing += got.missing;
    return result;
  }

  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override {
    BatchResult r = inner_->MultiPut(keys, values);
    for (const Key key : keys) cache_.Erase(key);
    return r;
  }

  BatchResult MultiApplyGradient(std::span<const Key> keys, const float* grads,
                                 float lr) override {
    BatchResult r = inner_->MultiApplyGradient(keys, grads, lr);
    for (const Key key : keys) cache_.Erase(key);
    return r;
  }

  Status Lookahead(std::span<const Key> keys) override {
    return inner_->Lookahead(keys);
  }
  void WaitIdle() override { inner_->WaitIdle(); }
  uint64_t device_bytes_read() const override {
    return inner_->device_bytes_read();
  }
  uint64_t device_bytes_written() const override {
    return inner_->device_bytes_written();
  }
  BackendIoStats io_stats() const override { return inner_->io_stats(); }

  void CollectMetrics(obs::MetricsSink* sink) const override {
    inner_->CollectMetrics(sink);
    const char* hits_help = "Serving cache hits per cache shard";
    const char* miss_help = "Serving cache misses per cache shard";
    const char* evict_help = "Serving cache evictions per cache shard";
    for (size_t i = 0; i < cache_.num_cache_shards(); ++i) {
      const EmbeddingCache::CacheStats s = cache_.shard_stats(i);
      const std::string shard = std::to_string(i);
      sink->AddCounter("mlkv_cache_hits_total", hits_help, s.hits,
                       {{"shard", shard}});
      sink->AddCounter("mlkv_cache_misses_total", miss_help, s.misses,
                       {{"shard", shard}});
      sink->AddCounter("mlkv_cache_evictions_total", evict_help, s.evictions,
                       {{"shard", shard}});
    }
    sink->AddGauge("mlkv_cache_entries", "Rows resident in the serving cache",
                   static_cast<double>(cache_.size()));
    const EmbeddingCache::CacheStats total = cache_.stats();
    sink->AddCounter("mlkv_cache_admission_rejects_total",
                     "Cache fills refused by TinyLFU admission",
                     total.admission_rejects);
    sink->AddCounter("mlkv_cache_admission_agings_total",
                     "TinyLFU sketch aging resets", total.admission_agings);
  }

  uint32_t replication_shards() const override {
    return inner_->replication_shards();
  }
  Status ReadCommittedUpdates(uint32_t shard, uint64_t from,
                              uint32_t max_records, uint32_t max_bytes,
                              std::vector<UpdateEntry>* out,
                              uint64_t* next_from,
                              uint64_t* durable) override {
    return inner_->ReadCommittedUpdates(shard, from, max_records, max_bytes,
                                        out, next_from, durable);
  }
  Status ApplyReplicatedUpdate(const UpdateEntry& entry) override {
    const Status s = inner_->ApplyReplicatedUpdate(entry);
    cache_.Erase(entry.key);
    return s;
  }

 private:
  std::unique_ptr<KvBackend> inner_;
  EmbeddingCache cache_;
};

}  // namespace

// Emulated batched gradient push for engines without a native override:
// dedup + sum duplicate gradients (SGD is linear), one MultiGet, axpy, one
// MultiPut over the keys that produced a value — exactly what integrating a
// training framework with a stock KV store gives you, batch edition.
BatchResult KvBackend::MultiApplyGradient(std::span<const Key> keys,
                                          const float* grads, float lr) {
  const uint32_t d = dim();
  const DedupPlan plan(keys);
  const size_t n = plan.unique.size();
  const float* ugrads = grads;
  std::vector<float> grad_sum;
  if (plan.has_dupes) {
    grad_sum.assign(n * size_t{d}, 0.0f);
    for (size_t i = 0; i < keys.size(); ++i) {
      simd::AccumulateFloats(&grad_sum[plan.slot_of[i] * size_t{d}],
                             grads + i * size_t{d}, d);
    }
    ugrads = grad_sum.data();
  }
  std::vector<float> value(n * size_t{d});
  const BatchResult got = MultiGet(plan.unique, value.data());
  std::vector<Key> ok_keys;
  std::vector<size_t> ok_slot;
  for (size_t u = 0; u < n; ++u) {
    if (got.codes[u] != Status::Code::kOk) continue;
    simd::SubScaled(&value[u * size_t{d}], ugrads + u * size_t{d}, lr, d);
    ok_keys.push_back(plan.unique[u]);
    ok_slot.push_back(u);
  }
  std::vector<float> put_values(ok_keys.size() * size_t{d});
  for (size_t j = 0; j < ok_keys.size(); ++j) {
    simd::CopyFloats(&put_values[j * size_t{d}], &value[ok_slot[j] * size_t{d}],
                     d);
  }
  const BatchResult put = MultiPut(ok_keys, put_values.data());
  std::vector<Status::Code> ucodes = got.codes;
  for (size_t j = 0; j < ok_keys.size(); ++j) {
    if (put.codes[j] != Status::Code::kOk) ucodes[ok_slot[j]] = put.codes[j];
  }
  BatchResult result(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    result.Record(i, Status::FromCode(ucodes[plan.slot_of[i]]));
  }
  return result;
}

// Default scrape: every backend at least exposes its storage-I/O counters,
// network-path counters, replication counters, and device byte totals —
// zeros where a subsystem does not exist, so the family set is stable
// across engines and scrapers never see families appear mid-run.
void KvBackend::CollectMetrics(obs::MetricsSink* sink) const {
  const BackendIoStats io = io_stats();
  sink->AddCounter("mlkv_io_disk_record_reads_total",
                   "Record fetches served from disk", io.disk_record_reads);
  sink->AddCounter("mlkv_io_pages_flushed_total",
                   "Log pages flushed to disk", io.pages_flushed);
  sink->AddCounter("mlkv_io_pages_evicted_total",
                   "Log pages evicted from memory", io.pages_evicted);
  sink->AddCounter("mlkv_io_async_reads_submitted_total",
                   "Pending-read fetches handed to the AsyncIoEngine",
                   io.async_reads_submitted);
  sink->AddCounter("mlkv_io_async_reads_completed_total",
                   "Pending-read fetches that landed",
                   io.async_reads_completed);
  sink->AddCounter("mlkv_io_async_reads_refetched_total",
                   "Pending reads that fell back to a synchronous re-read",
                   io.async_reads_refetched);
  sink->AddCounter("mlkv_io_async_writes_submitted_total",
                   "Flush-wave pages submitted to the AsyncIoEngine",
                   io.async_writes_submitted);
  sink->AddCounter("mlkv_io_async_writes_completed_total",
                   "Flush-wave pages completed", io.async_writes_completed);
  sink->AddCounter("mlkv_io_fsyncs_total", "fsyncs issued (flush + commit)",
                   io.fsyncs);
  sink->AddCounter("mlkv_io_group_commits_total",
                   "Group commits batching more than one committer",
                   io.group_commits);
  sink->AddCounter("mlkv_io_device_read_bytes_total",
                   "Bytes read from storage devices", device_bytes_read());
  sink->AddCounter("mlkv_io_device_written_bytes_total",
                   "Bytes written to storage devices", device_bytes_written());
  sink->AddCounter("mlkv_net_rpc_requests_total",
                   "RPCs issued to remote KvServers", io.remote_requests);
  sink->AddCounter("mlkv_net_rpc_retries_total",
                   "Fresh-socket retries after a dead pooled connection",
                   io.remote_retries);
  sink->AddCounter("mlkv_replication_records_total",
                   "Replicated update records applied",
                   io.replicated_records);
  sink->AddGauge("mlkv_replication_lag_records",
                 "Update records the replica has not yet applied",
                 static_cast<double>(io.replica_lag_records));
}

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMlkv: return "MLKV";
    case BackendKind::kFaster: return "FASTER";
    case BackendKind::kLsm: return "RocksDB-like";
    case BackendKind::kBtree: return "WiredTiger-like";
    case BackendKind::kInMemory: return "InMemory";
    case BackendKind::kRemote: return "Remote";
    case BackendKind::kCluster: return "Cluster";
  }
  return "?";
}

Status MakeBackend(BackendKind kind, const BackendConfig& config,
                   std::unique_ptr<KvBackend>* out) {
  if (kind == BackendKind::kRemote) {
    // No local files: storage lives behind the KvServer at remote_addr.
    net::RemoteBackendOptions o;
    o.addr = config.remote_addr;
    o.pool_size = config.remote_pool_size;
    o.max_keys_per_rpc = config.remote_max_keys_per_rpc;
    return net::RemoteBackend::Connect(o, out);
  }
  if (kind == BackendKind::kCluster) {
    // No local files either: keys scatter across the KvServers named in
    // cluster_addrs (seed list; the authoritative map comes from the
    // servers' kClusterMap when they run in cluster mode).
    cluster::ClusterBackendOptions o;
    MLKV_RETURN_NOT_OK(
        net::ParseEndpointList(config.cluster_addrs, &o.endpoints));
    o.pool_size = config.remote_pool_size;
    o.max_keys_per_rpc = config.remote_max_keys_per_rpc;
    o.hedge_us = config.cluster_hedge_us;
    o.hot_replicate_top_k = config.cluster_hot_replicate_top_k;
    return cluster::ClusterBackend::Connect(o, out);
  }
  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  if (ec) return Status::IOError("create dir: " + ec.message());
  switch (kind) {
    case BackendKind::kMlkv: return MlkvBackend::Make(config, out);
    case BackendKind::kFaster: return FasterBackend::Make(config, out);
    case BackendKind::kLsm: return LsmBackend::Make(config, out);
    case BackendKind::kBtree: return BtreeBackend::Make(config, out);
    case BackendKind::kInMemory: return InMemoryBackend::Make(config, out);
    case BackendKind::kRemote: break;   // handled above
    case BackendKind::kCluster: break;  // handled above
  }
  return Status::InvalidArgument("unknown backend kind");
}

Status MakeCachingBackend(std::unique_ptr<KvBackend> inner, size_t capacity,
                          std::unique_ptr<KvBackend>* out) {
  return MakeCachingBackend(std::move(inner), capacity, CacheAdmission::kLru,
                            out);
}

Status MakeCachingBackend(std::unique_ptr<KvBackend> inner, size_t capacity,
                          CacheAdmission admission,
                          std::unique_ptr<KvBackend>* out) {
  if (inner == nullptr) {
    return Status::InvalidArgument("caching backend needs an inner backend");
  }
  if (capacity == 0) {
    return Status::InvalidArgument("caching backend capacity must be > 0");
  }
  out->reset(new CachingBackend(std::move(inner), capacity, admission));
  return Status::OK();
}

}  // namespace mlkv
