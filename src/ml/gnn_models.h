// GNN models for node classification (paper Table II: GraphSage and GAT).
//
// One message-passing layer over sampled neighbors, then a linear
// classifier. Node features ARE the stored embeddings (trainable), so the
// backward pass produces gradients for both the dense weights and every
// fetched embedding — exactly the storage traffic pattern the paper's GNN
// experiments generate (fetch node + neighbor embeddings, push back
// gradients).
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "ml/layers.h"
#include "ml/tensor.h"

namespace mlkv {

// A sampled mini-batch: `self` holds the target nodes' embeddings (B x dim),
// `neighbors` holds `fanout` sampled neighbor embeddings per node
// (B*fanout x dim). Gradients come back in the same layout.
struct GnnBatch {
  Tensor self;
  Tensor neighbors;
  size_t fanout = 0;
  std::vector<int> labels;
};

class GnnModel {
 public:
  virtual ~GnnModel() = default;
  virtual const char* name() const = 0;
  // Returns class logits [B, num_classes].
  virtual const Tensor& Forward(const GnnBatch& batch) = 0;
  // grad_logits -> gradients w.r.t. self and neighbor embeddings.
  virtual void Backward(const Tensor& grad_logits, Tensor* grad_self,
                        Tensor* grad_neighbors) = 0;
  virtual void Step() = 0;
};

// GraphSage (Hamilton et al., NeurIPS'17), mean aggregator:
//   h_v = ReLU(W * [x_v ; mean_{u in N(v)} x_u]),   logits = U * h_v.
class GraphSageModel : public GnnModel {
 public:
  GraphSageModel(uint32_t dim, size_t hidden, int num_classes,
                 uint64_t seed = 1, float lr = 0.05f)
      : dim_(dim), opt_(lr) {
    Rng rng(seed + 31);
    l1_ = Linear(2 * dim, hidden, /*relu=*/true, &rng);
    out_ = Linear(hidden, num_classes, /*relu=*/false, &rng);
  }

  const char* name() const override { return "GraphSage"; }

  const Tensor& Forward(const GnnBatch& batch) override {
    const size_t B = batch.self.rows();
    fanout_ = batch.fanout;
    concat_.Resize(B, 2 * dim_);
    for (size_t b = 0; b < B; ++b) {
      float* c = concat_.row(b);
      const float* s = batch.self.row(b);
      for (uint32_t i = 0; i < dim_; ++i) c[i] = s[i];
      // Mean over this node's neighbor block.
      for (uint32_t i = 0; i < dim_; ++i) c[dim_ + i] = 0;
      for (size_t n = 0; n < fanout_; ++n) {
        const float* nb = batch.neighbors.row(b * fanout_ + n);
        for (uint32_t i = 0; i < dim_; ++i) c[dim_ + i] += nb[i];
      }
      const float inv = fanout_ ? 1.0f / static_cast<float>(fanout_) : 0.0f;
      for (uint32_t i = 0; i < dim_; ++i) c[dim_ + i] *= inv;
    }
    return out_.Forward(l1_.Forward(concat_));
  }

  void Backward(const Tensor& grad_logits, Tensor* grad_self,
                Tensor* grad_neighbors) override {
    const Tensor& gconcat = l1_.Backward(out_.Backward(grad_logits));
    const size_t B = gconcat.rows();
    grad_self->Resize(B, dim_);
    grad_neighbors->Resize(B * fanout_, dim_);
    const float inv = fanout_ ? 1.0f / static_cast<float>(fanout_) : 0.0f;
    for (size_t b = 0; b < B; ++b) {
      const float* g = gconcat.row(b);
      float* gs = grad_self->row(b);
      for (uint32_t i = 0; i < dim_; ++i) gs[i] = g[i];
      for (size_t n = 0; n < fanout_; ++n) {
        float* gn = grad_neighbors->row(b * fanout_ + n);
        for (uint32_t i = 0; i < dim_; ++i) gn[i] = g[dim_ + i] * inv;
      }
    }
  }

  void Step() override {
    l1_.Step(&opt_);
    out_.Step(&opt_);
  }

 private:
  uint32_t dim_;
  size_t fanout_ = 0;
  Adagrad opt_;
  Linear l1_, out_;
  Tensor concat_;
};

// GAT (Velickovic et al., ICLR'18), single head:
//   e_{vu} = LeakyReLU(a_s . (W x_v) + a_n . (W x_u))
//   alpha  = softmax_u(e_{vu});  h_v = ReLU(sum_u alpha_{vu} (W x_u))
//   logits = U * [h_v ; W x_v]
// Backward propagates through the attention weights to both the projected
// self and neighbor embeddings.
class GatModel : public GnnModel {
 public:
  GatModel(uint32_t dim, size_t hidden, int num_classes, uint64_t seed = 1,
           float lr = 0.05f)
      : dim_(dim), hidden_(hidden), opt_(lr) {
    Rng rng(seed + 47);
    w_.Resize(dim, hidden);
    w_.InitGlorot(&rng);
    gw_.Resize(dim, hidden);
    a_self_.Resize(1, hidden);
    a_self_.InitGlorot(&rng);
    ga_self_.Resize(1, hidden);
    a_nbr_.Resize(1, hidden);
    a_nbr_.InitGlorot(&rng);
    ga_nbr_.Resize(1, hidden);
    out_ = Linear(2 * hidden, num_classes, /*relu=*/false, &rng);
  }

  const char* name() const override { return "GAT"; }

  const Tensor& Forward(const GnnBatch& batch) override {
    const size_t B = batch.self.rows();
    fanout_ = batch.fanout;
    self_in_ = batch.self;
    nbr_in_ = batch.neighbors;
    MatMul(batch.self, w_, &ws_);           // [B, H]
    MatMul(batch.neighbors, w_, &wn_);      // [B*F, H]
    // Attention logits and softmax per node.
    alpha_.Resize(B, fanout_);
    for (size_t b = 0; b < B; ++b) {
      const float* s = ws_.row(b);
      float self_term = 0;
      for (size_t i = 0; i < hidden_; ++i) self_term += s[i] * a_self_.at(0, i);
      float maxe = -1e30f;
      std::vector<float> e(fanout_);
      for (size_t n = 0; n < fanout_; ++n) {
        const float* u = wn_.row(b * fanout_ + n);
        float nbr_term = 0;
        for (size_t i = 0; i < hidden_; ++i) nbr_term += u[i] * a_nbr_.at(0, i);
        float v = self_term + nbr_term;
        e[n] = v > 0 ? v : 0.2f * v;  // LeakyReLU(0.2)
        maxe = std::max(maxe, e[n]);
      }
      float z = 0;
      for (size_t n = 0; n < fanout_; ++n) {
        alpha_.at(b, n) = std::exp(e[n] - maxe);
        z += alpha_.at(b, n);
      }
      for (size_t n = 0; n < fanout_; ++n) alpha_.at(b, n) /= z;
      e_raw_ = e;  // keep last for LeakyReLU grad; per-b stored below
      e_all_.resize(B * fanout_);
      for (size_t n = 0; n < fanout_; ++n) e_all_[b * fanout_ + n] = e[n];
    }
    // Aggregate h_v = ReLU(sum alpha * wn) and concat with ws.
    h_.Resize(B, hidden_);
    for (size_t b = 0; b < B; ++b) {
      float* h = h_.row(b);
      for (size_t n = 0; n < fanout_; ++n) {
        const float a = alpha_.at(b, n);
        const float* u = wn_.row(b * fanout_ + n);
        for (size_t i = 0; i < hidden_; ++i) h[i] += a * u[i];
      }
    }
    ReluInPlace(&h_);
    concat_.Resize(B, 2 * hidden_);
    for (size_t b = 0; b < B; ++b) {
      float* c = concat_.row(b);
      const float* h = h_.row(b);
      const float* s = ws_.row(b);
      for (size_t i = 0; i < hidden_; ++i) {
        c[i] = h[i];
        c[hidden_ + i] = s[i];
      }
    }
    return out_.Forward(concat_);
  }

  void Backward(const Tensor& grad_logits, Tensor* grad_self,
                Tensor* grad_neighbors) override {
    const Tensor& gconcat = out_.Backward(grad_logits);
    const size_t B = gconcat.rows();
    Tensor gh(B, hidden_), gws(B, hidden_);
    for (size_t b = 0; b < B; ++b) {
      const float* g = gconcat.row(b);
      float* a = gh.row(b);
      float* s = gws.row(b);
      for (size_t i = 0; i < hidden_; ++i) {
        a[i] = g[i];
        s[i] = g[hidden_ + i];
      }
    }
    ReluBackward(h_, &gh);

    Tensor gwn(B * fanout_, hidden_);
    // Backprop through attention-weighted aggregation and the softmax.
    for (size_t b = 0; b < B; ++b) {
      const float* ghb = gh.row(b);
      // dL/dalpha_n = gh . wn_n ; softmax jacobian -> dL/de_n.
      std::vector<float> galpha(fanout_), ge(fanout_);
      float dot_sum = 0;
      for (size_t n = 0; n < fanout_; ++n) {
        const float* u = wn_.row(b * fanout_ + n);
        float d = 0;
        for (size_t i = 0; i < hidden_; ++i) d += ghb[i] * u[i];
        galpha[n] = d;
        dot_sum += d * alpha_.at(b, n);
      }
      float ge_sum = 0;
      for (size_t n = 0; n < fanout_; ++n) {
        ge[n] = alpha_.at(b, n) * (galpha[n] - dot_sum);
        // LeakyReLU backward.
        if (e_all_[b * fanout_ + n] < 0) ge[n] *= 0.2f;
        ge_sum += ge[n];
      }
      // e_n = a_s.ws_b + a_n.wn_n (pre-LeakyReLU): accumulate grads.
      const float* s = ws_.row(b);
      float* gs = gws.row(b);
      for (size_t i = 0; i < hidden_; ++i) {
        ga_self_.at(0, i) += ge_sum * s[i];
        gs[i] += ge_sum * a_self_.at(0, i);
      }
      for (size_t n = 0; n < fanout_; ++n) {
        const float a = alpha_.at(b, n);
        const float* u = wn_.row(b * fanout_ + n);
        float* gu = gwn.row(b * fanout_ + n);
        for (size_t i = 0; i < hidden_; ++i) {
          // Aggregation term + attention term.
          gu[i] += a * ghb[i] + ge[n] * a_nbr_.at(0, i);
          ga_nbr_.at(0, i) += ge[n] * u[i];
        }
      }
    }
    // Through the shared projection W: x grads and W grads.
    MatMulGradW(self_in_, gws, &gw_);
    MatMulGradW(nbr_in_, gwn, &gw_);
    MatMulGradX(gws, w_, grad_self);
    MatMulGradX(gwn, w_, grad_neighbors);
  }

  void Step() override {
    opt_.Apply(&w_, gw_);
    opt_.Apply(&a_self_, ga_self_);
    opt_.Apply(&a_nbr_, ga_nbr_);
    gw_.Zero();
    ga_self_.Zero();
    ga_nbr_.Zero();
    out_.Step(&opt_);
  }

 private:
  uint32_t dim_;
  size_t hidden_;
  size_t fanout_ = 0;
  Adagrad opt_;
  Tensor w_, gw_, a_self_, ga_self_, a_nbr_, ga_nbr_;
  Linear out_;
  Tensor ws_, wn_, alpha_, h_, concat_;
  Tensor self_in_, nbr_in_;
  std::vector<float> e_raw_, e_all_;
};

// Softmax cross-entropy over class logits; returns mean loss and fills
// dL/dlogits. `labels[i]` in [0, C).
inline float SoftmaxCrossEntropy(const Tensor& logits,
                                 const std::vector<int>& labels,
                                 Tensor* grad) {
  const size_t B = logits.rows(), C = logits.cols();
  grad->Resize(B, C);
  float loss = 0;
  for (size_t b = 0; b < B; ++b) {
    const float* z = logits.row(b);
    float maxz = z[0];
    for (size_t c = 1; c < C; ++c) maxz = std::max(maxz, z[c]);
    float sum = 0;
    for (size_t c = 0; c < C; ++c) sum += std::exp(z[c] - maxz);
    const float logsum = std::log(sum) + maxz;
    loss += logsum - z[labels[b]];
    float* g = grad->row(b);
    for (size_t c = 0; c < C; ++c) {
      const float p = std::exp(z[c] - logsum);
      g[c] = (p - (static_cast<int>(c) == labels[b] ? 1.0f : 0.0f)) /
             static_cast<float>(B);
    }
  }
  return loss / static_cast<float>(B);
}

}  // namespace mlkv
