// Knowledge-graph embedding models (paper Table II: DistMult and ComplEx).
//
// Both are bilinear scorers over (head, relation, tail) embeddings; their
// gradients are closed-form elementwise products, so no autograd machinery
// is needed. The trainer stores entity embeddings in the KV store and
// relation embeddings densely (relations are few), trains with negative
// sampling + BCE, and evaluates Hits@k.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace mlkv {

// DistMult (Yang et al., ICLR'15): score(h,r,t) = sum_i h_i * r_i * t_i.
struct DistMult {
  static constexpr const char* kName = "DistMult";

  static float Score(const float* h, const float* r, const float* t,
                     uint32_t dim) {
    float s = 0;
    for (uint32_t i = 0; i < dim; ++i) s += h[i] * r[i] * t[i];
    return s;
  }

  // dScore/dh = r*t, /dr = h*t, /dt = h*r; scaled by `g` (dL/dScore).
  static void Grad(const float* h, const float* r, const float* t,
                   uint32_t dim, float g, float* gh, float* gr, float* gt) {
    for (uint32_t i = 0; i < dim; ++i) {
      gh[i] += g * r[i] * t[i];
      gr[i] += g * h[i] * t[i];
      gt[i] += g * h[i] * r[i];
    }
  }
};

// ComplEx (Trouillon et al., ICML'16): embeddings are complex vectors of
// dimension dim/2 stored as [real | imag];
//   score = Re(<h, r, conj(t)>)
//         = sum( hr*rr*tr + hi*ri*tr + hr*ri*ti - hi*rr*ti )
struct ComplEx {
  static constexpr const char* kName = "ComplEx";

  static float Score(const float* h, const float* r, const float* t,
                     uint32_t dim) {
    const uint32_t d = dim / 2;
    const float* hr = h;
    const float* hi = h + d;
    const float* rr = r;
    const float* ri = r + d;
    const float* tr = t;
    const float* ti = t + d;
    float s = 0;
    for (uint32_t i = 0; i < d; ++i) {
      s += hr[i] * rr[i] * tr[i] + hi[i] * ri[i] * tr[i] +
           hr[i] * ri[i] * ti[i] - hi[i] * rr[i] * ti[i];
    }
    return s;
  }

  static void Grad(const float* h, const float* r, const float* t,
                   uint32_t dim, float g, float* gh, float* gr, float* gt) {
    const uint32_t d = dim / 2;
    const float* hr = h;
    const float* hi = h + d;
    const float* rr = r;
    const float* ri = r + d;
    const float* tr = t;
    const float* ti = t + d;
    for (uint32_t i = 0; i < d; ++i) {
      gh[i] += g * (rr[i] * tr[i] + ri[i] * ti[i]);
      gh[d + i] += g * (ri[i] * tr[i] - rr[i] * ti[i]);
      gr[i] += g * (hr[i] * tr[i] - hi[i] * ti[i]);
      gr[d + i] += g * (hi[i] * tr[i] + hr[i] * ti[i]);
      gt[i] += g * (hr[i] * rr[i] + hi[i] * ri[i]);
      gt[d + i] += g * (hr[i] * ri[i] - hi[i] * rr[i]);
    }
  }
};

enum class KgeModelKind { kDistMult, kComplEx };

inline float KgeScore(KgeModelKind kind, const float* h, const float* r,
                      const float* t, uint32_t dim) {
  return kind == KgeModelKind::kDistMult ? DistMult::Score(h, r, t, dim)
                                         : ComplEx::Score(h, r, t, dim);
}

inline void KgeGrad(KgeModelKind kind, const float* h, const float* r,
                    const float* t, uint32_t dim, float g, float* gh,
                    float* gr, float* gt) {
  if (kind == KgeModelKind::kDistMult) {
    DistMult::Grad(h, r, t, dim, g, gh, gr, gt);
  } else {
    ComplEx::Grad(h, r, t, dim, g, gh, gr, gt);
  }
}

inline const char* KgeModelName(KgeModelKind kind) {
  return kind == KgeModelKind::kDistMult ? DistMult::kName : ComplEx::kName;
}

}  // namespace mlkv
