// Evaluation metrics reported in the paper: AUC for CTR (Fig. 2/6/8/11b),
// Hits@k for KGE link prediction (Fig. 6/8), accuracy for GNN node
// classification (Fig. 6).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mlkv {

// Area under the ROC curve via the rank-sum (Mann-Whitney U) formulation.
class AucAccumulator {
 public:
  void Add(float score, bool positive) {
    scores_.push_back(score);
    labels_.push_back(positive);
  }

  void Clear() {
    scores_.clear();
    labels_.clear();
  }

  size_t count() const { return scores_.size(); }

  // Returns 0.5 when degenerate (single class).
  double Compute() const {
    const size_t n = scores_.size();
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return scores_[a] < scores_[b];
    });
    // Average ranks over ties.
    std::vector<double> rank(n);
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && scores_[order[j + 1]] == scores_[order[i]]) ++j;
      const double avg = (static_cast<double>(i) + static_cast<double>(j)) /
                             2.0 + 1.0;
      for (size_t k = i; k <= j; ++k) rank[order[k]] = avg;
      i = j + 1;
    }
    double pos_rank_sum = 0;
    uint64_t pos = 0;
    for (size_t k = 0; k < n; ++k) {
      if (labels_[k]) {
        pos_rank_sum += rank[k];
        ++pos;
      }
    }
    const uint64_t neg = n - pos;
    if (pos == 0 || neg == 0) return 0.5;
    return (pos_rank_sum - static_cast<double>(pos) *
                               (static_cast<double>(pos) + 1.0) / 2.0) /
           (static_cast<double>(pos) * static_cast<double>(neg));
  }

 private:
  std::vector<float> scores_;
  std::vector<bool> labels_;
};

// Hits@k for link prediction: fraction of test triples whose true entity
// ranks in the top k against sampled negatives.
class HitsAtK {
 public:
  explicit HitsAtK(int k) : k_(k) {}

  // `true_score` vs scores of the corrupted candidates.
  void Add(float true_score, const std::vector<float>& negative_scores) {
    int rank = 1;
    for (const float s : negative_scores) {
      if (s >= true_score) ++rank;
    }
    ++total_;
    if (rank <= k_) ++hits_;
  }

  void Clear() {
    hits_ = 0;
    total_ = 0;
  }

  double Compute() const {
    return total_ ? static_cast<double>(hits_) / static_cast<double>(total_)
                  : 0.0;
  }
  uint64_t total() const { return total_; }

 private:
  int k_;
  uint64_t hits_ = 0;
  uint64_t total_ = 0;
};

class AccuracyAccumulator {
 public:
  void Add(int predicted, int actual) {
    ++total_;
    if (predicted == actual) ++correct_;
  }
  void Clear() {
    correct_ = 0;
    total_ = 0;
  }
  double Compute() const {
    return total_ ? static_cast<double>(correct_) /
                        static_cast<double>(total_)
                  : 0.0;
  }
  uint64_t total() const { return total_; }

 private:
  uint64_t correct_ = 0;
  uint64_t total_ = 0;
};

}  // namespace mlkv
