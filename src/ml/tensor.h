// Minimal dense 2-D float tensor for the model substrate. The paper's
// systems hand the neural-network math to PyTorch on a GPU; here the NN is
// CPU-side (see DESIGN.md substitution table) and deliberately simple —
// correctness and a realistic compute/IO ratio matter, peak FLOPs do not.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace mlkv {

class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  void Zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  // Glorot-uniform initialization.
  void InitGlorot(Rng* rng) {
    const float limit = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
    for (float& v : data_) {
      v = static_cast<float>(rng->NextDouble() * 2.0 - 1.0) * limit;
    }
  }

  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  size_t rows_, cols_;
  std::vector<float> data_;
};

// out[B,N] = x[B,M] * w[M,N]
inline void MatMul(const Tensor& x, const Tensor& w, Tensor* out) {
  assert(x.cols() == w.rows());
  out->Resize(x.rows(), w.cols());
  const size_t B = x.rows(), M = x.cols(), N = w.cols();
  for (size_t b = 0; b < B; ++b) {
    const float* xr = x.row(b);
    float* or_ = out->row(b);
    for (size_t m = 0; m < M; ++m) {
      const float xv = xr[m];
      if (xv == 0.0f) continue;
      const float* wr = w.row(m);
      for (size_t n = 0; n < N; ++n) or_[n] += xv * wr[n];
    }
  }
}

// out[B,M] = g[B,N] * w[M,N]^T   (gradient w.r.t. x)
inline void MatMulGradX(const Tensor& g, const Tensor& w, Tensor* out) {
  assert(g.cols() == w.cols());
  out->Resize(g.rows(), w.rows());
  const size_t B = g.rows(), M = w.rows(), N = w.cols();
  for (size_t b = 0; b < B; ++b) {
    const float* gr = g.row(b);
    float* or_ = out->row(b);
    for (size_t m = 0; m < M; ++m) {
      const float* wr = w.row(m);
      float acc = 0.0f;
      for (size_t n = 0; n < N; ++n) acc += gr[n] * wr[n];
      or_[m] = acc;
    }
  }
}

// out[M,N] += x[B,M]^T * g[B,N]  (gradient w.r.t. w)
inline void MatMulGradW(const Tensor& x, const Tensor& g, Tensor* out) {
  assert(x.rows() == g.rows());
  if (out->rows() != x.cols() || out->cols() != g.cols()) {
    out->Resize(x.cols(), g.cols());
  }
  const size_t B = x.rows(), M = x.cols(), N = g.cols();
  for (size_t b = 0; b < B; ++b) {
    const float* xr = x.row(b);
    const float* gr = g.row(b);
    for (size_t m = 0; m < M; ++m) {
      const float xv = xr[m];
      if (xv == 0.0f) continue;
      float* or_ = out->row(m);
      for (size_t n = 0; n < N; ++n) or_[n] += xv * gr[n];
    }
  }
}

inline float Sigmoid(float x) {
  // Numerically stable for large |x|.
  if (x >= 0) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

inline void ReluInPlace(Tensor* t) {
  float* d = t->data();
  for (size_t i = 0; i < t->size(); ++i) {
    if (d[i] < 0) d[i] = 0;
  }
}

// grad *= 1[pre > 0], where `pre` is the pre-activation tensor.
inline void ReluBackward(const Tensor& post, Tensor* grad) {
  assert(post.size() == grad->size());
  const float* p = post.data();
  float* g = grad->data();
  for (size_t i = 0; i < grad->size(); ++i) {
    if (p[i] <= 0) g[i] = 0;
  }
}

}  // namespace mlkv
