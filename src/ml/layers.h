// Trainable dense layers with explicit forward/backward, plus the Adagrad
// and SGD optimizers used for the dense (non-embedding) parameters.
#pragma once

#include <cmath>
#include <unordered_map>
#include <vector>

#include "ml/tensor.h"

namespace mlkv {

// Per-parameter Adagrad state. Embedding gradients are applied through the
// KV store (paper Fig. 3 line 17-18: Put(keys, values + opt(gradients)));
// dense parameters use this class directly.
class Adagrad {
 public:
  explicit Adagrad(float lr = 0.01f, float eps = 1e-8f) : lr_(lr), eps_(eps) {}

  // State is keyed by parameter tensor identity, so one optimizer instance
  // can serve every parameter of a model.
  void Apply(Tensor* param, const Tensor& grad) {
    std::vector<float>& accum = accum_[param];
    if (accum.size() != param->size()) {
      accum.assign(param->size(), 0.0f);
    }
    float* p = param->data();
    const float* g = grad.data();
    for (size_t i = 0; i < param->size(); ++i) {
      accum[i] += g[i] * g[i];
      p[i] -= lr_ * g[i] / (std::sqrt(accum[i]) + eps_);
    }
  }

  float lr() const { return lr_; }

 private:
  float lr_, eps_;
  std::unordered_map<const Tensor*, std::vector<float>> accum_;
};

class Sgd {
 public:
  explicit Sgd(float lr = 0.01f) : lr_(lr) {}
  void Apply(Tensor* param, const Tensor& grad) {
    float* p = param->data();
    const float* g = grad.data();
    for (size_t i = 0; i < param->size(); ++i) p[i] -= lr_ * g[i];
  }
  float lr() const { return lr_; }

 private:
  float lr_;
};

// Fully connected layer: y = x * W + b, optional ReLU.
class Linear {
 public:
  Linear() = default;
  Linear(size_t in, size_t out, bool relu, Rng* rng)
      : relu_(relu) {
    w_.Resize(in, out);
    w_.InitGlorot(rng);
    b_.Resize(1, out);
  }

  const Tensor& Forward(const Tensor& x) {
    x_ = x;  // cache for backward
    MatMul(x, w_, &y_);
    for (size_t r = 0; r < y_.rows(); ++r) {
      float* yr = y_.row(r);
      for (size_t c = 0; c < y_.cols(); ++c) yr[c] += b_.at(0, c);
    }
    if (relu_) ReluInPlace(&y_);
    return y_;
  }

  // `grad_y` is dL/dy; returns dL/dx and accumulates parameter grads.
  const Tensor& Backward(const Tensor& grad_y) {
    gy_ = grad_y;
    if (relu_) ReluBackward(y_, &gy_);
    if (gw_.size() == 0) gw_.Resize(w_.rows(), w_.cols());
    if (gb_.size() == 0) gb_.Resize(1, b_.cols());
    MatMulGradW(x_, gy_, &gw_);
    for (size_t r = 0; r < gy_.rows(); ++r) {
      const float* gr = gy_.row(r);
      for (size_t c = 0; c < gy_.cols(); ++c) gb_.at(0, c) += gr[c];
    }
    MatMulGradX(gy_, w_, &gx_);
    return gx_;
  }

  void Step(Adagrad* opt) {
    opt->Apply(&w_, gw_);
    // Bias shares the optimizer state domain poorly; use plain SGD scaled
    // by the same learning rate (standard practice for tiny models).
    float* b = b_.data();
    const float* g = gb_.data();
    for (size_t i = 0; i < b_.size(); ++i) b[i] -= opt->lr() * g[i];
    gw_.Zero();
    gb_.Zero();
  }

  Tensor* mutable_weights() { return &w_; }

 private:
  bool relu_ = false;
  Tensor w_, b_;
  Tensor x_, y_;            // forward caches
  Tensor gy_, gx_, gw_, gb_;  // backward scratch
};

// Binary cross-entropy with logits; returns mean loss, fills dL/dlogit.
inline float BceWithLogits(const Tensor& logits,
                           const std::vector<float>& labels, Tensor* grad) {
  const size_t n = logits.rows();
  grad->Resize(n, 1);
  float loss = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float z = logits.at(i, 0);
    const float y = labels[i];
    const float p = Sigmoid(z);
    // Stable: log(1+e^z) - y*z
    const float softplus = z > 20 ? z : std::log1p(std::exp(z));
    loss += softplus - y * z;
    grad->at(i, 0) = (p - y) / static_cast<float>(n);
  }
  return loss / static_cast<float>(n);
}

}  // namespace mlkv
