// CTR prediction models (paper Table II: FFNN and DCN on Criteo datasets).
//
// Both take a batch of concatenated [embeddings | dense features] and emit a
// click logit. Backward returns the gradient w.r.t. the embedding slice so
// the trainer can push updates back into the KV store (Fig. 3 lines 14-18).
#pragma once

#include <memory>
#include <vector>

#include "ml/layers.h"
#include "ml/tensor.h"

namespace mlkv {

// Common interface so the trainer is model-agnostic.
class CtrModel {
 public:
  virtual ~CtrModel() = default;
  virtual const char* name() const = 0;
  // x: [B, m*dim + dense]; returns logits [B, 1].
  virtual const Tensor& Forward(const Tensor& x) = 0;
  // grad_logits: [B, 1]; returns dL/dx [B, m*dim + dense].
  virtual const Tensor& Backward(const Tensor& grad_logits) = 0;
  virtual void Step() = 0;
};

// Fully connected feed-forward network: input -> 64 -> 32 -> 1.
class FfnnModel : public CtrModel {
 public:
  FfnnModel(size_t input_dim, uint64_t seed = 1, float lr = 0.05f)
      : opt_(lr) {
    Rng rng(seed);
    l1_ = Linear(input_dim, 64, /*relu=*/true, &rng);
    l2_ = Linear(64, 32, /*relu=*/true, &rng);
    l3_ = Linear(32, 1, /*relu=*/false, &rng);
  }

  const char* name() const override { return "FFNN"; }

  const Tensor& Forward(const Tensor& x) override {
    return l3_.Forward(l2_.Forward(l1_.Forward(x)));
  }

  const Tensor& Backward(const Tensor& grad_logits) override {
    return l1_.Backward(l2_.Backward(l3_.Backward(grad_logits)));
  }

  void Step() override {
    l1_.Step(&opt_);
    l2_.Step(&opt_);
    l3_.Step(&opt_);
  }

 private:
  Adagrad opt_;
  Linear l1_, l2_, l3_;
};

// Deep & Cross Network (Wang et al., ADKDD'17): a cross network
// x_{k+1} = x_0 * (x_k . w_k) + b_k + x_k running in parallel with a deep
// tower; their concatenation feeds the output layer.
class DcnModel : public CtrModel {
 public:
  DcnModel(size_t input_dim, int cross_layers = 2, uint64_t seed = 1,
           float lr = 0.05f)
      : input_dim_(input_dim), num_cross_(cross_layers), opt_(lr) {
    Rng rng(seed + 17);
    cross_w_.resize(num_cross_);
    cross_b_.resize(num_cross_);
    cross_gw_.resize(num_cross_);
    cross_gb_.resize(num_cross_);
    for (int k = 0; k < num_cross_; ++k) {
      cross_w_[k].Resize(1, input_dim);
      cross_w_[k].InitGlorot(&rng);
      cross_b_[k].Resize(1, input_dim);
      cross_gw_[k].Resize(1, input_dim);
      cross_gb_[k].Resize(1, input_dim);
    }
    deep1_ = Linear(input_dim, 64, true, &rng);
    deep2_ = Linear(64, 32, true, &rng);
    out_ = Linear(input_dim + 32, 1, false, &rng);
  }

  const char* name() const override { return "DCN"; }

  const Tensor& Forward(const Tensor& x) override {
    x0_ = x;
    // Cross tower.
    xs_.assign(1, x);  // xs_[k] is the input of cross layer k
    for (int k = 0; k < num_cross_; ++k) {
      const Tensor& xk = xs_.back();
      Tensor next(x.rows(), input_dim_);
      for (size_t b = 0; b < x.rows(); ++b) {
        const float* x0r = x0_.row(b);
        const float* xkr = xk.row(b);
        float dot = 0;
        for (size_t i = 0; i < input_dim_; ++i) {
          dot += xkr[i] * cross_w_[k].at(0, i);
        }
        float* nr = next.row(b);
        for (size_t i = 0; i < input_dim_; ++i) {
          nr[i] = x0r[i] * dot + cross_b_[k].at(0, i) + xkr[i];
        }
      }
      xs_.push_back(std::move(next));
    }
    // Deep tower.
    const Tensor& deep_out = deep2_.Forward(deep1_.Forward(x));
    // Concatenate [cross | deep].
    concat_.Resize(x.rows(), input_dim_ + deep_out.cols());
    for (size_t b = 0; b < x.rows(); ++b) {
      float* cr = concat_.row(b);
      const float* xr = xs_.back().row(b);
      for (size_t i = 0; i < input_dim_; ++i) cr[i] = xr[i];
      const float* dr = deep_out.row(b);
      for (size_t i = 0; i < deep_out.cols(); ++i) cr[input_dim_ + i] = dr[i];
    }
    return out_.Forward(concat_);
  }

  const Tensor& Backward(const Tensor& grad_logits) override {
    const Tensor& gconcat = out_.Backward(grad_logits);
    const size_t B = gconcat.rows();
    // Split gradient into cross and deep parts.
    Tensor gcross(B, input_dim_);
    Tensor gdeep(B, gconcat.cols() - input_dim_);
    for (size_t b = 0; b < B; ++b) {
      const float* gr = gconcat.row(b);
      float* gc = gcross.row(b);
      for (size_t i = 0; i < input_dim_; ++i) gc[i] = gr[i];
      float* gd = gdeep.row(b);
      for (size_t i = 0; i < gdeep.cols(); ++i) gd[i] = gr[input_dim_ + i];
    }
    // Deep tower backward -> gradient w.r.t. x.
    const Tensor& gx_deep = deep1_.Backward(deep2_.Backward(gdeep));

    // Cross tower backward. For y = x0 * (xk . w) + b + xk:
    //   d/dxk = w * (x0 . g)   + g
    //   d/dx0 = g * (xk . w)                      (accumulated into gx0)
    //   d/dw  = xk * (x0 . g),  d/db = g
    Tensor g = gcross;  // gradient w.r.t. xs_[k+1]
    Tensor gx0(B, input_dim_);
    for (int k = num_cross_ - 1; k >= 0; --k) {
      const Tensor& xk = xs_[k];
      Tensor gprev(B, input_dim_);
      for (size_t b = 0; b < B; ++b) {
        const float* gr = g.row(b);
        const float* x0r = x0_.row(b);
        const float* xkr = xk.row(b);
        float x0_dot_g = 0, xk_dot_w = 0;
        for (size_t i = 0; i < input_dim_; ++i) {
          x0_dot_g += x0r[i] * gr[i];
          xk_dot_w += xkr[i] * cross_w_[k].at(0, i);
        }
        float* gp = gprev.row(b);
        float* g0 = gx0.row(b);
        for (size_t i = 0; i < input_dim_; ++i) {
          gp[i] = cross_w_[k].at(0, i) * x0_dot_g + gr[i];
          g0[i] += gr[i] * xk_dot_w;
          cross_gw_[k].at(0, i) += xkr[i] * x0_dot_g;
          cross_gb_[k].at(0, i) += gr[i];
        }
      }
      g = std::move(gprev);
    }
    // Total dL/dx = cross-chain grad + x0 contributions + deep tower grad.
    gx_.Resize(B, input_dim_);
    for (size_t b = 0; b < B; ++b) {
      float* o = gx_.row(b);
      const float* a = g.row(b);
      const float* c = gx0.row(b);
      const float* d = gx_deep.row(b);
      for (size_t i = 0; i < input_dim_; ++i) o[i] = a[i] + c[i] + d[i];
    }
    return gx_;
  }

  void Step() override {
    for (int k = 0; k < num_cross_; ++k) {
      opt_.Apply(&cross_w_[k], cross_gw_[k]);
      float* b = cross_b_[k].data();
      const float* g = cross_gb_[k].data();
      for (size_t i = 0; i < cross_b_[k].size(); ++i) {
        b[i] -= opt_.lr() * g[i];
      }
      cross_gw_[k].Zero();
      cross_gb_[k].Zero();
    }
    deep1_.Step(&opt_);
    deep2_.Step(&opt_);
    out_.Step(&opt_);
  }

 private:
  size_t input_dim_;
  int num_cross_;
  Adagrad opt_;
  std::vector<Tensor> cross_w_, cross_b_, cross_gw_, cross_gb_;
  Linear deep1_, deep2_, out_;
  Tensor x0_, concat_, gx_;
  std::vector<Tensor> xs_;
};

}  // namespace mlkv
