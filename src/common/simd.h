// Runtime-dispatched SIMD tier + bulk float primitives.
//
// The warm hot loop is dominated by dense float work: fused optimizer
// updates (see mlkv/optimizer_kernels.h), gradient accumulation in the
// trainers, and row materialization on the serving path. This header is
// the single place that decides which instruction set that work runs on:
//
//   - AVX2+FMA on x86-64 when the CPU reports both (runtime check; the
//     binary stays baseline-x86-64 so one build runs everywhere),
//   - NEON on aarch64 (baseline there, no runtime check needed),
//   - the portable scalar loops otherwise.
//
// Setting MLKV_FORCE_SCALAR=1 in the environment pins the scalar tier —
// CI runs the unit suite once per dispatch mode, and the parity tests in
// tests/simd_kernels_test.cc compare the tiers directly in one process.
//
// The vector bodies live behind per-function `target("avx2,fma")`
// attributes rather than global -mavx2 flags, so only these functions may
// emit AVX2 instructions and the feature check in DetectKernelTier() is
// the only gate they sit behind.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MLKV_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define MLKV_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace mlkv::simd {

// Wire-stable: encoded as a u8 in StatsSnapshot (net/wire.h), so values
// must not be renumbered.
enum class KernelTier : uint8_t {
  kScalar = 0,
  kAvx2Fma = 1,
  kNeon = 2,
};

inline const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2Fma:
      return "avx2+fma";
    case KernelTier::kNeon:
      return "neon";
  }
  return "unknown";
}

// Pure detection: environment override first, then CPU features. Exposed
// (rather than only the cached ActiveKernelTier) so tests can exercise
// the override logic after the process-wide choice is frozen.
inline KernelTier DetectKernelTier() {
  const char* force = std::getenv("MLKV_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && !(force[0] == '0' && force[1] == '\0')) {
    return KernelTier::kScalar;
  }
#if MLKV_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return KernelTier::kAvx2Fma;
  }
#elif MLKV_SIMD_NEON
  return KernelTier::kNeon;
#endif
  return KernelTier::kScalar;
}

// The process-wide tier, resolved once on first use. Everything below and
// the optimizer kernels dispatch on this.
inline KernelTier ActiveKernelTier() {
  static const KernelTier tier = DetectKernelTier();
  return tier;
}

// ---------------------------------------------------------------------------
// Bulk float primitives. These are the one audited copy/accumulate path:
// trainers, backends, and the serving tier route their row-sized loops
// through here instead of open-coded memcpy / per-float arithmetic.
// ---------------------------------------------------------------------------

// dst[0..n) = src[0..n). memcpy is already optimal (rep movsb / vector
// moves picked by libc); the wrapper exists so every row copy is findable
// and so callers stop reimplementing `n * sizeof(float)` arithmetic.
inline void CopyFloats(float* dst, const float* src, size_t n) {
  if (n == 0) return;  // empty spans may carry null data() — UB for memcpy
  std::memcpy(dst, src, n * sizeof(float));
}

#if MLKV_SIMD_X86
__attribute__((target("avx2,fma"))) inline void AccumulateFloatsAvx2(
    float* dst, const float* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2,fma"))) inline void SubScaledAvx2(
    float* dst, const float* src, float a, size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_fnmadd_ps(va, _mm256_loadu_ps(src + i),
                                               _mm256_loadu_ps(dst + i)));
  }
  for (; i < n; ++i) dst[i] -= a * src[i];
}
#endif  // MLKV_SIMD_X86

#if MLKV_SIMD_NEON
inline void AccumulateFloatsNeon(float* dst, const float* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), vld1q_f32(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

inline void SubScaledNeon(float* dst, const float* src, float a, size_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vfmsq_f32(vld1q_f32(dst + i), va, vld1q_f32(src + i)));
  }
  for (; i < n; ++i) dst[i] -= a * src[i];
}
#endif  // MLKV_SIMD_NEON

// dst[i] += src[i] for i in [0, n) — gradient accumulation for duplicate
// keys in a batch and for per-node aggregation in the trainers.
inline void AccumulateFloats(float* dst, const float* src, size_t n) {
  switch (ActiveKernelTier()) {
#if MLKV_SIMD_X86
    case KernelTier::kAvx2Fma:
      AccumulateFloatsAvx2(dst, src, n);
      return;
#endif
#if MLKV_SIMD_NEON
    case KernelTier::kNeon:
      AccumulateFloatsNeon(dst, src, n);
      return;
#endif
    default:
      break;
  }
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

// dst[i] -= a * src[i] for i in [0, n) — the dense SGD/axpy step used by
// the plain-Put training path and the legacy fixed-lr ApplyGradients.
inline void SubScaled(float* dst, const float* src, float a, size_t n) {
  switch (ActiveKernelTier()) {
#if MLKV_SIMD_X86
    case KernelTier::kAvx2Fma:
      SubScaledAvx2(dst, src, a, n);
      return;
#endif
#if MLKV_SIMD_NEON
    case KernelTier::kNeon:
      SubScaledNeon(dst, src, a, n);
      return;
#endif
    default:
      break;
  }
  for (size_t i = 0; i < n; ++i) dst[i] -= a * src[i];
}

}  // namespace mlkv::simd
