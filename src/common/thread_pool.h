// Fixed-size thread pool with a bounded FIFO queue. Backs the async disk
// read path (Lookahead) and background flush/compaction in the baselines.
// Bounded so a runaway prefetcher applies backpressure instead of ballooning.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlkv {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, size_t max_queue = 4096)
      : max_queue_(max_queue) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Blocks while the queue is full (backpressure). Returns false if the pool
  // is shutting down and the task was not enqueued.
  bool Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      not_full_.wait(lk, [this] { return stop_ || queue_.size() < max_queue_; });
      if (stop_) return false;
      queue_.push_back(std::move(task));
    }
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking variant: returns false if the queue is full.
  bool TrySubmit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_ || queue_.size() >= max_queue_) return false;
      queue_.push_back(std::move(task));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until the queue is empty and all workers are idle.
  void Drain() {
    std::unique_lock<std::mutex> lk(mu_);
    drained_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_) return;
      stop_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (auto& t : workers_) {
      if (t.joinable()) t.join();
    }
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        not_empty_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      not_full_.notify_one();
      task();
      {
        std::lock_guard<std::mutex> lk(mu_);
        --active_;
        if (queue_.empty() && active_ == 0) drained_.notify_all();
      }
    }
  }

  const size_t max_queue_;
  std::mutex mu_;
  std::condition_variable not_empty_, not_full_, drained_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace mlkv
