// Slice: non-owning view over a byte range, following the RocksDB idiom.
// Used for record values so stores can hand out zero-copy views into log
// pages (callers must copy before the epoch is released if they retain it).
#pragma once

#include <cstddef>
#include <cstring>
#include <string>

namespace mlkv {

class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }

  int compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = std::memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) r = -1;
      else if (size_ > b.size_) r = +1;
    }
    return r;
  }

  bool operator==(const Slice& b) const {
    return size_ == b.size_ && std::memcmp(data_, b.data_, size_) == 0;
  }
  bool operator!=(const Slice& b) const { return !(*this == b); }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace mlkv
