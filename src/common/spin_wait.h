// Yield-then-sleep backoff for short waits on other threads' progress.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace mlkv {

// Spins until `done()` returns true: yields first (the common case resolves
// in microseconds), then backs off to short sleeps so a waiter on a loaded
// or single-core machine cannot starve the very threads it waits for.
template <typename Pred>
void SpinWaitUntil(Pred&& done) {
  uint64_t spins = 0;
  while (!done()) {
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

}  // namespace mlkv
