// Monotonic timing helpers used by trainers and the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace mlkv {

inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class StopWatch {
 public:
  StopWatch() : start_(NowMicros()) {}
  void Reset() { start_ = NowMicros(); }
  uint64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  uint64_t start_;
};

}  // namespace mlkv
