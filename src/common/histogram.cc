#include "common/histogram.h"

#include <cstdio>

namespace mlkv {

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count()), mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.95)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

std::string Histogram::SnapshotString() const {
  char buf[240];
  std::snprintf(
      buf, sizeof(buf),
      "count=%llu sum=%llu mean=%.1f p50=%llu p90=%llu p95=%llu p99=%llu "
      "p999=%llu max=%llu",
      static_cast<unsigned long long>(count()),
      static_cast<unsigned long long>(sum()), mean(),
      static_cast<unsigned long long>(Percentile(0.50)),
      static_cast<unsigned long long>(Percentile(0.90)),
      static_cast<unsigned long long>(Percentile(0.95)),
      static_cast<unsigned long long>(Percentile(0.99)),
      static_cast<unsigned long long>(Percentile(0.999)),
      static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace mlkv
