// PRNG + skewed-distribution generators for workloads.
//
// Rng is xoshiro256**: fast, decent quality, reproducible across platforms
// (benchmarks and tests fix seeds). ZipfianGenerator implements the Gray et
// al. rejection-free method used by YCSB so the skewed key popularity in
// Fig. 10 and the CTR feature popularity match the standard benchmark shape.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mlkv {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9Bull) {
    // SplitMix64 seeding so any seed (including 0) yields a good state.
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). Unbiased enough for workload generation.
  uint64_t Uniform(uint64_t n) { return n ? Next() % n : 0; }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / (1ull << 53)); }

  // Standard normal via Box-Muller; used for embedding initialization.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Zipfian over [0, n) with parameter theta (YCSB default 0.99).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 7)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  // Scrambled variant: spreads the hot items across the key space (YCSB's
  // "scrambled zipfian") so hot keys do not cluster in one index region.
  uint64_t NextScrambled() {
    uint64_t v = Next();
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
    return (v ^ (v >> 31)) % n_;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    // Exact sum for small n; two-term Euler-Maclaurin tail otherwise.
    // Workload fidelity needs ~1% accuracy, which this comfortably meets.
    const uint64_t kExact = 1000000;
    double sum = 0;
    const uint64_t m = n < kExact ? n : kExact;
    for (uint64_t i = 1; i <= m; ++i) sum += std::pow(1.0 / i, theta);
    if (n > kExact) {
      const double a = static_cast<double>(kExact);
      const double b = static_cast<double>(n);
      sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace mlkv
