// BatchResult: the per-key outcome report of one batched storage call.
//
// Batch-first interfaces (KvBackend::MultiGet/MultiPut/MultiApplyGradient,
// EmbeddingTable's span APIs) serve every key they can instead of failing
// the whole call on the first problem: a missing key, a bounded-staleness
// abort, or an I/O error on one record must not discard the work done for
// the rest of a 1000-key minibatch. Each call fills one BatchResult with a
// Status code per input position plus summary counts, and the caller
// decides per key — fall back to an untracked read for Busy, zero-fill for
// NotFound, propagate hard errors.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace mlkv {

struct BatchResult {
  // One code per input key, parallel to the call's key span. kOk means a
  // value was served (or a write applied); for any other code the
  // corresponding output row is unspecified.
  std::vector<Status::Code> codes;

  // Summary counts; found + missing + busy + failed == codes.size().
  size_t found = 0;    // key was present and served / written
  size_t missing = 0;  // key was absent. When the call initializes missing
                       // keys, the code stays kOk (a value was served) but
                       // the key still counts here — `missing` is "fresh
                       // keys seen", found is "previously stored keys".
  size_t busy = 0;     // bounded-staleness aborts (kBusy): retriable via an
                       // untracked re-read
  size_t failed = 0;   // hard errors (I/O, corruption, ...)

  // First hard error encountered, for diagnostics (codes drop messages).
  Status first_error;

  BatchResult() = default;
  explicit BatchResult(size_t n) { Reset(n); }

  void Reset(size_t n) {
    codes.assign(n, Status::Code::kOk);
    found = missing = busy = failed = 0;
    first_error = Status::OK();
  }

  size_t size() const { return codes.size(); }

  // Records the outcome of key `i`.
  void Record(size_t i, const Status& s) {
    codes[i] = s.code();
    if (s.ok()) {
      ++found;
    } else if (s.IsNotFound()) {
      ++missing;
    } else if (s.IsBusy()) {
      ++busy;
    } else {
      if (failed == 0) first_error = s;
      ++failed;
    }
  }

  // Records key `i` as absent but served by deterministic initialization:
  // the caller got a usable value (code kOk) from a key that had never been
  // stored (counted missing).
  void RecordInitialized(size_t i) {
    codes[i] = Status::Code::kOk;
    ++missing;
  }

  // Downgrades every still-kOk key to `s`: the outcome of a post-batch
  // step that failed the whole batch (e.g. a group-durability commit that
  // didn't land — the writes applied but are not on disk). Intended for
  // write batches, where every kOk key was counted in `found`.
  void DowngradeOk(const Status& s) {
    if (s.ok()) return;
    size_t downgraded = 0;
    for (Status::Code& c : codes) {
      if (c != Status::Code::kOk) continue;
      c = s.code();
      ++downgraded;
    }
    found -= downgraded;
    if (s.IsNotFound()) {
      missing += downgraded;
    } else if (s.IsBusy()) {
      busy += downgraded;
    } else {
      if (failed == 0 && downgraded > 0) first_error = s;
      failed += downgraded;
    }
  }

  // Appends another result (the next contiguous chunk of the same batch).
  void Append(const BatchResult& chunk) {
    codes.insert(codes.end(), chunk.codes.begin(), chunk.codes.end());
    found += chunk.found;
    missing += chunk.missing;
    busy += chunk.busy;
    if (failed == 0 && chunk.failed > 0) first_error = chunk.first_error;
    failed += chunk.failed;
  }

  // Every key produced a value / applied a write.
  bool AllOk() const {
    for (const Status::Code c : codes) {
      if (c != Status::Code::kOk) return false;
    }
    return true;
  }

  // Reconstructs a Status for key `i` (messages survive only for the first
  // hard error).
  Status StatusAt(size_t i) const {
    const Status::Code c = codes[i];
    if (c == Status::Code::kOk) return Status::OK();
    if (!first_error.ok() && first_error.code() == c) return first_error;
    return Status::FromCode(c);
  }

  // Whole-call summary, severity-ordered: a hard error trumps Busy trumps
  // NotFound. OK when every key was served.
  Status status() const {
    if (failed > 0) return first_error;
    if (busy > 0) return Status::Busy("batch: staleness aborts");
    if (!AllOk()) return Status::NotFound("batch: missing keys");
    return Status::OK();
  }
};

}  // namespace mlkv
