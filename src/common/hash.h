// 64-bit hashing for keys. Embedding keys are 64-bit sparse-feature ids, so
// the hot path is a fixed-width integer mix (a finalizer with full avalanche,
// same construction as xxhash/murmur3 finalizers). A bytes variant covers
// variable-length keys in the LSM/B+tree baselines.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mlkv {

// SplitMix64 finalizer: bijective, full avalanche. Good enough to drive the
// latch-free hash index (tag bits come from the high bits).
inline uint64_t Hash64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Smallest power of two >= v (and >= 1). Shard counts and hash-index sizes
// are rounded up with this so routing can always be a mask instead of a mod.
inline uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Shard routing shared by every sharded structure (ShardedStore, the
// embedding/block caches): `mask` is (power-of-two shard count) - 1 and
// must fit in 16 bits (at most 65536 shards — callers clamp). Takes the
// TOP hash bits on purpose: HashIndex consumes the low bits for slot
// selection, so a shard choice made from the same low bits would leave
// each shard's index using only 1/num_shards of its slots.
inline uint64_t ShardOf(uint64_t hash, uint64_t mask) {
  return (hash >> 48) & mask;
}

// Routing mask for a requested shard count: rounds up to a power of two
// and clamps to ShardOf's 65536-shard ceiling (one place defines it).
inline uint64_t ShardMask(uint64_t shards) {
  if (shards == 0) shards = 1;
  const uint64_t capped = RoundUpPow2(shards);
  return (capped > (uint64_t{1} << 16) ? (uint64_t{1} << 16) : capped) - 1;
}

// FNV-1a 64-bit over bytes; used by baselines for string keys and by the
// SSTable bloom filter (two independent probes derived from one hash).
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = 0xCBF29CE484222325ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  // Final mix so nearby inputs spread across buckets.
  return Hash64(h);
}

}  // namespace mlkv
