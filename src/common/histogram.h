// Log-bucketed latency histogram (power-of-two buckets with linear
// sub-buckets), lock-free on the record path via relaxed atomics. Used by the
// benchmark harness for the Fig. 2 latency breakdown and per-op percentiles.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace mlkv {

class Histogram {
 public:
  static constexpr int kSubBits = 4;                 // 16 linear sub-buckets
  static constexpr int kBuckets = 64 << kSubBits;    // covers full uint64

  Histogram() { Reset(); }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  void Record(uint64_t v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t c = count();
    return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
  }

  // Value at quantile q in [0,1]; returns the bucket's representative value,
  // except q >= 1.0 which returns the exact observed max.
  uint64_t Percentile(double q) const {
    const uint64_t c = count();
    if (c == 0) return 0;
    if (q >= 1.0) return max();
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(c));
    if (rank >= c) rank = c - 1;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen > rank) return RepresentativeValue(i);
    }
    return max();
  }

  // Merge another histogram into this one (for per-thread aggregation).
  void Merge(const Histogram& o) {
    for (int i = 0; i < kBuckets; ++i) {
      const uint64_t v = o.buckets_[i].load(std::memory_order_relaxed);
      if (v) buckets_[i].fetch_add(v, std::memory_order_relaxed);
    }
    count_.fetch_add(o.count(), std::memory_order_relaxed);
    sum_.fetch_add(o.sum(), std::memory_order_relaxed);
    uint64_t m = o.max();
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (m > prev &&
           !max_.compare_exchange_weak(prev, m, std::memory_order_relaxed)) {
    }
  }

  // Number of recorded values that fall in buckets wholly <= v: the
  // cumulative count backing a Prometheus `le` bound. Conservative at bucket
  // granularity — a bucket straddling v is excluded entirely.
  uint64_t CountAtOrBelow(uint64_t v) const {
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      const uint64_t upper =
          (i + 1 < kBuckets) ? RepresentativeValue(i + 1) - 1 : UINT64_MAX;
      if (upper > v) break;
      seen += buckets_[i].load(std::memory_order_relaxed);
    }
    return seen;
  }

  std::string Summary() const;

  // One-line snapshot with the full percentile ladder, for exposition and
  // the stats CLI (Summary() keeps its historical short form).
  std::string SnapshotString() const;

 private:
  static int BucketFor(uint64_t v) {
    if (v < (1ull << kSubBits)) return static_cast<int>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int sub =
        static_cast<int>((v >> (msb - kSubBits)) & ((1 << kSubBits) - 1));
    return ((msb - kSubBits + 1) << kSubBits) + sub;
  }

  static uint64_t RepresentativeValue(int bucket) {
    if (bucket < (1 << kSubBits)) return static_cast<uint64_t>(bucket);
    const int exp = (bucket >> kSubBits) + kSubBits - 1;
    const int sub = bucket & ((1 << kSubBits) - 1);
    return (1ull << exp) + (static_cast<uint64_t>(sub) << (exp - kSubBits));
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_;
  std::atomic<uint64_t> count_, sum_, max_;
};

}  // namespace mlkv
