// Status: lightweight error propagation for storage-layer code, modeled on
// the Status idiom used by RocksDB/Arrow. Functions that can fail return a
// Status (or StatusOr<T>); success is the common fast path and carries no
// allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

namespace mlkv {

class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kBusy = 5,          // transient: retry (e.g. staleness bound not met)
    kTimedOut = 6,
    kAborted = 7,
    kNotSupported = 8,
    kOutOfMemory = 9,
    kWrongPartition = 10,  // cluster: key not owned by this server; refetch map
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  // errno-capturing variant for OS call sites: appends strerror so I/O
  // failures carry the OS reason ("open /x: No such file or directory").
  static Status IOError(std::string context, int sys_errno) {
    context += ": ";
    context += std::strerror(sys_errno);
    return Status(Code::kIOError, std::move(context));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfMemory(std::string msg = "") {
    return Status(Code::kOutOfMemory, std::move(msg));
  }
  static Status WrongPartition(std::string msg = "") {
    return Status(Code::kWrongPartition, std::move(msg));
  }

  // Rebuilds a Status from a bare code (e.g. a BatchResult entry).
  static Status FromCode(Code code, std::string msg = "") {
    if (code == Code::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsWrongPartition() const { return code_ == Code::kWrongPartition; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    static const char* kNames[] = {"OK",           "NotFound",  "Corruption",
                                   "InvalidArgument", "IOError", "Busy",
                                   "TimedOut",     "Aborted",   "NotSupported",
                                   "OutOfMemory",  "WrongPartition"};
    std::string s = kNames[static_cast<int>(code_)];
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

// Minimal StatusOr: either an OK status with a value, or an error status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {}  // NOLINT: implicit by design
  StatusOr(T v) : value_(std::move(v)) {}        // NOLINT: implicit by design

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T& operator*() { return value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

#define MLKV_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::mlkv::Status _s = (expr);             \
    if (!_s.ok()) return _s;                \
  } while (0)

}  // namespace mlkv
