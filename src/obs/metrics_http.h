// Minimal embedded HTTP/1.0 server for Prometheus scrapes: one accept
// thread, one connection at a time, two routes (`GET /metrics` renders the
// registry's exposition text, anything else is 404). Connection: close on
// every response — scrapers reconnect per scrape, which keeps the server a
// hundred lines instead of an HTTP stack.
#pragma once

#include <string>
#include <thread>

#include "common/status.h"
#include "net/socket.h"

namespace mlkv {
namespace obs {

class MetricsRegistry;

class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(MetricsRegistry* registry)
      : registry_(registry) {}
  ~MetricsHttpServer() { Stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds `addr` ("host:port", port 0 for ephemeral — see port()) and
  // starts the accept thread.
  Status Start(const std::string& addr);
  void Stop();

  uint16_t port() const { return listener_.port(); }

 private:
  void AcceptLoop();
  void ServeConnection(net::Socket conn);

  MetricsRegistry* const registry_;
  net::ListenSocket listener_;
  std::thread accept_thread_;
  bool running_ = false;
};

// Tiny HTTP/1.0 GET client for tests and `mlkv_cli stats --metrics_addr`:
// fetches http://host:port/path, returns the body (headers stripped).
// Non-2xx statuses surface as IOError naming the status line.
Status HttpGet(const std::string& addr, const std::string& path,
               std::string* body);

}  // namespace obs
}  // namespace mlkv
