// MetricsRegistry: one process-visible catalog of named counters, gauges,
// and histograms, with Prometheus v0.0.4 text exposition. Two usage shapes:
//
//  * Native cells — code that owns a hot counter asks a family for its cell
//    once (label values fixed at lookup) and keeps the returned pointer.
//    Cell pointers are stable for the registry's lifetime and the record
//    path is lock-free (relaxed atomics; histograms reuse
//    common/histogram.h's log-bucketed layout). Registration itself takes a
//    mutex, so look cells up at wiring time, not per request.
//
//  * Collectors — subsystems that already aggregate their own snapshot
//    structs (FasterStatsSnapshot, BackendIoStats, ReplicationProgress…)
//    register a pull callback instead of migrating counter by counter. The
//    callback runs at scrape time and writes samples into a MetricsSink;
//    the legacy snapshot stays the source of truth and the registry is a
//    view over it (and vice versa for migrated counters, which legacy
//    snapshots now read back out of their cells).
//
// SetMetricsEnabled(false) turns every native record path into a no-op —
// the measurement mode behind bench_ycsb_suite --metrics_overhead. While
// disabled, migrated counters (and the snapshots viewing them) freeze.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"

namespace mlkv {
namespace obs {

// Process-wide runtime switch for every native record path (Counter::Add,
// Gauge::Set, HistogramCell::Observe). Collectors still run at scrape time
// — they only read state owned elsewhere. Defaults to enabled.
void SetMetricsEnabled(bool enabled);

inline std::atomic<bool>& MetricsEnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

inline bool MetricsEnabled() {
  return MetricsEnabledFlag().load(std::memory_order_relaxed);
}

// Monotonic counter. Lock-free; value() is exact once writers quiesce.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (MetricsEnabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Point-in-time value; Set overwrites, Add accumulates (CAS loop).
class Gauge {
 public:
  void Set(double v) {
    if (MetricsEnabled()) v_.store(v, std::memory_order_relaxed);
  }
  void Add(double d) {
    if (!MetricsEnabled()) return;
    double prev = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(prev, prev + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// A histogram cell records raw values (typically microseconds) into the
// shared log-bucketed Histogram; the owning family's HistogramSpec maps
// them to exposition units and fixed `le` bounds at scrape time.
class HistogramCell {
 public:
  void Observe(uint64_t v) {
    if (MetricsEnabled()) h_.Record(v);
  }
  const Histogram& histogram() const { return h_; }

 private:
  Histogram h_;
};

// Exponentially weighted moving average of observed samples — the cheap
// "recent typical value" companion to a full histogram (per-endpoint RPC
// latency feeding the hedging decision). Lock-free: a CAS loop like
// Gauge::Add; the first sample seeds the average so warmup is not dragged
// toward zero. alpha is the weight of each new sample (1/8 tracks a
// latency signal without chasing every spike).
class Ewma {
 public:
  explicit Ewma(double alpha = 0.125) : alpha_(alpha) {}

  void Observe(double sample) {
    if (!MetricsEnabled()) return;
    if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
      v_.store(sample, std::memory_order_relaxed);
      return;
    }
    double prev = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(prev, prev + alpha_ * (sample - prev),
                                     std::memory_order_relaxed)) {
    }
  }

  double value() const { return v_.load(std::memory_order_relaxed); }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  const double alpha_;
  std::atomic<double> v_{0.0};
  std::atomic<uint64_t> count_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// Exposition shape of a histogram family: recorded-unit -> exposition-unit
// scale (default: microseconds recorded, seconds exposed) and the `le`
// bucket bounds in exposition units. Cumulative bucket counts come from
// Histogram::CountAtOrBelow, so bounds need not align with the log buckets.
struct HistogramSpec {
  double scale = 1e-6;
  std::vector<double> bounds;  // empty = DefaultLatencyBounds()
};

const std::vector<double>& DefaultLatencyBounds();

// One named family of cells sharing a metric name, help string, kind, and
// label-key set. Cells are addressed by their label values (one value per
// key, positional); the unlabeled family is a single cell with no labels.
class MetricFamily {
 public:
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  MetricKind kind() const { return kind_; }
  const std::vector<std::string>& label_keys() const { return label_keys_; }

  // Cell lookup: creates on first use, returns the same stable pointer
  // afterwards. The label value count must match label_keys(). Wrong-kind
  // lookups return nullptr (a programming error surfaced loudly in tests).
  Counter* GetCounter(std::vector<std::string> label_values = {});
  Gauge* GetGauge(std::vector<std::string> label_values = {});
  HistogramCell* GetHistogram(std::vector<std::string> label_values = {});

 private:
  friend class MetricsRegistry;
  MetricFamily(std::string name, std::string help, MetricKind kind,
               std::vector<std::string> label_keys, HistogramSpec spec)
      : name_(std::move(name)),
        help_(std::move(help)),
        kind_(kind),
        label_keys_(std::move(label_keys)),
        spec_(std::move(spec)) {}

  template <typename Cell>
  Cell* GetCell(std::map<std::vector<std::string>, std::unique_ptr<Cell>>* m,
                MetricKind want, std::vector<std::string> label_values);

  const std::string name_;
  const std::string help_;
  const MetricKind kind_;
  const std::vector<std::string> label_keys_;
  const HistogramSpec spec_;

  // std::map keeps cells ordered by label tuple, so family iteration (and
  // the exposition text) is deterministic regardless of creation order.
  mutable std::mutex mu_;
  std::map<std::vector<std::string>, std::unique_ptr<Counter>> counters_;
  std::map<std::vector<std::string>, std::unique_ptr<Gauge>> gauges_;
  std::map<std::vector<std::string>, std::unique_ptr<HistogramCell>>
      histograms_;
};

// Scrape-time sample buffer a collector writes into. Label values are
// copied (callers may pass temporaries like std::to_string(shard)).
class MetricsSink {
 public:
  struct Sample {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<std::pair<std::string, std::string>> labels;
    double value = 0;
  };
  using Label = std::pair<std::string_view, std::string_view>;

  void AddCounter(std::string_view name, std::string_view help,
                  uint64_t value, std::initializer_list<Label> labels = {});
  void AddGauge(std::string_view name, std::string_view help, double value,
                std::initializer_list<Label> labels = {});

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  void Push(std::string_view name, std::string_view help, MetricKind kind,
            double value, std::initializer_list<Label> labels);
  std::vector<Sample> samples_;
};

// Validation used by tests and the exposition checker: Prometheus metric
// names are [a-zA-Z_:][a-zA-Z0-9_:]*, label keys [a-zA-Z_][a-zA-Z0-9_]*.
bool ValidMetricName(std::string_view name);
bool ValidLabelKey(std::string_view key);

// The registry. KvServer instances own a private registry each (so two
// servers in one process — tests, loopback clusters — never merge their
// counters); Default() serves code without a natural owner.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry* Default();

  // Family lookup: creates on first use; later calls with the same name
  // return the same family (help/kind/label_keys of the first call win).
  MetricFamily* CounterFamily(std::string_view name, std::string_view help,
                              std::vector<std::string> label_keys = {});
  MetricFamily* GaugeFamily(std::string_view name, std::string_view help,
                            std::vector<std::string> label_keys = {});
  MetricFamily* HistogramFamily(std::string_view name, std::string_view help,
                                std::vector<std::string> label_keys = {},
                                HistogramSpec spec = {});

  // Pull collectors, run (under the registry mutex) by every scrape.
  // RemoveCollector before anything the callback captures dies.
  uint64_t AddCollector(std::function<void(MetricsSink*)> fn);
  void RemoveCollector(uint64_t id);

  // Prometheus v0.0.4 text exposition: one # HELP / # TYPE header per
  // family (native families first, then collector-only families), samples
  // ordered by label tuple, label values escaped per the format spec.
  std::string ExpositionText() const;

  size_t FamilyCount() const;

 private:
  MetricFamily* GetFamily(std::string_view name, std::string_view help,
                          MetricKind kind,
                          std::vector<std::string> label_keys,
                          HistogramSpec spec);

  mutable std::mutex mu_;
  // std::map: exposition iterates families in name order.
  std::map<std::string, std::unique_ptr<MetricFamily>, std::less<>>
      families_;
  uint64_t next_collector_id_ = 1;
  std::vector<std::pair<uint64_t, std::function<void(MetricsSink*)>>>
      collectors_;
};

}  // namespace obs
}  // namespace mlkv
