// Per-request trace spans for the serving pipeline. One RequestTrace is
// created at wire decode and threaded — via a thread-local TraceContext —
// through the request-pool handoff, backend scatter, per-shard execute,
// the pending-read I/O wave, and encode/send. Cluster fan-outs propagate
// the trace's request id on outgoing frames, so a downstream server's slow
// log can be stitched to the upstream span by id.
//
// Span creation takes a mutex on the trace (spans open from pool threads
// concurrently), so tracing is for request-granularity stages, not inner
// loops. ScopedSpan is a no-op when no trace is installed; the common
// untraced path costs one TLS load.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace mlkv {
namespace obs {

// A finished or in-flight stage. `parent` indexes spans() (kNoParent for
// roots); start_us is absolute (NowMicros), dur_us is 0 until the span ends.
struct TraceSpan {
  const char* stage = "";
  std::string detail;
  uint32_t parent = UINT32_MAX;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

class RequestTrace {
 public:
  static constexpr uint32_t kNoParent = UINT32_MAX;

  RequestTrace(const char* op, uint64_t request_id);

  // Opens a span under `parent` and returns its index. `stage` must be a
  // string literal (stored unowned); `detail` is copied.
  uint32_t BeginSpan(const char* stage, std::string detail, uint32_t parent);
  void EndSpan(uint32_t span);

  // Records an already-measured interval (e.g. request-pool queue wait,
  // observed only after the fact) without the Begin/End dance.
  uint32_t AddSpan(const char* stage, std::string detail, uint32_t parent,
                   uint64_t start_us, uint64_t dur_us);

  // Closes the trace; total_us() is valid afterwards.
  void Finish();

  const char* op() const { return op_; }
  uint64_t request_id() const { return request_id_; }
  uint64_t start_us() const { return start_us_; }
  uint64_t total_us() const { return total_us_; }

  // Visits every span (stage, detail, parent, start, dur) in creation
  // order. Used to feed mlkv_request_stage_seconds{stage=} histograms.
  void ForEachSpan(
      const std::function<void(const TraceSpan&)>& fn) const;

  // Indented span tree with offsets relative to trace start:
  //   execute +12us 3480us [10.0.0.2:7700]
  std::string Render() const;

 private:
  const char* op_;
  const uint64_t request_id_;
  const uint64_t start_us_;
  uint64_t total_us_ = 0;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

// The innermost open span on this thread. `span` is the parent for the next
// ScopedSpan; kNoParent (with a live trace) parents at the root.
struct TraceContext {
  RequestTrace* trace = nullptr;
  uint32_t span = RequestTrace::kNoParent;
};

TraceContext CurrentTraceContext();
RequestTrace* CurrentTrace();

// Installs a context on this thread for a scope — used both by the request
// handler that owns the trace and by pool workers that inherit a context
// captured at fan-out time. Restores the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

// Opens a span under the current thread-local context (no-op when none) and
// makes itself the parent for nested ScopedSpans until destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* stage, std::string detail = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  RequestTrace* trace_ = nullptr;
  uint32_t span_ = RequestTrace::kNoParent;
  TraceContext prev_;
};

}  // namespace obs
}  // namespace mlkv
