#include "obs/metrics.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

namespace mlkv {
namespace obs {

void SetMetricsEnabled(bool enabled) {
  MetricsEnabledFlag().store(enabled, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBounds() {
  // Seconds, 100us .. 10s: wide enough for a cold-read wave behind a
  // simulated NVMe and tight enough to resolve warm-path microseconds
  // (the first bound's cumulative count is CountAtOrBelow(100us)).
  static const std::vector<double> kBounds = {
      1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
      5e-2, 1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
  return kBounds;
}

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) return false;
  }
  return true;
}

bool ValidLabelKey(std::string_view key) {
  if (key.empty()) return false;
  for (size_t i = 0; i < key.size(); ++i) {
    const char c = key[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || (digit && i > 0))) return false;
  }
  return true;
}

namespace {

const char* TypeName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

// HELP text: escape backslash and newline (format spec).
void AppendEscapedHelp(std::string_view s, std::string* out) {
  for (const char c : s) {
    if (c == '\\') *out += "\\\\";
    else if (c == '\n') *out += "\\n";
    else *out += c;
  }
}

// Label values: escape backslash, double-quote, and newline.
void AppendEscapedLabelValue(std::string_view s, std::string* out) {
  for (const char c : s) {
    if (c == '\\') *out += "\\\\";
    else if (c == '"') *out += "\\\"";
    else if (c == '\n') *out += "\\n";
    else *out += c;
  }
}

void AppendHeader(const std::string& name, const std::string& help,
                  MetricKind kind, std::string* out) {
  *out += "# HELP " + name + " ";
  AppendEscapedHelp(help, out);
  *out += "\n# TYPE " + name + " ";
  *out += TypeName(kind);
  *out += "\n";
}

// {k1="v1",k2="v2"} — empty when there are no labels. `extra` appends one
// more pair (the histogram `le` bound) without building a new vector.
void AppendLabels(const std::vector<std::string>& keys,
                  const std::vector<std::string>& values,
                  const std::pair<std::string, std::string>* extra,
                  std::string* out) {
  if (keys.empty() && extra == nullptr) return;
  *out += '{';
  bool first = true;
  for (size_t i = 0; i < keys.size() && i < values.size(); ++i) {
    if (!first) *out += ',';
    first = false;
    *out += keys[i] + "=\"";
    AppendEscapedLabelValue(values[i], out);
    *out += '"';
  }
  if (extra != nullptr) {
    if (!first) *out += ',';
    *out += extra->first + "=\"";
    AppendEscapedLabelValue(extra->second, out);
    *out += '"';
  }
  *out += '}';
}

void AppendValue(double v, std::string* out) {
  char buf[64];
  if (v == static_cast<double>(static_cast<uint64_t>(v)) && v >= 0 &&
      v < 1e18) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, static_cast<uint64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.14g", v);
  }
  *out += buf;
}

std::string FormatBound(double b) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", b);
  return buf;
}

}  // namespace

// ---- MetricFamily -------------------------------------------------------

template <typename Cell>
Cell* MetricFamily::GetCell(
    std::map<std::vector<std::string>, std::unique_ptr<Cell>>* m,
    MetricKind want, std::vector<std::string> label_values) {
  if (kind_ != want || label_values.size() != label_keys_.size()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto it = m->find(label_values);
  if (it == m->end()) {
    it = m->emplace(std::move(label_values), std::make_unique<Cell>()).first;
  }
  return it->second.get();
}

Counter* MetricFamily::GetCounter(std::vector<std::string> label_values) {
  return GetCell(&counters_, MetricKind::kCounter, std::move(label_values));
}

Gauge* MetricFamily::GetGauge(std::vector<std::string> label_values) {
  return GetCell(&gauges_, MetricKind::kGauge, std::move(label_values));
}

HistogramCell* MetricFamily::GetHistogram(
    std::vector<std::string> label_values) {
  return GetCell(&histograms_, MetricKind::kHistogram,
                 std::move(label_values));
}

// ---- MetricsSink --------------------------------------------------------

void MetricsSink::Push(std::string_view name, std::string_view help,
                       MetricKind kind, double value,
                       std::initializer_list<Label> labels) {
  Sample s;
  s.name.assign(name);
  s.help.assign(help);
  s.kind = kind;
  s.value = value;
  s.labels.reserve(labels.size());
  for (const Label& l : labels) {
    s.labels.emplace_back(std::string(l.first), std::string(l.second));
  }
  samples_.push_back(std::move(s));
}

void MetricsSink::AddCounter(std::string_view name, std::string_view help,
                             uint64_t value,
                             std::initializer_list<Label> labels) {
  Push(name, help, MetricKind::kCounter, static_cast<double>(value), labels);
}

void MetricsSink::AddGauge(std::string_view name, std::string_view help,
                           double value,
                           std::initializer_list<Label> labels) {
  Push(name, help, MetricKind::kGauge, value, labels);
}

// ---- MetricsRegistry ----------------------------------------------------

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

MetricFamily* MetricsRegistry::GetFamily(std::string_view name,
                                         std::string_view help,
                                         MetricKind kind,
                                         std::vector<std::string> label_keys,
                                         HistogramSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    if (spec.bounds.empty()) spec.bounds = DefaultLatencyBounds();
    auto fam = std::unique_ptr<MetricFamily>(
        new MetricFamily(std::string(name), std::string(help), kind,
                         std::move(label_keys), std::move(spec)));
    it = families_.emplace(std::string(name), std::move(fam)).first;
  }
  return it->second.get();
}

MetricFamily* MetricsRegistry::CounterFamily(
    std::string_view name, std::string_view help,
    std::vector<std::string> label_keys) {
  return GetFamily(name, help, MetricKind::kCounter, std::move(label_keys),
                   {});
}

MetricFamily* MetricsRegistry::GaugeFamily(
    std::string_view name, std::string_view help,
    std::vector<std::string> label_keys) {
  return GetFamily(name, help, MetricKind::kGauge, std::move(label_keys), {});
}

MetricFamily* MetricsRegistry::HistogramFamily(
    std::string_view name, std::string_view help,
    std::vector<std::string> label_keys, HistogramSpec spec) {
  return GetFamily(name, help, MetricKind::kHistogram, std::move(label_keys),
                   std::move(spec));
}

uint64_t MetricsRegistry::AddCollector(
    std::function<void(MetricsSink*)> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == id) {
      collectors_.erase(it);
      return;
    }
  }
}

size_t MetricsRegistry::FamilyCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return families_.size();
}

std::string MetricsRegistry::ExpositionText() const {
  // Run the collectors and group their samples by family first, so a
  // collector extending a native family rides under that family's single
  // # TYPE header instead of duplicating it.
  MetricsSink sink;
  std::map<std::string, std::vector<const MetricsSink::Sample*>> extra;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [id, fn] : collectors_) {
      (void)id;
      fn(&sink);
    }
  }
  for (const MetricsSink::Sample& s : sink.samples()) {
    extra[s.name].push_back(&s);
  }

  std::string out;
  auto emit_sample = [&out](const MetricsSink::Sample& s) {
    out += s.name;
    if (!s.labels.empty()) {
      out += '{';
      for (size_t i = 0; i < s.labels.size(); ++i) {
        if (i) out += ',';
        out += s.labels[i].first + "=\"";
        AppendEscapedLabelValue(s.labels[i].second, &out);
        out += '"';
      }
      out += '}';
    }
    out += ' ';
    AppendValue(s.value, &out);
    out += '\n';
  };

  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, fam] : families_) {
    AppendHeader(name, fam->help(), fam->kind(), &out);
    std::lock_guard<std::mutex> cell_lk(fam->mu_);
    switch (fam->kind()) {
      case MetricKind::kCounter:
        for (const auto& [labels, cell] : fam->counters_) {
          out += name;
          AppendLabels(fam->label_keys(), labels, nullptr, &out);
          out += ' ';
          AppendValue(static_cast<double>(cell->value()), &out);
          out += '\n';
        }
        break;
      case MetricKind::kGauge:
        for (const auto& [labels, cell] : fam->gauges_) {
          out += name;
          AppendLabels(fam->label_keys(), labels, nullptr, &out);
          out += ' ';
          AppendValue(cell->value(), &out);
          out += '\n';
        }
        break;
      case MetricKind::kHistogram:
        for (const auto& [labels, cell] : fam->histograms_) {
          const Histogram& h = cell->histogram();
          const HistogramSpec& spec = fam->spec_;
          for (const double bound : spec.bounds) {
            const double raw = bound / spec.scale;
            const uint64_t threshold =
                raw >= 1e19 ? UINT64_MAX
                            : static_cast<uint64_t>(std::llround(raw));
            const std::pair<std::string, std::string> le{"le",
                                                         FormatBound(bound)};
            out += name + "_bucket";
            AppendLabels(fam->label_keys(), labels, &le, &out);
            out += ' ';
            AppendValue(static_cast<double>(h.CountAtOrBelow(threshold)),
                        &out);
            out += '\n';
          }
          const std::pair<std::string, std::string> inf{"le", "+Inf"};
          out += name + "_bucket";
          AppendLabels(fam->label_keys(), labels, &inf, &out);
          out += ' ';
          AppendValue(static_cast<double>(h.count()), &out);
          out += '\n';
          out += name + "_sum";
          AppendLabels(fam->label_keys(), labels, nullptr, &out);
          out += ' ';
          AppendValue(static_cast<double>(h.sum()) * spec.scale, &out);
          out += '\n';
          out += name + "_count";
          AppendLabels(fam->label_keys(), labels, nullptr, &out);
          out += ' ';
          AppendValue(static_cast<double>(h.count()), &out);
          out += '\n';
        }
        break;
    }
    const auto it = extra.find(name);
    if (it != extra.end()) {
      for (const MetricsSink::Sample* s : it->second) emit_sample(*s);
      extra.erase(it);
    }
  }
  // Collector-only families (no native cells): header from the first
  // sample, then every sample in collector emission order.
  for (const auto& [name, samples] : extra) {
    AppendHeader(name, samples[0]->help, samples[0]->kind, &out);
    for (const MetricsSink::Sample* s : samples) emit_sample(*s);
  }
  return out;
}

}  // namespace obs
}  // namespace mlkv
