#include "obs/metrics_http.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace mlkv {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;
constexpr char kContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

// Reads from the raw fd until the header terminator appears (request bodies
// are ignored — GET only). Returns false on EOF/error/oversize.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->find("\r\n\r\n") == std::string::npos) {
    if (head->size() > kMaxRequestBytes) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    head->append(buf, static_cast<size_t>(n));
  }
  return true;
}

void SendResponse(net::Socket* conn, const char* status_line,
                  const std::string& body) {
  std::string resp = "HTTP/1.0 ";
  resp += status_line;
  resp += "\r\nContent-Type: ";
  resp += kContentType;
  resp += "\r\nContent-Length: " + std::to_string(body.size());
  resp += "\r\nConnection: close\r\n\r\n";
  (void)conn->SendTwo(resp.data(), resp.size(), body.data(), body.size());
}

}  // namespace

Status MetricsHttpServer::Start(const std::string& addr) {
  if (running_) return Status::InvalidArgument("metrics server running");
  std::string host;
  uint16_t port = 0;
  Status s = net::ParseHostPort(addr, &host, &port, /*allow_port_zero=*/true);
  if (!s.ok()) return s;
  s = listener_.Listen(host, port);
  if (!s.ok()) return s;
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_) return;
  running_ = false;
  listener_.Wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
}

void MetricsHttpServer::AcceptLoop() {
  while (true) {
    net::Socket conn;
    const Status s = listener_.Accept(&conn);
    if (!s.ok()) return;  // kAborted from Wake(), or listener failure
    ServeConnection(std::move(conn));
  }
}

void MetricsHttpServer::ServeConnection(net::Socket conn) {
  (void)conn.SetSendTimeoutMs(5000);
  std::string head;
  if (!ReadRequestHead(conn.fd(), &head)) return;
  const size_t line_end = head.find("\r\n");
  const std::string request_line = head.substr(0, line_end);
  const size_t m = request_line.find(' ');
  const size_t p = request_line.find(' ', m + 1);
  if (m == std::string::npos || p == std::string::npos) {
    SendResponse(&conn, "400 Bad Request", "bad request\n");
    return;
  }
  const std::string method = request_line.substr(0, m);
  std::string path = request_line.substr(m + 1, p - m - 1);
  const size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  if (method != "GET") {
    SendResponse(&conn, "405 Method Not Allowed", "GET only\n");
    return;
  }
  if (path != "/metrics") {
    SendResponse(&conn, "404 Not Found", "try /metrics\n");
    return;
  }
  SendResponse(&conn, "200 OK", registry_->ExpositionText());
}

Status HttpGet(const std::string& addr, const std::string& path,
               std::string* body) {
  std::string host;
  uint16_t port = 0;
  Status s = net::ParseHostPort(addr, &host, &port);
  if (!s.ok()) return s;
  net::Socket conn;
  s = net::Socket::Connect(host, port, &conn);
  if (!s.ok()) return s;
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  s = conn.SendAll(req.data(), req.size());
  if (!s.ok()) return s;
  std::string resp;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return Status::IOError("http recv", errno);
    if (n == 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  const size_t split = resp.find("\r\n\r\n");
  if (split == std::string::npos) {
    return Status::IOError("http response missing header terminator");
  }
  const std::string status_line = resp.substr(0, resp.find("\r\n"));
  // "HTTP/1.x NNN ..." — accept any 2xx.
  const size_t sp = status_line.find(' ');
  if (sp == std::string::npos || sp + 1 >= status_line.size() ||
      status_line[sp + 1] != '2') {
    return Status::IOError("http status: " + status_line);
  }
  body->assign(resp, split + 4, std::string::npos);
  return Status::OK();
}

}  // namespace obs
}  // namespace mlkv
