#include "obs/trace.h"

#include <cstdio>

#include "common/clock.h"

namespace mlkv {
namespace obs {

namespace {
thread_local TraceContext g_trace_context;
}  // namespace

RequestTrace::RequestTrace(const char* op, uint64_t request_id)
    : op_(op), request_id_(request_id), start_us_(NowMicros()) {
  // A typical request produces under eight spans (decode, execute, the
  // scatter tree, send); reserving keeps the hot path free of regrowth.
  spans_.reserve(8);
}

uint32_t RequestTrace::BeginSpan(const char* stage, std::string detail,
                                 uint32_t parent) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpan s;
  s.stage = stage;
  s.detail = std::move(detail);
  s.parent = parent;
  s.start_us = NowMicros();
  spans_.push_back(std::move(s));
  return static_cast<uint32_t>(spans_.size() - 1);
}

void RequestTrace::EndSpan(uint32_t span) {
  const uint64_t now = NowMicros();
  std::lock_guard<std::mutex> lk(mu_);
  if (span >= spans_.size()) return;
  TraceSpan& s = spans_[span];
  s.dur_us = now > s.start_us ? now - s.start_us : 0;
}

uint32_t RequestTrace::AddSpan(const char* stage, std::string detail,
                               uint32_t parent, uint64_t start_us,
                               uint64_t dur_us) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpan s;
  s.stage = stage;
  s.detail = std::move(detail);
  s.parent = parent;
  s.start_us = start_us;
  s.dur_us = dur_us;
  spans_.push_back(std::move(s));
  return static_cast<uint32_t>(spans_.size() - 1);
}

void RequestTrace::Finish() {
  const uint64_t now = NowMicros();
  total_us_ = now > start_us_ ? now - start_us_ : 0;
}

void RequestTrace::ForEachSpan(
    const std::function<void(const TraceSpan&)>& fn) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const TraceSpan& s : spans_) fn(s);
}

std::string RequestTrace::Render() const {
  std::lock_guard<std::mutex> lk(mu_);
  // Depth by chasing parents; spans are appended in creation order and a
  // parent always precedes its children, so children render under parents
  // when we emit in order with indentation.
  std::string out;
  char line[256];
  for (const TraceSpan& s : spans_) {
    int depth = 1;
    for (uint32_t p = s.parent; p != kNoParent && p < spans_.size();
         p = spans_[p].parent) {
      ++depth;
    }
    out.append(static_cast<size_t>(depth) * 2, ' ');
    const uint64_t off = s.start_us > start_us_ ? s.start_us - start_us_ : 0;
    std::snprintf(line, sizeof(line), "%s +%lluus %lluus", s.stage,
                  static_cast<unsigned long long>(off),
                  static_cast<unsigned long long>(s.dur_us));
    out += line;
    if (!s.detail.empty()) {
      out += " [";
      out += s.detail;
      out += ']';
    }
    out += '\n';
  }
  return out;
}

TraceContext CurrentTraceContext() { return g_trace_context; }

RequestTrace* CurrentTrace() { return g_trace_context.trace; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : prev_(g_trace_context) {
  g_trace_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_trace_context = prev_; }

ScopedSpan::ScopedSpan(const char* stage, std::string detail)
    : prev_(g_trace_context) {
  if (prev_.trace == nullptr) return;
  trace_ = prev_.trace;
  span_ = trace_->BeginSpan(stage, std::move(detail), prev_.span);
  g_trace_context = TraceContext{trace_, span_};
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  trace_->EndSpan(span_);
  g_trace_context = prev_;
}

}  // namespace obs
}  // namespace mlkv
