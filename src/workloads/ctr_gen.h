// Synthetic Criteo-style CTR stream (stands in for Criteo-Ad /
// Criteo-Terabyte; see DESIGN.md substitutions).
//
// Each sample has `num_fields` categorical features (one id per field, drawn
// Zipfian within the field — real ad traffic is heavily skewed), plus
// `num_dense` dense features. Labels come from a planted ground-truth
// model: a hidden per-(field,id) weight vector and dense weights feed a
// logistic model, so a trained model's AUC genuinely rises toward the
// planted model's AUC and convergence curves (Fig. 2/6/8) are meaningful.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "kv/record.h"

namespace mlkv {

struct CtrConfig {
  int num_fields = 8;                // m categorical fields
  uint64_t field_cardinality = 100000;  // n_i per field
  int num_dense = 4;
  double zipf_theta = 0.9;           // feature popularity skew
  double label_noise = 0.15;         // fraction of labels flipped
  uint64_t seed = 123;
};

struct CtrSample {
  std::vector<Key> keys;          // num_fields global embedding keys
  std::vector<float> dense;       // num_dense features
  float label;                    // 0/1 click
};

class CtrGenerator {
 public:
  explicit CtrGenerator(const CtrConfig& config, uint64_t stream_seed = 0)
      : config_(config), rng_(config.seed * 31 + stream_seed) {
    zipf_.reserve(config.num_fields);
    for (int f = 0; f < config.num_fields; ++f) {
      zipf_.emplace_back(config.field_cardinality, config.zipf_theta,
                         config.seed + 1000 + static_cast<uint64_t>(f) +
                             stream_seed * 971);
    }
  }

  // Global key space: field f, local id x -> f * cardinality + x. Keys are
  // shared across samples, giving the skewed reuse that caching exploits.
  Key GlobalKey(int field, uint64_t local_id) const {
    return static_cast<Key>(field) * config_.field_cardinality + local_id;
  }
  uint64_t total_keys() const {
    return static_cast<uint64_t>(config_.num_fields) *
           config_.field_cardinality;
  }

  CtrSample Next() {
    CtrSample s;
    s.keys.resize(config_.num_fields);
    s.dense.resize(config_.num_dense);
    double logit = -1.0;  // negative prior: clicks are rare-ish
    for (int f = 0; f < config_.num_fields; ++f) {
      const uint64_t local = zipf_[f].NextScrambled();
      s.keys[f] = GlobalKey(f, local);
      logit += HiddenWeight(s.keys[f]);
    }
    for (int d = 0; d < config_.num_dense; ++d) {
      s.dense[d] = static_cast<float>(rng_.NextGaussian());
      logit += 0.3 * HiddenDenseWeight(d) * s.dense[d];
    }
    const double p = 1.0 / (1.0 + std::exp(-logit));
    bool label = rng_.NextDouble() < p;
    if (rng_.NextDouble() < config_.label_noise) label = !label;
    s.label = label ? 1.0f : 0.0f;
    return s;
  }

  const CtrConfig& config() const { return config_; }

 private:
  // Deterministic hidden weights derived from the key: the planted model.
  double HiddenWeight(Key key) const {
    const uint64_t h = Hash64(key ^ (config_.seed * 0x9E3779B9ull));
    // Uniform in [-2, 2]: strong enough that the Bayes-optimal AUC is ~0.85
    // and convergence curves have visible headroom above chance.
    return (static_cast<double>(h >> 11) / static_cast<double>(1ull << 53) -
            0.5) * 4.0;
  }
  double HiddenDenseWeight(int d) const {
    const uint64_t h = Hash64(static_cast<uint64_t>(d) + config_.seed * 77);
    return (static_cast<double>(h >> 11) / static_cast<double>(1ull << 53) -
            0.5) * 2.0;
  }

  CtrConfig config_;
  Rng rng_;
  std::vector<ZipfianGenerator> zipf_;
};

}  // namespace mlkv
