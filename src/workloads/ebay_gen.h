// Synthetic stand-ins for the paper's two eBay production workloads
// (§IV-F, Fig. 11). Scaled down but preserving the topology class and the
// storage access pattern (see DESIGN.md substitutions):
//
//  * eBay-Trisk: payment transaction risk detection on a BIPARTITE graph —
//    transaction nodes connect to entity nodes (buyers, cards, devices).
//    Entities are heavy-tailed (a hot buyer appears in many transactions).
//  * eBay-Payout: seller payout risk on a TRIPARTITE graph of sellers,
//    items, and buyer checkouts; 1.7B nodes at eBay, scaled here.
//
// Risk labels are planted on entities: a small fraction of entities are
// "risky" and transactions touching risky entities are likely fraudulent —
// so a GNN aggregating entity embeddings genuinely learns the label, and
// AUC-vs-time curves (Fig. 11b) behave like the production task.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "kv/record.h"

namespace mlkv {

struct EbayConfig {
  uint64_t num_transactions = 500000;  // Trisk: transactions; Payout: checkouts
  uint64_t num_entities = 200000;      // buyers/cards or sellers/items
  int entities_per_transaction = 4;
  double risky_entity_fraction = 0.03;
  double zipf_theta = 0.95;            // hot entities dominate
  double label_noise = 0.05;
  uint64_t seed = 888;
  bool tripartite = false;             // Payout: seller -> item -> checkout
};

struct EbaySample {
  Key transaction;            // the node being classified
  std::vector<Key> entities;  // neighbor nodes whose embeddings are fetched
  float label;                // 1 = risky
};

class EbayGenerator {
 public:
  explicit EbayGenerator(const EbayConfig& config, uint64_t stream_seed = 0)
      : config_(config),
        rng_(config.seed * 29 + stream_seed),
        entity_zipf_(config.num_entities, config.zipf_theta,
                     config.seed + 3 + stream_seed * 7) {}

  // Key spaces: transactions occupy [0, T); entities [T, T + E).
  Key EntityKey(uint64_t entity_id) const {
    return config_.num_transactions + entity_id;
  }
  uint64_t total_keys() const {
    return config_.num_transactions + config_.num_entities;
  }

  bool IsRiskyEntity(uint64_t entity_id) const {
    const uint64_t h = Hash64(entity_id ^ (config_.seed * 601ull));
    return (static_cast<double>(h >> 11) / static_cast<double>(1ull << 53)) <
           config_.risky_entity_fraction;
  }

  EbaySample Next() {
    EbaySample s;
    s.transaction = rng_.Uniform(config_.num_transactions);
    s.entities.resize(config_.entities_per_transaction);
    int risky_count = 0;
    for (int i = 0; i < config_.entities_per_transaction; ++i) {
      uint64_t ent = entity_zipf_.NextScrambled();
      if (config_.tripartite && i > 0) {
        // Payout: later hops derive from the first entity (seller -> its
        // items/checkouts cluster), concentrating access.
        ent = Hash64(s.entities[0] * 131 + static_cast<uint64_t>(i)) %
              config_.num_entities;
      }
      s.entities[i] = EntityKey(ent);
      if (IsRiskyEntity(ent)) ++risky_count;
    }
    bool risky = risky_count > 0 && rng_.NextDouble() <
                                        (0.35 + 0.5 * risky_count /
                                                    config_.entities_per_transaction);
    if (rng_.NextDouble() < config_.label_noise) risky = !risky;
    s.label = risky ? 1.0f : 0.0f;
    return s;
  }

  const EbayConfig& config() const { return config_; }

 private:
  EbayConfig config_;
  Rng rng_;
  ZipfianGenerator entity_zipf_;
};

}  // namespace mlkv
