// YCSB-style workload generator (Cooper et al., SoCC'10), used by the
// paper's §IV-E to isolate storage-engine overheads from application code
// (Fig. 10: 50% reads / 50% writes, uniform and zipfian key distributions,
// sweeping buffer size, thread count, and value size).
//
// Beyond Fig. 10's A-style mix, the generator implements the full standard
// core suite (see YcsbStandardConfig):
//   A  50% read / 50% update           zipfian
//   B  95% read /  5% update           zipfian
//   C 100% read                        zipfian
//   D  95% read /  5% insert           latest (reads skew to recent inserts)
//   E  95% scan /  5% insert           zipfian starts, short ranges
//   F  50% read / 50% read-modify-write zipfian
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "kv/record.h"

namespace mlkv {

enum class YcsbDistribution { kUniform, kZipfian, kLatest };

enum class YcsbOpType : uint8_t { kRead, kUpdate, kInsert, kScan, kRmw };

struct YcsbConfig {
  uint64_t num_keys = 100000;  // preloaded key population [0, num_keys)
  // Operation mix; fractions must sum to <= 1, the remainder is kRead.
  double update_fraction = 0.5;
  double insert_fraction = 0.0;
  double scan_fraction = 0.0;
  double rmw_fraction = 0.0;
  YcsbDistribution distribution = YcsbDistribution::kZipfian;
  double zipf_theta = 0.99;
  uint32_t max_scan_length = 100;  // E: uniform in [1, max_scan_length]
  uint32_t value_size = 64;
  uint64_t seed = 42;
};

// The standard core workloads. `which` is 'A'..'F'.
inline YcsbConfig YcsbStandardConfig(char which, uint64_t num_keys,
                                     uint32_t value_size = 64,
                                     uint64_t seed = 42) {
  YcsbConfig c;
  c.num_keys = num_keys;
  c.value_size = value_size;
  c.seed = seed;
  switch (which) {
    case 'A':
      c.update_fraction = 0.5;
      break;
    case 'B':
      c.update_fraction = 0.05;
      break;
    case 'C':
      c.update_fraction = 0.0;
      break;
    case 'D':
      c.update_fraction = 0.0;
      c.insert_fraction = 0.05;
      c.distribution = YcsbDistribution::kLatest;
      break;
    case 'E':
      c.update_fraction = 0.0;
      c.insert_fraction = 0.05;
      c.scan_fraction = 0.95;
      break;
    case 'F':
      c.update_fraction = 0.0;
      c.rmw_fraction = 0.5;
      break;
    default:
      break;  // fall through to an A-style default
  }
  return c;
}

// Per-thread operation stream. Deterministic for (config.seed, thread_id).
// Inserted keys are thread-partitioned (num_keys + thread_id + i*threads)
// so concurrent streams never collide.
class YcsbWorkload {
 public:
  YcsbWorkload(const YcsbConfig& config, int thread_id, int num_threads = 1)
      : config_(config),
        thread_id_(static_cast<uint64_t>(thread_id)),
        num_threads_(static_cast<uint64_t>(num_threads < 1 ? 1 : num_threads)),
        rng_(config.seed * 1000003 + static_cast<uint64_t>(thread_id)),
        zipf_(config.num_keys, config.zipf_theta,
              config.seed * 7919 + static_cast<uint64_t>(thread_id)),
        latest_zipf_(config.num_keys, config.zipf_theta,
                     config.seed * 104729 + static_cast<uint64_t>(thread_id)) {
  }

  struct Op {
    YcsbOpType type = YcsbOpType::kRead;
    Key key = 0;
    uint32_t scan_length = 0;  // kScan only
    bool is_read() const { return type == YcsbOpType::kRead; }
  };

  Op Next() {
    Op op;
    const double r = rng_.NextDouble();
    double acc = config_.update_fraction;
    if (r < acc) {
      op.type = YcsbOpType::kUpdate;
    } else if (r < (acc += config_.insert_fraction)) {
      op.type = YcsbOpType::kInsert;
    } else if (r < (acc += config_.scan_fraction)) {
      op.type = YcsbOpType::kScan;
    } else if (r < (acc += config_.rmw_fraction)) {
      op.type = YcsbOpType::kRmw;
    } else {
      op.type = YcsbOpType::kRead;
    }
    if (op.type == YcsbOpType::kInsert) {
      op.key = NextInsertKey();
      return op;
    }
    op.key = SampleKey();
    if (op.type == YcsbOpType::kScan) {
      op.scan_length =
          1 + static_cast<uint32_t>(rng_.Uniform(config_.max_scan_length));
    }
    return op;
  }

  // Deterministic value for a key: benchmarks verify round-trips cheaply by
  // regenerating. The first byte encodes the key so cross-key mixups fail.
  void FillValue(Key key, uint64_t version, char* buf) const {
    const uint32_t n = config_.value_size;
    Rng rng(Hash64(key) ^ version);
    for (uint32_t i = 0; i < n; ++i) {
      buf[i] = static_cast<char>(rng.Next() & 0xff);
    }
  }

  // Keys this stream has inserted so far (loaders replay them for checks).
  uint64_t inserts_issued() const { return inserts_; }

  const YcsbConfig& config() const { return config_; }

 private:
  Key SampleKey() {
    switch (config_.distribution) {
      case YcsbDistribution::kUniform:
        return rng_.Uniform(config_.num_keys);
      case YcsbDistribution::kZipfian:
        return zipf_.NextScrambled();
      case YcsbDistribution::kLatest: {
        // Skew toward the most recently inserted keys: rank 0 = newest.
        const uint64_t newest = NewestKeyOrdinal();
        const uint64_t rank = latest_zipf_.Next();
        return rank >= newest ? 0 : OrdinalToKey(newest - rank);
      }
    }
    return 0;
  }

  // Ordinal -> key mapping including this thread's inserts: ordinals below
  // num_keys are the preloaded range, above it this thread's inserts.
  Key OrdinalToKey(uint64_t ordinal) const {
    if (ordinal < config_.num_keys) return ordinal;
    return config_.num_keys + thread_id_ +
           (ordinal - config_.num_keys) * num_threads_;
  }

  uint64_t NewestKeyOrdinal() const { return config_.num_keys + inserts_; }

  Key NextInsertKey() {
    const Key k = config_.num_keys + thread_id_ + inserts_ * num_threads_;
    ++inserts_;
    return k;
  }

  YcsbConfig config_;
  uint64_t thread_id_;
  uint64_t num_threads_;
  uint64_t inserts_ = 0;
  Rng rng_;
  ZipfianGenerator zipf_;
  ZipfianGenerator latest_zipf_;
};

}  // namespace mlkv
