// Synthetic knowledge graph for KGE link prediction (stands in for
// WikiKG2 / Freebase86M; see DESIGN.md substitutions).
//
// Entities get Zipfian degrees (real KGs are heavy-tailed). Ground truth is
// planted through latent entity clusters: relation r connects cluster
// c -> (c + r_shift) mod C, so (h, r, ?) is learnable: the correct tails
// concentrate in one cluster. Triples are generated on the fly; a held-out
// set with sampled negatives drives Hits@k.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "kv/record.h"

namespace mlkv {

struct KgConfig {
  uint64_t num_entities = 100000;
  int num_relations = 16;
  int num_clusters = 32;
  double zipf_theta = 0.8;
  double edge_noise = 0.05;  // fraction of triples with a random tail
  uint64_t seed = 321;
};

struct KgTriple {
  Key head;
  int relation;
  Key tail;
};

class KgGenerator {
 public:
  explicit KgGenerator(const KgConfig& config, uint64_t stream_seed = 0)
      : config_(config),
        rng_(config.seed * 17 + stream_seed),
        head_zipf_(config.num_entities, config.zipf_theta,
                   config.seed + 5 + stream_seed * 13) {}

  int ClusterOf(Key entity) const {
    return static_cast<int>(Hash64(entity ^ (config_.seed * 1013ull)) %
                            static_cast<uint64_t>(config_.num_clusters));
  }

  // A relation shifts clusters by a deterministic amount.
  int RelationShift(int relation) const {
    return static_cast<int>(
        Hash64(static_cast<uint64_t>(relation) + config_.seed * 3ull) %
        static_cast<uint64_t>(config_.num_clusters));
  }

  KgTriple Next() {
    KgTriple t;
    t.head = head_zipf_.NextScrambled();
    t.relation = static_cast<int>(rng_.Uniform(config_.num_relations));
    if (rng_.NextDouble() < config_.edge_noise) {
      t.tail = rng_.Uniform(config_.num_entities);
      return t;
    }
    const int target_cluster =
        (ClusterOf(t.head) + RelationShift(t.relation)) %
        config_.num_clusters;
    // Rejection-sample a tail from the target cluster (clusters are dense
    // enough that a few tries suffice; cap for safety).
    for (int tries = 0; tries < 64; ++tries) {
      const Key cand = rng_.Uniform(config_.num_entities);
      if (ClusterOf(cand) == target_cluster) {
        t.tail = cand;
        return t;
      }
    }
    t.tail = rng_.Uniform(config_.num_entities);
    return t;
  }

  // Uniform negative tail for contrastive training / evaluation.
  Key SampleNegativeTail() { return rng_.Uniform(config_.num_entities); }

  const KgConfig& config() const { return config_; }

 private:
  KgConfig config_;
  Rng rng_;
  ZipfianGenerator head_zipf_;
};

}  // namespace mlkv
