// Synthetic power-law graph with community structure for GNN node
// classification (stands in for ogbn-papers100M; see DESIGN.md).
//
// Construction is implicit (no adjacency materialization): node degrees and
// neighbor identities derive deterministically from hashes, with
// preferential attachment approximated by sampling neighbor ids with a
// power-law bias toward low ids (early nodes = hubs, as in BA graphs).
// Labels follow the node's community with noise; intra-community edges
// dominate, so neighbor aggregation genuinely helps classification.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "kv/record.h"

namespace mlkv {

struct GraphConfig {
  uint64_t num_nodes = 200000;
  int num_classes = 8;
  int fanout = 8;              // sampled neighbors per node
  double intra_community = 0.8;  // edge locality
  double label_noise = 0.1;
  uint64_t seed = 777;
};

class GraphGenerator {
 public:
  explicit GraphGenerator(const GraphConfig& config, uint64_t stream_seed = 0)
      : config_(config), rng_(config.seed * 13 + stream_seed) {}

  int CommunityOf(Key node) const {
    return static_cast<int>(Hash64(node ^ (config_.seed * 71ull)) %
                            static_cast<uint64_t>(config_.num_classes));
  }

  int LabelOf(Key node) {
    if (rng_.NextDouble() < config_.label_noise) {
      return static_cast<int>(rng_.Uniform(config_.num_classes));
    }
    return CommunityOf(node);
  }

  // Deterministic label (no noise) for held-out evaluation.
  int TrueLabelOf(Key node) const { return CommunityOf(node); }

  Key SampleTrainNode() { return rng_.Uniform(config_.num_nodes); }

  // Samples `fanout` neighbors of `node`. Mostly same-community (homophily)
  // with hub bias: neighbor ids are skewed toward low values.
  void SampleNeighbors(Key node, std::vector<Key>* out) {
    out->resize(config_.fanout);
    const int community = CommunityOf(node);
    for (int i = 0; i < config_.fanout; ++i) {
      Key nbr;
      if (rng_.NextDouble() < config_.intra_community) {
        // Rejection-sample within the community, hub-biased.
        nbr = HubBiasedNode();
        for (int tries = 0; tries < 32 && CommunityOf(nbr) != community;
             ++tries) {
          nbr = HubBiasedNode();
        }
      } else {
        nbr = HubBiasedNode();
      }
      (*out)[i] = nbr;
    }
  }

  const GraphConfig& config() const { return config_; }

 private:
  // P(id) ~ 1/sqrt(id+1): hubs at small ids, like preferential attachment.
  Key HubBiasedNode() {
    const double u = rng_.NextDouble();
    const double x = u * u * static_cast<double>(config_.num_nodes - 1);
    return static_cast<Key>(x);
  }

  GraphConfig config_;
  Rng rng_;
};

}  // namespace mlkv
