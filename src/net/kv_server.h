// KvServer: a multi-threaded TCP embedding server exposing any KvBackend
// over the net/ wire protocol — the deployment shape the paper assumes
// (trainers and inference replicas sharing one live store as a service).
//
// Threading model: one accept-loop thread plus a configurable worker pool.
// Each worker slot serves one connection at a time, request-by-request
// (the protocol is strictly request/response per connection; concurrency
// comes from connections, matching RemoteBackend's pooled client sockets —
// one checked out per in-flight batch). With more connections than
// workers, quiet connections are requeued between frames (a short idle
// poll) so the pool round-robins over all of them — excess connections
// see added latency, never starvation. Size num_workers to the expected
// number of concurrently batching clients to avoid the requeue path.
//
// Stop() is graceful: it wakes the blocking accept, half-closes the read
// side of every active connection so in-flight requests finish and get
// their responses, then joins all threads. Per-opcode op counters and a
// request-latency Histogram are served both in-process (stats()) and over
// the wire (Opcode::kStats).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "cluster/cluster_map.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlkv {
namespace net {

struct KvServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;       // 0 = ephemeral; the bound port is port()
  size_t num_workers = 4;  // connections served concurrently
  int backlog = 64;
  // A response send blocked this long (client stopped reading) fails and
  // closes the connection instead of wedging the worker — without it, a
  // non-reading peer could also hang Stop()'s drain (SHUT_RD unblocks
  // reads, not sends). 0 disables.
  int send_timeout_ms = 10000;
  // Storage-request offload: with N > 0, MultiGet / MultiPut /
  // MultiApplyGradient requests are handed (connection and all) to a pool
  // of N executor threads, so the worker that decoded the frame goes back
  // to serving other connections while the request's storage phase —
  // possibly an async cold-read wave — completes; the executor sends the
  // response and requeues the connection. 0 (default) serves every
  // request inline on its worker, the classic model.
  size_t request_threads = 0;
  // Cluster mode (see docs/CLUSTER.md): the routing map this server
  // enforces and its own index into the map's endpoints. With a map set,
  // storage requests for keys this endpoint does not own come back with
  // per-key kWrongPartition codes (writes need the partition's primary;
  // reads accept its replicas too), the handshake advertises the map's
  // epoch, and kClusterMap serves the map. Null = standalone (default),
  // nothing enforced. Both can also be swapped at runtime via
  // UpdateClusterMap (the epoch-bump path).
  std::shared_ptr<const cluster::ClusterMap> cluster;
  uint32_t self_endpoint = UINT32_MAX;
  // Metrics registry this server records into. Null (default) gives the
  // server a private registry — two servers in one process (tests,
  // loopback clusters) never merge counters. The server registers a
  // scrape-time collector for its gauges and the backend's families;
  // metrics() exposes whichever registry is in effect (feed it to a
  // MetricsHttpServer for a /metrics endpoint).
  obs::MetricsRegistry* metrics = nullptr;
  // Per-request trace spans (decode -> queue_wait -> execute -> scatter ->
  // shard_execute -> io_wave -> send), feeding the
  // mlkv_request_stage_seconds{stage=} histograms and the slow-request
  // log. Off = zero per-request overhead beyond the counters.
  bool enable_tracing = true;
  // A traced request slower than this (microseconds, measured decode to
  // response-sent) logs its full span breakdown. 0 (default) derives the
  // threshold from trailing latency: p99 x 4 with a 1ms floor, armed after
  // 64 requests of warmup.
  uint64_t slow_request_us = 0;
  // Destination for slow-request reports; null writes to stderr. The
  // callback runs on the request's worker thread — keep it cheap.
  std::function<void(const std::string&)> slow_request_log;
};

class KvServer {
 public:
  // Takes ownership of the backend: any engine behind the KvBackend seam
  // is servable unmodified.
  KvServer(std::unique_ptr<KvBackend> backend, KvServerOptions options = {});
  ~KvServer();  // implies Stop()

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  Status Start();
  // Graceful: unblocks the accept loop, drains in-flight requests (each
  // active connection finishes its current request and receives the
  // response), joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return listener_.port(); }
  std::string addr() const;
  KvBackend* backend() const { return backend_.get(); }

  // The wire StatsSnapshot is now a view over the metrics registry: the
  // op counters, connection/request/error counts, and latency percentiles
  // are read back out of their cells, so kStats and /metrics can never
  // disagree. (With SetMetricsEnabled(false) the cells freeze and so does
  // this snapshot.)
  StatsSnapshot stats() const;
  const Histogram& request_latency() const {
    return latency_cell_->histogram();
  }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // Swaps the enforced cluster map (and this server's endpoint index under
  // the new map) — the epoch-bump path. Thread-safe; in-flight requests
  // finish under whichever map they snapshotted.
  void UpdateClusterMap(std::shared_ptr<const cluster::ClusterMap> map,
                        uint32_t self_endpoint);
  std::shared_ptr<const cluster::ClusterMap> cluster_map() const;

  // Augments stats() snapshots with externally owned counters (a replica's
  // Replicator feeds replicated_records / replica_lag_records through
  // this). Set before Start(); not synchronized against concurrent stats().
  void SetStatsSource(std::function<void(StatsSnapshot*)> source) {
    stats_source_ = std::move(source);
  }

 private:
  void AcceptLoop();
  void WorkerLoop(size_t slot);
  void ServeConnection(Socket conn, size_t slot);
  // Handles one decoded request frame; false ends the connection.
  // `enqueued_us` is non-zero when the frame waited in the request pool
  // (traced as a queue_wait span).
  bool HandleRequest(Socket* conn, const FrameHeader& hdr,
                     std::span<const uint8_t> payload,
                     uint64_t enqueued_us = 0);
  Status SendResponse(Socket* conn, const FrameHeader& req,
                      const Status& transport, const PayloadWriter& body);
  // As above, plus trailing row runs gathered into the same frame (a
  // MultiGet's served rows, aliased from the backend's output buffer).
  // `rows` rides only when the transport status is OK, like `body`.
  Status SendResponse(Socket* conn, const FrameHeader& req,
                      const Status& transport, const PayloadWriter& body,
                      std::span<const std::span<const uint8_t>> rows);

  // One offloaded storage request: the executor owns the connection until
  // the response is sent, then requeues it (or closes it when stopping).
  struct OffloadedRequest {
    Socket conn;
    FrameHeader hdr;
    std::vector<uint8_t> payload;
    uint64_t enqueued_us = 0;  // pool handoff time, for the queue_wait span
  };
  void RunOffloaded(const std::shared_ptr<OffloadedRequest>& req);

  // Snapshot of the current map + self index (one shared_ptr copy per
  // storage request when a map is set).
  struct ClusterView {
    std::shared_ptr<const cluster::ClusterMap> map;
    uint32_t self = UINT32_MAX;
  };
  ClusterView cluster_view() const;
  // This endpoint's role under `map`: 0 standalone, 1 primary, 2 replica.
  static uint8_t RoleUnder(const cluster::ClusterMap& map, uint32_t self);

  std::unique_ptr<KvBackend> backend_;
  const KvServerOptions options_;

  mutable std::mutex cluster_mu_;
  std::shared_ptr<const cluster::ClusterMap> cluster_;
  uint32_t self_endpoint_ = UINT32_MAX;
  std::function<void(StatsSnapshot*)> stats_source_;

  ListenSocket listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  // Active connection fd per worker slot (-1 when idle), so Stop() can
  // half-close reads to drain blocked workers. Mutex-guarded — and the
  // worker closes its socket under the same lock — so Stop() can never
  // shutdown() an fd the worker just closed (and the kernel reused).
  std::mutex slots_mu_;
  std::vector<int> slot_fds_;

  std::mutex mu_;
  std::condition_variable pending_cv_;
  std::deque<Socket> pending_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Storage-request executors (request_threads > 0); tasks in flight are
  // drained by Stop() before the final pending_ sweep.
  std::unique_ptr<ThreadPool> request_pool_;
  std::atomic<size_t> inflight_requests_{0};

  // Wires registry cells (looked up once at construction; recording is
  // lock-free) and the scrape-time collector for gauges + backend families.
  void InitMetrics();
  void CollectServerMetrics(obs::MetricsSink* sink) const;
  // Post-response trace epilogue: stage histograms + slow-request log.
  void FinishTrace(obs::RequestTrace* trace);

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  uint64_t collector_id_ = 0;

  // Registry cells behind the legacy counters (slot 0 of op_cells_ is
  // unused — opcodes start at 1).
  std::array<obs::Counter*, kOpcodeSlots> op_cells_{};
  obs::Counter* connections_cell_ = nullptr;
  obs::Counter* requests_cell_ = nullptr;
  obs::Counter* transport_errors_cell_ = nullptr;
  obs::Counter* wrong_partition_cell_ = nullptr;
  obs::HistogramCell* latency_cell_ = nullptr;  // microseconds recorded
  obs::MetricFamily* stage_family_ = nullptr;   // per-stage span timings

  // Known stage names resolved to their cells once at InitMetrics:
  // FinishTrace runs per request, and a family map probe per span is
  // measurable in the --metrics_overhead A/B. Unknown stages fall back to
  // the family lookup.
  static constexpr size_t kMaxStageCells = 12;
  std::array<std::pair<const char*, obs::HistogramCell*>, kMaxStageCells>
      stage_cells_{};
  size_t num_stage_cells_ = 0;

  // Cached auto slow-request threshold (slow_request_us == 0): the p99
  // walk over the latency histogram's buckets is too heavy to repeat per
  // request, so it refreshes every 256 requests.
  mutable std::atomic<uint64_t> auto_threshold_{0};
  mutable std::atomic<uint64_t> auto_threshold_refresh_{0};
};

}  // namespace net
}  // namespace mlkv
