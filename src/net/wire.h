// Versioned length-prefixed binary wire protocol for the embedding-store
// RPC subsystem (net/). One frame per request or response:
//
//   | magic u32 | version u8 | opcode u8 | flags u16 | request_id u64 |
//   | payload_len u32 | payload bytes ... |
//
// All integers are explicit little-endian regardless of host byte order,
// decoded with bounds-checked readers — a corrupt or truncated frame is a
// Status::Corruption, never an out-of-bounds read. The payload encodings
// mirror the batch-first KvBackend seam: one MultiGet / MultiPut /
// MultiApplyGradient frame per minibatch phase, with the per-key
// BatchResult codes and found/missing/busy/failed counts serialized back
// in every response, so a remote store reports exactly what the in-process
// seam reports.
//
// Response framing: every response echoes the request's opcode and
// request_id with kFlagResponse set, and its payload begins with a
// transport-level status (code + message). The op-specific body follows
// only when that status is OK — per-key outcomes (missing keys, staleness
// aborts) live inside the body's BatchResult and leave the transport
// status OK.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/batch_result.h"
#include "common/status.h"
#include "kv/record.h"
#include "kv/update_log.h"

namespace mlkv {
namespace net {

// "MLKV" when the little-endian u32 is viewed as bytes.
inline constexpr uint32_t kWireMagic = 0x564B4C4Du;
// v2: kStats responses carry the backend's storage-I/O block (disk record
// reads, page traffic, pending-pipeline counters) after the server fields.
// v3: the storage-I/O block grows four write-pipeline counters (flush-wave
// submissions/completions, fsyncs, group commits).
// v4: cluster mode — handshakes carry the cluster epoch + role, kClusterMap
// serves the routing map, kSubscribe/kReplicate ship the committed-update
// feed to replicas, kStats grows replication counters, and responses may
// carry per-key kWrongPartition codes.
// v5: kStats responses carry the server's selected SIMD kernel tier. The
// MultiGet response bytes are unchanged, but servers now gather the served
// rows straight from the backend's buffer (see CollectServedRowRuns) instead
// of copy-encoding them — byte-identical on the wire.
inline constexpr uint8_t kWireVersion = 5;
inline constexpr size_t kFrameHeaderSize = 20;
// Upper bound on a single payload; a header announcing more is corrupt
// (or hostile) and the connection is dropped before any allocation.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

enum class Opcode : uint8_t {
  kHandshake = 1,  // negotiate dim / shard_bits / backend name
  kMultiGet = 2,
  kMultiPut = 3,
  kMultiApplyGradient = 4,
  kLookahead = 5,
  kStats = 6,
  kPing = 7,
  kClusterMap = 8,  // fetch the current ClusterMap (routing table + epoch)
  kSubscribe = 9,   // replica: learn the primary's shard count + watermarks
  kReplicate = 10,  // replica: poll one shard's committed-update feed
};
// Dense per-opcode counter arrays index by the raw opcode value.
inline constexpr size_t kOpcodeSlots = 11;

inline bool ValidOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kHandshake) &&
         raw <= static_cast<uint8_t>(Opcode::kReplicate);
}

const char* OpcodeName(Opcode op);

inline constexpr uint16_t kFlagResponse = 1u << 0;

struct FrameHeader {
  uint8_t version = kWireVersion;
  Opcode opcode = Opcode::kPing;
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

void EncodeFrameHeader(const FrameHeader& h, uint8_t out[kFrameHeaderSize]);
// Rejects bad magic / oversized payloads as Corruption and an unknown
// version as NotSupported (the caller can still answer with the echoed
// request_id, since the rest of the header decoded).
Status DecodeFrameHeader(const uint8_t in[kFrameHeaderSize], FrameHeader* out);

// --- bounds-checked payload primitives -----------------------------------

class PayloadWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F32(float v);
  void Floats(const float* v, size_t n);
  void Keys(std::span<const Key> keys);  // count u32 + count u64s
  void Str(std::string_view s);          // length u16 + bytes
  void StatusOf(const Status& s);        // code u8 + message Str
  void Bytes(const uint8_t* p, size_t n);  // raw bytes, no length prefix

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Every Read* returns false once the buffer is exhausted; decoders turn
// that into Status::Corruption("truncated payload") exactly once at the
// end instead of checking each primitive.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t n) : p_(data), end_(data + n) {}
  explicit PayloadReader(std::span<const uint8_t> payload)
      : PayloadReader(payload.data(), payload.size()) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool F32(float* v);
  bool Floats(float* out, size_t n);
  bool Keys(std::vector<Key>* out);  // count-prefixed, bounds-checked
  bool Str(std::string* out);
  bool ReadStatus(Status* out);
  bool Bytes(uint8_t* out, size_t n);  // raw bytes, caller-sized

  bool ok() const { return !failed_; }
  bool AtEnd() const { return !failed_ && p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  // Corruption unless every read succeeded and consumed the whole payload
  // (trailing garbage means the two sides disagree about the encoding).
  Status Finish(const char* what) const;

 private:
  bool Take(size_t n, const uint8_t** out);
  const uint8_t* p_;
  const uint8_t* end_;
  bool failed_ = false;
};

// --- message payloads ----------------------------------------------------

struct HandshakeInfo {
  uint32_t dim = 0;
  uint32_t shard_bits = 0;
  std::string backend_name;
  // Cluster fields (v4). epoch 0 = standalone server (no map to fetch);
  // anything else invites the client to issue kClusterMap and route by
  // partition. role: 0 standalone, 1 primary (of >=1 partition), 2 replica.
  uint64_t cluster_epoch = 0;
  uint8_t cluster_role = 0;
};

void EncodeHandshakeInfo(const HandshakeInfo& h, PayloadWriter* w);
Status DecodeHandshakeInfo(PayloadReader* r, HandshakeInfo* out);

struct MultiGetRequest {
  bool init_missing = true;
  bool untracked = false;
  std::vector<Key> keys;
};

void EncodeMultiGetRequest(std::span<const Key> keys, bool init_missing,
                           bool untracked, PayloadWriter* w);
inline void EncodeMultiGetRequest(const MultiGetRequest& q,
                                  PayloadWriter* w) {
  EncodeMultiGetRequest(q.keys, q.init_missing, q.untracked, w);
}
Status DecodeMultiGetRequest(std::span<const uint8_t> payload,
                             MultiGetRequest* out);

// MultiPut and MultiApplyGradient share one shape: keys + one dim-float
// row per key (values or gradients) + lr (ignored by Put).
struct MultiWriteRequest {
  float lr = 0.0f;
  std::vector<Key> keys;
  std::vector<float> rows;  // keys.size() * dim floats
};

void EncodeMultiWriteRequest(std::span<const Key> keys, const float* rows,
                             uint32_t dim, float lr, PayloadWriter* w);
// The request minus its row block (lr + keys). On little-endian hosts
// (kRawFloatRowsMatchWire) the rows' in-memory bytes already are their
// wire encoding, so the caller sends this header plus the raw row bytes
// as a gathered two-piece frame — the write path's counterpart of
// CollectServedRowRuns, sparing one full-row-block copy per request.
void EncodeMultiWriteRequestHeader(std::span<const Key> keys, float lr,
                                   PayloadWriter* w);
// `dim` cross-checks the row block against the key count.
Status DecodeMultiWriteRequest(std::span<const uint8_t> payload, uint32_t dim,
                               MultiWriteRequest* out);

void EncodeLookaheadRequest(std::span<const Key> keys, PayloadWriter* w);
Status DecodeLookaheadRequest(std::span<const uint8_t> payload,
                              std::vector<Key>* out);

// Per-key codes as u8s plus the summary counts. The counts ride explicitly
// because they are not derivable from the codes (an initialized missing key
// is code kOk but counted missing).
void EncodeBatchResult(const BatchResult& r, PayloadWriter* w);
Status DecodeBatchResult(PayloadReader* r, BatchResult* out);

// MultiGet response body: BatchResult, then the served rows packed in key
// order — one dim-float row per kOk code, nothing for the rest (their
// output rows are unspecified by contract, so they never cross the wire).
void EncodeMultiGetResponse(const BatchResult& r, const float* rows,
                            uint32_t dim, PayloadWriter* w);

// The copy-encode row half of EncodeMultiGetResponse on its own: appends
// the dim-float row of every kOk code in `codes` to `w`. Kept as the
// big-endian fallback and as the byte-identity reference the gather path
// is tested against.
void EncodeServedRows(std::span<const Status::Code> codes, const float* rows,
                      uint32_t dim, PayloadWriter* w);

// True when a float row's in-memory bytes already are its wire encoding
// (the wire is explicitly little-endian), so served rows can ride the
// response as iovecs over the backend's buffer with no encode copy.
inline constexpr bool kRawFloatRowsMatchWire =
    std::endian::native == std::endian::little;

// Zero-copy counterpart of EncodeServedRows, valid only when
// kRawFloatRowsMatchWire: appends the byte runs of the served rows to
// `runs`, coalescing consecutive kOk rows so the all-hit warm path is a
// single span over the whole buffer. The spans alias `rows`, which must
// stay alive until the gathered send completes.
void CollectServedRowRuns(std::span<const Status::Code> codes,
                          const float* rows, uint32_t dim,
                          std::vector<std::span<const uint8_t>>* runs);
// Scatters served rows to `out` (n_keys * dim floats, caller-owned);
// rows whose code is not kOk are left untouched.
Status DecodeMultiGetResponse(PayloadReader* r, size_t n_keys, uint32_t dim,
                              BatchResult* result, float* out);

struct StatsSnapshot {
  uint64_t op_counts[kOpcodeSlots] = {};
  uint64_t connections = 0;
  uint64_t requests = 0;
  uint64_t transport_errors = 0;
  uint64_t latency_p50_us = 0;
  uint64_t latency_p99_us = 0;
  // Storage-I/O behavior of the served backend (KvBackend::io_stats();
  // zeros for engines without a disk pipeline), so remote operators see
  // disk-read and pending-pipeline counters without host access.
  uint64_t disk_record_reads = 0;
  uint64_t pages_flushed = 0;
  uint64_t pages_evicted = 0;
  uint64_t async_reads_submitted = 0;
  uint64_t async_reads_completed = 0;
  uint64_t async_reads_refetched = 0;
  // Write pipeline (wire v3): flush-wave traffic, fsyncs, group commits.
  uint64_t async_writes_submitted = 0;
  uint64_t async_writes_completed = 0;
  uint64_t fsyncs = 0;
  uint64_t group_commits = 0;
  // Replication (wire v4): records applied from a primary's feed, records
  // fetched but not yet applied (0 when caught up), and primary-connection
  // re-establishments. All zero on a non-replica server.
  uint64_t replicated_records = 0;
  uint64_t replica_lag_records = 0;
  uint64_t replication_reconnects = 0;
  // SIMD dispatch tier the server's kernels run on (wire v5): a
  // simd::KernelTier value, so remote operators can confirm what the
  // feature check picked without host access.
  uint8_t kernel_tier = 0;
};

void EncodeStatsSnapshot(const StatsSnapshot& s, PayloadWriter* w);
Status DecodeStatsSnapshot(PayloadReader* r, StatsSnapshot* out);

// --- replication payloads (wire v4) --------------------------------------

// kSubscribe request is empty; the response describes the primary's feed
// topology so a replica can size its per-shard resume tokens.
struct SubscribeResponse {
  std::vector<uint64_t> shard_durables;  // index = shard, value = durable addr
};

void EncodeSubscribeResponse(const SubscribeResponse& s, PayloadWriter* w);
Status DecodeSubscribeResponse(PayloadReader* r, SubscribeResponse* out);

// kReplicate: one poll of a single shard's committed-update feed, starting
// at the caller's resume token `from` (0 = oldest retained update).
struct ReplicateRequest {
  uint32_t shard = 0;
  uint64_t from = 0;
  uint32_t max_records = 0;  // server clamps; 0 = watermark probe only
  uint32_t max_bytes = 0;    // server clamps under the frame cap
};

void EncodeReplicateRequest(const ReplicateRequest& q, PayloadWriter* w);
Status DecodeReplicateRequest(std::span<const uint8_t> payload,
                              ReplicateRequest* out);

// Entries ride in log-address order. `next_from` is the resume token after
// the last entry; `durable` is the shard's durable watermark at poll time
// (next_from < durable means more entries are immediately available).
struct ReplicateResponse {
  uint64_t next_from = 0;
  uint64_t durable = 0;
  std::vector<UpdateEntry> entries;
};

void EncodeReplicateResponse(const ReplicateResponse& s, PayloadWriter* w);
Status DecodeReplicateResponse(PayloadReader* r, ReplicateResponse* out);

}  // namespace net
}  // namespace mlkv
