#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <limits.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mlkv {
namespace net {

namespace {

Status ResolveIpv4(const std::string& host, uint16_t port,
                   sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1) {
    return Status::OK();
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::IOError("resolve " + host + ": " + ::gai_strerror(rc));
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Status ParseHostPort(const std::string& addr, std::string* host,
                     uint16_t* port, bool allow_port_zero) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("address '" + addr +
                                   "' is not host:port");
  }
  *host = colon == 0 ? "127.0.0.1" : addr.substr(0, colon);
  const std::string port_str = addr.substr(colon + 1);
  char* end = nullptr;
  const unsigned long p = std::strtoul(port_str.c_str(), &end, 10);
  if (port_str.empty() || end == nullptr || *end != '\0' || p > 65535 ||
      (p == 0 && !allow_port_zero)) {
    return Status::InvalidArgument("bad port in address '" + addr + "'");
  }
  *port = static_cast<uint16_t>(p);
  return Status::OK();
}

Status ParseEndpointList(const std::string& list,
                         std::vector<std::string>* out) {
  out->clear();
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    size_t b = start, e = comma;
    while (b < e && std::isspace(static_cast<unsigned char>(list[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(list[e - 1]))) --e;
    const std::string entry = list.substr(b, e - b);
    if (entry.empty()) {
      return Status::InvalidArgument("endpoint list '" + list +
                                     "' has an empty entry");
    }
    std::string host;
    uint16_t port = 0;
    MLKV_RETURN_NOT_OK(ParseHostPort(entry, &host, &port));
    out->push_back(host + ":" + std::to_string(port));
    start = comma + 1;
  }
  return Status::OK();
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

Status Socket::Connect(const std::string& host, uint16_t port, Socket* out) {
  sockaddr_in sa;
  MLKV_RETURN_NOT_OK(ResolveIpv4(host, port, &sa));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket", errno);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc != 0 && errno == EINTR) {
    // A signal-interrupted connect keeps completing asynchronously —
    // retrying connect() would misreport EALREADY as failure. Wait for
    // writability and read the real outcome from SO_ERROR.
    pollfd p = {fd, POLLOUT, 0};
    int prc;
    do {
      prc = ::poll(&p, 1, -1);
    } while (prc < 0 && errno == EINTR);
    int err = prc < 0 ? errno : 0;
    if (prc >= 0) {
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        err = errno;
      }
    }
    if (err != 0) {
      ::close(fd);
      return Status::IOError(
          "connect " + host + ":" + std::to_string(port), err);
    }
    rc = 0;
  }
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(
        "connect " + host + ":" + std::to_string(port), err);
  }
  SetNoDelay(fd);
  *out = Socket(fd);
  return Status::OK();
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

Status Socket::SetSendTimeoutMs(int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError("setsockopt(SO_SNDTIMEO)", errno);
  }
  return Status::OK();
}

Status Socket::SendAll(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  while (left > 0) {
    const ssize_t w = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send", errno);
    }
    p += w;
    left -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Socket::SendIov(iovec* iov, int count) {
  // The kernel rejects sendmsg with more than IOV_MAX (1024 on Linux)
  // segments, and a gathered MultiGet response with holes can exceed that;
  // cap each call and let the outer loop walk the rest.
#ifdef IOV_MAX
  constexpr int kMaxSegments = IOV_MAX;
#else
  constexpr int kMaxSegments = 1024;
#endif
  int idx = 0;
  while (idx < count) {
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    msghdr msg{};
    msg.msg_iov = &iov[idx];
    msg.msg_iovlen = static_cast<size_t>(std::min(count - idx, kMaxSegments));
    const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("sendmsg", errno);
    }
    size_t done = static_cast<size_t>(w);
    while (idx < count && done >= iov[idx].iov_len) {
      done -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + done;
      iov[idx].iov_len -= done;
    }
  }
  return Status::OK();
}

Status Socket::SendTwo(const void* a, size_t an, const void* b, size_t bn) {
  iovec iov[2] = {{const_cast<void*>(a), an}, {const_cast<void*>(b), bn}};
  return SendIov(iov, 2);
}

Status Socket::SendThree(const void* a, size_t an, const void* b, size_t bn,
                         const void* c, size_t cn) {
  iovec iov[3] = {{const_cast<void*>(a), an},
                  {const_cast<void*>(b), bn},
                  {const_cast<void*>(c), cn}};
  return SendIov(iov, 3);
}

Status Socket::WaitReadable(int timeout_ms) {
  for (;;) {
    pollfd fds = {fd_, POLLIN, 0};
    const int rc = ::poll(&fds, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll", errno);
    }
    if (rc == 0) return Status::TimedOut("socket quiet");
    return Status::OK();  // readable — possibly EOF; recv disambiguates
  }
}

Status Socket::RecvAll(void* data, size_t n, bool eof_ok) {
  char* p = static_cast<char*>(data);
  size_t left = n;
  while (left > 0) {
    const ssize_t r = ::recv(fd_, p, left, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv", errno);
    }
    if (r == 0) {
      if (eof_ok && left == n) {
        return Status::Aborted("connection closed by peer");
      }
      return Status::Corruption("wire: connection closed mid-frame");
    }
    p += r;
    left -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status SendFrame(Socket* s, const FrameHeader& hdr,
                 std::span<const uint8_t> payload) {
  // Mirror the receive-side cap before anything hits the wire: shipping
  // an oversized frame would only be rejected by the peer as corruption
  // (and desync the stream past the u32 length field).
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "wire: payload of " + std::to_string(payload.size()) +
        " bytes exceeds the frame limit; chunk the batch");
  }
  uint8_t header[kFrameHeaderSize];
  EncodeFrameHeader(hdr, header);
  return s->SendTwo(header, sizeof(header), payload.data(), payload.size());
}

Status SendFrame(Socket* s, Opcode op, uint16_t flags, uint64_t request_id,
                 std::span<const uint8_t> payload) {
  FrameHeader hdr;
  hdr.opcode = op;
  hdr.flags = flags;
  hdr.request_id = request_id;
  hdr.payload_len = static_cast<uint32_t>(payload.size());
  return SendFrame(s, hdr, payload);
}

Status SendFrame(Socket* s, Opcode op, uint16_t flags, uint64_t request_id,
                 std::span<const uint8_t> prefix,
                 std::span<const uint8_t> body) {
  const size_t total = prefix.size() + body.size();
  if (total > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "wire: payload of " + std::to_string(total) +
        " bytes exceeds the frame limit; chunk the batch");
  }
  FrameHeader hdr;
  hdr.opcode = op;
  hdr.flags = flags;
  hdr.request_id = request_id;
  hdr.payload_len = static_cast<uint32_t>(total);
  uint8_t header[kFrameHeaderSize];
  EncodeFrameHeader(hdr, header);
  return s->SendThree(header, sizeof(header), prefix.data(), prefix.size(),
                      body.data(), body.size());
}

Status SendFrame(Socket* s, Opcode op, uint16_t flags, uint64_t request_id,
                 std::span<const uint8_t> prefix, std::span<const uint8_t> body,
                 std::span<const std::span<const uint8_t>> rows) {
  size_t total = prefix.size() + body.size();
  for (const std::span<const uint8_t> run : rows) total += run.size();
  if (total > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "wire: payload of " + std::to_string(total) +
        " bytes exceeds the frame limit; chunk the batch");
  }
  FrameHeader hdr;
  hdr.opcode = op;
  hdr.flags = flags;
  hdr.request_id = request_id;
  hdr.payload_len = static_cast<uint32_t>(total);
  uint8_t header[kFrameHeaderSize];
  EncodeFrameHeader(hdr, header);
  std::vector<iovec> iov;
  iov.reserve(3 + rows.size());
  iov.push_back({header, sizeof(header)});
  iov.push_back({const_cast<uint8_t*>(prefix.data()), prefix.size()});
  iov.push_back({const_cast<uint8_t*>(body.data()), body.size()});
  for (const std::span<const uint8_t> run : rows) {
    iov.push_back({const_cast<uint8_t*>(run.data()), run.size()});
  }
  return s->SendIov(iov.data(), static_cast<int>(iov.size()));
}

Status RecvFrame(Socket* s, FrameHeader* hdr, std::vector<uint8_t>* payload) {
  uint8_t raw[kFrameHeaderSize];
  MLKV_RETURN_NOT_OK(s->RecvAll(raw, sizeof(raw), /*eof_ok=*/true));
  const Status decoded = DecodeFrameHeader(raw, hdr);
  // A version mismatch still describes a well-framed payload: drain it so
  // the caller may answer on an intact stream. Anything else is torn.
  if (!decoded.ok() && !decoded.IsNotSupported()) return decoded;
  payload->resize(hdr->payload_len);
  MLKV_RETURN_NOT_OK(s->RecvAll(payload->data(), payload->size()));
  return decoded;
}

Status ListenSocket::Listen(const std::string& host, uint16_t port,
                            int backlog) {
  Close();
  sockaddr_in sa;
  MLKV_RETURN_NOT_OK(ResolveIpv4(host, port, &sa));
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IOError("socket", errno);
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const Status s = Status::IOError(
        "bind " + host + ":" + std::to_string(port), errno);
    Close();
    return s;
  }
  if (::listen(fd_, backlog) != 0) {
    const Status s = Status::IOError("listen", errno);
    Close();
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s = Status::IOError("getsockname", errno);
    Close();
    return s;
  }
  port_ = ntohs(bound.sin_port);
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    const Status s = Status::IOError("pipe", errno);
    Close();
    return s;
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  woken_.store(false, std::memory_order_relaxed);
  return Status::OK();
}

Status ListenSocket::Accept(Socket* out) {
  for (;;) {
    if (woken_.load(std::memory_order_acquire)) {
      return Status::Aborted("listener woken");
    }
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll", errno);
    }
    if (fds[1].revents != 0) return Status::Aborted("listener woken");
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Status::IOError("accept", errno);
    }
    SetNoDelay(fd);
    *out = Socket(fd);
    return Status::OK();
  }
}

void ListenSocket::Wake() {
  woken_.store(true, std::memory_order_release);
  if (wake_wr_ >= 0) {
    const char b = 0;
    // Best-effort: the pipe is never full in practice (one byte per Wake),
    // and `woken_` already guarantees eventual exit.
    (void)!::write(wake_wr_, &b, 1);
  }
}

void ListenSocket::Close() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  fd_ = wake_rd_ = wake_wr_ = -1;
  port_ = 0;
}

}  // namespace net
}  // namespace mlkv
