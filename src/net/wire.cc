#include "net/wire.h"

#include <cstring>

namespace mlkv {
namespace net {

namespace {

void PutU16(std::vector<uint8_t>* b, uint16_t v) {
  b->push_back(static_cast<uint8_t>(v));
  b->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* b, uint64_t v) {
  for (int i = 0; i < 8; ++i) b->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

// Status codes arrive from an untrusted peer; an out-of-range byte must
// be rejected here, not fed to Status::ToString()'s name table.
bool ValidStatusCode(uint8_t c) {
  return c <= static_cast<uint8_t>(Status::Code::kWrongPartition);
}

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHandshake: return "Handshake";
    case Opcode::kMultiGet: return "MultiGet";
    case Opcode::kMultiPut: return "MultiPut";
    case Opcode::kMultiApplyGradient: return "MultiApplyGradient";
    case Opcode::kLookahead: return "Lookahead";
    case Opcode::kStats: return "Stats";
    case Opcode::kPing: return "Ping";
    case Opcode::kClusterMap: return "ClusterMap";
    case Opcode::kSubscribe: return "Subscribe";
    case Opcode::kReplicate: return "Replicate";
  }
  return "?";
}

void EncodeFrameHeader(const FrameHeader& h, uint8_t out[kFrameHeaderSize]) {
  uint8_t* p = out;
  for (int i = 0; i < 4; ++i) *p++ = static_cast<uint8_t>(kWireMagic >> (8 * i));
  *p++ = h.version;
  *p++ = static_cast<uint8_t>(h.opcode);
  *p++ = static_cast<uint8_t>(h.flags);
  *p++ = static_cast<uint8_t>(h.flags >> 8);
  for (int i = 0; i < 8; ++i) {
    *p++ = static_cast<uint8_t>(h.request_id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    *p++ = static_cast<uint8_t>(h.payload_len >> (8 * i));
  }
}

Status DecodeFrameHeader(const uint8_t in[kFrameHeaderSize], FrameHeader* out) {
  if (LoadU32(in) != kWireMagic) {
    return Status::Corruption("wire: bad frame magic");
  }
  out->version = in[4];
  out->opcode = static_cast<Opcode>(in[5]);
  out->flags = static_cast<uint16_t>(in[6] | in[7] << 8);
  out->request_id = LoadU64(in + 8);
  out->payload_len = LoadU32(in + 16);
  if (out->payload_len > kMaxPayloadBytes) {
    return Status::Corruption("wire: payload length " +
                              std::to_string(out->payload_len) +
                              " exceeds limit");
  }
  // Version-checked after the structural fields so the caller still has
  // the request_id to answer a mismatched peer with.
  if (out->version != kWireVersion) {
    return Status::NotSupported("wire: version " +
                                std::to_string(out->version) + ", expected " +
                                std::to_string(kWireVersion));
  }
  return Status::OK();
}

// --- PayloadWriter -------------------------------------------------------

void PayloadWriter::U16(uint16_t v) { PutU16(&buf_, v); }
void PayloadWriter::U32(uint32_t v) { PutU32(&buf_, v); }
void PayloadWriter::U64(uint64_t v) { PutU64(&buf_, v); }

void PayloadWriter::F32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(&buf_, bits);
}

void PayloadWriter::Floats(const float* v, size_t n) {
  // Bulk rows are the bytes that dominate MultiGet/MultiPut frames. On a
  // little-endian host the in-memory floats already are the wire encoding,
  // so the whole block is one memcpy; the per-word store loop remains the
  // byte-order-correct fallback.
  const size_t start = buf_.size();
  buf_.resize(start + n * 4);
  uint8_t* p = buf_.data() + start;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, v, n * 4);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    uint32_t bits;
    std::memcpy(&bits, &v[i], sizeof(bits));
    p[0] = static_cast<uint8_t>(bits);
    p[1] = static_cast<uint8_t>(bits >> 8);
    p[2] = static_cast<uint8_t>(bits >> 16);
    p[3] = static_cast<uint8_t>(bits >> 24);
    p += 4;
  }
}

void PayloadWriter::Keys(std::span<const Key> keys) {
  U32(static_cast<uint32_t>(keys.size()));
  for (const Key k : keys) U64(k);
}

void PayloadWriter::Str(std::string_view s) {
  const size_t n = std::min<size_t>(s.size(), UINT16_MAX);
  U16(static_cast<uint16_t>(n));
  buf_.insert(buf_.end(), s.begin(), s.begin() + n);
}

void PayloadWriter::StatusOf(const Status& s) {
  U8(static_cast<uint8_t>(s.code()));
  Str(s.message());
}

void PayloadWriter::Bytes(const uint8_t* p, size_t n) {
  buf_.insert(buf_.end(), p, p + n);
}

// --- PayloadReader -------------------------------------------------------

bool PayloadReader::Take(size_t n, const uint8_t** out) {
  if (failed_ || static_cast<size_t>(end_ - p_) < n) {
    failed_ = true;
    return false;
  }
  *out = p_;
  p_ += n;
  return true;
}

bool PayloadReader::U8(uint8_t* v) {
  const uint8_t* p;
  if (!Take(1, &p)) return false;
  *v = *p;
  return true;
}

bool PayloadReader::U16(uint16_t* v) {
  const uint8_t* p;
  if (!Take(2, &p)) return false;
  *v = static_cast<uint16_t>(p[0] | p[1] << 8);
  return true;
}

bool PayloadReader::U32(uint32_t* v) {
  const uint8_t* p;
  if (!Take(4, &p)) return false;
  *v = LoadU32(p);
  return true;
}

bool PayloadReader::U64(uint64_t* v) {
  const uint8_t* p;
  if (!Take(8, &p)) return false;
  *v = LoadU64(p);
  return true;
}

bool PayloadReader::F32(float* v) {
  uint32_t bits;
  if (!U32(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool PayloadReader::Floats(float* out, size_t n) {
  // Mirror of PayloadWriter::Floats: one bounds check for the whole row
  // block, then one memcpy straight into the caller's output on a
  // little-endian host — this is the client's MultiGet hot path.
  const uint8_t* p;
  if (!Take(n * 4, &p)) return false;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, p, n * 4);
    return true;
  }
  for (size_t i = 0; i < n; ++i) {
    const uint32_t bits = LoadU32(p + i * 4);
    std::memcpy(&out[i], &bits, sizeof(out[i]));
  }
  return true;
}

bool PayloadReader::Keys(std::vector<Key>* out) {
  uint32_t count;
  if (!U32(&count)) return false;
  // A key costs 8 bytes on the wire, so `remaining` bounds the count a
  // well-formed payload can carry — reject before allocating.
  if (count > remaining() / sizeof(Key)) {
    failed_ = true;
    return false;
  }
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!U64(&(*out)[i])) return false;
  }
  return true;
}

bool PayloadReader::Str(std::string* out) {
  uint16_t n;
  if (!U16(&n)) return false;
  const uint8_t* p;
  if (!Take(n, &p)) return false;
  out->assign(reinterpret_cast<const char*>(p), n);
  return true;
}

bool PayloadReader::Bytes(uint8_t* out, size_t n) {
  const uint8_t* p;
  if (!Take(n, &p)) return false;
  std::memcpy(out, p, n);
  return true;
}

bool PayloadReader::ReadStatus(Status* out) {
  uint8_t code;
  std::string msg;
  if (!U8(&code) || !Str(&msg)) return false;
  if (!ValidStatusCode(code)) {
    failed_ = true;
    return false;
  }
  *out = Status::FromCode(static_cast<Status::Code>(code), std::move(msg));
  return true;
}

Status PayloadReader::Finish(const char* what) const {
  if (failed_) {
    return Status::Corruption(std::string("wire: truncated ") + what);
  }
  if (p_ != end_) {
    return Status::Corruption(std::string("wire: trailing bytes after ") +
                              what);
  }
  return Status::OK();
}

// --- messages ------------------------------------------------------------

void EncodeHandshakeInfo(const HandshakeInfo& h, PayloadWriter* w) {
  w->U32(h.dim);
  w->U32(h.shard_bits);
  w->Str(h.backend_name);
  w->U64(h.cluster_epoch);
  w->U8(h.cluster_role);
}

Status DecodeHandshakeInfo(PayloadReader* r, HandshakeInfo* out) {
  r->U32(&out->dim);
  r->U32(&out->shard_bits);
  r->Str(&out->backend_name);
  r->U64(&out->cluster_epoch);
  r->U8(&out->cluster_role);
  return r->Finish("handshake");
}

void EncodeMultiGetRequest(std::span<const Key> keys, bool init_missing,
                           bool untracked, PayloadWriter* w) {
  w->U8(init_missing ? 1 : 0);
  w->U8(untracked ? 1 : 0);
  w->Keys(keys);
}

Status DecodeMultiGetRequest(std::span<const uint8_t> payload,
                             MultiGetRequest* out) {
  PayloadReader r(payload);
  uint8_t init, untracked;
  r.U8(&init);
  r.U8(&untracked);
  r.Keys(&out->keys);
  MLKV_RETURN_NOT_OK(r.Finish("MultiGet request"));
  out->init_missing = init != 0;
  out->untracked = untracked != 0;
  return Status::OK();
}

void EncodeMultiWriteRequest(std::span<const Key> keys, const float* rows,
                             uint32_t dim, float lr, PayloadWriter* w) {
  EncodeMultiWriteRequestHeader(keys, lr, w);
  w->Floats(rows, keys.size() * size_t{dim});
}

void EncodeMultiWriteRequestHeader(std::span<const Key> keys, float lr,
                                   PayloadWriter* w) {
  w->F32(lr);
  w->Keys(keys);
}

Status DecodeMultiWriteRequest(std::span<const uint8_t> payload, uint32_t dim,
                               MultiWriteRequest* out) {
  PayloadReader r(payload);
  r.F32(&out->lr);
  r.Keys(&out->keys);
  if (r.ok() && r.remaining() != out->keys.size() * size_t{dim} * 4) {
    return Status::InvalidArgument(
        "wire: write request row block does not match key count x dim");
  }
  out->rows.resize(out->keys.size() * size_t{dim});
  r.Floats(out->rows.data(), out->rows.size());
  return r.Finish("write request");
}

void EncodeLookaheadRequest(std::span<const Key> keys, PayloadWriter* w) {
  w->Keys(keys);
}

Status DecodeLookaheadRequest(std::span<const uint8_t> payload,
                              std::vector<Key>* out) {
  PayloadReader r(payload);
  r.Keys(out);
  return r.Finish("Lookahead request");
}

void EncodeBatchResult(const BatchResult& r, PayloadWriter* w) {
  w->U32(static_cast<uint32_t>(r.codes.size()));
  for (const Status::Code c : r.codes) w->U8(static_cast<uint8_t>(c));
  w->U32(static_cast<uint32_t>(r.found));
  w->U32(static_cast<uint32_t>(r.missing));
  w->U32(static_cast<uint32_t>(r.busy));
  w->U32(static_cast<uint32_t>(r.failed));
  w->StatusOf(r.first_error);
}

Status DecodeBatchResult(PayloadReader* r, BatchResult* out) {
  uint32_t n;
  if (!r->U32(&n) || n > r->remaining()) {  // one byte per code
    return Status::Corruption("wire: truncated BatchResult");
  }
  out->codes.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t c = 0;
    r->U8(&c);
    if (!ValidStatusCode(c)) {
      return Status::Corruption("wire: invalid status code in BatchResult");
    }
    out->codes[i] = static_cast<Status::Code>(c);
  }
  uint32_t found = 0, missing = 0, busy = 0, failed = 0;
  r->U32(&found);
  r->U32(&missing);
  r->U32(&busy);
  r->U32(&failed);
  r->ReadStatus(&out->first_error);
  if (!r->ok()) return Status::Corruption("wire: truncated BatchResult");
  out->found = found;
  out->missing = missing;
  out->busy = busy;
  out->failed = failed;
  return Status::OK();
}

void EncodeServedRows(std::span<const Status::Code> codes, const float* rows,
                      uint32_t dim, PayloadWriter* w) {
  for (size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] == Status::Code::kOk) {
      w->Floats(rows + i * size_t{dim}, dim);
    }
  }
}

void EncodeMultiGetResponse(const BatchResult& r, const float* rows,
                            uint32_t dim, PayloadWriter* w) {
  EncodeBatchResult(r, w);
  EncodeServedRows(r.codes, rows, dim, w);
}

void CollectServedRowRuns(std::span<const Status::Code> codes,
                          const float* rows, uint32_t dim,
                          std::vector<std::span<const uint8_t>>* runs) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(rows);
  const size_t row_bytes = size_t{dim} * sizeof(float);
  size_t i = 0;
  while (i < codes.size()) {
    if (codes[i] != Status::Code::kOk) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < codes.size() && codes[j] == Status::Code::kOk) ++j;
    runs->emplace_back(bytes + i * row_bytes, (j - i) * row_bytes);
    i = j;
  }
}

Status DecodeMultiGetResponse(PayloadReader* r, size_t n_keys, uint32_t dim,
                              BatchResult* result, float* out) {
  MLKV_RETURN_NOT_OK(DecodeBatchResult(r, result));
  if (result->codes.size() != n_keys) {
    return Status::Corruption("wire: MultiGet response key count mismatch");
  }
  // Decode contiguous kOk runs as one Floats call each: on the all-hit
  // warm path the entire row block lands in the caller's output span with
  // a single memcpy (see PayloadReader::Floats).
  size_t i = 0;
  while (i < n_keys) {
    if (result->codes[i] != Status::Code::kOk) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n_keys && result->codes[j] == Status::Code::kOk) ++j;
    if (!r->Floats(out + i * size_t{dim}, (j - i) * size_t{dim})) break;
    i = j;
  }
  return r->Finish("MultiGet response");
}

void EncodeStatsSnapshot(const StatsSnapshot& s, PayloadWriter* w) {
  w->U32(kOpcodeSlots);
  for (const uint64_t c : s.op_counts) w->U64(c);
  w->U64(s.connections);
  w->U64(s.requests);
  w->U64(s.transport_errors);
  w->U64(s.latency_p50_us);
  w->U64(s.latency_p99_us);
  w->U64(s.disk_record_reads);
  w->U64(s.pages_flushed);
  w->U64(s.pages_evicted);
  w->U64(s.async_reads_submitted);
  w->U64(s.async_reads_completed);
  w->U64(s.async_reads_refetched);
  w->U64(s.async_writes_submitted);
  w->U64(s.async_writes_completed);
  w->U64(s.fsyncs);
  w->U64(s.group_commits);
  w->U64(s.replicated_records);
  w->U64(s.replica_lag_records);
  w->U64(s.replication_reconnects);
  w->U8(s.kernel_tier);
}

Status DecodeStatsSnapshot(PayloadReader* r, StatsSnapshot* out) {
  uint32_t slots = 0;
  r->U32(&slots);
  if (!r->ok() || slots != kOpcodeSlots) {
    return Status::Corruption("wire: stats slot count mismatch");
  }
  for (uint64_t& c : out->op_counts) r->U64(&c);
  r->U64(&out->connections);
  r->U64(&out->requests);
  r->U64(&out->transport_errors);
  r->U64(&out->latency_p50_us);
  r->U64(&out->latency_p99_us);
  r->U64(&out->disk_record_reads);
  r->U64(&out->pages_flushed);
  r->U64(&out->pages_evicted);
  r->U64(&out->async_reads_submitted);
  r->U64(&out->async_reads_completed);
  r->U64(&out->async_reads_refetched);
  r->U64(&out->async_writes_submitted);
  r->U64(&out->async_writes_completed);
  r->U64(&out->fsyncs);
  r->U64(&out->group_commits);
  r->U64(&out->replicated_records);
  r->U64(&out->replica_lag_records);
  r->U64(&out->replication_reconnects);
  r->U8(&out->kernel_tier);
  return r->Finish("stats");
}

// --- replication payloads ------------------------------------------------

void EncodeSubscribeResponse(const SubscribeResponse& s, PayloadWriter* w) {
  w->U32(static_cast<uint32_t>(s.shard_durables.size()));
  for (const uint64_t d : s.shard_durables) w->U64(d);
}

Status DecodeSubscribeResponse(PayloadReader* r, SubscribeResponse* out) {
  uint32_t n = 0;
  if (!r->U32(&n) || n > r->remaining() / 8) {
    return Status::Corruption("wire: truncated Subscribe response");
  }
  out->shard_durables.resize(n);
  for (uint64_t& d : out->shard_durables) r->U64(&d);
  return r->Finish("Subscribe response");
}

void EncodeReplicateRequest(const ReplicateRequest& q, PayloadWriter* w) {
  w->U32(q.shard);
  w->U64(q.from);
  w->U32(q.max_records);
  w->U32(q.max_bytes);
}

Status DecodeReplicateRequest(std::span<const uint8_t> payload,
                              ReplicateRequest* out) {
  PayloadReader r(payload);
  r.U32(&out->shard);
  r.U64(&out->from);
  r.U32(&out->max_records);
  r.U32(&out->max_bytes);
  return r.Finish("Replicate request");
}

void EncodeReplicateResponse(const ReplicateResponse& s, PayloadWriter* w) {
  w->U64(s.next_from);
  w->U64(s.durable);
  w->U32(static_cast<uint32_t>(s.entries.size()));
  for (const UpdateEntry& e : s.entries) {
    w->U64(e.address);
    w->U64(e.key);
    w->U32(e.generation);
    w->U32(e.staleness);
    w->U8(e.tombstone ? 1 : 0);
    // Values cross the wire as opaque byte blobs (the replica re-upserts
    // them verbatim), not as float rows — no dim assumption here.
    w->U32(static_cast<uint32_t>(e.value.size()));
    w->Bytes(reinterpret_cast<const uint8_t*>(e.value.data()), e.value.size());
  }
}

Status DecodeReplicateResponse(PayloadReader* r, ReplicateResponse* out) {
  r->U64(&out->next_from);
  r->U64(&out->durable);
  uint32_t n = 0;
  // Each entry costs at least 29 bytes on the wire; bound before resize.
  if (!r->U32(&n) || n > r->remaining() / 29) {
    return Status::Corruption("wire: truncated Replicate response");
  }
  out->entries.resize(n);
  for (UpdateEntry& e : out->entries) {
    uint8_t tomb = 0;
    uint32_t len = 0;
    r->U64(&e.address);
    r->U64(&e.key);
    r->U32(&e.generation);
    r->U32(&e.staleness);
    r->U8(&tomb);
    if (!r->U32(&len) || len > r->remaining()) {
      return Status::Corruption("wire: truncated Replicate entry");
    }
    e.tombstone = tomb != 0;
    e.value.resize(len);
    if (len != 0 &&
        !r->Bytes(reinterpret_cast<uint8_t*>(e.value.data()), len)) {
      return Status::Corruption("wire: truncated Replicate entry");
    }
  }
  return r->Finish("Replicate response");
}

}  // namespace net
}  // namespace mlkv
