#include "net/kv_server.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/clock.h"
#include "common/simd.h"

namespace mlkv {
namespace net {

namespace {

// Ownership filtering for cluster mode: which of a request's keys this
// endpoint may serve under the current map. Unowned keys are answered
// per-key with kWrongPartition (the transport status stays OK) so the
// owned portion of a mis-routed batch is still served — a stale client
// refetches the map and retries only the rejected keys.
struct OwnedSubset {
  bool enforce = false;   // a map is set and this server knows its index
  bool all_owned = true;  // fast path: nothing to filter
  std::vector<Key> keys;      // owned keys, batch order
  std::vector<uint32_t> pos;  // original position of keys[i]
  Status reject;              // per-key status for the unowned rest
};

OwnedSubset FilterOwned(const cluster::ClusterMap* map, uint32_t self,
                        std::span<const Key> keys, bool for_write) {
  OwnedSubset f;
  if (map == nullptr || self >= map->endpoints.size()) return f;
  f.enforce = true;
  for (const Key k : keys) {
    const bool owned =
        for_write ? map->OwnsForWrite(self, k) : map->OwnsForRead(self, k);
    if (!owned) {
      f.all_owned = false;
      break;
    }
  }
  if (f.all_owned) return f;
  f.reject = Status::WrongPartition("not owner; cluster epoch " +
                                    std::to_string(map->epoch));
  f.keys.reserve(keys.size());
  f.pos.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const bool owned = for_write ? map->OwnsForWrite(self, keys[i])
                                 : map->OwnsForRead(self, keys[i]);
    if (owned) {
      f.keys.push_back(keys[i]);
      f.pos.push_back(static_cast<uint32_t>(i));
    }
  }
  return f;
}

// Expands the owned sub-batch's result back over the full key span:
// unowned positions carry the reject code (counted failed), owned ones
// their served outcome — counts stay consistent with the codes.
BatchResult ExpandResult(const OwnedSubset& f, size_t n,
                         const BatchResult& sub) {
  BatchResult full;
  full.codes.assign(n, f.reject.code());
  full.found = sub.found;
  full.missing = sub.missing;
  full.busy = sub.busy;
  full.failed = sub.failed + (n - f.pos.size());
  full.first_error = sub.failed > 0 ? sub.first_error : f.reject;
  for (size_t i = 0; i < f.pos.size(); ++i) {
    full.codes[f.pos[i]] = sub.codes[i];
  }
  return full;
}

}  // namespace

KvServer::KvServer(std::unique_ptr<KvBackend> backend,
                   KvServerOptions options)
    : backend_(std::move(backend)),
      options_(std::move(options)),
      cluster_(options_.cluster),
      self_endpoint_(options_.self_endpoint),
      slot_fds_(options_.num_workers == 0 ? 1 : options_.num_workers, -1) {
  if (options_.request_threads > 0) {
    request_pool_ = std::make_unique<ThreadPool>(options_.request_threads);
  }
  InitMetrics();
}

void KvServer::InitMetrics() {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::MetricFamily* ops = metrics_->CounterFamily(
      "mlkv_server_requests_total", "Requests handled per opcode", {"op"});
  for (uint8_t raw = 0; raw < kOpcodeSlots; ++raw) {
    if (!ValidOpcode(raw)) continue;
    op_cells_[raw] = ops->GetCounter({OpcodeName(static_cast<Opcode>(raw))});
  }
  connections_cell_ =
      metrics_
          ->CounterFamily("mlkv_server_connections_total",
                          "Client connections accepted")
          ->GetCounter();
  requests_cell_ = metrics_
                       ->CounterFamily("mlkv_server_handled_requests_total",
                                       "Requests handled across all opcodes")
                       ->GetCounter();
  transport_errors_cell_ =
      metrics_
          ->CounterFamily("mlkv_server_transport_errors_total",
                          "Torn frames, version mismatches, decode failures")
          ->GetCounter();
  wrong_partition_cell_ =
      metrics_
          ->CounterFamily(
              "mlkv_server_wrong_partition_keys_total",
              "Keys rejected per-key because this endpoint does not own them")
          ->GetCounter();
  latency_cell_ =
      metrics_
          ->HistogramFamily("mlkv_server_request_latency_seconds",
                            "Request handling time, decode to response sent")
          ->GetHistogram();
  stage_family_ = metrics_->HistogramFamily(
      "mlkv_request_stage_seconds",
      "Time spent per traced request stage", {"stage"});
  // Pre-resolve the stages the server itself emits so FinishTrace's
  // per-span lookup is a strcmp scan, not a family map probe.
  for (const char* stage : {"queue_wait", "decode", "execute", "scatter",
                            "shard_execute", "io_wave", "send", "rpc"}) {
    stage_cells_[num_stage_cells_++] = {stage,
                                        stage_family_->GetHistogram({stage})};
  }
  collector_id_ = metrics_->AddCollector(
      [this](obs::MetricsSink* sink) { CollectServerMetrics(sink); });
}

void KvServer::CollectServerMetrics(obs::MetricsSink* sink) const {
  sink->AddGauge("mlkv_server_inflight_requests",
                 "Storage requests currently offloaded to the request pool",
                 static_cast<double>(
                     inflight_requests_.load(std::memory_order_relaxed)));
  sink->AddGauge("mlkv_simd_kernel_tier",
                 "Active SIMD dispatch tier (simd::KernelTier)",
                 static_cast<double>(
                     static_cast<uint8_t>(simd::ActiveKernelTier())));
  const ClusterView cv = cluster_view();
  if (cv.map != nullptr) {
    sink->AddGauge("mlkv_cluster_epoch", "Enforced cluster map epoch",
                   static_cast<double>(cv.map->epoch));
    sink->AddGauge("mlkv_cluster_role",
                   "This endpoint's role (0 standalone, 1 primary, 2 replica)",
                   static_cast<double>(RoleUnder(*cv.map, cv.self)));
  }
  if (stats_source_) {
    // The Replicator's counters arrive through the same seam kStats uses;
    // names are distinct from the backend's mlkv_replication_* (which
    // count updates a backend applied, not what the tailer fetched).
    StatsSnapshot s;
    stats_source_(&s);
    sink->AddCounter("mlkv_replicator_records_total",
                     "Update records fetched and applied by the replication "
                     "tailer",
                     s.replicated_records);
    sink->AddGauge("mlkv_replicator_lag_records",
                   "Fetched-but-unapplied update records (0 = caught up)",
                   static_cast<double>(s.replica_lag_records));
    sink->AddCounter("mlkv_replicator_reconnects_total",
                     "Primary connection re-establishments",
                     s.replication_reconnects);
  }
  backend_->CollectMetrics(sink);
}

void KvServer::UpdateClusterMap(
    std::shared_ptr<const cluster::ClusterMap> map, uint32_t self_endpoint) {
  std::lock_guard<std::mutex> lk(cluster_mu_);
  cluster_ = std::move(map);
  self_endpoint_ = self_endpoint;
}

std::shared_ptr<const cluster::ClusterMap> KvServer::cluster_map() const {
  std::lock_guard<std::mutex> lk(cluster_mu_);
  return cluster_;
}

KvServer::ClusterView KvServer::cluster_view() const {
  std::lock_guard<std::mutex> lk(cluster_mu_);
  return {cluster_, self_endpoint_};
}

uint8_t KvServer::RoleUnder(const cluster::ClusterMap& map, uint32_t self) {
  uint8_t role = 0;
  for (const cluster::ClusterPartition& p : map.partitions) {
    if (p.primary == self) return 1;
    for (const uint32_t r : p.replicas) {
      if (r == self) role = 2;
    }
  }
  return role;
}

KvServer::~KvServer() {
  Stop();
  // The collector captures `this`; unhook before members die (matters when
  // the registry is externally owned and outlives this server).
  metrics_->RemoveCollector(collector_id_);
}

std::string KvServer::addr() const {
  return options_.host + ":" + std::to_string(port());
}

Status KvServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  MLKV_RETURN_NOT_OK(
      listener_.Listen(options_.host, options_.port, options_.backlog));
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(slot_fds_.size());
  for (size_t slot = 0; slot < slot_fds_.size(); ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
  return Status::OK();
}

void KvServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    // The store must be ordered with the workers' predicate evaluation
    // (which runs under mu_), or a worker that just found the predicate
    // false could block after our notify and sleep forever.
    std::lock_guard<std::mutex> lk(mu_);
    stopping_.store(true, std::memory_order_release);
  }
  listener_.Wake();
  // Half-close reads on active connections: each worker finishes and
  // answers its in-flight request, then sees EOF and releases the slot.
  // Raw shutdown, not Socket, so ownership (and the close) stays with the
  // serving worker.
  {
    std::lock_guard<std::mutex> lk(slots_mu_);
    for (const int active : slot_fds_) {
      if (active >= 0) ::shutdown(active, SHUT_RD);
    }
  }
  pending_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Offloaded storage requests drain AFTER the workers are joined: a
  // worker mid-frame could still start an offload after an earlier drain
  // observed zero, but once no worker remains, inflight_requests_ can only
  // fall. Each task finishes, answers (sends bounded by send_timeout_ms),
  // and closes or requeues its connection — so nothing repopulates
  // pending_ after the final sweep below, and no task outlives Stop().
  while (inflight_requests_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.clear();  // queued-but-never-served connections just close
  }
  listener_.Close();
}

void KvServer::AcceptLoop() {
  for (;;) {
    Socket conn;
    const Status s = listener_.Accept(&conn);
    if (s.IsAborted()) return;  // woken by Stop()
    if (!s.ok()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      // Transient accept failure; keep serving. The sleep matters under
      // fd exhaustion (EMFILE): poll reports the queued connection as
      // readable immediately, so retrying without it busy-spins a core
      // until an fd frees.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    connections_cell_->Add();
    if (options_.send_timeout_ms > 0) {
      (void)conn.SetSendTimeoutMs(options_.send_timeout_ms);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending_.push_back(std::move(conn));
    }
    pending_cv_.notify_one();
  }
}

void KvServer::WorkerLoop(size_t slot) {
  for (;;) {
    Socket conn;
    {
      std::unique_lock<std::mutex> lk(mu_);
      pending_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping with nothing queued
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConnection(std::move(conn), slot);
  }
}

// How long a connection may sit quiet before its worker considers handing
// the slot to a waiting connection. Bounds the extra latency a request
// sees under slot contention; irrelevant when connections <= workers.
constexpr int kIdlePollMs = 10;

void KvServer::ServeConnection(Socket conn, size_t slot) {
  {
    std::lock_guard<std::mutex> lk(slots_mu_);
    slot_fds_[slot] = conn.fd();
  }
  // Publish-then-check: Stop() may have swept slot_fds_ between the queue
  // pop and the registration above — shut down ourselves so the drain
  // still sees EOF after the current (none yet) request.
  if (stopping_.load(std::memory_order_acquire)) conn.ShutdownRead();
  FrameHeader hdr;
  std::vector<uint8_t> payload;
  for (;;) {
    // Between frames the connection holds no in-flight state, so a quiet
    // one can be requeued to let a waiting connection have the slot —
    // otherwise idle pooled client sockets would pin every worker and
    // excess connections would hang instead of round-robining.
    const Status ready = conn.WaitReadable(kIdlePollMs);
    if (ready.IsTimedOut()) {
      if (!stopping_.load(std::memory_order_acquire)) {
        std::unique_lock<std::mutex> lk(mu_);
        if (!pending_.empty()) {
          {
            std::lock_guard<std::mutex> slk(slots_mu_);
            slot_fds_[slot] = -1;
          }
          pending_.push_back(std::move(conn));
          lk.unlock();
          pending_cv_.notify_one();
          return;
        }
      }
      continue;  // keep waiting (on Stop, the SHUT_RD sweep wakes us)
    }
    if (!ready.ok()) break;
    const Status s = RecvFrame(&conn, &hdr, &payload);
    if (s.IsAborted()) break;  // clean close between frames
    if (s.IsNotSupported()) {
      // Version mismatch: the frame was well-formed, so answer with the
      // reason before hanging up — the client gets a decodable error
      // instead of a mystery disconnect.
      PayloadWriter empty;
      (void)SendResponse(&conn, hdr, s, empty);
      transport_errors_cell_->Add();
      break;
    }
    if (!s.ok()) {  // torn/corrupt frame: the stream cannot be trusted
      transport_errors_cell_->Add();
      break;
    }
    const uint8_t raw_op = static_cast<uint8_t>(hdr.opcode);
    const bool storage_op = raw_op == static_cast<uint8_t>(Opcode::kMultiGet) ||
                            raw_op ==
                                static_cast<uint8_t>(Opcode::kMultiPut) ||
                            raw_op == static_cast<uint8_t>(
                                          Opcode::kMultiApplyGradient);
    if (request_pool_ != nullptr && storage_op) {
      // Offload the storage phase: the executor owns the connection until
      // the response is on the wire, then requeues it; this worker turns
      // around and serves other connections meanwhile.
      {
        std::lock_guard<std::mutex> lk(slots_mu_);
        slot_fds_[slot] = -1;
      }
      inflight_requests_.fetch_add(1, std::memory_order_acq_rel);
      auto req = std::make_shared<OffloadedRequest>();
      req->conn = std::move(conn);
      req->hdr = hdr;
      req->payload = std::move(payload);
      req->enqueued_us = NowMicros();
      if (request_pool_->TrySubmit([this, req] { RunOffloaded(req); })) {
        return;
      }
      // Executor queue full (or shutting down): degrade to inline.
      inflight_requests_.fetch_sub(1, std::memory_order_acq_rel);
      conn = std::move(req->conn);
      payload = std::move(req->payload);
      {
        std::lock_guard<std::mutex> lk(slots_mu_);
        slot_fds_[slot] = conn.fd();
      }
      if (stopping_.load(std::memory_order_acquire)) conn.ShutdownRead();
    }
    if (!HandleRequest(&conn, hdr, payload)) break;
  }
  // Deregister and close atomically w.r.t. Stop()'s shutdown sweep, so a
  // swept fd is always still ours.
  std::lock_guard<std::mutex> lk(slots_mu_);
  slot_fds_[slot] = -1;
  conn.Close();
}

void KvServer::RunOffloaded(const std::shared_ptr<OffloadedRequest>& req) {
  const bool keep =
      HandleRequest(&req->conn, req->hdr, req->payload, req->enqueued_us);
  if (keep && !stopping_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      pending_.push_back(std::move(req->conn));
    }
    pending_cv_.notify_one();
  } else {
    req->conn.Close();
  }
  inflight_requests_.fetch_sub(1, std::memory_order_acq_rel);
}

Status KvServer::SendResponse(Socket* conn, const FrameHeader& req,
                              const Status& transport,
                              const PayloadWriter& body) {
  return SendResponse(conn, req, transport, body, {});
}

Status KvServer::SendResponse(Socket* conn, const FrameHeader& req,
                              const Status& transport,
                              const PayloadWriter& body,
                              std::span<const std::span<const uint8_t>> rows) {
  PayloadWriter prefix;
  prefix.StatusOf(transport);
  // Gathered as separate payload pieces — the (possibly large) body is
  // never copied into a status-prefixed buffer, and a MultiGet's served
  // rows go straight from the backend's buffer to the wire.
  const std::span<const uint8_t> b =
      transport.ok() ? std::span<const uint8_t>(body.bytes())
                     : std::span<const uint8_t>();
  if (!transport.ok() || rows.empty()) {
    return SendFrame(conn, req.opcode, kFlagResponse, req.request_id,
                     prefix.bytes(), b);
  }
  return SendFrame(conn, req.opcode, kFlagResponse, req.request_id,
                   prefix.bytes(), b, rows);
}

bool KvServer::HandleRequest(Socket* conn, const FrameHeader& hdr,
                             std::span<const uint8_t> payload,
                             uint64_t enqueued_us) {
  const uint8_t raw_op = static_cast<uint8_t>(hdr.opcode);
  if (!ValidOpcode(raw_op)) {
    transport_errors_cell_->Add();
    PayloadWriter empty;
    const Status s = Status::NotSupported(
        "unknown opcode " + std::to_string(raw_op));
    // Frame boundaries are intact, so the connection stays usable.
    return SendResponse(conn, hdr, s, empty).ok();
  }
  op_cells_[raw_op]->Add();
  requests_cell_->Add();
  const uint64_t start_us = NowMicros();

  // Trace root for this request; the thread-local context carries it into
  // the backend (scatter workers and cluster fan-outs re-install it on
  // their threads). The client's request id is the trace id, so an
  // upstream server's slow log stitches to ours by id.
  std::unique_ptr<obs::RequestTrace> trace;
  if (options_.enable_tracing && obs::MetricsEnabled()) {
    trace = std::make_unique<obs::RequestTrace>(OpcodeName(hdr.opcode),
                                                hdr.request_id);
    if (enqueued_us != 0 && start_us > enqueued_us) {
      trace->AddSpan("queue_wait", "", obs::RequestTrace::kNoParent,
                     enqueued_us, start_us - enqueued_us);
    }
  }
  obs::ScopedTraceContext trace_ctx(
      obs::TraceContext{trace.get(), obs::RequestTrace::kNoParent});

  Status transport = Status::OK();
  PayloadWriter body;
  // MultiGet's served rows ride the response as iovec runs over this
  // buffer instead of being copy-encoded into `body` — both live until the
  // gathered send at the bottom completes (zero-copy on little-endian
  // hosts; see wire.h kRawFloatRowsMatchWire).
  std::vector<float> row_storage;
  std::vector<std::span<const uint8_t>> row_runs;
  switch (hdr.opcode) {
    case Opcode::kHandshake: {
      HandshakeInfo info;
      info.dim = backend_->dim();
      info.shard_bits = backend_->shard_bits();
      info.backend_name = backend_->name();
      const ClusterView cv = cluster_view();
      if (cv.map != nullptr) {
        info.cluster_epoch = cv.map->epoch;
        info.cluster_role = RoleUnder(*cv.map, cv.self);
      }
      EncodeHandshakeInfo(info, &body);
      break;
    }
    case Opcode::kMultiGet: {
      MultiGetRequest req;
      {
        obs::ScopedSpan decode_span("decode");
        transport = DecodeMultiGetRequest(payload, &req);
      }
      if (transport.ok()) {
        const uint32_t dim = backend_->dim();
        // The request bounds the key count, but the response is
        // dim-amplified — preflight it against the frame cap before any
        // allocation or backend work (only well-behaved RemoteBackend
        // clients chunk; the server must not trust that).
        const size_t resp_bytes =
            req.keys.size() * (size_t{dim} * 4 + 1) + 64;
        if (resp_bytes > kMaxPayloadBytes) {
          transport = Status::InvalidArgument(
              "MultiGet of " + std::to_string(req.keys.size()) +
              " keys exceeds the response frame limit; chunk the batch");
          break;
        }
        MultiGetOptions opts;
        opts.init_missing = req.init_missing;
        opts.untracked = req.untracked;
        const ClusterView cv = cluster_view();
        const OwnedSubset f =
            FilterOwned(cv.map.get(), cv.self, req.keys, /*for_write=*/false);
        if (!f.enforce || f.all_owned) {
          row_storage.resize(req.keys.size() * size_t{dim});
          BatchResult r;
          {
            obs::ScopedSpan execute_span("execute");
            r = backend_->MultiGet(req.keys, row_storage.data(), opts);
          }
          EncodeBatchResult(r, &body);
          if (kRawFloatRowsMatchWire) {
            CollectServedRowRuns(r.codes, row_storage.data(), dim, &row_runs);
          } else {
            EncodeServedRows(r.codes, row_storage.data(), dim, &body);
          }
        } else {
          // Serve only the owned sub-batch and gather its rows directly:
          // owned positions are increasing and unowned keys are never kOk,
          // so the sub-batch's served rows already sit in full-batch key
          // order — no full-size buffer, no re-expansion copy.
          wrong_partition_cell_->Add(req.keys.size() - f.keys.size());
          row_storage.resize(f.keys.size() * size_t{dim});
          BatchResult sub;
          {
            obs::ScopedSpan execute_span("execute");
            sub = backend_->MultiGet(f.keys, row_storage.data(), opts);
          }
          EncodeBatchResult(ExpandResult(f, req.keys.size(), sub), &body);
          if (kRawFloatRowsMatchWire) {
            CollectServedRowRuns(sub.codes, row_storage.data(), dim,
                                 &row_runs);
          } else {
            EncodeServedRows(sub.codes, row_storage.data(), dim, &body);
          }
        }
      }
      break;
    }
    case Opcode::kMultiPut:
    case Opcode::kMultiApplyGradient: {
      const bool is_put = hdr.opcode == Opcode::kMultiPut;
      MultiWriteRequest req;
      {
        obs::ScopedSpan decode_span("decode");
        transport = DecodeMultiWriteRequest(payload, backend_->dim(), &req);
      }
      if (transport.ok()) {
        const ClusterView cv = cluster_view();
        const OwnedSubset f =
            FilterOwned(cv.map.get(), cv.self, req.keys, /*for_write=*/true);
        if (!f.enforce || f.all_owned) {
          obs::ScopedSpan execute_span("execute");
          EncodeBatchResult(
              is_put ? backend_->MultiPut(req.keys, req.rows.data())
                     : backend_->MultiApplyGradient(req.keys,
                                                    req.rows.data(), req.lr),
              &body);
        } else {
          wrong_partition_cell_->Add(req.keys.size() - f.keys.size());
          const uint32_t dim = backend_->dim();
          std::vector<float> sub_rows(f.keys.size() * size_t{dim});
          for (size_t i = 0; i < f.pos.size(); ++i) {
            simd::CopyFloats(sub_rows.data() + i * size_t{dim},
                             req.rows.data() + f.pos[i] * size_t{dim}, dim);
          }
          BatchResult sub;
          {
            obs::ScopedSpan execute_span("execute");
            sub = is_put ? backend_->MultiPut(f.keys, sub_rows.data())
                         : backend_->MultiApplyGradient(
                               f.keys, sub_rows.data(), req.lr);
          }
          EncodeBatchResult(ExpandResult(f, req.keys.size(), sub), &body);
        }
      }
      break;
    }
    case Opcode::kLookahead: {
      std::vector<Key> keys;
      transport = DecodeLookaheadRequest(payload, &keys);
      if (transport.ok()) transport = backend_->Lookahead(keys);
      break;
    }
    case Opcode::kStats: {
      EncodeStatsSnapshot(stats(), &body);
      break;
    }
    case Opcode::kPing: {
      break;  // empty body: liveness plus round-trip timing
    }
    case Opcode::kClusterMap: {
      const auto map = cluster_map();
      if (map == nullptr) {
        transport = Status::NotSupported("server is not in cluster mode");
      } else {
        cluster::EncodeClusterMap(*map, &body);
      }
      break;
    }
    case Opcode::kSubscribe: {
      const uint32_t shards = backend_->replication_shards();
      if (shards == 0) {
        transport =
            Status::NotSupported(backend_->name() + " has no replication feed");
        break;
      }
      SubscribeResponse resp;
      resp.shard_durables.resize(shards, 0);
      for (uint32_t sh = 0; sh < shards && transport.ok(); ++sh) {
        std::vector<UpdateEntry> none;
        uint64_t next = 0;
        transport = backend_->ReadCommittedUpdates(
            sh, 0, /*max_records=*/0, /*max_bytes=*/0, &none, &next,
            &resp.shard_durables[sh]);
      }
      if (transport.ok()) EncodeSubscribeResponse(resp, &body);
      break;
    }
    case Opcode::kReplicate: {
      ReplicateRequest req;
      transport = DecodeReplicateRequest(payload, &req);
      const uint32_t shards = backend_->replication_shards();
      if (transport.ok() && req.shard >= shards) {
        transport = shards == 0
                        ? Status::NotSupported(backend_->name() +
                                               " has no replication feed")
                        : Status::InvalidArgument("replicate: shard " +
                                                  std::to_string(req.shard) +
                                                  " out of range");
      }
      if (transport.ok()) {
        // Clamp both caps so the response stays under the frame limit no
        // matter what the replica asked for (values ride uncompressed).
        ReplicateResponse resp;
        transport = backend_->ReadCommittedUpdates(
            req.shard, req.from,
            std::min<uint32_t>(req.max_records, 1u << 16),
            std::min<uint32_t>(req.max_bytes, kMaxPayloadBytes / 2),
            &resp.entries, &resp.next_from, &resp.durable);
        if (transport.ok()) EncodeReplicateResponse(resp, &body);
      }
      break;
    }
  }
  if (!transport.ok()) {
    transport_errors_cell_->Add();
  }
  latency_cell_->Observe(NowMicros() - start_us);
  Status sent;
  {
    obs::ScopedSpan send_span("send");
    sent = SendResponse(conn, hdr, transport, body, row_runs);
  }
  if (trace != nullptr) FinishTrace(trace.get());
  if (!sent.ok()) return false;
  // A request the server could not even decode leaves the stream suspect
  // only when framing was at fault; decode errors above are payload-level
  // with intact framing, so the connection survives them.
  return true;
}

void KvServer::FinishTrace(obs::RequestTrace* trace) {
  trace->Finish();
  trace->ForEachSpan([this](const obs::TraceSpan& span) {
    // Server-emitted stages were pre-resolved at InitMetrics; the strcmp
    // scan over ~8 entries beats a family mutex + map probe per span.
    // Stages from elsewhere (a backend with its own names) fall back to
    // the lazy family lookup.
    obs::HistogramCell* cell = nullptr;
    for (size_t i = 0; i < num_stage_cells_; ++i) {
      if (stage_cells_[i].first == span.stage ||
          std::strcmp(stage_cells_[i].first, span.stage) == 0) {
        cell = stage_cells_[i].second;
        break;
      }
    }
    if (cell == nullptr) cell = stage_family_->GetHistogram({span.stage});
    if (cell != nullptr) cell->Observe(span.dur_us);
  });
  uint64_t threshold = options_.slow_request_us;
  if (threshold == 0) {
    // Auto threshold: trailing p99 x 4 with a 1ms floor, armed only after
    // enough requests that the percentile means something. The p99 walk
    // over the histogram's buckets is too heavy per request, so the value
    // is cached and refreshed every 256 requests.
    const Histogram& h = latency_cell_->histogram();
    const uint64_t n = h.count();
    if (n < 64) return;
    threshold = auto_threshold_.load(std::memory_order_relaxed);
    const uint64_t last = auto_threshold_refresh_.load(std::memory_order_relaxed);
    if (threshold == 0 || n - last >= 256) {
      threshold = std::max<uint64_t>(1000, h.Percentile(0.99) * 4);
      auto_threshold_.store(threshold, std::memory_order_relaxed);
      auto_threshold_refresh_.store(n, std::memory_order_relaxed);
    }
  }
  if (trace->total_us() < threshold) return;
  char head[160];
  std::snprintf(head, sizeof(head),
                "slow request op=%s id=%llu total=%lluus threshold=%lluus\n",
                trace->op(),
                static_cast<unsigned long long>(trace->request_id()),
                static_cast<unsigned long long>(trace->total_us()),
                static_cast<unsigned long long>(threshold));
  std::string report = head;
  report += trace->Render();
  if (options_.slow_request_log) {
    options_.slow_request_log(report);
  } else {
    std::fwrite(report.data(), 1, report.size(), stderr);
  }
}

StatsSnapshot KvServer::stats() const {
  // A view over the registry cells — kStats and /metrics read the same
  // storage, so they cannot disagree.
  StatsSnapshot s;
  for (size_t i = 0; i < kOpcodeSlots; ++i) {
    s.op_counts[i] = op_cells_[i] != nullptr ? op_cells_[i]->value() : 0;
  }
  s.connections = connections_cell_->value();
  s.requests = requests_cell_->value();
  s.transport_errors = transport_errors_cell_->value();
  const Histogram& latency = latency_cell_->histogram();
  s.latency_p50_us = latency.Percentile(0.50);
  s.latency_p99_us = latency.Percentile(0.99);
  const BackendIoStats io = backend_->io_stats();
  s.disk_record_reads = io.disk_record_reads;
  s.pages_flushed = io.pages_flushed;
  s.pages_evicted = io.pages_evicted;
  s.async_reads_submitted = io.async_reads_submitted;
  s.async_reads_completed = io.async_reads_completed;
  s.async_reads_refetched = io.async_reads_refetched;
  s.async_writes_submitted = io.async_writes_submitted;
  s.async_writes_completed = io.async_writes_completed;
  s.fsyncs = io.fsyncs;
  s.group_commits = io.group_commits;
  s.replicated_records = io.replicated_records;
  s.replica_lag_records = io.replica_lag_records;
  s.kernel_tier = static_cast<uint8_t>(simd::ActiveKernelTier());
  // External counters last so a Replicator-fed snapshot wins over the
  // backend's zeros (local engines know nothing about replication).
  if (stats_source_) stats_source_(&s);
  return s;
}

}  // namespace net
}  // namespace mlkv
