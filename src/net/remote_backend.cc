#include "net/remote_backend.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace mlkv {
namespace net {

namespace {

// Performs the handshake on a fresh socket and returns the server's
// negotiated parameters.
Status Handshake(Socket* s, uint64_t request_id, HandshakeInfo* out) {
  MLKV_RETURN_NOT_OK(SendFrame(s, Opcode::kHandshake, 0, request_id, {}));
  FrameHeader hdr;
  std::vector<uint8_t> payload;
  MLKV_RETURN_NOT_OK(RecvFrame(s, &hdr, &payload));
  if (hdr.request_id != request_id || hdr.opcode != Opcode::kHandshake ||
      (hdr.flags & kFlagResponse) == 0) {
    return Status::Corruption("handshake: mismatched response frame");
  }
  PayloadReader r(payload.data(), payload.size());
  Status transport;
  if (!r.ReadStatus(&transport)) {
    return Status::Corruption("handshake: truncated response");
  }
  MLKV_RETURN_NOT_OK(transport);
  return DecodeHandshakeInfo(&r, out);
}

}  // namespace

Status RemoteBackend::Connect(const RemoteBackendOptions& options,
                              std::unique_ptr<KvBackend>* out) {
  std::unique_ptr<RemoteBackend> typed;
  MLKV_RETURN_NOT_OK(Connect(options, &typed));
  *out = std::move(typed);
  return Status::OK();
}

Status RemoteBackend::Connect(const RemoteBackendOptions& options,
                              std::unique_ptr<RemoteBackend>* out) {
  if (options.addr.empty()) {
    return Status::InvalidArgument(
        "remote backend needs an address (BackendConfig::remote_addr)");
  }
  auto b = std::unique_ptr<RemoteBackend>(new RemoteBackend(options));
  MLKV_RETURN_NOT_OK(ParseHostPort(options.addr, &b->host_, &b->port_));
  Socket s;
  MLKV_RETURN_NOT_OK(Socket::Connect(b->host_, b->port_, &s));
  HandshakeInfo info;
  MLKV_RETURN_NOT_OK(Handshake(
      &s, b->next_request_id_.fetch_add(1, std::memory_order_relaxed),
      &info));
  if (info.dim == 0) {
    return Status::InvalidArgument("remote backend reports dim 0");
  }
  b->dim_ = info.dim;
  b->shard_bits_ = info.shard_bits;
  b->remote_name_ = info.backend_name;
  b->handshake_ = info;
  b->max_keys_per_rpc_ = options.max_keys_per_rpc;
  if (b->max_keys_per_rpc_ == 0) {
    // Conservative per-key wire cost covering both directions: key (8B,
    // request) + row (dim floats, either direction) + code byte and
    // counts slack. Keeps every sub-RPC's request and response under the
    // frame cap regardless of op.
    const size_t per_key = sizeof(Key) + size_t{info.dim} * 4 + 16;
    b->max_keys_per_rpc_ =
        std::max<size_t>(1, (kMaxPayloadBytes - 4096) / per_key);
  }
  b->CheckIn(std::move(s));
  *out = std::move(b);
  return Status::OK();
}

Status RemoteBackend::CheckOut(Socket* out, bool* pooled) {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (!pool_.empty()) {
      *out = std::move(pool_.back());
      pool_.pop_back();
      *pooled = true;
      return Status::OK();
    }
  }
  *pooled = false;
  return ConnectFresh(out);
}

Status RemoteBackend::ConnectFresh(Socket* out) {
  Socket s;
  MLKV_RETURN_NOT_OK(Socket::Connect(host_, port_, &s));
  HandshakeInfo info;
  MLKV_RETURN_NOT_OK(Handshake(
      &s, next_request_id_.fetch_add(1, std::memory_order_relaxed), &info));
  if (info.dim != dim_) {
    return Status::Corruption("remote backend dim changed: " +
                              std::to_string(info.dim) + " vs " +
                              std::to_string(dim_));
  }
  *out = std::move(s);
  return Status::OK();
}

void RemoteBackend::CheckIn(Socket s) {
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (pool_.size() < options_.pool_size) pool_.push_back(std::move(s));
  // else: drop — the socket closes, bounding idle fds.
}

Status RemoteBackend::Exchange(Socket* s, Opcode op,
                               const PayloadWriter& request,
                               Status* transport, std::vector<uint8_t>* body,
                               size_t* body_off, std::span<const uint8_t> aux) {
  // Inside a traced request, the sub-RPC reuses the outer request id so a
  // cluster hop's server-side trace can be stitched to this client span by
  // id. Safe: the protocol is strictly request/response per socket, so the
  // id only has to match within one exchange.
  const obs::RequestTrace* trace = obs::CurrentTrace();
  const uint64_t id =
      trace != nullptr
          ? trace->request_id()
          : next_request_id_.fetch_add(1, std::memory_order_relaxed);
  MLKV_RETURN_NOT_OK(aux.empty()
                         ? SendFrame(s, op, 0, id, request.bytes())
                         : SendFrame(s, op, 0, id, request.bytes(), aux));
  FrameHeader hdr;
  MLKV_RETURN_NOT_OK(RecvFrame(s, &hdr, body));
  if (hdr.request_id != id || hdr.opcode != op ||
      (hdr.flags & kFlagResponse) == 0) {
    return Status::Corruption("rpc: response does not match request");
  }
  PayloadReader r(body->data(), body->size());
  if (!r.ReadStatus(transport)) {
    return Status::Corruption("rpc: truncated response status");
  }
  *body_off = body->size() - r.remaining();
  return Status::OK();
}

Status RemoteBackend::Rpc(Opcode op, const PayloadWriter& request,
                          Status* transport, std::vector<uint8_t>* body,
                          size_t* body_off, std::span<const uint8_t> aux) {
  obs::ScopedSpan rpc_span("rpc", options_.addr);
  Socket s;
  bool pooled = false;
  MLKV_RETURN_NOT_OK(CheckOut(&s, &pooled));
  requests_.fetch_add(1, std::memory_order_relaxed);
  // Any failure in the exchange discards the socket (it falls out of
  // scope un-pooled): a torn stream must never serve the next batch.
  Status st = Exchange(&s, op, request, transport, body, body_off, aux);
  if (st.ok()) {
    CheckIn(std::move(s));
    return st;
  }
  // Stale-pool retry (see header comment): a pooled socket whose server
  // went away fails at send, or at recv with a clean close (Aborted) or a
  // reset (IOError). The server answers every request it reads before
  // closing, so this request was never executed — retry exactly once on a
  // fresh socket, and drop the rest of the pool (same dead peer).
  if (!pooled || !(st.IsAborted() || st.IsIOError())) return st;
  s.Close();
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_.clear();
  }
  Socket fresh;
  MLKV_RETURN_NOT_OK(ConnectFresh(&fresh));
  retries_.fetch_add(1, std::memory_order_relaxed);
  body->clear();
  st = Exchange(&fresh, op, request, transport, body, body_off, aux);
  if (st.ok()) CheckIn(std::move(fresh));
  return st;
}

Status RemoteBackend::CallRaw(Opcode op, const PayloadWriter& request,
                              Status* transport, std::vector<uint8_t>* body,
                              size_t* body_off) {
  return Rpc(op, request, transport, body, body_off);
}

BackendIoStats RemoteBackend::io_stats() const {
  BackendIoStats s;
  s.remote_requests = requests_.load(std::memory_order_relaxed);
  s.remote_retries = retries_.load(std::memory_order_relaxed);
  return s;
}

BatchResult RemoteBackend::FailAll(size_t n, const Status& s) {
  BatchResult r(n);
  for (size_t i = 0; i < n; ++i) r.Record(i, s);
  return r;
}

BatchResult RemoteBackend::MultiGetChunk(std::span<const Key> keys,
                                         float* out,
                                         const MultiGetOptions& options,
                                         bool* transport_down) {
  PayloadWriter w;
  EncodeMultiGetRequest(keys, options.init_missing, options.untracked, &w);
  Status transport;
  std::vector<uint8_t> body;
  size_t off = 0;
  Status s = Rpc(Opcode::kMultiGet, w, &transport, &body, &off);
  if (!s.ok() && transport_down != nullptr) *transport_down = true;
  if (s.ok() && !transport.ok()) s = transport;
  if (!s.ok()) return FailAll(keys.size(), s);
  BatchResult result;
  PayloadReader r(body.data() + off, body.size() - off);
  s = DecodeMultiGetResponse(&r, keys.size(), dim_, &result, out);
  if (!s.ok()) return FailAll(keys.size(), s);
  return result;
}

BatchResult RemoteBackend::MultiWriteChunk(Opcode op,
                                           std::span<const Key> keys,
                                           const float* rows, float lr,
                                           bool* transport_down) {
  PayloadWriter w;
  std::span<const uint8_t> aux;
  if (kRawFloatRowsMatchWire) {
    // The caller's rows already are their wire bytes: encode only the
    // lr+keys header and gather the row block straight from the caller's
    // buffer into the frame (safe across the stale-pool retry — `keys`
    // and `rows` outlive the whole Rpc call).
    EncodeMultiWriteRequestHeader(keys, lr, &w);
    aux = std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(rows),
                                   keys.size() * size_t{dim_} * 4);
  } else {
    EncodeMultiWriteRequest(keys, rows, dim_, lr, &w);
  }
  Status transport;
  std::vector<uint8_t> body;
  size_t off = 0;
  Status s = Rpc(op, w, &transport, &body, &off, aux);
  if (!s.ok() && transport_down != nullptr) *transport_down = true;
  if (s.ok() && !transport.ok()) s = transport;
  if (!s.ok()) return FailAll(keys.size(), s);
  BatchResult result;
  PayloadReader r(body.data() + off, body.size() - off);
  s = DecodeBatchResult(&r, &result);
  if (s.ok()) s = r.Finish("write response");
  if (!s.ok() || result.codes.size() != keys.size()) {
    return FailAll(keys.size(),
                   s.ok() ? Status::Corruption("rpc: result size mismatch")
                          : s);
  }
  return result;
}

BatchResult RemoteBackend::MultiGet(std::span<const Key> keys, float* out,
                                    const MultiGetOptions& options) {
  return MultiGetEx(keys, out, options, nullptr);
}

BatchResult RemoteBackend::MultiGetEx(std::span<const Key> keys, float* out,
                                      const MultiGetOptions& options,
                                      bool* transport_down) {
  if (keys.size() <= max_keys_per_rpc_) {
    return MultiGetChunk(keys, out, options, transport_down);
  }
  // Sequential sub-RPCs in input order: semantics match one big call
  // (first occurrence of a duplicate still bootstraps, later ones find).
  BatchResult result;
  result.codes.reserve(keys.size());
  for (size_t off = 0; off < keys.size(); off += max_keys_per_rpc_) {
    const size_t n = std::min(max_keys_per_rpc_, keys.size() - off);
    result.Append(MultiGetChunk(keys.subspan(off, n),
                                out + off * size_t{dim_}, options,
                                transport_down));
  }
  return result;
}

BatchResult RemoteBackend::MultiPut(std::span<const Key> keys,
                                    const float* values) {
  return MultiPutEx(keys, values, nullptr);
}

BatchResult RemoteBackend::MultiPutEx(std::span<const Key> keys,
                                      const float* values,
                                      bool* transport_down) {
  if (keys.size() <= max_keys_per_rpc_) {
    return MultiWriteChunk(Opcode::kMultiPut, keys, values, 0.0f,
                           transport_down);
  }
  // In-order chunks keep duplicate-key Puts last-occurrence-wins.
  BatchResult result;
  result.codes.reserve(keys.size());
  for (size_t off = 0; off < keys.size(); off += max_keys_per_rpc_) {
    const size_t n = std::min(max_keys_per_rpc_, keys.size() - off);
    result.Append(MultiWriteChunk(Opcode::kMultiPut, keys.subspan(off, n),
                                  values + off * size_t{dim_}, 0.0f,
                                  transport_down));
  }
  return result;
}

BatchResult RemoteBackend::MultiApplyGradient(std::span<const Key> keys,
                                              const float* grads, float lr) {
  return MultiApplyGradientEx(keys, grads, lr, nullptr);
}

BatchResult RemoteBackend::MultiApplyGradientEx(std::span<const Key> keys,
                                                const float* grads, float lr,
                                                bool* transport_down) {
  if (keys.size() <= max_keys_per_rpc_) {
    return MultiWriteChunk(Opcode::kMultiApplyGradient, keys, grads, lr,
                           transport_down);
  }
  // Sequential applies accumulate — SGD is linear in the gradient.
  BatchResult result;
  result.codes.reserve(keys.size());
  for (size_t off = 0; off < keys.size(); off += max_keys_per_rpc_) {
    const size_t n = std::min(max_keys_per_rpc_, keys.size() - off);
    result.Append(MultiWriteChunk(Opcode::kMultiApplyGradient,
                                  keys.subspan(off, n),
                                  grads + off * size_t{dim_}, lr,
                                  transport_down));
  }
  return result;
}

Status RemoteBackend::Lookahead(std::span<const Key> keys) {
  for (size_t off = 0; off < keys.size(); off += max_keys_per_rpc_) {
    const size_t n = std::min(max_keys_per_rpc_, keys.size() - off);
    PayloadWriter w;
    EncodeLookaheadRequest(keys.subspan(off, n), &w);
    Status transport;
    std::vector<uint8_t> body;
    size_t body_off = 0;
    MLKV_RETURN_NOT_OK(
        Rpc(Opcode::kLookahead, w, &transport, &body, &body_off));
    MLKV_RETURN_NOT_OK(transport);
  }
  return Status::OK();
}

Status RemoteBackend::Ping() {
  PayloadWriter w;
  Status transport;
  std::vector<uint8_t> body;
  size_t off = 0;
  MLKV_RETURN_NOT_OK(Rpc(Opcode::kPing, w, &transport, &body, &off));
  return transport;
}

Status RemoteBackend::FetchStats(StatsSnapshot* out) {
  PayloadWriter w;
  Status transport;
  std::vector<uint8_t> body;
  size_t off = 0;
  MLKV_RETURN_NOT_OK(Rpc(Opcode::kStats, w, &transport, &body, &off));
  MLKV_RETURN_NOT_OK(transport);
  PayloadReader r(body.data() + off, body.size() - off);
  return DecodeStatsSnapshot(&r, out);
}

}  // namespace net
}  // namespace mlkv
