// RemoteBackend: the KvBackend seam over the wire. Implements the batched
// virtuals by framing key spans onto a pooled TCP connection and decoding
// the per-key BatchResult back, so every trainer, bench, and the serving
// path can hit a KvServer-fronted store with one flag
// (BackendKind::kRemote + BackendConfig::remote_addr) and zero code
// changes — the network boundary drops in behind the existing seam.
//
// Connection pool: one socket is checked out per in-flight batch, so
// concurrent trainer threads issue RPCs in parallel instead of
// serializing on a single stream (pair the pool with at least as many
// KvServer workers). Sockets are created on demand, handshake-validated,
// and retained idle up to pool_size; a socket that sees any transport
// error is discarded, never re-pooled.
//
// Stale-pool retry: an idle pooled socket can outlive its server (restart,
// failover) — the next RPC then fails at send or sees a clean close where
// the response should be. KvServer always responds before closing a
// connection, so that failure means the request was never executed: the
// RPC is retried exactly once on a freshly connected socket (and the rest
// of the pool, pointed at the same dead peer, is dropped). Fresh-socket
// failures are genuine and never retried. Caveat: a server that dies
// mid-response leaves the request possibly executed; the retry makes
// MultiApplyGradient at-least-once in that narrow window — acceptable for
// SGD, and the alternative (failing the batch) loses the update entirely.
//
// dim() and shard_bits() are answered from the connect-time handshake, so
// batch layout helpers (train/batch_io.h's OrderKeysByShard) keep working
// against a remote store.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/kv_backend.h"
#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace mlkv {
namespace net {

struct RemoteBackendOptions {
  std::string addr;      // "host:port" of a KvServer
  size_t pool_size = 8;  // idle connections retained for reuse
  // Batches larger than this are split into sequential sub-RPCs (results
  // stitched back in caller order — chunks execute in input order, so
  // duplicate-key last-write-wins / gradient-accumulation semantics are
  // preserved). 0 derives the largest count whose request AND response
  // stay under the wire's frame cap for the negotiated dim; tests set it
  // small to exercise the stitching.
  size_t max_keys_per_rpc = 0;
};

class RemoteBackend : public KvBackend {
 public:
  // Connects, handshakes (negotiating dim / shard_bits / backend name),
  // and returns the backend ready for batched calls.
  static Status Connect(const RemoteBackendOptions& options,
                        std::unique_ptr<KvBackend>* out);
  // Typed variant for callers that need the extended surface below
  // (ClusterBackend, Replicator, cluster-status tooling).
  static Status Connect(const RemoteBackendOptions& options,
                        std::unique_ptr<RemoteBackend>* out);

  std::string name() const override { return "Remote(" + remote_name_ + ")"; }
  uint32_t dim() const override { return dim_; }
  uint32_t shard_bits() const override { return shard_bits_; }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override;
  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override;
  BatchResult MultiApplyGradient(std::span<const Key> keys,
                                 const float* grads, float lr) override;
  Status Lookahead(std::span<const Key> keys) override;

  BackendIoStats io_stats() const override;

  // Liveness probe and remote server counters (exposed for tools/tests;
  // not part of the KvBackend contract).
  Status Ping();
  Status FetchStats(StatsSnapshot* out);

  // --- extended surface for cluster mode ---

  // Like the KvBackend virtuals, but report whether a failure was the
  // transport itself (connect/send/recv — the server may be down) rather
  // than per-key outcomes the server computed. ClusterBackend uses the
  // distinction to fail a read sub-batch over to a replica. `transport_down`
  // may be null; it is set true only on transport failure.
  BatchResult MultiGetEx(std::span<const Key> keys, float* out,
                         const MultiGetOptions& options, bool* transport_down);
  BatchResult MultiPutEx(std::span<const Key> keys, const float* values,
                         bool* transport_down);
  BatchResult MultiApplyGradientEx(std::span<const Key> keys,
                                   const float* grads, float lr,
                                   bool* transport_down);

  // One raw request/response exchange over a pooled socket (kClusterMap,
  // kSubscribe, kReplicate, tooling). On OK, `transport` holds the
  // response's transport status and the op body is body[*body_off..].
  Status CallRaw(Opcode op, const PayloadWriter& request, Status* transport,
                 std::vector<uint8_t>* body, size_t* body_off);

  const std::string& addr() const { return options_.addr; }
  // Connect-time handshake (cluster epoch / role included).
  const HandshakeInfo& handshake_info() const { return handshake_; }

 private:
  explicit RemoteBackend(RemoteBackendOptions options)
      : options_(std::move(options)) {}

  // Single-RPC implementations; the public virtuals chunk oversized
  // batches across them.
  BatchResult MultiGetChunk(std::span<const Key> keys, float* out,
                            const MultiGetOptions& options,
                            bool* transport_down);
  BatchResult MultiWriteChunk(Opcode op, std::span<const Key> keys,
                              const float* rows, float lr,
                              bool* transport_down);

  // Checkout/checkin around one RPC; a fresh socket handshakes and must
  // agree with the connect-time dim (a pool pointed at a different server
  // generation would silently corrupt rows otherwise). `pooled` reports
  // whether the socket came from the idle pool (retry eligibility).
  Status CheckOut(Socket* out, bool* pooled);
  void CheckIn(Socket s);
  // Fresh connect + handshake + dim check (no pool involvement).
  Status ConnectFresh(Socket* out);
  // One request/response exchange. On OK, `transport` is the response's
  // transport status and the op body is body[*body_off..] — an offset,
  // not an erase, so a near-cap response is never memmoved. Retries once
  // on a fresh socket when a pooled socket turns out to be stale (safe for
  // `aux` too: the caller's span outlives the whole call). `aux` rides the
  // frame after the request bytes as a gathered second piece — the write
  // path sends raw caller row bytes through it with no encode copy.
  Status Rpc(Opcode op, const PayloadWriter& request, Status* transport,
             std::vector<uint8_t>* body, size_t* body_off,
             std::span<const uint8_t> aux = {});
  // The exchange itself on an already-checked-out socket; does not pool.
  Status Exchange(Socket* s, Opcode op, const PayloadWriter& request,
                  Status* transport, std::vector<uint8_t>* body,
                  size_t* body_off, std::span<const uint8_t> aux = {});
  // Folds a transport-level failure into a per-key result: every key gets
  // the failure code, so callers see the standard BatchResult contract.
  BatchResult FailAll(size_t n, const Status& s);

  const RemoteBackendOptions options_;
  std::string host_;
  uint16_t port_ = 0;
  uint32_t dim_ = 0;
  uint32_t shard_bits_ = 0;
  size_t max_keys_per_rpc_ = 0;  // resolved at Connect (needs dim)
  std::string remote_name_;
  HandshakeInfo handshake_;

  std::mutex pool_mu_;
  std::vector<Socket> pool_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> requests_{0};  // RPC exchanges attempted
  std::atomic<uint64_t> retries_{0};   // stale-pool fresh-socket retries
};

}  // namespace net
}  // namespace mlkv
