// RemoteBackend: the KvBackend seam over the wire. Implements the batched
// virtuals by framing key spans onto a pooled TCP connection and decoding
// the per-key BatchResult back, so every trainer, bench, and the serving
// path can hit a KvServer-fronted store with one flag
// (BackendKind::kRemote + BackendConfig::remote_addr) and zero code
// changes — the network boundary drops in behind the existing seam.
//
// Connection pool: one socket is checked out per in-flight batch, so
// concurrent trainer threads issue RPCs in parallel instead of
// serializing on a single stream (pair the pool with at least as many
// KvServer workers). Sockets are created on demand, handshake-validated,
// and retained idle up to pool_size; a socket that sees any transport
// error is discarded, never re-pooled.
//
// dim() and shard_bits() are answered from the connect-time handshake, so
// batch layout helpers (train/batch_io.h's OrderKeysByShard) keep working
// against a remote store.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/kv_backend.h"
#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace mlkv {
namespace net {

struct RemoteBackendOptions {
  std::string addr;      // "host:port" of a KvServer
  size_t pool_size = 8;  // idle connections retained for reuse
  // Batches larger than this are split into sequential sub-RPCs (results
  // stitched back in caller order — chunks execute in input order, so
  // duplicate-key last-write-wins / gradient-accumulation semantics are
  // preserved). 0 derives the largest count whose request AND response
  // stay under the wire's frame cap for the negotiated dim; tests set it
  // small to exercise the stitching.
  size_t max_keys_per_rpc = 0;
};

class RemoteBackend : public KvBackend {
 public:
  // Connects, handshakes (negotiating dim / shard_bits / backend name),
  // and returns the backend ready for batched calls.
  static Status Connect(const RemoteBackendOptions& options,
                        std::unique_ptr<KvBackend>* out);

  std::string name() const override { return "Remote(" + remote_name_ + ")"; }
  uint32_t dim() const override { return dim_; }
  uint32_t shard_bits() const override { return shard_bits_; }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override;
  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override;
  BatchResult MultiApplyGradient(std::span<const Key> keys,
                                 const float* grads, float lr) override;
  Status Lookahead(std::span<const Key> keys) override;

  // Liveness probe and remote server counters (exposed for tools/tests;
  // not part of the KvBackend contract).
  Status Ping();
  Status FetchStats(StatsSnapshot* out);

 private:
  explicit RemoteBackend(RemoteBackendOptions options)
      : options_(std::move(options)) {}

  // Single-RPC implementations; the public virtuals chunk oversized
  // batches across them.
  BatchResult MultiGetChunk(std::span<const Key> keys, float* out,
                            const MultiGetOptions& options);
  BatchResult MultiWriteChunk(Opcode op, std::span<const Key> keys,
                              const float* rows, float lr);

  // Checkout/checkin around one RPC; a fresh socket handshakes and must
  // agree with the connect-time dim (a pool pointed at a different server
  // generation would silently corrupt rows otherwise).
  Status CheckOut(Socket* out);
  void CheckIn(Socket s);
  // One request/response exchange. On OK, `transport` is the response's
  // transport status and the op body is body[*body_off..] — an offset,
  // not an erase, so a near-cap response is never memmoved.
  Status Rpc(Opcode op, const PayloadWriter& request, Status* transport,
             std::vector<uint8_t>* body, size_t* body_off);
  // Folds a transport-level failure into a per-key result: every key gets
  // the failure code, so callers see the standard BatchResult contract.
  BatchResult FailAll(size_t n, const Status& s);

  const RemoteBackendOptions options_;
  std::string host_;
  uint16_t port_ = 0;
  uint32_t dim_ = 0;
  uint32_t shard_bits_ = 0;
  size_t max_keys_per_rpc_ = 0;  // resolved at Connect (needs dim)
  std::string remote_name_;

  std::mutex pool_mu_;
  std::vector<Socket> pool_;
  std::atomic<uint64_t> next_request_id_{1};
};

}  // namespace net
}  // namespace mlkv
