// Small POSIX TCP wrappers for the RPC subsystem: RAII fds, full-frame
// read/write loops that handle short reads/writes and EINTR, and a
// listener whose blocking Accept can be woken for graceful shutdown.
// Status-returning throughout, no exceptions; errno reasons ride on
// Status::IOError(context, errno).
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace mlkv {
namespace net {

// Splits "host:port" (host optional: ":7700" means loopback). Numeric
// IPv4 dotted quads or resolvable names; port must be 1..65535 unless
// `allow_port_zero` (servers bind 0 for an ephemeral port).
Status ParseHostPort(const std::string& addr, std::string* host,
                     uint16_t* port, bool allow_port_zero = false);

// Splits a comma-separated endpoint list ("h1:7700, h2:7701") into
// normalized "host:port" strings. Whitespace around entries is trimmed;
// an empty entry (",,", trailing comma, or an all-blank list) or a bad
// host:port is InvalidArgument naming the offending entry.
Status ParseEndpointList(const std::string& list,
                         std::vector<std::string>* out);

// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // TCP connect to host:port with TCP_NODELAY (one frame per request —
  // Nagle only adds latency to the RPC pattern).
  static Status Connect(const std::string& host, uint16_t port, Socket* out);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 public:
  // Fully sends an arbitrary gather list (entries are consumed/advanced in
  // place), retrying short sendmsg transfers and windowing the list under
  // the kernel's IOV_MAX segment cap.
  Status SendIov(iovec* iov, int count);

  // Half-close the read side: the peer's in-flight request still gets its
  // response, but the next read on our side sees EOF (graceful drain).
  void ShutdownRead();
  // SO_SNDTIMEO: a send blocked this long (peer stopped reading) fails
  // with IOError instead of blocking forever. 0 disables.
  Status SetSendTimeoutMs(int timeout_ms);

  // Full-buffer loops: retry EINTR, continue over short transfers. Sends
  // use MSG_NOSIGNAL so a vanished peer is an IOError, not SIGPIPE.
  Status SendAll(const void* data, size_t n);
  // Gathering sends (frame header + payload pieces) — one syscall, one
  // segment with TCP_NODELAY, zero copy.
  Status SendTwo(const void* a, size_t an, const void* b, size_t bn);
  Status SendThree(const void* a, size_t an, const void* b, size_t bn,
                   const void* c, size_t cn);
  // kAborted when the peer closed cleanly before the first byte (only if
  // `eof_ok` — mid-buffer EOF is always a truncation error).
  Status RecvAll(void* data, size_t n, bool eof_ok = false);
  // Blocks up to timeout_ms for the fd to become readable (includes EOF):
  // OK when readable, TimedOut on quiet timeout, IOError on poll failure.
  Status WaitReadable(int timeout_ms);

 private:
  int fd_ = -1;
};

// One whole frame per call: header + payload out, header + payload in.
// RecvFrame returns kAborted on clean peer close between frames,
// Corruption for torn/corrupt frames, NotSupported for a version
// mismatch (with hdr->request_id valid so the caller can answer).
Status SendFrame(Socket* s, const FrameHeader& hdr,
                 std::span<const uint8_t> payload);
Status SendFrame(Socket* s, Opcode op, uint16_t flags, uint64_t request_id,
                 std::span<const uint8_t> payload);
// Two-piece payload (e.g. a response's status prefix + op body), gathered
// into one frame without concatenating the buffers.
Status SendFrame(Socket* s, Opcode op, uint16_t flags, uint64_t request_id,
                 std::span<const uint8_t> prefix,
                 std::span<const uint8_t> body);
// Fully gathered response frame: status prefix + op body + any number of
// trailing byte runs (a MultiGet's served rows, aliased straight from the
// backend's buffer — see wire.h CollectServedRowRuns). One frame, no
// payload concatenation, rows never copied.
Status SendFrame(Socket* s, Opcode op, uint16_t flags, uint64_t request_id,
                 std::span<const uint8_t> prefix, std::span<const uint8_t> body,
                 std::span<const std::span<const uint8_t>> rows);
Status RecvFrame(Socket* s, FrameHeader* hdr, std::vector<uint8_t>* payload);

// Listening socket with a self-pipe so Stop() can unblock a pending
// Accept without races or timeouts.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  // Binds and listens; port 0 picks an ephemeral port (see port()).
  Status Listen(const std::string& host, uint16_t port, int backlog = 64);
  uint16_t port() const { return port_; }

  // Blocks until a connection arrives (OK), Wake() is called (kAborted),
  // or the socket fails (kIOError).
  Status Accept(Socket* out);
  // Unblocks current and future Accept calls; idempotent, thread-safe.
  void Wake();
  void Close();

 private:
  int fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::atomic<bool> woken_{false};
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace mlkv
