// KgeTrainer: knowledge-graph embedding training over a KvBackend — the
// role DGL-KE plays in the paper. Trains DistMult / ComplEx with negative
// sampling and reports Hits@10 (paper Fig. 6 middle, Fig. 8 right,
// Fig. 9(b)).
//
// Also implements the BETA traversal of Marius [18,19] (paper Fig. 9(b)):
// entities are hashed into P partitions and triples are processed grouped
// by (head-partition, tail-partition) pairs ordered to maximize reuse of
// the partition resident in the buffer — the partition-based graph learning
// algorithm the paper layers look-ahead prefetching under.
#pragma once

#include "backend/kv_backend.h"
#include "ml/kge_models.h"
#include "train/compute_delay.h"
#include "train/train_result.h"
#include "workloads/kg_gen.h"

namespace mlkv {

struct KgeTrainerOptions {
  KgConfig data;
  uint32_t dim = 32;                 // entity embedding dimension (even)
  KgeModelKind model = KgeModelKind::kDistMult;
  int batch_size = 256;              // positive triples per batch
  int negatives_per_positive = 4;
  int num_workers = 2;
  uint64_t train_batches = 400;      // per worker
  int eval_every = 100;
  int eval_triples = 500;
  int eval_negatives = 50;           // candidates per Hits@10 query
  float lr = 0.3f;
  int lookahead_depth = 0;
  // Shard count (log2) of the backend this trainer feeds: unique keys are
  // ordered shard-contiguously before each batched call (see
  // train/batch_io.h). 0 disables; semantically neutral either way. The
  // default kAutoShardBits asks the backend (KvBackend::shard_bits()).
  uint32_t backend_shard_bits = kAutoShardBits;
  bool use_beta = false;             // BETA partition ordering
  int beta_partitions = 8;
  uint64_t compute_micros_per_batch = 0;
  // Initialize embeddings for keys [0, preload_keys) before the timed run,
  // so out-of-core measurements start from a steady state (model resident
  // on disk) instead of an insert-only warmup. 0 skips preloading.
  uint64_t preload_keys = 0;
  uint64_t seed = 2;
};

class KgeTrainer {
 public:
  KgeTrainer(KvBackend* backend, const KgeTrainerOptions& options)
      : backend_(backend), options_(options) {}

  TrainResult Train();

 private:
  KvBackend* backend_;
  KgeTrainerOptions options_;
};

}  // namespace mlkv
