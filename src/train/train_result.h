// Result record shared by every training pipeline; benchmarks turn these
// into the rows/series of the paper's figures.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace mlkv {

struct TrainResult {
  uint64_t samples = 0;
  double seconds = 0;
  // (elapsed seconds, metric value) — AUC / Hits@k / accuracy over time,
  // the convergence curves of Fig. 6 and Fig. 11(b).
  std::vector<std::pair<double, double>> metric_curve;
  double final_metric = 0;

  // Phase accounting summed across workers (Fig. 2 latency breakdown).
  double embedding_seconds = 0;  // Get/Put time against the store
  double forward_seconds = 0;
  double backward_seconds = 0;

  // Storage traffic (energy model input).
  uint64_t device_bytes_read = 0;
  uint64_t device_bytes_written = 0;
  uint64_t busy_aborts = 0;

  double throughput() const { return seconds > 0 ? samples / seconds : 0; }
};

}  // namespace mlkv
