// ComputeDelayModel: pads each NN step to a target duration, standing in
// for GPU kernel time (see DESIGN.md substitutions). The paper's
// experiments run the NN on an A10G/V100 while embeddings come from
// storage; what the storage comparison measures is how well embedding I/O
// overlaps a fixed compute budget. With `target_micros == 0` the model is
// a no-op and compute time is whatever the CPU kernels take.
#pragma once

#include <ctime>
#include <cstdint>

#include "common/clock.h"

namespace mlkv {

class ComputeDelayModel {
 public:
  explicit ComputeDelayModel(uint64_t target_micros_per_batch = 0)
      : target_micros_(target_micros_per_batch) {}

  // Sleeps out the remainder of the budget given that `spent_micros` of
  // real compute already happened. Sleeping (not spinning) matters: the
  // modeled work runs on the accelerator, so the host core is free to
  // drive storage — exactly the overlap async training exploits.
  void PadBatch(uint64_t spent_micros) const {
    if (target_micros_ == 0 || spent_micros >= target_micros_) return;
    const uint64_t remain_us = target_micros_ - spent_micros;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(remain_us / 1000000);
    ts.tv_nsec = static_cast<long>((remain_us % 1000000) * 1000);
    nanosleep(&ts, nullptr);
  }

  uint64_t target_micros() const { return target_micros_; }

 private:
  uint64_t target_micros_;
};

}  // namespace mlkv
