#include "train/gnn_trainer.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/simd.h"
#include "ml/metrics.h"
#include "train/batch_io.h"

namespace mlkv {

namespace {

// A sampled training example independent of task: the node to classify,
// its sampled neighbors, and an integer label.
struct NodeSample {
  Key node;
  std::vector<Key> neighbors;
  int label;
};

std::unique_ptr<GnnModel> MakeModel(const GnnTrainerOptions& o,
                                    int num_classes, uint64_t seed) {
  if (o.model == GnnModelKind::kGat) {
    return std::make_unique<GatModel>(o.dim, o.hidden, num_classes, seed,
                                      o.dense_lr);
  }
  return std::make_unique<GraphSageModel>(o.dim, o.hidden, num_classes, seed,
                                          o.dense_lr);
}

}  // namespace

TrainResult GnnTrainer::Train() {
  const uint32_t dim = options_.dim;
  const int B = options_.batch_size;
  const bool ebay = options_.task != GnnTask::kPapers;
  const int num_classes = ebay ? 2 : options_.graph.num_classes;
  const int fanout = ebay ? options_.ebay.entities_per_transaction
                          : options_.graph.fanout;

  TrainResult result;
  std::mutex result_mu;

  if (options_.preload_keys > 0) {
    PreloadKeys(backend_, options_.preload_keys);
  }

  StopWatch wall;

  // Task-specific sampler factory; each worker (and the eval set) gets an
  // independent deterministic stream.
  auto make_sampler = [&](uint64_t stream_seed) {
    std::shared_ptr<GraphGenerator> g;
    std::shared_ptr<EbayGenerator> e;
    if (ebay) {
      EbayConfig cfg = options_.ebay;
      cfg.tripartite = options_.task == GnnTask::kEbayPayout;
      e = std::make_shared<EbayGenerator>(cfg, stream_seed);
    } else {
      g = std::make_shared<GraphGenerator>(options_.graph, stream_seed);
    }
    return [g, e, this]() {
      NodeSample s;
      if (e) {
        EbaySample es = e->Next();
        s.node = es.transaction;
        s.neighbors = std::move(es.entities);
        s.label = es.label > 0.5f ? 1 : 0;
      } else {
        s.node = g->SampleTrainNode();
        g->SampleNeighbors(s.node, &s.neighbors);
        s.label = g->LabelOf(s.node);
      }
      return s;
    };
  };

  // Held-out evaluation set.
  std::vector<NodeSample> eval_set;
  {
    auto sample = make_sampler(424242);
    for (int i = 0; i < options_.eval_nodes; ++i) eval_set.push_back(sample());
  }

  ComputeDelayModel delay(options_.compute_micros_per_batch);
  std::atomic<uint64_t> total_samples{0};

  auto worker_fn = [&](int wid) {
    auto sample = make_sampler(static_cast<uint64_t>(wid) + 1);
    auto model = MakeModel(options_, num_classes, options_.seed + wid);
    const uint64_t n_batches = options_.train_batches;
    std::vector<NodeSample> stream;
    stream.reserve(n_batches * B);
    for (uint64_t i = 0; i < n_batches * B; ++i) stream.push_back(sample());

    GnnBatch batch_data;
    batch_data.fanout = fanout;
    Tensor grad_logits, grad_self, grad_neighbors;
    double emb_sec = 0, fwd_sec = 0, bwd_sec = 0;

    for (uint64_t batch = 0; batch < n_batches; ++batch) {
      const NodeSample* samples = &stream[batch * B];

      if (options_.lookahead_depth > 0) {
        const uint64_t ahead = batch + options_.lookahead_depth;
        if (ahead < n_batches) {
          std::vector<Key> future;
          for (int i = 0; i < B; ++i) {
            const NodeSample& s = stream[ahead * B + i];
            future.push_back(s.node);
            future.insert(future.end(), s.neighbors.begin(),
                          s.neighbors.end());
          }
          backend_->Lookahead(future).ok();
        }
      }

      // Unique keys across self + neighbors.
      std::unordered_map<Key, size_t> slot;
      std::vector<Key> unique;
      auto intern = [&](Key k) {
        auto [it, fresh] = slot.emplace(k, unique.size());
        if (fresh) unique.push_back(k);
        return it->second;
      };
      for (int i = 0; i < B; ++i) {
        intern(samples[i].node);
        for (Key n : samples[i].neighbors) intern(n);
      }
      OrderKeysByShard(ResolveShardBits(options_.backend_shard_bits, backend_),
                       &unique, &slot);

      // --- Get: one batched call per minibatch ---
      uint64_t t0 = NowMicros();
      std::vector<float> emb(unique.size() * dim);
      const uint64_t busy =
          MultiGetWithBusyFallback(backend_, unique, emb.data());
      if (busy > 0) {
        std::lock_guard<std::mutex> lk(result_mu);
        result.busy_aborts += busy;
      }
      uint64_t t1 = NowMicros();
      emb_sec += (t1 - t0) * 1e-6;

      // Assemble the batch tensors.
      batch_data.self.Resize(B, dim);
      batch_data.neighbors.Resize(static_cast<size_t>(B) * fanout, dim);
      batch_data.labels.resize(B);
      for (int i = 0; i < B; ++i) {
        const size_t us = slot[samples[i].node];
        std::copy(&emb[us * dim], &emb[us * dim] + dim,
                  batch_data.self.row(i));
        for (int n = 0; n < fanout; ++n) {
          const size_t un = slot[samples[i].neighbors[n]];
          std::copy(&emb[un * dim], &emb[un * dim] + dim,
                    batch_data.neighbors.row(static_cast<size_t>(i) * fanout +
                                             n));
        }
        batch_data.labels[i] = samples[i].label;
      }

      // --- Forward ---
      t0 = NowMicros();
      const Tensor& logits = model->Forward(batch_data);
      t1 = NowMicros();
      SoftmaxCrossEntropy(logits, batch_data.labels, &grad_logits);

      // --- Backward ---
      model->Backward(grad_logits, &grad_self, &grad_neighbors);
      model->Step();
      uint64_t t2 = NowMicros();
      delay.PadBatch(t2 - t0);
      uint64_t t3 = NowMicros();
      fwd_sec += (t1 - t0) * 1e-6 + (t3 - t2) * 1e-6 * 0.5;
      bwd_sec += (t2 - t1) * 1e-6 + (t3 - t2) * 1e-6 * 0.5;

      // Accumulate per-unique-key embedding grads.
      std::vector<float> grad(unique.size() * dim, 0.0f);
      for (int i = 0; i < B; ++i) {
        const size_t us = slot[samples[i].node];
        simd::AccumulateFloats(&grad[us * dim], grad_self.row(i), dim);
        for (int n = 0; n < fanout; ++n) {
          const size_t un = slot[samples[i].neighbors[n]];
          simd::AccumulateFloats(
              &grad[un * dim],
              grad_neighbors.row(static_cast<size_t>(i) * fanout + n), dim);
        }
      }

      // --- Put: one batched call per minibatch ---
      t0 = NowMicros();
      std::vector<float> updated(unique.size() * dim);
      simd::CopyFloats(updated.data(), emb.data(), updated.size());
      simd::SubScaled(updated.data(), grad.data(), options_.embedding_lr,
                      updated.size());
      backend_->MultiPut(unique, updated.data());
      t1 = NowMicros();
      emb_sec += (t1 - t0) * 1e-6;

      total_samples.fetch_add(B, std::memory_order_relaxed);

      // --- Eval (worker 0): accuracy (papers) or AUC (eBay binary). ---
      if (wid == 0 && options_.eval_every > 0 &&
          (batch + 1) % options_.eval_every == 0) {
        AccuracyAccumulator acc;
        AucAccumulator auc;
        GnnBatch eb;
        eb.fanout = fanout;
        eb.self.Resize(1, dim);
        eb.neighbors.Resize(fanout, dim);
        eb.labels.resize(1);
        std::vector<Key> ekeys;
        std::vector<float> ebuf;
        for (const NodeSample& s : eval_set) {
          // One untracked batched read per eval node: self, then neighbors.
          ekeys.assign(1, s.node);
          ekeys.insert(ekeys.end(), s.neighbors.begin(), s.neighbors.end());
          ebuf.resize(ekeys.size() * dim);
          EvalPeek(backend_, ekeys, ebuf.data());
          std::copy(ebuf.begin(), ebuf.begin() + dim, eb.self.row(0));
          for (int n = 0; n < fanout; ++n) {
            const float* src = &ebuf[(1 + static_cast<size_t>(n)) * dim];
            std::copy(src, src + dim, eb.neighbors.row(n));
          }
          const Tensor& logits = model->Forward(eb);
          int best = 0;
          for (int c = 1; c < num_classes; ++c) {
            if (logits.at(0, c) > logits.at(0, best)) best = c;
          }
          acc.Add(best, s.label);
          if (num_classes == 2) {
            auc.Add(logits.at(0, 1) - logits.at(0, 0), s.label == 1);
          }
        }
        const double metric = num_classes == 2 ? auc.Compute() : acc.Compute();
        std::lock_guard<std::mutex> lk(result_mu);
        result.metric_curve.emplace_back(wall.ElapsedSeconds(), metric);
      }
    }

    std::lock_guard<std::mutex> lk(result_mu);
    result.embedding_seconds += emb_sec;
    result.forward_seconds += fwd_sec;
    result.backward_seconds += bwd_sec;
  };

  const uint64_t bytes_read0 = backend_->device_bytes_read();
  const uint64_t bytes_written0 = backend_->device_bytes_written();
  std::vector<std::thread> workers;
  for (int w = 0; w < options_.num_workers; ++w) {
    workers.emplace_back(worker_fn, w);
  }
  for (auto& t : workers) t.join();
  backend_->WaitIdle();

  result.samples = total_samples.load();
  result.seconds = wall.ElapsedSeconds();
  result.device_bytes_read = backend_->device_bytes_read() - bytes_read0;
  result.device_bytes_written =
      backend_->device_bytes_written() - bytes_written0;
  if (!result.metric_curve.empty()) {
    result.final_metric = result.metric_curve.back().second;
  }
  return result;
}

}  // namespace mlkv
