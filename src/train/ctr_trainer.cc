#include "train/ctr_trainer.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/simd.h"
#include "ml/ctr_models.h"
#include "ml/metrics.h"
#include "train/batch_io.h"

namespace mlkv {

namespace {

std::unique_ptr<CtrModel> MakeModel(CtrModelKind kind, size_t input_dim,
                                    uint64_t seed, float lr) {
  if (kind == CtrModelKind::kDcn) {
    return std::make_unique<DcnModel>(input_dim, 2, seed, lr);
  }
  return std::make_unique<FfnnModel>(input_dim, seed, lr);
}

}  // namespace

TrainResult CtrTrainer::Train() {
  const int m = options_.data.num_fields;
  const int dense_n = options_.data.num_dense;
  const uint32_t dim = options_.dim;
  const size_t input_dim = static_cast<size_t>(m) * dim + dense_n;
  const int B = options_.batch_size;

  TrainResult result;
  std::mutex result_mu;

  if (options_.preload_keys > 0) {
    PreloadKeys(backend_, options_.preload_keys);
  }

  StopWatch wall;

  // Fixed held-out evaluation stream (separate generator seed).
  std::vector<CtrSample> eval_set;
  {
    CtrGenerator eval_gen(options_.data, /*stream_seed=*/9999);
    eval_set.reserve(options_.eval_samples);
    for (int i = 0; i < options_.eval_samples; ++i) {
      eval_set.push_back(eval_gen.Next());
    }
  }

  ComputeDelayModel delay(options_.compute_micros_per_batch);
  std::atomic<uint64_t> total_samples{0};

  auto worker_fn = [&](int wid) {
    CtrGenerator gen(options_.data, /*stream_seed=*/wid + 1);
    auto model = MakeModel(options_.model, input_dim,
                           options_.seed + wid, options_.dense_lr);
    // Pre-generate the sample stream so the look-ahead driver can see the
    // future (the paper: "applications ... know what future incoming
    // training samples will be").
    const uint64_t n_batches = options_.train_batches;
    std::vector<CtrSample> stream;
    stream.reserve(n_batches * B);
    for (uint64_t i = 0; i < n_batches * B; ++i) stream.push_back(gen.Next());

    Tensor x(B, input_dim), grad_logits;
    std::vector<float> emb(dim);
    double emb_sec = 0, fwd_sec = 0, bwd_sec = 0;

    for (uint64_t batch = 0; batch < n_batches; ++batch) {
      const CtrSample* samples = &stream[batch * B];

      // Look-ahead: prefetch the batch `lookahead_depth` ahead.
      if (options_.lookahead_depth > 0) {
        const uint64_t ahead = batch + options_.lookahead_depth;
        if (ahead < n_batches) {
          std::vector<Key> future;
          future.reserve(static_cast<size_t>(B) * m);
          for (int i = 0; i < B; ++i) {
            const CtrSample& s = stream[ahead * B + i];
            future.insert(future.end(), s.keys.begin(), s.keys.end());
          }
          backend_->Lookahead(future).ok();
        }
      }

      // Dedup keys so one batch issues one Get (and later one Put) per
      // unique key — required under low staleness bounds and standard in
      // embedding trainers.
      std::unordered_map<Key, size_t> key_slot;
      std::vector<Key> unique_keys;
      for (int i = 0; i < B; ++i) {
        for (int f = 0; f < m; ++f) {
          const Key k = samples[i].keys[f];
          if (key_slot.emplace(k, unique_keys.size()).second) {
            unique_keys.push_back(k);
          }
        }
      }
      OrderKeysByShard(ResolveShardBits(options_.backend_shard_bits, backend_),
                       &unique_keys, &key_slot);

      // --- Embedding access (Get): one batched call per minibatch ---
      uint64_t t0 = NowMicros();
      std::vector<float> unique_emb(unique_keys.size() * dim);
      const uint64_t busy =
          MultiGetWithBusyFallback(backend_, unique_keys, unique_emb.data());
      if (busy > 0) {
        std::lock_guard<std::mutex> lk(result_mu);
        result.busy_aborts += busy;
      }
      uint64_t t1 = NowMicros();
      emb_sec += (t1 - t0) * 1e-6;

      // Assemble input.
      x.Zero();
      std::vector<float> labels(B);
      for (int i = 0; i < B; ++i) {
        float* row = x.row(i);
        for (int f = 0; f < m; ++f) {
          const size_t u = key_slot[samples[i].keys[f]];
          std::copy(&unique_emb[u * dim], &unique_emb[u * dim] + dim,
                    row + static_cast<size_t>(f) * dim);
        }
        for (int d = 0; d < dense_n; ++d) {
          row[static_cast<size_t>(m) * dim + d] = samples[i].dense[d];
        }
        labels[i] = samples[i].label;
      }

      // --- NN forward ---
      t0 = NowMicros();
      const Tensor& logits = model->Forward(x);
      t1 = NowMicros();
      BceWithLogits(logits, labels, &grad_logits);

      // --- NN backward + dense step ---
      const Tensor& gx = model->Backward(grad_logits);
      model->Step();
      uint64_t t2 = NowMicros();
      delay.PadBatch(t2 - t0);
      uint64_t t3 = NowMicros();
      fwd_sec += (t1 - t0) * 1e-6 + (t3 - t2) * 1e-6 * 0.5;
      bwd_sec += (t2 - t1) * 1e-6 + (t3 - t2) * 1e-6 * 0.5;

      // Accumulate per-unique-key embedding gradients.
      std::vector<float> grad(unique_keys.size() * dim, 0.0f);
      for (int i = 0; i < B; ++i) {
        const float* g = gx.row(i);
        for (int f = 0; f < m; ++f) {
          const size_t u = key_slot[samples[i].keys[f]];
          simd::AccumulateFloats(&grad[u * dim],
                                 g + static_cast<size_t>(f) * dim, dim);
        }
      }

      // --- Embedding update (Put: value - lr * grad, Fig. 3 line 17),
      // one batched call per minibatch ---
      t0 = NowMicros();
      std::vector<float> updated(unique_keys.size() * dim);
      simd::CopyFloats(updated.data(), unique_emb.data(), updated.size());
      simd::SubScaled(updated.data(), grad.data(), options_.embedding_lr,
                      updated.size());
      backend_->MultiPut(unique_keys, updated.data());
      t1 = NowMicros();
      emb_sec += (t1 - t0) * 1e-6;

      total_samples.fetch_add(B, std::memory_order_relaxed);

      // --- Periodic evaluation (worker 0) ---
      if (wid == 0 && options_.eval_every > 0 &&
          (batch + 1) % options_.eval_every == 0) {
        AucAccumulator auc;
        Tensor ex(1, input_dim);
        for (const CtrSample& s : eval_set) {
          ex.Zero();
          float* row = ex.row(0);
          // One untracked batched read per sample; the input row's
          // field-major layout is exactly the MultiGet output layout.
          EvalPeek(backend_, s.keys, row);
          for (int d = 0; d < dense_n; ++d) {
            row[static_cast<size_t>(m) * dim + d] = s.dense[d];
          }
          const Tensor& logit = model->Forward(ex);
          auc.Add(logit.at(0, 0), s.label > 0.5f);
        }
        std::lock_guard<std::mutex> lk(result_mu);
        result.metric_curve.emplace_back(wall.ElapsedSeconds(),
                                         auc.Compute());
      }
    }

    std::lock_guard<std::mutex> lk(result_mu);
    result.embedding_seconds += emb_sec;
    result.forward_seconds += fwd_sec;
    result.backward_seconds += bwd_sec;
  };

  const uint64_t bytes_read0 = backend_->device_bytes_read();
  const uint64_t bytes_written0 = backend_->device_bytes_written();

  std::vector<std::thread> workers;
  for (int w = 0; w < options_.num_workers; ++w) {
    workers.emplace_back(worker_fn, w);
  }
  for (auto& t : workers) t.join();
  backend_->WaitIdle();

  result.samples = total_samples.load();
  result.seconds = wall.ElapsedSeconds();
  result.device_bytes_read = backend_->device_bytes_read() - bytes_read0;
  result.device_bytes_written =
      backend_->device_bytes_written() - bytes_written0;
  if (!result.metric_curve.empty()) {
    result.final_metric = result.metric_curve.back().second;
  }
  return result;
}

}  // namespace mlkv
