// Batched storage access shared by the trainers: every minibatch phase —
// preload, forward-pass Get, evaluation Peek — is one KvBackend Multi*
// call, with the trainers' standard per-key recovery policy (bounded-
// staleness aborts fall back to one untracked re-read batch) in one place.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "backend/kv_backend.h"
#include "common/hash.h"
#include "common/simd.h"

namespace mlkv {

// Resolves a config struct's backend_shard_bits: kAutoShardBits (the
// default) asks the backend for its actual shard count.
inline uint32_t ResolveShardBits(uint32_t configured,
                                 const KvBackend* backend) {
  return configured == kAutoShardBits ? backend->shard_bits() : configured;
}

// Reorders a deduplicated minibatch so keys of the same backend shard are
// contiguous (stable within a shard) and rebuilds the key -> row map to
// match. A sharded backend's scatter step then sees each shard's sub-batch
// as one contiguous run of the key span (and of the value/gradient
// matrices), instead of gathering rows from all over the batch. Semantics
// are unaffected — only the order of unique keys changes — so it is safe
// (and pointless) when the backend is unsharded; shard_bits == 0 returns
// immediately.
inline void OrderKeysByShard(uint32_t shard_bits, std::vector<Key>* keys,
                             std::unordered_map<Key, size_t>* slot) {
  if (shard_bits == 0 || keys->size() <= 1) return;
  if (shard_bits > 16) shard_bits = 16;  // ShardOf's routing-mask ceiling
  const uint64_t mask = (uint64_t{1} << shard_bits) - 1;
  std::vector<std::vector<Key>> buckets(mask + 1);
  for (const Key k : *keys) buckets[ShardOf(Hash64(k), mask)].push_back(k);
  keys->clear();
  for (const auto& bucket : buckets) {
    keys->insert(keys->end(), bucket.begin(), bucket.end());
  }
  for (size_t u = 0; u < keys->size(); ++u) (*slot)[(*keys)[u]] = u;
}

// Warms keys [0, n) in batched chunks: one MultiGet materializes (and
// deterministically initializes) each chunk, one MultiPut commits it.
inline void PreloadKeys(KvBackend* backend, Key n, size_t chunk = 4096) {
  const uint32_t dim = backend->dim();
  std::vector<Key> keys(std::min<size_t>(chunk, static_cast<size_t>(n)));
  std::vector<float> buf(keys.size() * dim);
  for (Key base = 0; base < n; base += chunk) {
    const size_t len =
        static_cast<size_t>(std::min<Key>(chunk, n - base));
    for (size_t i = 0; i < len; ++i) keys[i] = base + i;
    const std::span<const Key> span(keys.data(), len);
    backend->MultiGet(span, buf.data());
    backend->MultiPut(span, buf.data());
  }
  backend->WaitIdle();
}

// Forward-pass read of a deduplicated minibatch. Keys that abort on the
// staleness bound (crossed waits between BSP workers resolve via a bounded
// abort) are re-read consistency-free in one follow-up batch. Returns the
// number of busy aborts (the trainers' busy_aborts metric).
inline uint64_t MultiGetWithBusyFallback(KvBackend* backend,
                                         std::span<const Key> keys,
                                         float* out) {
  const BatchResult r = backend->MultiGet(keys, out);
  if (r.busy == 0) return 0;
  const uint32_t dim = backend->dim();
  std::vector<Key> busy_keys;
  std::vector<size_t> at;
  busy_keys.reserve(r.busy);
  at.reserve(r.busy);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (r.codes[i] == Status::Code::kBusy) {
      busy_keys.push_back(keys[i]);
      at.push_back(i);
    }
  }
  std::vector<float> buf(busy_keys.size() * size_t{dim});
  MultiGetOptions untracked;
  untracked.untracked = true;
  backend->MultiGet(busy_keys, buf.data(), untracked);
  for (size_t j = 0; j < busy_keys.size(); ++j) {
    simd::CopyFloats(out + at[j] * size_t{dim}, &buf[j * size_t{dim}], dim);
  }
  return r.busy;
}

// Evaluation read: untracked (never waits on or advances staleness state),
// still bootstrapping never-seen keys so eval code always has a vector.
inline void EvalPeek(KvBackend* backend, std::span<const Key> keys,
                     float* out) {
  MultiGetOptions options;
  options.untracked = true;
  backend->MultiGet(keys, out, options);
}

}  // namespace mlkv
