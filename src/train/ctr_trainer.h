// CtrTrainer: DLRM-style CTR training pipeline over a KvBackend — the role
// PERSIA's computation layer plays in the paper's experiments.
//
// Workers run the Fig. 3 loop: dedup batch keys -> Get embeddings ->
// NN forward/backward -> Put updated embeddings (value - lr * grad). Dense
// parameters are per-worker replicas (the paper trains the NN synchronously
// on GPUs; embedding staleness — the storage concern — is what varies).
// A look-ahead driver issues Lookahead() for batches `lookahead_depth`
// ahead of consumption (§III-C2).
#pragma once

#include <memory>

#include "backend/kv_backend.h"
#include "train/compute_delay.h"
#include "train/train_result.h"
#include "workloads/ctr_gen.h"

namespace mlkv {

enum class CtrModelKind { kFfnn, kDcn };

struct CtrTrainerOptions {
  CtrConfig data;
  uint32_t dim = 16;
  CtrModelKind model = CtrModelKind::kFfnn;
  int batch_size = 256;
  int num_workers = 2;
  uint64_t train_batches = 500;   // per worker
  int eval_every = 100;           // batches between eval points (worker 0)
  int eval_samples = 2000;
  float embedding_lr = 0.05f;
  float dense_lr = 0.05f;
  // Look-ahead prefetching: 0 disables; N issues Lookahead for the batch
  // N positions ahead of the one being trained.
  int lookahead_depth = 0;
  // Shard count (log2) of the backend this trainer feeds: each minibatch's
  // unique keys are ordered shard-contiguously before the batched calls so
  // the backend's scatter step works on contiguous runs. Purely a layout
  // hint — 0 disables; any value is semantically neutral. The default
  // kAutoShardBits asks the backend (KvBackend::shard_bits()).
  uint32_t backend_shard_bits = kAutoShardBits;
  uint64_t compute_micros_per_batch = 0;  // GPU-time substitution
  // Initialize embeddings for keys [0, preload_keys) before the timed run,
  // so out-of-core measurements start from a steady state (model resident
  // on disk) instead of an insert-only warmup. 0 skips preloading.
  uint64_t preload_keys = 0;
  uint64_t seed = 1;
};

class CtrTrainer {
 public:
  CtrTrainer(KvBackend* backend, const CtrTrainerOptions& options)
      : backend_(backend), options_(options) {}

  // Runs the full training job; blocking. Thread-safe w.r.t. the backend.
  TrainResult Train();

  // Evaluates AUC of a freshly-initialized model pipeline (sanity hooks for
  // tests); Train() reports AUC along the way in metric_curve.

 private:
  KvBackend* backend_;
  CtrTrainerOptions options_;
};

}  // namespace mlkv
