// DdpSim: models the DGL-DDP baseline of Fig. 11(a) — two data-parallel
// instances that each hold HALF the embedding model in memory and
// all-reduce dense gradients every step.
//
// The paper's finding: one MLKV instance reaches ~70% of two-instance DDP
// throughput at half the hardware. We model DDP throughput from measured
// single-instance in-memory compute plus a communication term, rather than
// spawning processes: throughput_ddp = 2 * B / (t_compute + t_allreduce),
// with t_allreduce = gradient_bytes / interconnect_bw + latency. The
// in-memory compute time comes from an actual InMemory-backend run, so the
// comparison against MLKV/FASTER uses apples-to-apples compute.
#pragma once

#include <cstdint>

#include "train/train_result.h"

namespace mlkv {

struct DdpSimConfig {
  int instances = 2;
  double interconnect_gbps = 25.0;   // AWS-class instance networking
  double allreduce_latency_s = 3e-4;
  uint64_t dense_param_bytes = 2ull << 20;  // NN gradient volume per step
};

class DdpSim {
 public:
  explicit DdpSim(const DdpSimConfig& config = {}) : config_(config) {}

  // `single` is the measured result of a single-instance in-memory run with
  // `batches` steps. Returns modeled aggregate DDP samples/sec.
  double Throughput(const TrainResult& single, uint64_t batches) const {
    if (batches == 0 || single.samples == 0) return 0;
    const double per_batch_compute = single.seconds / static_cast<double>(batches);
    // Ring all-reduce moves 2*(n-1)/n of the gradient bytes per step.
    const double ring_factor =
        2.0 * (config_.instances - 1) / static_cast<double>(config_.instances);
    const double allreduce =
        config_.allreduce_latency_s +
        ring_factor * static_cast<double>(config_.dense_param_bytes) /
            (config_.interconnect_gbps * 1e9 / 8.0);
    const double batch_size =
        static_cast<double>(single.samples) / static_cast<double>(batches);
    return config_.instances * batch_size / (per_batch_compute + allreduce);
  }

 private:
  DdpSimConfig config_;
};

}  // namespace mlkv
