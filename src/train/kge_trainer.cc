#include "train/kge_trainer.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/simd.h"
#include "ml/layers.h"
#include "ml/metrics.h"
#include "train/batch_io.h"

namespace mlkv {

namespace {

// Softplus-of-logit BCE on scores: positives want high scores, negatives
// low. Returns dL/dscore for one (score, label) pair.
float ScoreGrad(float score, bool positive, float* loss_out) {
  const float p = Sigmoid(score);
  if (loss_out != nullptr) {
    const float softplus = score > 20 ? score : std::log1p(std::exp(score));
    *loss_out = positive ? softplus - score : softplus;
  }
  return p - (positive ? 1.0f : 0.0f);
}

}  // namespace

TrainResult KgeTrainer::Train() {
  const uint32_t dim = options_.dim;
  const int B = options_.batch_size;
  const int NEG = options_.negatives_per_positive;

  TrainResult result;
  std::mutex result_mu;

  if (options_.preload_keys > 0) {
    PreloadKeys(backend_, options_.preload_keys);
  }

  StopWatch wall;

  // Relation embeddings live densely in memory (there are only a handful);
  // shared across workers behind a mutex, which matches practice: relation
  // tables in DGL-KE are small and GPU-resident.
  std::vector<std::vector<float>> relations(options_.data.num_relations,
                                            std::vector<float>(dim));
  {
    Rng rng(options_.seed * 71);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    for (auto& r : relations) {
      for (auto& v : r) {
        v = static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale;
      }
    }
  }
  std::mutex rel_mu;

  // Held-out evaluation triples with fixed negative candidates.
  struct EvalItem {
    KgTriple triple;
    std::vector<Key> negatives;
  };
  std::vector<EvalItem> eval_set;
  {
    KgGenerator gen(options_.data, /*stream_seed=*/31337);
    for (int i = 0; i < options_.eval_triples; ++i) {
      EvalItem e;
      e.triple = gen.Next();
      for (int n = 0; n < options_.eval_negatives; ++n) {
        e.negatives.push_back(gen.SampleNegativeTail());
      }
      eval_set.push_back(std::move(e));
    }
  }

  ComputeDelayModel delay(options_.compute_micros_per_batch);
  std::atomic<uint64_t> total_samples{0};

  const int P = options_.beta_partitions;
  auto partition_of = [this, P](Key e) {
    return static_cast<int>(Hash64(e ^ 0xBEBAull) % static_cast<uint64_t>(P));
  };

  auto worker_fn = [&](int wid) {
    KgGenerator gen(options_.data, /*stream_seed=*/wid + 1);
    const uint64_t n_batches = options_.train_batches;

    // Materialize this worker's triple stream. Under BETA ordering, sort
    // the stream by (head partition, tail partition) in a buffer-friendly
    // order: partition pairs are visited so consecutive pairs share one
    // partition (Marius' BETA traversal), maximizing buffer reuse.
    std::vector<KgTriple> stream;
    stream.reserve(n_batches * B);
    for (uint64_t i = 0; i < n_batches * B; ++i) stream.push_back(gen.Next());
    if (options_.use_beta) {
      // Order pairs: (0,0),(0,1)...(0,P-1),(1,P-1),(1,0),(1,1)... — a
      // boustrophedon over the pair grid keeping one side fixed per row.
      auto pair_rank = [P](int hp, int tp) {
        const int col = (hp % 2 == 0) ? tp : (P - 1 - tp);
        return hp * P + col;
      };
      std::stable_sort(stream.begin(), stream.end(),
                       [&](const KgTriple& a, const KgTriple& b) {
                         return pair_rank(partition_of(a.head),
                                          partition_of(a.tail)) <
                                pair_rank(partition_of(b.head),
                                          partition_of(b.tail));
                       });
    }

    double emb_sec = 0, fwd_sec = 0, bwd_sec = 0;

    for (uint64_t batch = 0; batch < n_batches; ++batch) {
      const KgTriple* triples = &stream[batch * B];

      if (options_.lookahead_depth > 0) {
        const uint64_t ahead = batch + options_.lookahead_depth;
        if (ahead < n_batches) {
          std::vector<Key> future;
          future.reserve(static_cast<size_t>(B) * 2);
          for (int i = 0; i < B; ++i) {
            future.push_back(stream[ahead * B + i].head);
            future.push_back(stream[ahead * B + i].tail);
          }
          backend_->Lookahead(future).ok();
        }
      }

      // Unique entities in this batch (heads, tails, negatives).
      std::vector<Key> negatives(static_cast<size_t>(B) * NEG);
      for (auto& k : negatives) k = gen.SampleNegativeTail();
      std::unordered_map<Key, size_t> slot;
      std::vector<Key> unique;
      auto intern = [&](Key k) {
        auto [it, fresh] = slot.emplace(k, unique.size());
        if (fresh) unique.push_back(k);
        return it->second;
      };
      for (int i = 0; i < B; ++i) {
        intern(triples[i].head);
        intern(triples[i].tail);
        for (int n = 0; n < NEG; ++n) {
          intern(negatives[static_cast<size_t>(i) * NEG + n]);
        }
      }
      OrderKeysByShard(ResolveShardBits(options_.backend_shard_bits, backend_),
                       &unique, &slot);

      // --- Get: one batched call per minibatch ---
      uint64_t t0 = NowMicros();
      std::vector<float> emb(unique.size() * dim);
      const uint64_t busy =
          MultiGetWithBusyFallback(backend_, unique, emb.data());
      if (busy > 0) {
        std::lock_guard<std::mutex> lk(result_mu);
        result.busy_aborts += busy;
      }
      uint64_t t1 = NowMicros();
      emb_sec += (t1 - t0) * 1e-6;

      // --- Score + gradients (closed-form; "forward"/"backward" split for
      // the Fig. 2 style breakdown) ---
      std::vector<float> grad(unique.size() * dim, 0.0f);
      std::vector<std::vector<float>> rel_grad(
          options_.data.num_relations);
      {
        std::lock_guard<std::mutex> lk(rel_mu);
        for (int i = 0; i < B; ++i) {
          const KgTriple& tri = triples[i];
          const size_t uh = slot[tri.head];
          const size_t ut = slot[tri.tail];
          float* hv = &emb[uh * dim];
          float* tv = &emb[ut * dim];
          std::vector<float>& rv = relations[tri.relation];
          if (rel_grad[tri.relation].empty()) {
            rel_grad[tri.relation].assign(dim, 0.0f);
          }
          float* rg = rel_grad[tri.relation].data();

          const float pos_score =
              KgeScore(options_.model, hv, rv.data(), tv, dim);
          const float gpos = ScoreGrad(pos_score, true, nullptr);
          KgeGrad(options_.model, hv, rv.data(), tv, dim, gpos,
                  &grad[uh * dim], rg, &grad[ut * dim]);
          for (int n = 0; n < NEG; ++n) {
            const Key nk = negatives[static_cast<size_t>(i) * NEG + n];
            const size_t un = slot[nk];
            float* nv = &emb[un * dim];
            const float neg_score =
                KgeScore(options_.model, hv, rv.data(), nv, dim);
            const float gneg =
                ScoreGrad(neg_score, false, nullptr) /
                static_cast<float>(NEG);
            KgeGrad(options_.model, hv, rv.data(), nv, dim, gneg,
                    &grad[uh * dim], rg, &grad[un * dim]);
          }
        }
        // Apply relation updates immediately (dense, in-memory).
        for (int r = 0; r < options_.data.num_relations; ++r) {
          if (rel_grad[r].empty()) continue;
          simd::SubScaled(relations[r].data(), rel_grad[r].data(),
                          options_.lr / static_cast<float>(B), dim);
        }
      }
      uint64_t t2 = NowMicros();
      delay.PadBatch(t2 - t1);
      uint64_t t3 = NowMicros();
      fwd_sec += (t2 - t1) * 1e-6 * 0.5 + (t3 - t2) * 1e-6 * 0.5;
      bwd_sec += (t2 - t1) * 1e-6 * 0.5 + (t3 - t2) * 1e-6 * 0.5;

      // --- Put (value - lr * grad): one batched call per minibatch ---
      t0 = NowMicros();
      // Negative-sample gradients are already averaged (1/NEG) at scoring
      // time, so the raw learning rate applies here.
      std::vector<float> updated(unique.size() * dim);
      simd::CopyFloats(updated.data(), emb.data(), updated.size());
      simd::SubScaled(updated.data(), grad.data(), options_.lr,
                      updated.size());
      backend_->MultiPut(unique, updated.data());
      t1 = NowMicros();
      emb_sec += (t1 - t0) * 1e-6;

      total_samples.fetch_add(B, std::memory_order_relaxed);

      // --- Eval: Hits@10 (worker 0) ---
      if (wid == 0 && options_.eval_every > 0 &&
          (batch + 1) % options_.eval_every == 0) {
        HitsAtK hits(10);
        std::vector<Key> ekeys;
        std::vector<float> ebuf;
        std::lock_guard<std::mutex> lk(rel_mu);
        for (const auto& e : eval_set) {
          // One untracked batched read per eval item: head, tail, then the
          // fixed negative candidates.
          ekeys.assign({e.triple.head, e.triple.tail});
          ekeys.insert(ekeys.end(), e.negatives.begin(), e.negatives.end());
          ebuf.resize(ekeys.size() * dim);
          EvalPeek(backend_, ekeys, ebuf.data());
          const float* hv = ebuf.data();
          const float* tv = ebuf.data() + dim;
          const std::vector<float>& rv = relations[e.triple.relation];
          const float true_score =
              KgeScore(options_.model, hv, rv.data(), tv, dim);
          std::vector<float> neg_scores;
          neg_scores.reserve(e.negatives.size());
          for (size_t n = 0; n < e.negatives.size(); ++n) {
            neg_scores.push_back(KgeScore(options_.model, hv, rv.data(),
                                          ebuf.data() + (2 + n) * dim, dim));
          }
          hits.Add(true_score, neg_scores);
        }
        std::lock_guard<std::mutex> lk2(result_mu);
        result.metric_curve.emplace_back(wall.ElapsedSeconds(),
                                         hits.Compute());
      }
    }

    std::lock_guard<std::mutex> lk(result_mu);
    result.embedding_seconds += emb_sec;
    result.forward_seconds += fwd_sec;
    result.backward_seconds += bwd_sec;
  };

  const uint64_t bytes_read0 = backend_->device_bytes_read();
  const uint64_t bytes_written0 = backend_->device_bytes_written();
  std::vector<std::thread> workers;
  for (int w = 0; w < options_.num_workers; ++w) {
    workers.emplace_back(worker_fn, w);
  }
  for (auto& t : workers) t.join();
  backend_->WaitIdle();

  result.samples = total_samples.load();
  result.seconds = wall.ElapsedSeconds();
  result.device_bytes_read = backend_->device_bytes_read() - bytes_read0;
  result.device_bytes_written =
      backend_->device_bytes_written() - bytes_written0;
  if (!result.metric_curve.empty()) {
    result.final_metric = result.metric_curve.back().second;
  }
  return result;
}

}  // namespace mlkv
