// Approximate energy model (paper Fig. 7 bottom). The paper reports
// "approximate energy consumption following previous methods" [59]-[61]
// (power-model based estimators like Carbontracker/Zeus), i.e. energy =
// integral of modeled component power over time. We do the same:
//
//   E = P_gpu_active * t_compute + P_gpu_idle * (t_total - t_compute)
//     + P_cpu * t_total
//     + E_ssd_per_byte * (bytes_read + bytes_written)
//
// Data stalls keep the accelerator idling (idle power still burns), so
// configurations that stall more consume more Joules per batch — the effect
// Fig. 7(bottom) shows.
#pragma once

#include <cstdint>

#include "train/train_result.h"

namespace mlkv {

struct EnergyModelConfig {
  double gpu_active_watts = 250.0;  // V100-class accelerator under load
  double gpu_idle_watts = 40.0;
  double cpu_watts = 90.0;          // host during training
  double ssd_joules_per_gb = 6.0;   // NVMe active transfer energy
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyModelConfig& config = {})
      : config_(config) {}

  // Total Joules attributed to a training run.
  double TotalJoules(const TrainResult& r) const {
    const double compute = r.forward_seconds + r.backward_seconds;
    const double total = r.seconds;
    const double gpu = config_.gpu_active_watts * compute +
                       config_.gpu_idle_watts *
                           (total > compute ? total - compute : 0.0);
    const double cpu = config_.cpu_watts * total;
    const double ssd =
        config_.ssd_joules_per_gb *
        (static_cast<double>(r.device_bytes_read + r.device_bytes_written) /
         (1024.0 * 1024.0 * 1024.0));
    return gpu + cpu + ssd;
  }

  double JoulesPerBatch(const TrainResult& r, uint64_t batches) const {
    return batches ? TotalJoules(r) / static_cast<double>(batches) : 0.0;
  }

 private:
  EnergyModelConfig config_;
};

}  // namespace mlkv
