// GnnTrainer: GNN node-classification training over a KvBackend — the role
// DGL plays in the paper (Fig. 6 right, Fig. 7(c)). Also runs the eBay risk
// detection case studies (Fig. 11) when constructed with an EbayGenerator-
// backed sampler: those are binary-classified GraphSage jobs on bipartite /
// tripartite graphs, so the trainer takes a generic batch sampler.
#pragma once

#include <functional>

#include "backend/kv_backend.h"
#include "ml/gnn_models.h"
#include "train/compute_delay.h"
#include "train/train_result.h"
#include "workloads/ebay_gen.h"
#include "workloads/graph_gen.h"

namespace mlkv {

enum class GnnModelKind { kGraphSage, kGat };
enum class GnnTask { kPapers, kEbayTrisk, kEbayPayout };

struct GnnTrainerOptions {
  GraphConfig graph;        // used for kPapers
  EbayConfig ebay;          // used for eBay tasks
  GnnTask task = GnnTask::kPapers;
  uint32_t dim = 32;
  GnnModelKind model = GnnModelKind::kGraphSage;
  size_t hidden = 32;
  int batch_size = 128;
  int num_workers = 2;
  uint64_t train_batches = 400;  // per worker
  int eval_every = 100;
  int eval_nodes = 1000;
  float embedding_lr = 0.05f;
  float dense_lr = 0.05f;
  int lookahead_depth = 0;
  // Shard count (log2) of the backend this trainer feeds: unique keys are
  // ordered shard-contiguously before each batched call (see
  // train/batch_io.h). 0 disables; semantically neutral either way. The
  // default kAutoShardBits asks the backend (KvBackend::shard_bits()).
  uint32_t backend_shard_bits = kAutoShardBits;
  uint64_t compute_micros_per_batch = 0;
  // Initialize embeddings for keys [0, preload_keys) before the timed run,
  // so out-of-core measurements start from a steady state (model resident
  // on disk) instead of an insert-only warmup. 0 skips preloading.
  uint64_t preload_keys = 0;
  uint64_t seed = 3;
};

class GnnTrainer {
 public:
  GnnTrainer(KvBackend* backend, const GnnTrainerOptions& options)
      : backend_(backend), options_(options) {}

  TrainResult Train();

 private:
  KvBackend* backend_;
  GnnTrainerOptions options_;
};

}  // namespace mlkv
