#include "serve/embedding_server.h"

#include <cstring>

#include "common/clock.h"
#include "common/simd.h"
#include "obs/metrics.h"

namespace mlkv {

EmbeddingServer::EmbeddingServer(EmbeddingTable* table,
                                 const ServeOptions& options)
    : table_(table),
      options_(options),
      cache_(options.cache_capacity, table->dim(), options.cache_shards,
             options.cache_admission) {}

Status EmbeddingServer::Lookup(std::span<const Key> keys, float* out) {
  const StopWatch watch;
  const uint32_t dim = table_->dim();
  const uint32_t emb_bytes = table_->value_bytes();
  uint64_t store_hits = 0, missing = 0;

  // Pass 1: serve straight from the cache, collecting misses. Hit/miss
  // accounting happens inside the cache (its counters are the only copy).
  std::vector<Key> miss_keys;
  std::vector<uint32_t> miss_at;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!cache_.Get(keys[i], out + i * dim)) {
      miss_keys.push_back(keys[i]);
      miss_at.push_back(static_cast<uint32_t>(i));
    }
  }

  // Pass 2: one batched untracked read for everything the cache lacked —
  // serving must not consume a co-located trainer's staleness budget (see
  // header).
  if (!miss_keys.empty()) {
    std::vector<float> buf(miss_keys.size() * size_t{dim});
    BatchResult from_store;
    MLKV_RETURN_NOT_OK(table_->Peek(miss_keys, buf.data(), &from_store));
    for (size_t j = 0; j < miss_keys.size(); ++j) {
      float* dst = out + miss_at[j] * size_t{dim};
      if (from_store.codes[j] == Status::Code::kOk) {
        simd::CopyFloats(dst, &buf[j * size_t{dim}], dim);
        ++store_hits;
        if (options_.cache_on_miss) cache_.Put(miss_keys[j], dst);
        continue;
      }
      if (!options_.zero_fill_missing) {
        return Status::NotFound("key " + std::to_string(miss_keys[j]));
      }
      std::memset(dst, 0, emb_bytes);
      ++missing;
    }
  }

  lookups_.fetch_add(keys.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  store_hits_.fetch_add(store_hits, std::memory_order_relaxed);
  missing_.fetch_add(missing, std::memory_order_relaxed);
  batch_latency_us_.Record(watch.ElapsedMicros());
  return Status::OK();
}

Status EmbeddingServer::Warm(std::span<const Key> keys) {
  const uint32_t dim = table_->dim();
  constexpr size_t kChunk = 4096;
  std::vector<float> buf(std::min(keys.size(), kChunk) * size_t{dim});
  for (size_t base = 0; base < keys.size(); base += kChunk) {
    const std::span<const Key> chunk = keys.subspan(
        base, std::min(kChunk, keys.size() - base));
    BatchResult from_store;
    MLKV_RETURN_NOT_OK(table_->Peek(chunk, buf.data(), &from_store));
    for (size_t j = 0; j < chunk.size(); ++j) {
      if (from_store.codes[j] == Status::Code::kOk) {
        cache_.Put(chunk[j], &buf[j * size_t{dim}]);
      }
    }
  }
  return Status::OK();
}

ServeStats EmbeddingServer::stats() const {
  ServeStats s;
  const EmbeddingCache::CacheStats cs = cache_.stats();
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.cache_hits = cs.hits;
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.missing = missing_.load(std::memory_order_relaxed);
  s.admission_rejects = cs.admission_rejects;
  s.batch_p50_us = batch_latency_us_.Percentile(0.50);
  s.batch_p95_us = batch_latency_us_.Percentile(0.95);
  s.batch_p99_us = batch_latency_us_.Percentile(0.99);
  s.batch_p999_us = batch_latency_us_.Percentile(0.999);
  s.batch_max_us = batch_latency_us_.max();
  return s;
}

void EmbeddingServer::CollectMetrics(obs::MetricsSink* sink) const {
  const ServeStats s = stats();
  sink->AddCounter("mlkv_serve_lookups_total",
                   "Individual keys served by the inference path.",
                   static_cast<double>(s.lookups));
  sink->AddCounter("mlkv_serve_batches_total", "Lookup batches served.",
                   static_cast<double>(s.batches));
  sink->AddCounter("mlkv_serve_cache_hits_total",
                   "Lookups answered by the serving cache.",
                   static_cast<double>(s.cache_hits));
  sink->AddCounter("mlkv_serve_store_hits_total",
                   "Lookups answered by the backing store.",
                   static_cast<double>(s.store_hits));
  sink->AddCounter("mlkv_serve_missing_total",
                   "Lookups for keys absent everywhere (zero-filled).",
                   static_cast<double>(s.missing));
  sink->AddGauge("mlkv_serve_cache_entries",
                 "Vectors resident in the serving cache.",
                 static_cast<double>(cache_.size()));
  // Admission families are emitted unconditionally (zeros under kLru) so
  // scrapers never see them appear when the policy flag flips.
  const EmbeddingCache::CacheStats cs = cache_.stats();
  sink->AddCounter("mlkv_serve_admission_rejects_total",
                   "Cache fills refused by TinyLFU admission.",
                   cs.admission_rejects);
  sink->AddCounter("mlkv_serve_admission_agings_total",
                   "TinyLFU sketch aging resets (halve + doorkeeper clear).",
                   cs.admission_agings);
  for (size_t i = 0; i < cache_.num_cache_shards(); ++i) {
    const EmbeddingCache::CacheStats cs = cache_.shard_stats(i);
    const std::string shard = std::to_string(i);
    sink->AddCounter("mlkv_serve_cache_shard_hits_total",
                     "Serving-cache hits by cache shard.",
                     static_cast<double>(cs.hits), {{"shard", shard}});
    sink->AddCounter("mlkv_serve_cache_shard_evictions_total",
                     "Serving-cache evictions by cache shard.",
                     static_cast<double>(cs.evictions), {{"shard", shard}});
  }
}

void EmbeddingServer::ResetStats() {
  lookups_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  store_hits_.store(0, std::memory_order_relaxed);
  missing_.store(0, std::memory_order_relaxed);
  cache_.ResetStats();
  batch_latency_us_.Reset();
}

}  // namespace mlkv
