#include "serve/embedding_server.h"

#include <cstring>

#include "common/clock.h"

namespace mlkv {

EmbeddingServer::EmbeddingServer(EmbeddingTable* table,
                                 const ServeOptions& options)
    : table_(table),
      options_(options),
      cache_(options.cache_capacity, table->dim()) {}

Status EmbeddingServer::Lookup(std::span<const Key> keys, float* out) {
  const StopWatch watch;
  const uint32_t dim = table_->dim();
  const uint32_t emb_bytes = table_->value_bytes();
  FasterStore* store = table_->store();
  uint64_t cache_hits = 0, store_hits = 0, missing = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    float* dst = out + i * dim;
    if (cache_.Get(keys[i], dst)) {
      ++cache_hits;
      continue;
    }
    // Peek: untracked read — serving must not consume a co-located
    // trainer's staleness budget (see header).
    const Status s = store->Peek(keys[i], dst, emb_bytes);
    if (s.ok()) {
      ++store_hits;
      if (options_.cache_on_miss) cache_.Put(keys[i], dst);
      continue;
    }
    if (!s.IsNotFound()) return s;
    if (!options_.zero_fill_missing) {
      return Status::NotFound("key " + std::to_string(keys[i]));
    }
    std::memset(dst, 0, emb_bytes);
    ++missing;
  }
  lookups_.fetch_add(keys.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  cache_hits_.fetch_add(cache_hits, std::memory_order_relaxed);
  store_hits_.fetch_add(store_hits, std::memory_order_relaxed);
  missing_.fetch_add(missing, std::memory_order_relaxed);
  batch_latency_us_.Record(watch.ElapsedMicros());
  return Status::OK();
}

Status EmbeddingServer::Warm(std::span<const Key> keys) {
  const uint32_t emb_bytes = table_->value_bytes();
  std::vector<float> value(table_->dim());
  FasterStore* store = table_->store();
  for (const Key key : keys) {
    const Status s = store->Peek(key, value.data(), emb_bytes);
    if (s.ok()) {
      cache_.Put(key, value.data());
    } else if (!s.IsNotFound()) {
      return s;
    }
  }
  return Status::OK();
}

ServeStats EmbeddingServer::stats() const {
  ServeStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.missing = missing_.load(std::memory_order_relaxed);
  s.batch_p50_us = batch_latency_us_.Percentile(0.50);
  s.batch_p95_us = batch_latency_us_.Percentile(0.95);
  s.batch_p99_us = batch_latency_us_.Percentile(0.99);
  s.batch_max_us = batch_latency_us_.max();
  return s;
}

void EmbeddingServer::ResetStats() {
  lookups_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  store_hits_.store(0, std::memory_order_relaxed);
  missing_.store(0, std::memory_order_relaxed);
  batch_latency_us_.Reset();
}

}  // namespace mlkv
