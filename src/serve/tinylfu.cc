#include "serve/tinylfu.h"

#include <algorithm>

#include "common/hash.h"

namespace mlkv {

namespace {

// Independent odd multipliers re-mix the caller's hash per row, so the four
// rows index uncorrelated counter positions from one 64-bit input.
constexpr uint64_t kRowSeeds[4] = {
    0x9E3779B97F4A7C15ull,
    0xC2B2AE3D27D4EB4Full,
    0x165667B19E3779F9ull,
    0xD6E8FEB86659FD93ull,
};

}  // namespace

TinyLfu::TinyLfu(size_t counters, uint64_t sample_window) {
  const uint64_t n = RoundUpPow2(std::max<size_t>(counters, 64));
  mask_ = n - 1;
  sample_window_ = sample_window != 0 ? sample_window : n * 8;
  table_.assign(kRows * (n >> 1), 0);
  door_.assign(n >> 6, 0);
}

size_t TinyLfu::IndexFor(size_t row, uint64_t hash) const {
  // Take high product bits: the low bits of h * odd are the least mixed.
  return static_cast<size_t>((hash * kRowSeeds[row]) >> 32) & mask_;
}

void TinyLfu::RecordAccess(uint64_t hash) {
  ++accesses_;
  if (++window_accesses_ >= sample_window_) Age();

  const size_t bit = static_cast<size_t>(hash) & mask_;
  const uint64_t word_bit = uint64_t{1} << (bit & 63);
  if ((door_[bit >> 6] & word_bit) == 0) {
    door_[bit >> 6] |= word_bit;  // first sighting: doorkeeper only
    return;
  }

  // Conservative update: only the rows at the current minimum move, which
  // tightens estimates against hash-collision inflation.
  size_t idx[kRows];
  uint8_t vals[kRows];
  uint8_t min = 0x0F;
  for (size_t r = 0; r < kRows; ++r) {
    idx[r] = IndexFor(r, hash);
    vals[r] = Nibble(r, idx[r]);
    min = std::min(min, vals[r]);
  }
  if (min >= 0x0F) return;  // saturated
  for (size_t r = 0; r < kRows; ++r) {
    if (vals[r] == min) BumpNibble(r, idx[r]);
  }
}

uint32_t TinyLfu::Estimate(uint64_t hash) const {
  uint8_t min = 0x0F;
  for (size_t r = 0; r < kRows; ++r) {
    min = std::min(min, Nibble(r, IndexFor(r, hash)));
  }
  const size_t bit = static_cast<size_t>(hash) & mask_;
  const uint32_t seen = (door_[bit >> 6] >> (bit & 63)) & 1;
  return min + seen;
}

void TinyLfu::Age() {
  // (b >> 1) & 0x77 halves both packed nibbles without cross-talk.
  for (uint8_t& b : table_) b = static_cast<uint8_t>((b >> 1) & 0x77);
  std::fill(door_.begin(), door_.end(), 0);
  window_accesses_ = 0;
  ++agings_;
}

}  // namespace mlkv
