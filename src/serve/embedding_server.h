// EmbeddingServer: the read-only inference path over an MLKV table — the
// role HugeCTR's hierarchical parameter server plays with RocksDB for
// out-of-core DLRM inference (paper §II-B cites it as the motivating
// integration). Training produces the table; serving answers batched
// embedding lookups against it:
//
//   lookup:  application cache  ->  one batched store Peek per request
//            (memory, then disk) for whatever the cache lacked
//
// Peek is the right primitive for inference: it neither waits on nor
// advances the bounded-staleness vector clocks, so a serving replica can
// share a table with a live trainer without consuming its staleness budget.
// The store round-trip is a single EmbeddingTable::Peek span call whose
// per-key BatchResult codes let missing keys zero-fill (or fail the batch)
// without discarding the keys that were found.
//
// The server owns an admission-controlled LRU cache (EmbeddingCache) and
// per-request latency histograms; Warm() preloads a key set (e.g., the
// head of the popularity distribution, known at deploy time).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/histogram.h"
#include "common/status.h"
#include "mlkv/embedding_cache.h"
#include "mlkv/embedding_table.h"

namespace mlkv {

namespace obs {
class MetricsSink;
}  // namespace obs

struct ServeOptions {
  // Embedding vectors held in the serving cache.
  size_t cache_capacity = 1 << 16;
  // Lock shards of the serving cache (rounded up to a power of two; routed
  // with the shared ShardOf helper). Scale with the number of serving
  // threads — each shard is one mutex.
  size_t cache_shards = 16;
  // Admit store-read vectors into the cache on miss.
  bool cache_on_miss = true;
  // Missing keys: zero-fill the output (true, the DLRM-serving convention —
  // unseen ids embed to the origin) or fail the batch (false).
  bool zero_fill_missing = true;
  // Cache admission policy (docs/SERVING.md): kTinyLfu guards eviction with
  // a per-shard frequency sketch so one-hit-wonders cannot displace the hot
  // working set; kLru is the classic always-admit cache.
  CacheAdmission cache_admission = CacheAdmission::kLru;
};

struct ServeStats {
  uint64_t lookups = 0;         // individual keys served
  uint64_t batches = 0;
  uint64_t cache_hits = 0;      // read from the cache's own counters
  uint64_t store_hits = 0;
  uint64_t missing = 0;
  uint64_t admission_rejects = 0;  // TinyLFU fills refused (kTinyLfu only)
  uint64_t batch_p50_us = 0;    // batch latency percentiles
  uint64_t batch_p95_us = 0;
  uint64_t batch_p99_us = 0;
  uint64_t batch_p999_us = 0;
  uint64_t batch_max_us = 0;
};

class EmbeddingServer {
 public:
  // Serves `table` (not owned; must outlive the server). The table may be
  // concurrently trained — lookups are untracked reads.
  EmbeddingServer(EmbeddingTable* table, const ServeOptions& options);

  EmbeddingServer(const EmbeddingServer&) = delete;
  EmbeddingServer& operator=(const EmbeddingServer&) = delete;

  uint32_t dim() const { return table_->dim(); }

  // Fetches embeddings for `keys` into `out` (keys.size() * dim floats).
  // Thread-safe; one histogram sample per call.
  Status Lookup(std::span<const Key> keys, float* out);

  // Preloads `keys` into the serving cache (deploy-time warmup). Missing
  // keys are skipped.
  Status Warm(std::span<const Key> keys);

  ServeStats stats() const;
  void ResetStats();

  // Emits the serving counters (mlkv_serve_*) plus the per-shard serving
  // cache families into a registry collector's sink.
  void CollectMetrics(obs::MetricsSink* sink) const;

 private:
  EmbeddingTable* table_;
  ServeOptions options_;
  EmbeddingCache cache_;
  Histogram batch_latency_us_;

  // Cache hit/miss counts live on the cache's own per-shard counters (one
  // source of truth — stats() reads them back); only what the cache cannot
  // know is counted here.
  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> store_hits_{0};
  std::atomic<uint64_t> missing_{0};
};

}  // namespace mlkv
