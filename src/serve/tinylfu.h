// TinyLfu: a count-min sketch with 4-bit counters, a doorkeeper bitset, and
// periodic aging — the frequency estimator behind admission-controlled
// caching (W-TinyLFU shape). The serving tier uses it to decide whether a
// candidate row earned its place in the cache: on eviction pressure the
// candidate only displaces the LRU victim if its estimated access frequency
// is strictly higher, so a stream of one-hit-wonders can never wash out the
// hot working set.
//
// Layout: kRows independent rows of 4-bit saturating counters (two per
// byte), each row indexed by its own multiplicative re-mix of the caller's
// 64-bit key hash; an estimate is the minimum across rows (count-min). The
// doorkeeper bitset absorbs the first access of every key — only repeat
// accesses within the sample window touch the counters, so the sketch's
// 15-cap capacity is spent on keys that recur. After `sample_window`
// recorded accesses every counter is halved and the doorkeeper cleared
// (the "reset" aging step), which turns lifetime counts into a sliding
// frequency estimate and lets yesterday's hot keys decay.
//
// Not thread-safe by design: each EmbeddingCache shard owns one sketch and
// records under the shard mutex it already holds, so the sketch adds no
// atomics to the cache hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mlkv {

// How a cache under eviction pressure decides whether a new key may
// displace the LRU victim. Lives here (not in the cache header) so config
// seams (ServeOptions, MakeCachingBackend, BackendConfig) can name it
// without pulling in the cache itself.
enum class CacheAdmission : uint8_t {
  kLru,      // classic: every insert evicts the LRU victim
  kTinyLfu,  // insert only if the candidate's sketch frequency wins
};

class TinyLfu {
 public:
  // `counters` is the per-row counter count (rounded up to a power of two,
  // min 64); size it near the number of cache slots the sketch guards.
  // `sample_window` is the aging period in recorded accesses; 0 derives
  // 8x counters (a few generations of the guarded working set).
  explicit TinyLfu(size_t counters, uint64_t sample_window = 0);

  // Records one access of the key behind `hash` (callers pass Hash64(key)).
  // First access in the window goes to the doorkeeper; repeats increment
  // the sketch (conservative update: only the minimal counters move).
  void RecordAccess(uint64_t hash);

  // Estimated access frequency within the current window: sketch minimum
  // plus one if the doorkeeper has seen the key. Saturates at 16.
  uint32_t Estimate(uint64_t hash) const;

  // The admission decision: may the candidate displace the victim? Strict
  // comparison — ties keep the incumbent, which is what makes a one-hit
  // wonder (estimate <= 1) lose to any key with history.
  bool Admit(uint64_t candidate_hash, uint64_t victim_hash) const {
    return Estimate(candidate_hash) > Estimate(victim_hash);
  }

  uint64_t accesses() const { return accesses_; }
  uint64_t agings() const { return agings_; }
  uint64_t sample_window() const { return sample_window_; }
  size_t counters_per_row() const { return mask_ + 1; }

 private:
  static constexpr size_t kRows = 4;

  // Halves every counter and clears the doorkeeper.
  void Age();

  uint8_t Nibble(size_t row, size_t idx) const {
    const uint8_t b = table_[row * ((mask_ + 1) >> 1) + (idx >> 1)];
    return (idx & 1) ? (b >> 4) : (b & 0x0F);
  }
  void BumpNibble(size_t row, size_t idx) {
    uint8_t& b = table_[row * ((mask_ + 1) >> 1) + (idx >> 1)];
    if (idx & 1) {
      b = static_cast<uint8_t>(b + 0x10);
    } else {
      b = static_cast<uint8_t>(b + 0x01);
    }
  }
  size_t IndexFor(size_t row, uint64_t hash) const;

  uint64_t mask_ = 0;            // counters-per-row - 1 (power of two)
  uint64_t sample_window_ = 0;
  uint64_t window_accesses_ = 0;  // accesses since the last aging
  uint64_t accesses_ = 0;
  uint64_t agings_ = 0;
  std::vector<uint8_t> table_;   // kRows rows of packed 4-bit counters
  std::vector<uint64_t> door_;   // doorkeeper bitset, counters bits
};

}  // namespace mlkv
