// AsyncIoEngine: the shared submit/complete disk-read engine behind the
// two-phase pending-read pipeline (kv/pending_read.h).
//
// Callers enqueue positional reads against FileDevices and collect
// completions per Batch — the io_uring shape (submission queue in,
// completion queue out) regardless of which backend actually executes the
// I/O:
//
//  * io_uring (when the build detects <linux/io_uring.h> and the kernel
//    admits the syscalls at runtime): each worker owns a ring and keeps up
//    to its share of the engine depth in flight with one syscall per burst.
//    Only devices that allow raw-fd reads ride the ring; decorated devices
//    (fault injection, the simulated-NVMe cost model) are routed through
//    their virtual ReadAt on the worker instead, so their semantics hold.
//  * thread pool (fallback everywhere): each worker issues one blocking
//    pread at a time, so `io_threads` reads overlap.
//
// Backpressure and lifetime rules:
//  * `queue_depth` bounds reads in flight across the whole engine; Submit
//    blocks (never the I/O itself) once the limit is reached.
//  * A Batch must outlive its submissions; its destructor blocks until
//    every outstanding completion has been delivered.
//  * The engine destructor drains: every accepted read completes (and is
//    delivered to its batch) before the workers exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "io/file_device.h"

namespace mlkv {

// Read-path selector plumbed from BackendConfig / MlkvOptions down to the
// store: kSync is the classic blocking path (and stays byte-identical to
// it); kAsync routes batched cold reads through a shared AsyncIoEngine.
enum class IoMode { kSync, kAsync };

const char* IoModeName(IoMode mode);
bool ParseIoMode(const std::string& name, IoMode* out);

struct AsyncIoStats {
  uint64_t reads_submitted = 0;
  uint64_t reads_completed = 0;
  uint64_t read_failures = 0;  // completions with a non-OK status
};

class AsyncIoEngine {
 public:
  struct Options {
    size_t io_threads = 4;
    // Max reads in flight across the engine; Submit applies backpressure
    // beyond it.
    size_t queue_depth = 128;
    // Prefer the io_uring backend when it was compiled in and the kernel
    // allows it; the thread pool is the fallback either way.
    bool try_io_uring = true;
  };

  struct Completion {
    uint64_t tag = 0;
    Status status;
  };

  // Per-caller completion context: a submission is tagged to one batch and
  // its completion is delivered only there, so concurrent batches (one per
  // MultiGet wave) never see each other's I/O.
  class Batch {
   public:
    explicit Batch(AsyncIoEngine* engine) : engine_(engine) {}
    ~Batch();  // blocks until every outstanding read was delivered

    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

    // Enqueues a read of [offset, offset + len) on `dev` into `buf`. `buf`
    // (and `dev`) must stay valid until the completion is collected. May
    // block on the engine depth limit, never on the I/O.
    Status Submit(const FileDevice* dev, uint64_t offset, void* buf,
                  uint32_t len, uint64_t tag);
    // Blocks until the next completion for this batch lands; returns false
    // when nothing is outstanding.
    bool WaitOne(Completion* out);
    size_t outstanding() const;

   private:
    friend class AsyncIoEngine;
    AsyncIoEngine* engine_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Completion> done_;
    size_t outstanding_ = 0;
  };

  AsyncIoEngine() : AsyncIoEngine(Options()) {}
  explicit AsyncIoEngine(const Options& options);
  ~AsyncIoEngine();

  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  size_t io_threads() const { return workers_.size(); }
  // True when the io_uring backend is active (compiled in AND admitted by
  // the kernel at construction time).
  bool using_io_uring() const { return using_io_uring_; }
  AsyncIoStats stats() const;

 private:
  struct Request {
    const FileDevice* dev = nullptr;
    uint64_t offset = 0;
    void* buf = nullptr;
    uint32_t len = 0;
    uint64_t tag = 0;
    Batch* batch = nullptr;
  };

  void WorkerLoop();
  // Takes up to `max` queued requests (blocking for at least one unless
  // stopping); returns false when the worker should exit.
  bool NextBurst(std::vector<Request>* out, size_t max);
  void Deliver(const Request& req, const Status& status);

  const Options options_;
  size_t per_worker_depth_ = 1;
  bool using_io_uring_ = false;

  std::mutex mu_;
  std::condition_variable queue_cv_;   // workers: work available / stop
  std::condition_variable depth_cv_;   // submitters: depth slot available
  std::deque<Request> queue_;
  size_t inflight_ = 0;  // accepted but not yet delivered
  bool stop_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};

  std::vector<std::thread> workers_;
};

}  // namespace mlkv
