// AsyncIoEngine: the shared submit/complete disk-I/O engine behind the
// two-phase pending-read pipeline (kv/pending_read.h) and the hybrid log's
// coalesced flush waves (kv/hybrid_log.h).
//
// Callers enqueue positional reads and writes against FileDevices and
// collect completions per Batch — the io_uring shape (submission queue in,
// completion queue out) regardless of which backend actually executes the
// I/O:
//
//  * io_uring (when the build detects <linux/io_uring.h> and the kernel
//    admits the syscalls at runtime): each worker owns a ring and keeps up
//    to its share of the engine depth in flight with one syscall per burst
//    (READV sqes for reads, WRITEV for writes). Only devices that allow
//    raw-fd transfers ride the ring; decorated devices (fault injection,
//    the simulated-NVMe cost model) are routed through their virtual
//    ReadAt/WriteAt on the worker instead, so their semantics hold.
//  * thread pool (fallback everywhere): each worker issues one blocking
//    pread/pwrite at a time, so `io_threads` transfers overlap.
//
// Backpressure and lifetime rules:
//  * `queue_depth` bounds requests in flight across the whole engine;
//    Submit blocks (never the I/O itself) once the limit is reached.
//  * A Batch must outlive its submissions; its destructor blocks until
//    every outstanding completion has been delivered.
//  * The engine destructor drains: every accepted request completes (and
//    is delivered to its batch) before the workers exit.
//
// Writes carry no durability by themselves: a completed write is in the
// page cache, not on media. Durability is the caller's fsync — see
// io/group_committer.h for the batched-fsync protocol layered on top.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "io/file_device.h"

namespace mlkv {

// Read-path selector plumbed from BackendConfig / MlkvOptions down to the
// store: kSync is the classic blocking path (and stays byte-identical to
// it); kAsync routes batched cold reads through a shared AsyncIoEngine.
enum class IoMode { kSync, kAsync };

const char* IoModeName(IoMode mode);
bool ParseIoMode(const std::string& name, IoMode* out);

// Write-durability selector plumbed the same way. kSync keeps the classic
// behavior byte-identical: page flushes are blocking writes and each sync
// point is its own fdatasync. kGroup makes batched writes durable per
// call: the log flushes only dirty/undurable pages (as one async wave when
// an engine is configured) and concurrent committers share one fsync
// through a GroupCommitter (io/group_committer.h).
enum class DurabilityMode { kSync, kGroup };

const char* DurabilityModeName(DurabilityMode mode);
bool ParseDurabilityMode(const std::string& name, DurabilityMode* out);

// Checkpoint shape selector. kFull rewrites every log page above the
// flushed boundary plus the entire index (the classic full-table copy);
// kIncremental writes only [durable, tail) log pages plus an index delta
// record against the previous checkpoint, chained from the last full base
// (kv/faster_store.h).
enum class CheckpointMode { kFull, kIncremental };

const char* CheckpointModeName(CheckpointMode mode);
bool ParseCheckpointMode(const std::string& name, CheckpointMode* out);

struct AsyncIoStats {
  uint64_t reads_submitted = 0;
  uint64_t reads_completed = 0;
  uint64_t read_failures = 0;  // read completions with a non-OK status
  uint64_t writes_submitted = 0;
  uint64_t writes_completed = 0;
  uint64_t write_failures = 0;  // write completions with a non-OK status
};

class AsyncIoEngine {
 public:
  struct Options {
    size_t io_threads = 4;
    // Max reads in flight across the engine; Submit applies backpressure
    // beyond it.
    size_t queue_depth = 128;
    // Prefer the io_uring backend when it was compiled in and the kernel
    // allows it; the thread pool is the fallback either way.
    bool try_io_uring = true;
  };

  struct Completion {
    uint64_t tag = 0;
    Status status;
  };

  // Per-caller completion context: a submission is tagged to one batch and
  // its completion is delivered only there, so concurrent batches (one per
  // MultiGet wave) never see each other's I/O.
  class Batch {
   public:
    explicit Batch(AsyncIoEngine* engine) : engine_(engine) {}
    ~Batch();  // blocks until every outstanding read was delivered

    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

    // Enqueues a read of [offset, offset + len) on `dev` into `buf`. `buf`
    // (and `dev`) must stay valid until the completion is collected. May
    // block on the engine depth limit, never on the I/O.
    Status Submit(const FileDevice* dev, uint64_t offset, void* buf,
                  uint32_t len, uint64_t tag);
    // Enqueues a write of `buf`[0, len) to [offset, offset + len) on
    // `dev`; same lifetime and backpressure contract as Submit. The
    // completion means the bytes reached the file (page cache), not media
    // — durability needs a subsequent Sync/GroupCommitter commit.
    Status SubmitWrite(FileDevice* dev, uint64_t offset, const void* buf,
                       uint32_t len, uint64_t tag);
    // Blocks until the next completion for this batch lands; returns false
    // when nothing is outstanding.
    bool WaitOne(Completion* out);
    size_t outstanding() const;

   private:
    friend class AsyncIoEngine;
    AsyncIoEngine* engine_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Completion> done_;
    size_t outstanding_ = 0;
  };

  AsyncIoEngine() : AsyncIoEngine(Options()) {}
  explicit AsyncIoEngine(const Options& options);
  ~AsyncIoEngine();

  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  size_t io_threads() const { return workers_.size(); }
  // True when the io_uring backend is active (compiled in AND admitted by
  // the kernel at construction time).
  bool using_io_uring() const { return using_io_uring_; }
  AsyncIoStats stats() const;

 private:
  struct Request {
    // Reads keep their const view; writes const_cast back to call the
    // non-const WriteAt (SubmitWrite takes a mutable device, so the cast
    // never strips a caller's constness).
    const FileDevice* dev = nullptr;
    uint64_t offset = 0;
    void* buf = nullptr;  // destination for reads, source for writes
    uint32_t len = 0;
    uint64_t tag = 0;
    Batch* batch = nullptr;
    bool is_write = false;
  };

  Status Enqueue(const Request& req, Batch* batch);
  // Executes one request on the calling worker thread via the device's
  // virtual ReadAt/WriteAt (the non-ring path and the decorated-device /
  // short-transfer completion path).
  static Status RunBlocking(const Request& req);
  void WorkerLoop();
  // Takes up to `max` queued requests (blocking for at least one unless
  // stopping); returns false when the worker should exit.
  bool NextBurst(std::vector<Request>* out, size_t max);
  void Deliver(const Request& req, const Status& status);

  const Options options_;
  size_t per_worker_depth_ = 1;
  bool using_io_uring_ = false;

  std::mutex mu_;
  std::condition_variable queue_cv_;   // workers: work available / stop
  std::condition_variable depth_cv_;   // submitters: depth slot available
  std::deque<Request> queue_;
  size_t inflight_ = 0;  // accepted but not yet delivered
  bool stop_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> writes_submitted_{0};
  std::atomic<uint64_t> writes_completed_{0};
  std::atomic<uint64_t> write_failures_{0};

  std::vector<std::thread> workers_;
};

}  // namespace mlkv
