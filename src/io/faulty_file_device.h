// FaultyFileDevice: a FileDevice decorator for failure-injection tests.
// Reads, writes and fsyncs are counted, and a scripted window of each can
// be made to fail with an injected errno; reads can additionally tear
// (first half of the buffer served, the rest zero-filled — the shape a
// crash-interrupted flush or a torn sector leaves behind), and writes can
// tear symmetrically (first half reaches the file, reported as success —
// what a crash mid-pwrite leaves on disk).
//
// The Script is shared and atomic so a test can arm faults while the
// store under test owns the device (inject via FasterOptions::
// device_factory → HybridLogOptions::device_factory), including from
// other threads mid-run.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>

#include "io/file_device.h"

namespace mlkv {

class FaultyFileDevice : public FileDevice {
 public:
  struct Script {
    std::atomic<uint64_t> reads{0};      // reads observed so far
    // 1-based index of the first faulted read; 0 disarms the script.
    std::atomic<uint64_t> fail_from{0};
    // How many consecutive reads starting at fail_from fault.
    std::atomic<uint64_t> fail_count{1};
    std::atomic<int> fault_errno{EIO};
    // Tear (short read + zero fill, reported as success) instead of
    // failing with fault_errno.
    std::atomic<bool> short_read{false};

    // Write-side script, same shape: a 1-based window of WriteAt calls
    // faults (0 disarms); short_write tears instead (the first half of the
    // buffer lands, success reported).
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> write_fail_from{0};
    std::atomic<uint64_t> write_fail_count{1};
    std::atomic<bool> short_write{false};

    // Sync-side script: a 1-based window of Sync calls faults (0 disarms).
    // Models an fsync that reports failure after the kernel dropped dirty
    // pages — the checkpoint must surface it, never swallow it.
    std::atomic<uint64_t> syncs{0};
    std::atomic<uint64_t> sync_fail_from{0};
    std::atomic<uint64_t> sync_fail_count{1};
  };

  explicit FaultyFileDevice(std::shared_ptr<Script> script)
      : script_(std::move(script)) {}

  // Decorated reads must flow through this override.
  bool AllowsRawReads() const override { return false; }

  Status ReadAt(uint64_t offset, void* data, size_t n) const override {
    const uint64_t index =
        script_->reads.fetch_add(1, std::memory_order_acq_rel) + 1;
    const uint64_t from = script_->fail_from.load(std::memory_order_acquire);
    const uint64_t count =
        script_->fail_count.load(std::memory_order_acquire);
    // Saturating window: fail_count = UINT64_MAX means "from here on".
    const uint64_t until = from + count < from ? UINT64_MAX : from + count;
    if (from != 0 && index >= from && index < until) {
      if (script_->short_read.load(std::memory_order_acquire)) {
        const size_t half = n / 2;
        if (half > 0) {
          MLKV_RETURN_NOT_OK(FileDevice::ReadAt(offset, data, half));
        }
        std::memset(static_cast<char*>(data) + half, 0, n - half);
        return Status::OK();
      }
      return Status::IOError("injected read fault",
                             script_->fault_errno.load());
    }
    return FileDevice::ReadAt(offset, data, n);
  }

  // Decorated writes must flow through this override.
  bool AllowsRawWrites() const override { return false; }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    const uint64_t index =
        script_->writes.fetch_add(1, std::memory_order_acq_rel) + 1;
    const uint64_t from =
        script_->write_fail_from.load(std::memory_order_acquire);
    const uint64_t count =
        script_->write_fail_count.load(std::memory_order_acquire);
    const uint64_t until = from + count < from ? UINT64_MAX : from + count;
    if (from != 0 && index >= from && index < until) {
      if (script_->short_write.load(std::memory_order_acquire)) {
        const size_t half = n / 2;
        if (half > 0) {
          MLKV_RETURN_NOT_OK(FileDevice::WriteAt(offset, data, half));
        }
        return Status::OK();
      }
      return Status::IOError("injected write fault",
                             script_->fault_errno.load());
    }
    return FileDevice::WriteAt(offset, data, n);
  }

  Status Sync() override {
    const uint64_t index =
        script_->syncs.fetch_add(1, std::memory_order_acq_rel) + 1;
    const uint64_t from =
        script_->sync_fail_from.load(std::memory_order_acquire);
    const uint64_t count =
        script_->sync_fail_count.load(std::memory_order_acquire);
    const uint64_t until = from + count < from ? UINT64_MAX : from + count;
    if (from != 0 && index >= from && index < until) {
      return Status::IOError("injected fsync fault",
                             script_->fault_errno.load());
    }
    return FileDevice::Sync();
  }

 private:
  std::shared_ptr<Script> script_;
};

}  // namespace mlkv
