// Scoped temporary directory for tests, benchmarks, and examples.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace mlkv {

class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "mlkv") {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / (prefix + "XXXXXX")).string();
    char* buf = tmpl.data();
    if (mkdtemp(buf) == nullptr) {
      std::perror("mkdtemp");
      std::abort();
    }
    path_ = tmpl;
  }

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace mlkv
