#include "io/async_io.h"

#include <algorithm>
#include <cstring>

#ifdef MLKV_HAVE_IO_URING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace mlkv {

const char* IoModeName(IoMode mode) {
  return mode == IoMode::kAsync ? "async" : "sync";
}

bool ParseIoMode(const std::string& name, IoMode* out) {
  if (name == "sync") {
    *out = IoMode::kSync;
  } else if (name == "async") {
    *out = IoMode::kAsync;
  } else {
    return false;
  }
  return true;
}

const char* DurabilityModeName(DurabilityMode mode) {
  return mode == DurabilityMode::kGroup ? "group" : "sync";
}

bool ParseDurabilityMode(const std::string& name, DurabilityMode* out) {
  if (name == "sync") {
    *out = DurabilityMode::kSync;
  } else if (name == "group") {
    *out = DurabilityMode::kGroup;
  } else {
    return false;
  }
  return true;
}

const char* CheckpointModeName(CheckpointMode mode) {
  return mode == CheckpointMode::kIncremental ? "incremental" : "full";
}

bool ParseCheckpointMode(const std::string& name, CheckpointMode* out) {
  if (name == "full") {
    *out = CheckpointMode::kFull;
  } else if (name == "incremental") {
    *out = CheckpointMode::kIncremental;
  } else {
    return false;
  }
  return true;
}

#ifdef MLKV_HAVE_IO_URING

namespace {

// Minimal raw-syscall io_uring wrapper (no liburing dependency): one ring
// per worker thread, single-threaded by construction, READV-only. Any
// setup failure makes Init() return false and the caller falls back to
// blocking preads — kernels or sandboxes that deny the syscalls cost
// nothing but the one probe.
class UringRing {
 public:
  ~UringRing() {
    if (sqe_mm_ != MAP_FAILED) ::munmap(sqe_mm_, sqe_sz_);
    if (cq_mm_ != MAP_FAILED && cq_mm_ != sq_mm_) ::munmap(cq_mm_, cq_sz_);
    if (sq_mm_ != MAP_FAILED) ::munmap(sq_mm_, sq_sz_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  bool Init(unsigned entries) {
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = static_cast<int>(::syscall(__NR_io_uring_setup, entries, &p));
    if (ring_fd_ < 0) return false;
    sq_entries_ = p.sq_entries;
    sq_sz_ = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
    cq_sz_ = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    if (p.features & IORING_FEAT_SINGLE_MMAP) {
      sq_sz_ = cq_sz_ = std::max(sq_sz_, cq_sz_);
    }
    sq_mm_ = ::mmap(nullptr, sq_sz_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_mm_ == MAP_FAILED) return false;
    if (p.features & IORING_FEAT_SINGLE_MMAP) {
      cq_mm_ = sq_mm_;
    } else {
      cq_mm_ = ::mmap(nullptr, cq_sz_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_,
                      IORING_OFF_CQ_RING);
      if (cq_mm_ == MAP_FAILED) return false;
    }
    sqe_sz_ = p.sq_entries * sizeof(struct io_uring_sqe);
    sqe_mm_ = ::mmap(nullptr, sqe_sz_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqe_mm_ == MAP_FAILED) return false;

    char* sq = static_cast<char*>(sq_mm_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    sqes_ = static_cast<struct io_uring_sqe*>(sqe_mm_);
    char* cq = static_cast<char*>(cq_mm_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + p.cq_off.cqes);
    return true;
  }

  // READV / WRITEV (both 5.1+, the most portable vectored ops) share one
  // prep path; only the opcode differs.
  bool Prep(bool is_write, int fd, struct iovec* iov, uint64_t offset,
            uint64_t user_data) {
    const unsigned tail = *sq_tail_;
    const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    if (tail - head >= sq_entries_) return false;
    const unsigned idx = tail & *sq_mask_;
    struct io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = is_write ? IORING_OP_WRITEV : IORING_OP_READV;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(iov);
    sqe->len = 1;
    sqe->off = offset;
    sqe->user_data = user_data;
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    ++to_submit_;
    return true;
  }

  // Submits queued sqes and, when `wait_nr` > 0, blocks for that many
  // completions. False only on a hard io_uring_enter failure.
  bool Flush(unsigned wait_nr) {
    for (;;) {
      const long ret = ::syscall(__NR_io_uring_enter, ring_fd_, to_submit_,
                                 wait_nr, wait_nr ? IORING_ENTER_GETEVENTS : 0,
                                 nullptr, 0);
      if (ret >= 0) {
        to_submit_ -= static_cast<unsigned>(ret);
        return true;
      }
      if (errno != EINTR) return false;
    }
  }

  bool Pop(uint64_t* user_data, int32_t* res) {
    const unsigned head = *cq_head_;
    if (head == __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE)) return false;
    const struct io_uring_cqe* cqe = &cqes_[head & *cq_mask_];
    *user_data = cqe->user_data;
    *res = cqe->res;
    __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
    return true;
  }

 private:
  int ring_fd_ = -1;
  void* sq_mm_ = MAP_FAILED;
  void* cq_mm_ = MAP_FAILED;
  void* sqe_mm_ = MAP_FAILED;
  size_t sq_sz_ = 0, cq_sz_ = 0, sqe_sz_ = 0;
  unsigned sq_entries_ = 0;
  unsigned to_submit_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  struct io_uring_sqe* sqes_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  struct io_uring_cqe* cqes_ = nullptr;
};

bool ProbeIoUring() {
  UringRing ring;
  return ring.Init(2);
}

}  // namespace

#endif  // MLKV_HAVE_IO_URING

AsyncIoEngine::AsyncIoEngine(const Options& options) : options_(options) {
  const size_t threads = std::max<size_t>(options.io_threads, 1);
  const size_t depth = std::max<size_t>(options.queue_depth, threads);
  per_worker_depth_ = std::max<size_t>(depth / threads, 1);
#ifdef MLKV_HAVE_IO_URING
  if (options.try_io_uring) using_io_uring_ = ProbeIoUring();
#endif
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncIoEngine::~AsyncIoEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  // Workers drain the queue before exiting, so every accepted read still
  // completes and reaches its batch.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

AsyncIoStats AsyncIoEngine::stats() const {
  AsyncIoStats s;
  s.reads_submitted = submitted_.load(std::memory_order_relaxed);
  s.reads_completed = completed_.load(std::memory_order_relaxed);
  s.read_failures = failed_.load(std::memory_order_relaxed);
  s.writes_submitted = writes_submitted_.load(std::memory_order_relaxed);
  s.writes_completed = writes_completed_.load(std::memory_order_relaxed);
  s.write_failures = write_failures_.load(std::memory_order_relaxed);
  return s;
}

Status AsyncIoEngine::Enqueue(const Request& req, Batch* batch) {
  {
    // Count the request against its batch before a worker can see it, so
    // outstanding_ never lags a delivery.
    std::lock_guard<std::mutex> lk(batch->mu_);
    ++batch->outstanding_;
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    depth_cv_.wait(lk, [this] {
      return stop_ || inflight_ < std::max<size_t>(options_.queue_depth,
                                                   workers_.size());
    });
    if (stop_) {
      lk.unlock();
      std::lock_guard<std::mutex> blk(batch->mu_);
      --batch->outstanding_;
      return Status::Aborted("async io engine shut down");
    }
    ++inflight_;
    queue_.push_back(req);
  }
  if (req.is_write) {
    writes_submitted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return Status::OK();
}

Status AsyncIoEngine::Batch::Submit(const FileDevice* dev, uint64_t offset,
                                    void* buf, uint32_t len, uint64_t tag) {
  return engine_->Enqueue(
      Request{dev, offset, buf, len, tag, this, /*is_write=*/false}, this);
}

Status AsyncIoEngine::Batch::SubmitWrite(FileDevice* dev, uint64_t offset,
                                         const void* buf, uint32_t len,
                                         uint64_t tag) {
  // The buffer is only read on the write path; the cast parks it in the
  // Request's single buf field.
  return engine_->Enqueue(Request{dev, offset, const_cast<void*>(buf), len,
                                  tag, this, /*is_write=*/true},
                          this);
}

bool AsyncIoEngine::Batch::WaitOne(Completion* out) {
  std::unique_lock<std::mutex> lk(mu_);
  if (outstanding_ == 0 && done_.empty()) return false;
  cv_.wait(lk, [this] { return !done_.empty(); });
  *out = done_.front();
  done_.pop_front();
  --outstanding_;
  return true;
}

size_t AsyncIoEngine::Batch::outstanding() const {
  std::lock_guard<std::mutex> lk(mu_);
  return outstanding_;
}

AsyncIoEngine::Batch::~Batch() {
  // Collect (and discard) anything the owner abandoned, so in-flight
  // worker deliveries never target a dead batch.
  Completion c;
  while (WaitOne(&c)) {
  }
}

Status AsyncIoEngine::RunBlocking(const Request& req) {
  if (req.is_write) {
    return const_cast<FileDevice*>(req.dev)->WriteAt(req.offset, req.buf,
                                                     req.len);
  }
  return req.dev->ReadAt(req.offset, req.buf, req.len);
}

void AsyncIoEngine::Deliver(const Request& req, const Status& status) {
  if (req.is_write) {
    writes_completed_.fetch_add(1, std::memory_order_relaxed);
    if (!status.ok()) {
      write_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (!status.ok()) failed_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Notify under the lock: the instant the push is visible the owner may
    // collect it and destroy the batch, so the cv must not be touched
    // outside the critical section.
    std::lock_guard<std::mutex> lk(req.batch->mu_);
    req.batch->done_.push_back(Completion{req.tag, status});
    req.batch->cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    --inflight_;
  }
  depth_cv_.notify_one();
}

bool AsyncIoEngine::NextBurst(std::vector<Request>* out, size_t max) {
  std::unique_lock<std::mutex> lk(mu_);
  queue_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stop with a drained queue
  const size_t n = std::min(queue_.size(), max);
  out->assign(queue_.begin(), queue_.begin() + static_cast<long>(n));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(n));
  return true;
}

void AsyncIoEngine::WorkerLoop() {
#ifdef MLKV_HAVE_IO_URING
  UringRing ring;
  bool ring_ok = false;
  if (using_io_uring_) {
    unsigned entries = 2;
    while (entries < per_worker_depth_) entries <<= 1;
    ring_ok = ring.Init(entries);
  }
  struct InFlight {
    Request req;
    struct iovec iov;
  };
  std::vector<InFlight> flight;
#endif
  std::vector<Request> burst;
  for (;;) {
#ifdef MLKV_HAVE_IO_URING
    if (ring_ok) {
      if (!NextBurst(&burst, per_worker_depth_)) return;
      // Route raw-fd-eligible requests to the ring as one submission wave;
      // decorated devices (fault injection, simulated costs) execute their
      // virtual ReadAt/WriteAt here instead.
      flight.clear();
      flight.reserve(burst.size());
      for (const Request& r : burst) {
        const bool raw =
            r.is_write ? r.dev->AllowsRawWrites() : r.dev->AllowsRawReads();
        if (raw) {
          flight.push_back(InFlight{r, {r.buf, r.len}});
        } else {
          Deliver(r, RunBlocking(r));
        }
      }
      size_t prepped = 0;
      for (InFlight& f : flight) {
        // `entries` >= per_worker_depth_, so Prep cannot run out of sqes.
        if (!ring.Prep(f.req.is_write, f.req.dev->fd(), &f.iov,
                       f.req.offset, prepped)) {
          break;
        }
        ++prepped;
      }
      // Anything that could not be prepped (never expected) goes blocking.
      for (size_t i = prepped; i < flight.size(); ++i) {
        Deliver(flight[i].req, RunBlocking(flight[i].req));
      }
      size_t reaped = 0;
      bool enter_failed = false;
      std::vector<uint8_t> seen(prepped, 0);
      while (reaped < prepped && !enter_failed) {
        if (!ring.Flush(/*wait_nr=*/1)) {
          enter_failed = true;
          break;
        }
        uint64_t ud = 0;
        int32_t res = 0;
        while (ring.Pop(&ud, &res)) {
          InFlight& f = flight[ud];
          seen[ud] = 1;
          ++reaped;
          const Request& r = f.req;
          if (res >= 0) {
            if (r.is_write) {
              r.dev->NoteRawWrite(static_cast<size_t>(res));
            } else {
              r.dev->NoteRawRead(static_cast<size_t>(res));
            }
            if (static_cast<uint32_t>(res) < r.len) {
              // Short transfer (EOF or split): finish through the virtual
              // call, which loops (and zero-fills reads past EOF) like the
              // blocking path.
              Request rest = r;
              rest.offset += static_cast<uint64_t>(res);
              rest.buf = static_cast<char*>(r.buf) + res;
              rest.len = r.len - static_cast<uint32_t>(res);
              Deliver(r, RunBlocking(rest));
            } else {
              Deliver(r, Status::OK());
            }
          } else {
            // Ring-level failure (e.g. EOPNOTSUPP): one blocking retry
            // decides the final status.
            Deliver(r, RunBlocking(r));
          }
        }
      }
      if (enter_failed) {
        // io_uring_enter failed hard after a successful setup — should not
        // happen; fall back to blocking I/O for the unreaped remainder
        // (read ranges are immutable and a write sqe that already landed
        // rewrote identical bytes, so a duplicate completion is benign)
        // and stop using the ring.
        for (size_t i = 0; i < prepped; ++i) {
          if (seen[i]) continue;
          Deliver(flight[i].req, RunBlocking(flight[i].req));
        }
        ring_ok = false;
      }
      continue;
    }
#endif
    if (!NextBurst(&burst, 1)) return;
    for (const Request& r : burst) {
      Deliver(r, RunBlocking(r));
    }
  }
}

}  // namespace mlkv
