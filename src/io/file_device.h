// FileDevice: positional-I/O wrapper over a single file, the persistence
// substrate for the hybrid log, SSTables, and B+tree pages. All methods are
// thread-safe (pread/pwrite carry their own offsets).
//
// ReadAt, WriteAt and Sync are virtual: they are the seams decorators
// intercept — fault injection (io/faulty_file_device.h) and any I/O-path
// instrumentation — and the calls the AsyncIoEngine's worker threads issue
// for devices that do not admit raw-fd transfers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace mlkv {

class FileDevice {
 public:
  FileDevice() = default;
  virtual ~FileDevice();

  FileDevice(const FileDevice&) = delete;
  FileDevice& operator=(const FileDevice&) = delete;

  // Creates (truncating) or opens the file at `path`.
  Status Open(const std::string& path, bool truncate = true);
  Status Close();

  // Full read/write at absolute offset; loops on short transfers.
  virtual Status WriteAt(uint64_t offset, const void* data, size_t n);
  virtual Status ReadAt(uint64_t offset, void* data, size_t n) const;

  virtual Status Sync();
  Status Truncate(uint64_t size);

  // Releases the blocks backing [offset, offset+len) while keeping the file
  // size unchanged (log garbage collection reclaims the dead prefix this
  // way). Filesystems without hole-punch support make this a no-op: the
  // bytes stay allocated, which costs space but never correctness — callers
  // must not read punched ranges either way.
  Status PunchHole(uint64_t offset, uint64_t len);

  uint64_t FileSize() const;
  bool is_open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  // True when reads may bypass the virtual ReadAt and go straight to the
  // fd (the AsyncIoEngine's io_uring path). False whenever ReadAt carries
  // semantics a raw read would skip: the simulated cost model here, or a
  // decorator's interception (FaultyFileDevice overrides this to false).
  virtual bool AllowsRawReads() const {
    return fd_ >= 0 && sim_read_latency_us_ == 0 && sim_read_gbps_ <= 0;
  }
  // Accounts bytes transferred by a raw-fd read that bypassed ReadAt.
  void NoteRawRead(size_t n) const {
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }

  // Write-side twin of AllowsRawReads: true when writes may bypass the
  // virtual WriteAt (the AsyncIoEngine's io_uring WRITEV path). False
  // whenever WriteAt carries semantics a raw write would skip — the
  // simulated bandwidth model, or a decorator's interception.
  virtual bool AllowsRawWrites() const {
    return fd_ >= 0 && sim_write_gbps_ <= 0;
  }
  // Accounts bytes transferred by a raw-fd write that bypassed WriteAt.
  void NoteRawWrite(size_t n) const {
    bytes_written_.fetch_add(n, std::memory_order_relaxed);
  }

  // Cumulative transfer counters (drive the energy model's SSD term).
  uint64_t bytes_written() const;
  uint64_t bytes_read() const;

  // Simulated NVMe cost model (see DESIGN.md substitutions). Benchmarks run
  // against files that land in the OS page cache, which would make the
  // out-of-core experiments free; enabling this charges every read a fixed
  // random-access latency plus a bandwidth term, and every write a
  // bandwidth term — calibrated to the paper's "SSDs with 1024 MB/s
  // bandwidth". Zero latency and bandwidth (the default) disables it.
  void SetSimulatedCosts(uint64_t read_latency_us, double read_gbps,
                         double write_gbps) {
    sim_read_latency_us_ = read_latency_us;
    sim_read_gbps_ = read_gbps;
    sim_write_gbps_ = write_gbps;
  }

  // Process-wide default applied to every FileDevice at Open (engines open
  // devices internally, so benchmarks set the model once up front). A
  // 30 us / 1 GB/s setting approximates the paper's NVMe.
  static void SetGlobalSimulatedCosts(uint64_t read_latency_us,
                                      double read_gbps, double write_gbps);

 private:
  void ChargeRead(size_t n) const;
  void ChargeWrite(size_t n) const;

  int fd_ = -1;
  std::string path_;
  mutable std::atomic<uint64_t> bytes_written_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
  uint64_t sim_read_latency_us_ = 0;
  double sim_read_gbps_ = 0;
  double sim_write_gbps_ = 0;
};

}  // namespace mlkv
