// GroupCommitter: batches concurrent durability points on one FileDevice
// behind a single fsync — the group-commit protocol classic WALs use.
//
// Callers perform their own writes first, then stage a commit ticket and
// park on it, exactly like a PendingRead parks on its wave
// (kv/pending_read.h):
//
//   dev->WriteAt(...);                       // the payload
//   auto t = committer->StageWrite(bytes);   // join the open commit window
//   Status s = committer->Wait(t);           // durable (or failed) on return
//
// A background committer thread closes the window and issues one
// device Sync when either trigger fires:
//   * the commit window elapses (Options::window_us) — bounds added
//     latency for a lone committer, and
//   * the staged bytes exceed Options::max_bytes — bounds data at risk
//     under a firehose of committers.
// Every ticket staged before the Sync is released by it, so N concurrent
// small appends cost one fsync, not N.
//
// Error model: a failed Sync is sticky. The tickets it covered — and every
// later one — fail with that status; after an fsync error the kernel may
// have dropped dirty pages, so pretending a later fsync "fixed" it would
// report durability that never happened. The owner must discard or rebuild
// the device (recovery path) to continue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "io/file_device.h"

namespace mlkv {

class GroupCommitter {
 public:
  struct Options {
    // Max time a staged ticket waits for more committers to join before
    // the window closes and the fsync is issued.
    uint64_t window_us = 200;
    // Staged-bytes trigger: the window closes early once this many bytes
    // are waiting on the next fsync.
    uint64_t max_bytes = 1ull << 20;
  };

  struct Stats {
    uint64_t tickets = 0;        // StageWrite calls
    uint64_t fsyncs = 0;         // device Sync calls issued
    uint64_t group_commits = 0;  // fsyncs that released more than 1 ticket
  };

  // `dev` must outlive the committer.
  GroupCommitter(FileDevice* dev, const Options& options);
  ~GroupCommitter();  // drains: every staged ticket is released first

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  // Joins the open commit window, accounting `bytes` toward the max_bytes
  // trigger. The caller's writes to the device must be issued before this
  // call. Returns the ticket to Wait on.
  uint64_t StageWrite(uint64_t bytes);

  // Blocks until an fsync covering `ticket` completed; OK means everything
  // written before the matching StageWrite is durable.
  Status Wait(uint64_t ticket);

  Stats stats() const;

 private:
  void CommitterLoop();

  FileDevice* const dev_;
  const Options options_;

  std::mutex mu_;
  std::condition_variable worker_cv_;   // committer thread: work / stop
  std::condition_variable waiters_cv_;  // callers: your ticket committed
  uint64_t staged_seq_ = 0;     // highest ticket issued
  uint64_t committed_seq_ = 0;  // highest ticket covered by a finished Sync
  uint64_t staged_bytes_ = 0;   // bytes staged since the last Sync
  Status error_;                // sticky first Sync failure
  bool stop_ = false;

  std::atomic<uint64_t> tickets_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> group_commits_{0};

  std::thread committer_;
};

}  // namespace mlkv
