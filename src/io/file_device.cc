#include "io/file_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#ifdef __linux__
#include <linux/falloc.h>
#endif

#include <atomic>
#include <cerrno>
#include <cstring>
#include <ctime>

#include "common/clock.h"

namespace mlkv {

namespace {
std::atomic<uint64_t> g_sim_read_latency_us{0};
std::atomic<double> g_sim_read_gbps{0};
std::atomic<double> g_sim_write_gbps{0};
}  // namespace

void FileDevice::SetGlobalSimulatedCosts(uint64_t read_latency_us,
                                         double read_gbps,
                                         double write_gbps) {
  g_sim_read_latency_us.store(read_latency_us, std::memory_order_relaxed);
  g_sim_read_gbps.store(read_gbps, std::memory_order_relaxed);
  g_sim_write_gbps.store(write_gbps, std::memory_order_relaxed);
}

FileDevice::~FileDevice() { Close(); }

Status FileDevice::Open(const std::string& path, bool truncate) {
  Close();
  sim_read_latency_us_ = g_sim_read_latency_us.load(std::memory_order_relaxed);
  sim_read_gbps_ = g_sim_read_gbps.load(std::memory_order_relaxed);
  sim_write_gbps_ = g_sim_write_gbps.load(std::memory_order_relaxed);
  int flags = O_RDWR | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path, errno);
  }
  path_ = path;
  return Status::OK();
}

Status FileDevice::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return Status::OK();
}

Status FileDevice::WriteAt(uint64_t offset, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  uint64_t off = offset;
  while (left > 0) {
    ssize_t w = ::pwrite(fd_, p, left, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path_, errno);
    }
    p += w;
    off += static_cast<uint64_t>(w);
    left -= static_cast<size_t>(w);
  }
  bytes_written_.fetch_add(n, std::memory_order_relaxed);
  ChargeWrite(n);
  return Status::OK();
}

namespace {
// A thread waiting on a device completion yields the CPU — crucial for
// fidelity: overlapping I/O with compute (the whole point of look-ahead
// prefetching and async training) requires the core back while "the disk"
// works, especially on small machines.
void SleepNanos(uint64_t delay_ns) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(delay_ns / 1000000000ull);
  ts.tv_nsec = static_cast<long>(delay_ns % 1000000000ull);
  nanosleep(&ts, nullptr);
}
}  // namespace

void FileDevice::ChargeRead(size_t n) const {
  if (sim_read_latency_us_ == 0 && sim_read_gbps_ <= 0) return;
  uint64_t delay_ns = sim_read_latency_us_ * 1000;
  if (sim_read_gbps_ > 0) {
    delay_ns += static_cast<uint64_t>(static_cast<double>(n) /
                                      (sim_read_gbps_ * 1e9) * 1e9);
  }
  SleepNanos(delay_ns);
}

void FileDevice::ChargeWrite(size_t n) const {
  if (sim_write_gbps_ <= 0) return;
  SleepNanos(static_cast<uint64_t>(static_cast<double>(n) /
                                   (sim_write_gbps_ * 1e9) * 1e9));
}

Status FileDevice::ReadAt(uint64_t offset, void* data, size_t n) const {
  char* p = static_cast<char*>(data);
  size_t left = n;
  uint64_t off = offset;
  while (left > 0) {
    ssize_t r = ::pread(fd_, p, left, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path_, errno);
    }
    if (r == 0) {
      // Reading past EOF: zero-fill. The hybrid log pre-extends lazily, so a
      // read of a never-flushed region is a logic error upstream; zero bytes
      // surface as an invalid record there.
      std::memset(p, 0, left);
      break;
    }
    p += r;
    off += static_cast<uint64_t>(r);
    left -= static_cast<size_t>(r);
  }
  bytes_read_.fetch_add(n, std::memory_order_relaxed);
  ChargeRead(n);
  return Status::OK();
}

Status FileDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync " + path_, errno);
  }
  return Status::OK();
}

Status FileDevice::PunchHole(uint64_t offset, uint64_t len) {
  if (len == 0) return Status::OK();
#if defined(FALLOC_FL_PUNCH_HOLE) && defined(FALLOC_FL_KEEP_SIZE)
  if (::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                  static_cast<off_t>(offset), static_cast<off_t>(len)) != 0) {
    if (errno == EOPNOTSUPP || errno == ENOSYS || errno == EINVAL) {
      return Status::OK();  // best-effort space reclamation
    }
    return Status::IOError("fallocate(PUNCH_HOLE) " + path_, errno);
  }
#else
  (void)offset;
#endif
  return Status::OK();
}

Status FileDevice::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate " + path_, errno);
  }
  return Status::OK();
}

uint64_t FileDevice::FileSize() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

uint64_t FileDevice::bytes_written() const {
  return bytes_written_.load(std::memory_order_relaxed);
}
uint64_t FileDevice::bytes_read() const {
  return bytes_read_.load(std::memory_order_relaxed);
}

}  // namespace mlkv
