#include "io/group_committer.h"

#include <chrono>

namespace mlkv {

GroupCommitter::GroupCommitter(FileDevice* dev, const Options& options)
    : dev_(dev), options_(options) {
  committer_ = std::thread([this] { CommitterLoop(); });
}

GroupCommitter::~GroupCommitter() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  worker_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
}

uint64_t GroupCommitter::StageWrite(uint64_t bytes) {
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ticket = ++staged_seq_;
    staged_bytes_ += bytes;
  }
  tickets_.fetch_add(1, std::memory_order_relaxed);
  worker_cv_.notify_one();
  return ticket;
}

Status GroupCommitter::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lk(mu_);
  waiters_cv_.wait(lk, [this, ticket] {
    return committed_seq_ >= ticket || !error_.ok();
  });
  return error_;
}

GroupCommitter::Stats GroupCommitter::stats() const {
  Stats s;
  s.tickets = tickets_.load(std::memory_order_relaxed);
  s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  s.group_commits = group_commits_.load(std::memory_order_relaxed);
  return s;
}

void GroupCommitter::CommitterLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    worker_cv_.wait(lk, [this] {
      return stop_ || staged_seq_ > committed_seq_;
    });
    if (staged_seq_ == committed_seq_) {
      if (stop_) return;
      continue;
    }
    if (error_.ok() && !stop_) {
      // Hold the window open so more committers can pile on; close early
      // on the byte trigger (or shutdown). A spurious wake just re-checks.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.window_us);
      worker_cv_.wait_until(lk, deadline, [this] {
        return stop_ || staged_bytes_ >= options_.max_bytes;
      });
    }
    if (!error_.ok()) {
      // Sticky failure: release everything staged with the error; no
      // further fsync can claim durability for these tickets.
      committed_seq_ = staged_seq_;
      staged_bytes_ = 0;
      waiters_cv_.notify_all();
      if (stop_) return;
      continue;
    }
    const uint64_t cover = staged_seq_;
    staged_bytes_ = 0;
    lk.unlock();
    const Status s = dev_->Sync();
    lk.lock();
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    if (cover - committed_seq_ > 1) {
      group_commits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!s.ok() && error_.ok()) error_ = s;
    committed_seq_ = cover;
    waiters_cv_.notify_all();
    if (stop_ && staged_seq_ == committed_seq_) return;
  }
}

}  // namespace mlkv
