#include "btree/btree_store.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace mlkv {

// Page layout (both kinds):
//   u32 type (1 = leaf, 2 = internal)
//   u32 count
// Leaf:     count * (u64 key, value_size bytes)
//   entries sorted by key.
// Internal: count * (u64 key) followed by (count + 1) * (u64 child)
//   child[i] covers keys < key[i]; child[count] covers the rest. The key
//   array is sorted; layout places children after the fixed-capacity key
//   region so both arrays are contiguous.
namespace {

constexpr uint32_t kHeaderSize = 8;
constexpr uint32_t kLeafType = 1;
constexpr uint32_t kInternalType = 2;

uint32_t PageType(const char* p) {
  uint32_t t;
  std::memcpy(&t, p, 4);
  return t;
}
uint32_t PageCount(const char* p) {
  uint32_t c;
  std::memcpy(&c, p + 4, 4);
  return c;
}
void SetPageHeader(char* p, uint32_t type, uint32_t count) {
  std::memcpy(p, &type, 4);
  std::memcpy(p + 4, &count, 4);
}

Key LeafKeyAt(const char* p, uint32_t slot, uint32_t value_size) {
  Key k;
  std::memcpy(&k, p + kHeaderSize + slot * (8 + value_size), 8);
  return k;
}
char* LeafValueAt(char* p, uint32_t slot, uint32_t value_size) {
  return p + kHeaderSize + slot * (8 + value_size) + 8;
}
void LeafSetEntry(char* p, uint32_t slot, Key key, const void* value,
                  uint32_t value_size) {
  char* base = p + kHeaderSize + slot * (8 + value_size);
  std::memcpy(base, &key, 8);
  if (value != nullptr) std::memcpy(base + 8, value, value_size);
}

Key InternalKeyAt(const char* p, uint32_t i) {
  Key k;
  std::memcpy(&k, p + kHeaderSize + i * 8, 8);
  return k;
}
void InternalSetKey(char* p, uint32_t i, Key k) {
  std::memcpy(p + kHeaderSize + i * 8, &k, 8);
}
PageId InternalChildAt(const char* p, uint32_t i, uint32_t capacity) {
  PageId c;
  std::memcpy(&c, p + kHeaderSize + capacity * 8 + i * 8, 8);
  return c;
}
void InternalSetChild(char* p, uint32_t i, uint32_t capacity, PageId c) {
  std::memcpy(p + kHeaderSize + capacity * 8 + i * 8, &c, 8);
}

}  // namespace

Status BTreeStore::Open(const BTreeOptions& options) {
  options_ = options;
  MLKV_RETURN_NOT_OK(file_.Open(options.path));
  const size_t pool_pages =
      std::max<size_t>(8, options.buffer_pool_bytes / options.page_size);
  pool_.reset(new BufferPool(&file_, options.page_size, pool_pages));
  leaf_capacity_ = (options.page_size - kHeaderSize) / (8 + options.value_size);
  // Internal pages store `capacity` keys and `capacity + 1` children.
  internal_capacity_ = (options.page_size - kHeaderSize - 8) / 16;
  if (leaf_capacity_ < 2 || internal_capacity_ < 2) {
    return Status::InvalidArgument("page too small for value size");
  }
  char* data = nullptr;
  MLKV_RETURN_NOT_OK(pool_->NewPage(&root_, &data));
  SetPageHeader(data, kLeafType, 0);
  pool_->Unpin(root_, /*dirty=*/true);
  return Status::OK();
}

Status BTreeStore::PinPage(PageId id, PageRef* ref) {
  ref->id = id;
  return pool_->Pin(id, &ref->data);
}

Status BTreeStore::DescendToLeaf(Key key, std::vector<PageRef>* path) {
  PageRef cur;
  MLKV_RETURN_NOT_OK(PinPage(root_, &cur));
  path->push_back(cur);
  while (PageType(cur.data) == kInternalType) {
    const uint32_t count = PageCount(cur.data);
    // First key strictly greater than `key` determines the child.
    uint32_t lo = 0, hi = count;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (key < InternalKeyAt(cur.data, mid)) hi = mid;
      else lo = mid + 1;
    }
    const PageId child = InternalChildAt(cur.data, lo, internal_capacity_);
    PageRef next;
    MLKV_RETURN_NOT_OK(PinPage(child, &next));
    path->push_back(next);
    cur = next;
  }
  return Status::OK();
}

void BTreeStore::UnpinPath(const std::vector<PageRef>& path, bool leaf_dirty) {
  for (size_t i = 0; i < path.size(); ++i) {
    const bool dirty = leaf_dirty && i + 1 == path.size();
    pool_->Unpin(path[i].id, dirty);
  }
}

Status BTreeStore::Get(Key key, void* value_out) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock lk(tree_mu_);
  std::vector<PageRef> path;
  Status s = DescendToLeaf(key, &path);
  if (!s.ok()) {
    UnpinPath(path, false);
    return s;
  }
  const PageRef& leaf = path.back();
  const uint32_t count = PageCount(leaf.data);
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (LeafKeyAt(leaf.data, mid, options_.value_size) < key) lo = mid + 1;
    else hi = mid;
  }
  if (lo < count && LeafKeyAt(leaf.data, lo, options_.value_size) == key) {
    std::memcpy(value_out, LeafValueAt(leaf.data, lo, options_.value_size),
                options_.value_size);
    UnpinPath(path, false);
    return Status::OK();
  }
  UnpinPath(path, false);
  return Status::NotFound();
}

bool BTreeStore::Contains(Key key) {
  std::vector<char> buf(options_.value_size);
  return Get(key, buf.data()).ok();
}

Status BTreeStore::Scan(Key from, Key to,
                        const std::function<void(Key, const void*)>& fn) {
  const uint32_t vs = options_.value_size;
  Key cursor = from;
  std::vector<char> batch;     // copied entries, emitted outside the lock
  std::vector<Key> batch_keys;
  for (;;) {
    batch.clear();
    batch_keys.clear();
    bool done = false;
    {
      std::shared_lock lk(tree_mu_);
      // Descend to the leaf owning `cursor`, tracking the smallest
      // separator greater than every key in that leaf (its upper bound).
      PageRef cur;
      std::vector<PageRef> path;
      Status s = PinPage(root_, &cur);
      if (!s.ok()) return s;
      path.push_back(cur);
      bool has_upper = false;
      Key upper = 0;
      while (PageType(cur.data) == kInternalType) {
        const uint32_t count = PageCount(cur.data);
        uint32_t lo = 0, hi = count;
        while (lo < hi) {
          const uint32_t mid = (lo + hi) / 2;
          if (cursor < InternalKeyAt(cur.data, mid)) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        if (lo < count) {
          // child[lo] covers keys < key[lo]: tighter upper bound.
          upper = InternalKeyAt(cur.data, lo);
          has_upper = true;
        }
        const PageId child = InternalChildAt(cur.data, lo,
                                             internal_capacity_);
        PageRef next;
        s = PinPage(child, &next);
        if (!s.ok()) {
          UnpinPath(path, false);
          return s;
        }
        path.push_back(next);
        cur = next;
      }
      const PageRef& leaf = path.back();
      const uint32_t count = PageCount(leaf.data);
      uint32_t lo = 0, hi = count;
      while (lo < hi) {
        const uint32_t mid = (lo + hi) / 2;
        if (LeafKeyAt(leaf.data, mid, vs) < cursor) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      for (uint32_t slot = lo; slot < count; ++slot) {
        const Key k = LeafKeyAt(leaf.data, slot, vs);
        if (k > to) {
          done = true;
          break;
        }
        batch_keys.push_back(k);
        const size_t off = batch.size();
        batch.resize(off + vs);
        std::memcpy(batch.data() + off,
                    LeafValueAt(const_cast<char*>(leaf.data), slot, vs), vs);
      }
      UnpinPath(path, false);
      if (!done) {
        if (!has_upper || upper > to) {
          done = true;  // rightmost leaf for this range
        } else {
          cursor = upper;  // next leaf starts at the separator
        }
      }
    }
    for (size_t i = 0; i < batch_keys.size(); ++i) {
      fn(batch_keys[i], batch.data() + i * vs);
    }
    if (done) return Status::OK();
  }
}

Status BTreeStore::Put(Key key, const void* value) {
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lk(tree_mu_);
  for (;;) {
    std::vector<PageRef> path;
    Status s = DescendToLeaf(key, &path);
    if (!s.ok()) {
      UnpinPath(path, false);
      return s;
    }
    PageRef& leaf = path.back();
    const uint32_t count = PageCount(leaf.data);
    const uint32_t vs = options_.value_size;
    uint32_t lo = 0, hi = count;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (LeafKeyAt(leaf.data, mid, vs) < key) lo = mid + 1;
      else hi = mid;
    }
    if (lo < count && LeafKeyAt(leaf.data, lo, vs) == key) {
      // Update in place (the B-tree advantage the paper contrasts with LSM).
      std::memcpy(LeafValueAt(leaf.data, lo, vs), value, vs);
      UnpinPath(path, true);
      return Status::OK();
    }
    if (count < leaf_capacity_) {
      // Shift tail right, insert at lo.
      char* base = leaf.data + kHeaderSize;
      const size_t entry = 8 + vs;
      std::memmove(base + (lo + 1) * entry, base + lo * entry,
                   (count - lo) * entry);
      LeafSetEntry(leaf.data, lo, key, value, vs);
      SetPageHeader(leaf.data, kLeafType, count + 1);
      UnpinPath(path, true);
      return Status::OK();
    }
    // Leaf full: split and retry the insert.
    MLKV_RETURN_NOT_OK(SplitLeaf(&path, key));
    // SplitLeaf unpins the path.
  }
}

namespace {
// Inserts (key, right_child) into an internal page with room; `lo` is the
// insert position. Caller guarantees count < capacity.
void InternalInsertAt(char* page, uint32_t count, uint32_t capacity,
                      Key key, PageId right_child) {
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (key < InternalKeyAt(page, mid)) hi = mid;
    else lo = mid + 1;
  }
  for (uint32_t i = count; i > lo; --i) {
    InternalSetKey(page, i, InternalKeyAt(page, i - 1));
  }
  for (uint32_t i = count + 1; i > lo + 1; --i) {
    InternalSetChild(page, i, capacity,
                     InternalChildAt(page, i - 1, capacity));
  }
  InternalSetKey(page, lo, key);
  InternalSetChild(page, lo + 1, capacity, right_child);
  SetPageHeader(page, kInternalType, count + 1);
}
}  // namespace

Status BTreeStore::SplitLeaf(std::vector<PageRef>* path, Key key) {
  // Pages touched during a split are all unpinned dirty; conservatively
  // re-writing a clean ancestor is harmless and keeps the bookkeeping
  // simple under the exclusive tree lock.
  stats_.splits.fetch_add(1, std::memory_order_relaxed);
  PageRef leaf = path->back();
  const uint32_t vs = options_.value_size;
  const uint32_t count = PageCount(leaf.data);
  const uint32_t left_count = count / 2;
  const uint32_t right_count = count - left_count;
  const Key split_key = LeafKeyAt(leaf.data, left_count, vs);

  PageId right_id;
  char* right;
  Status s = pool_->NewPage(&right_id, &right);
  if (!s.ok()) {
    UnpinPath(*path, true);
    return s;
  }
  SetPageHeader(right, kLeafType, right_count);
  const size_t entry = 8 + vs;
  std::memcpy(right + kHeaderSize,
              leaf.data + kHeaderSize + left_count * entry,
              right_count * entry);
  SetPageHeader(leaf.data, kLeafType, left_count);
  pool_->Unpin(right_id, true);

  // Bubble (insert_key, insert_child) up the pinned path, splitting full
  // internal pages as needed; grow a new root when the split reaches it.
  Key insert_key = split_key;
  PageId insert_child = right_id;
  PageId left_of_insert = leaf.id;  // child left of insert_key at this level
  bool need_new_root = true;
  for (size_t level = path->size(); level-- > 1;) {
    PageRef& parent = (*path)[level - 1];
    const uint32_t pcount = PageCount(parent.data);
    if (pcount < internal_capacity_) {
      InternalInsertAt(parent.data, pcount, internal_capacity_, insert_key,
                       insert_child);
      need_new_root = false;
      break;
    }
    // Split the full internal page: push the middle key up.
    const uint32_t mid_idx = pcount / 2;
    const Key up_key = InternalKeyAt(parent.data, mid_idx);
    PageId pright_id;
    char* pright;
    s = pool_->NewPage(&pright_id, &pright);
    if (!s.ok()) {
      UnpinPath(*path, true);
      return s;
    }
    const uint32_t r = pcount - mid_idx - 1;
    SetPageHeader(pright, kInternalType, r);
    for (uint32_t i = 0; i < r; ++i) {
      InternalSetKey(pright, i, InternalKeyAt(parent.data, mid_idx + 1 + i));
    }
    for (uint32_t i = 0; i <= r; ++i) {
      InternalSetChild(pright, i, internal_capacity_,
                       InternalChildAt(parent.data, mid_idx + 1 + i,
                                       internal_capacity_));
    }
    SetPageHeader(parent.data, kInternalType, mid_idx);
    // Route the pending separator into the correct half.
    if (insert_key < up_key) {
      InternalInsertAt(parent.data, mid_idx, internal_capacity_, insert_key,
                       insert_child);
    } else {
      InternalInsertAt(pright, r, internal_capacity_, insert_key,
                       insert_child);
    }
    pool_->Unpin(pright_id, true);
    insert_key = up_key;
    insert_child = pright_id;
    left_of_insert = parent.id;
  }
  if (need_new_root) {
    PageId new_root;
    char* nr;
    s = pool_->NewPage(&new_root, &nr);
    if (!s.ok()) {
      UnpinPath(*path, true);
      return s;
    }
    SetPageHeader(nr, kInternalType, 1);
    InternalSetKey(nr, 0, insert_key);
    InternalSetChild(nr, 0, internal_capacity_, left_of_insert);
    InternalSetChild(nr, 1, internal_capacity_, insert_child);
    pool_->Unpin(new_root, true);
    root_ = new_root;
    height_.fetch_add(1, std::memory_order_relaxed);
  }
  UnpinPath(*path, true);
  return Status::OK();
}

Status BTreeStore::FlushAll() {
  std::unique_lock lk(tree_mu_);
  return pool_->FlushAll();
}

BTreeStatsSnapshot BTreeStore::stats() const {
  BTreeStatsSnapshot s;
  s.gets = stats_.gets.load(std::memory_order_relaxed);
  s.puts = stats_.puts.load(std::memory_order_relaxed);
  s.splits = stats_.splits.load(std::memory_order_relaxed);
  s.height = height_.load(std::memory_order_relaxed);
  const auto ps = pool_->stats();
  s.pool_hits = ps.hits;
  s.pool_misses = ps.misses;
  s.writebacks = ps.writebacks;
  return s;
}

}  // namespace mlkv
