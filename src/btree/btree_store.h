// BTreeStore: the WiredTiger-style baseline backend — an update-in-place,
// disk-paged B+tree with a bounded buffer pool.
//
// Values are fixed-size per store (set at Open), matching the embedding use
// case and keeping leaf layout slot-based. Concurrency uses one
// reader/writer lock over the tree structure; WiredTiger's hazard-pointer
// latching is out of scope for a comparator (documented in DESIGN.md). The
// behaviours Fig. 7 depends on — page-granular caching, update-in-place
// writes, write-back on eviction, logarithmic descent — are faithful.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "btree/buffer_pool.h"
#include "common/status.h"
#include "io/file_device.h"
#include "kv/record.h"

namespace mlkv {

struct BTreeOptions {
  std::string path;
  uint32_t page_size = 4096;
  uint64_t buffer_pool_bytes = 32ull << 20;
  uint32_t value_size = 64;  // fixed bytes per value
};

struct BTreeStatsSnapshot {
  uint64_t gets = 0, puts = 0;
  uint64_t splits = 0, height = 0;
  uint64_t pool_hits = 0, pool_misses = 0, writebacks = 0;
};

class BTreeStore {
 public:
  BTreeStore() = default;

  BTreeStore(const BTreeStore&) = delete;
  BTreeStore& operator=(const BTreeStore&) = delete;

  Status Open(const BTreeOptions& options);

  Status Put(Key key, const void* value);
  Status Get(Key key, void* value_out);
  bool Contains(Key key);

  // Visits every key in [from, to] in ascending order with its value bytes
  // (value_size() per entry). Leaves carry no sibling links (simplification
  // documented in DESIGN.md), so the scan re-descends per leaf using the
  // separator-derived upper bound — O(height) pins per leaf visited.
  Status Scan(Key from, Key to,
              const std::function<void(Key, const void*)>& fn);

  Status FlushAll();

  BTreeStatsSnapshot stats() const;
  uint32_t value_size() const { return options_.value_size; }

 private:
  // Page layout helpers (see btree_store.cc for the exact layout).
  struct PageRef {
    PageId id = kInvalidPageId;
    char* data = nullptr;
  };

  Status PinPage(PageId id, PageRef* ref);
  // Descends to the leaf that owns `key`; fills `path` with pinned pages
  // (root..leaf). Caller unpins everything via UnpinPath.
  Status DescendToLeaf(Key key, std::vector<PageRef>* path);
  void UnpinPath(const std::vector<PageRef>& path, bool leaf_dirty);
  // Splits the full leaf at path.back(), updating parents (and possibly
  // growing a new root). Called with the write lock held.
  Status SplitLeaf(std::vector<PageRef>* path, Key key);

  BTreeOptions options_;
  FileDevice file_;
  std::unique_ptr<BufferPool> pool_;
  std::shared_mutex tree_mu_;
  PageId root_ = kInvalidPageId;
  uint32_t leaf_capacity_ = 0;
  uint32_t internal_capacity_ = 0;
  std::atomic<uint64_t> height_{1};

  struct Stats {
    std::atomic<uint64_t> gets{0}, puts{0}, splits{0};
  };
  mutable Stats stats_;
};

}  // namespace mlkv
