// BufferPool: fixed-capacity page cache with LRU eviction and pin counts,
// backing the B+tree (WiredTiger-style) baseline. Dirty pages are written
// back on eviction; pinned pages are never evicted.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/file_device.h"

namespace mlkv {

using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~0ull;

class BufferPool {
 public:
  BufferPool(FileDevice* file, uint32_t page_size, size_t capacity_pages)
      : file_(file), page_size_(page_size), capacity_(capacity_pages) {}

  uint32_t page_size() const { return page_size_; }

  // Returns a pinned pointer to the page (loaded from disk on miss).
  // Callers must Unpin exactly once; set `dirty` on Unpin if modified.
  Status Pin(PageId id, char** data);
  void Unpin(PageId id, bool dirty);

  // Allocates a fresh zeroed page with a new id (pinned on return).
  Status NewPage(PageId* id, char** data);

  Status FlushAll();

  struct PoolStats {
    uint64_t hits = 0, misses = 0, evictions = 0, writebacks = 0;
  };
  PoolStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  size_t resident_pages() const {
    std::lock_guard<std::mutex> lk(mu_);
    return frames_.size();
  }

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    int pins = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_it;
    bool in_lru = false;
  };

  // Evicts one unpinned page; returns false if all pages are pinned.
  // Caller holds mu_.
  Status EvictOne(bool* evicted);

  FileDevice* file_;
  uint32_t page_size_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recent, only unpinned pages
  PageId next_page_id_ = 0;
  mutable PoolStats stats_;
};

}  // namespace mlkv
