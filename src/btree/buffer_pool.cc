#include "btree/buffer_pool.h"

#include <cstring>

namespace mlkv {

Status BufferPool::EvictOne(bool* evicted) {
  *evicted = false;
  if (lru_.empty()) return Status::OK();
  const PageId victim = lru_.back();
  lru_.pop_back();
  auto it = frames_.find(victim);
  Frame& f = it->second;
  f.in_lru = false;
  if (f.dirty) {
    MLKV_RETURN_NOT_OK(
        file_->WriteAt(victim * page_size_, f.data.get(), page_size_));
    ++stats_.writebacks;
  }
  frames_.erase(it);
  ++stats_.evictions;
  *evicted = true;
  return Status::OK();
}

Status BufferPool::Pin(PageId id, char** data) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_it);
      f.in_lru = false;
    }
    ++f.pins;
    ++stats_.hits;
    *data = f.data.get();
    return Status::OK();
  }
  ++stats_.misses;
  while (frames_.size() >= capacity_) {
    bool evicted = false;
    MLKV_RETURN_NOT_OK(EvictOne(&evicted));
    if (!evicted) break;  // everything pinned: allow temporary overshoot
  }
  Frame f;
  f.data.reset(new char[page_size_]);
  MLKV_RETURN_NOT_OK(file_->ReadAt(id * page_size_, f.data.get(), page_size_));
  f.pins = 1;
  *data = f.data.get();
  frames_.emplace(id, std::move(f));
  return Status::OK();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (dirty) f.dirty = true;
  if (--f.pins == 0) {
    lru_.push_front(id);
    f.lru_it = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::NewPage(PageId* id, char** data) {
  std::lock_guard<std::mutex> lk(mu_);
  while (frames_.size() >= capacity_) {
    bool evicted = false;
    MLKV_RETURN_NOT_OK(EvictOne(&evicted));
    if (!evicted) break;
  }
  *id = next_page_id_++;
  Frame f;
  f.data.reset(new char[page_size_]);
  std::memset(f.data.get(), 0, page_size_);
  f.pins = 1;
  f.dirty = true;
  *data = f.data.get();
  frames_.emplace(*id, std::move(f));
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, f] : frames_) {
    if (f.dirty) {
      MLKV_RETURN_NOT_OK(
          file_->WriteAt(id * page_size_, f.data.get(), page_size_));
      f.dirty = false;
      ++stats_.writebacks;
    }
  }
  return file_->Sync();
}

}  // namespace mlkv
