// Epoch-based protection (FASTER-style) for latch-free reclamation.
//
// Threads entering the store Protect() against the current global epoch;
// structural changes (page eviction, index resize) bump the epoch and enqueue
// a trigger action that runs only once every protected thread has observed a
// later epoch — i.e., once no thread can still hold a raw pointer into the
// retired region.
//
// Threads register lazily on first use and get a cache-line-sized slot to
// avoid false sharing on the hot Protect/Unprotect path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlkv {

class EpochManager {
 public:
  static constexpr uint64_t kUnprotected = ~0ull;
  static constexpr size_t kMaxThreads = 256;

  EpochManager() {
    for (auto& s : slots_) s.local_epoch.store(kUnprotected);
  }

  ~EpochManager() {
    // Run anything still pending; no threads can be inside by destruction.
    DrainAll();
  }

  // Enter a protected region; the returned epoch is informational.
  uint64_t Protect() {
    Slot& s = MySlot();
    uint64_t e = current_.load(std::memory_order_acquire);
    s.local_epoch.store(e, std::memory_order_release);
    // Re-read to close the window where the epoch advanced between the load
    // and the store (classic epoch-protection handshake).
    uint64_t e2 = current_.load(std::memory_order_acquire);
    while (e2 != e) {
      e = e2;
      s.local_epoch.store(e, std::memory_order_release);
      e2 = current_.load(std::memory_order_acquire);
    }
    return e;
  }

  void Unprotect() {
    MySlot().local_epoch.store(kUnprotected, std::memory_order_release);
  }

  bool IsProtected() const {
    return MySlot().local_epoch.load(std::memory_order_relaxed) != kUnprotected;
  }

  // Bump the epoch and register `action` to run once all threads have moved
  // past the prior epoch. Actions run on whichever thread observes safety
  // (inside TryBumpActions or DrainAll).
  void BumpWithAction(std::function<void()> action) {
    std::lock_guard<std::mutex> lk(drain_mu_);
    const uint64_t prior = current_.fetch_add(1, std::memory_order_acq_rel);
    drain_list_.push_back({prior, std::move(action)});
  }

  // Opportunistically run any actions whose epoch is now safe.
  void TryBumpActions() {
    std::vector<std::function<void()>> ready;
    {
      std::lock_guard<std::mutex> lk(drain_mu_);
      if (drain_list_.empty()) return;
      const uint64_t safe = ComputeSafeEpoch();
      size_t w = 0;
      for (size_t i = 0; i < drain_list_.size(); ++i) {
        if (drain_list_[i].epoch < safe) {
          ready.push_back(std::move(drain_list_[i].action));
        } else {
          drain_list_[w++] = std::move(drain_list_[i]);
        }
      }
      drain_list_.resize(w);
    }
    for (auto& a : ready) a();
  }

  // Blocks (spinning) until all pending actions have executed. Callers must
  // not hold protection, or this deadlocks by construction.
  void DrainAll() {
    for (;;) {
      TryBumpActions();
      {
        std::lock_guard<std::mutex> lk(drain_mu_);
        if (drain_list_.empty()) return;
      }
      std::this_thread::yield();
    }
  }

  uint64_t current_epoch() const {
    return current_.load(std::memory_order_acquire);
  }

  // Smallest epoch any protected thread might still be reading under.
  uint64_t ComputeSafeEpoch() const {
    uint64_t safe = current_.load(std::memory_order_acquire);
    const size_t n = num_slots_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t e = slots_[i].local_epoch.load(std::memory_order_acquire);
      if (e != kUnprotected && e < safe) safe = e;
    }
    return safe;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> local_epoch{kUnprotected};
  };

  struct DrainItem {
    uint64_t epoch;
    std::function<void()> action;
  };

  Slot& MySlot() const {
    // Registration is per (thread, manager instance): a slot index cached
    // for one manager must not leak into another. Instances are identified
    // by a monotonic id, not their address — stack addresses get reused.
    thread_local uint64_t cached_instance = 0;
    thread_local int cached_idx = -1;
    if (cached_instance != instance_id_) {
      cached_instance = instance_id_;
      cached_idx = static_cast<int>(
          num_slots_.fetch_add(1, std::memory_order_acq_rel));
      if (static_cast<size_t>(cached_idx) >= kMaxThreads) std::abort();
    }
    return slots_[cached_idx];
  }

  static uint64_t NextInstanceId() {
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  const uint64_t instance_id_ = NextInstanceId();

  std::atomic<uint64_t> current_{1};
  mutable std::atomic<size_t> num_slots_{0};
  mutable std::array<Slot, kMaxThreads> slots_;
  std::mutex drain_mu_;
  std::vector<DrainItem> drain_list_;
};

// RAII protection scope.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* em) : em_(em) { em_->Protect(); }
  ~EpochGuard() { em_->Unprotect(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* em_;
};

}  // namespace mlkv
