// ClusterBackend: the KvBackend seam over a whole cluster. Keys scatter
// by partition (ClusterMap::PartitionOf — the same top-bits routing the
// in-process ShardedStore uses) into per-partition sub-batches that run in
// parallel against their owning servers over pooled RemoteBackend
// connections; per-key BatchResults gather back in caller order. One flag
// (BackendKind::kCluster + BackendConfig::cluster_addrs) puts any trainer
// or bench on an N-server cluster with zero code changes — exactly the
// ShardedStore::MultiExecute shape, lifted onto the wire.
//
// Map discovery: Connect tries the seed endpoints in order; the first
// reachable server answers the handshake (dim) and, when it runs in
// cluster mode, serves the authoritative routing map via kClusterMap.
// Standalone seeds (epoch 0, kClusterMap unsupported) get a client-derived
// map instead: partitions spread round-robin over the seed list,
// unenforced by the servers. When a server rejects keys with per-key
// kWrongPartition (its map moved on), the batch refetches the map and
// retries exactly the rejected keys once under the new epoch.
//
// Failover: a read sub-batch whose chosen endpoint fails at the transport
// level (connect/send/recv — server down) retries against the partition's
// other candidates, as untracked reads when the candidate is not the
// primary (a replica has no staleness authority). With read_preference =
// kReplica the replicas come first and the primary is the fallback,
// offloading primaries entirely. Writes only ever run on the primary: a
// dead primary surfaces as per-key kFailed codes for that partition's keys
// while every other partition's writes land — no whole-batch abort, and no
// blind cross-server retry beyond RemoteBackend's own stale-pool retry
// (which is safe because the request provably never executed).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/kv_backend.h"
#include "cluster/cluster_map.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/remote_backend.h"

namespace mlkv {
namespace cluster {

struct ClusterBackendOptions {
  // Seed endpoints ("host:port"), any reachable cluster member. The
  // authoritative endpoint set comes from the fetched map; seeds only
  // bootstrap discovery (and become the whole cluster for standalone
  // servers with no map to serve).
  std::vector<std::string> endpoints;
  // Per-endpoint RemoteBackend knobs (see RemoteBackendOptions).
  size_t pool_size = 8;
  size_t max_keys_per_rpc = 0;
  // Scatter helpers for multi-partition batches (the calling thread always
  // participates too). 0 derives min(8, seed count).
  size_t scatter_threads = 0;
};

// Per-endpoint client-side counters (cluster-status / tests).
struct EndpointStats {
  std::string addr;
  bool connected = false;    // a client object exists (ever connected)
  uint64_t requests = 0;     // sub-batches routed here
  uint64_t failovers = 0;    // sub-batches that left here for a fallback
};

class ClusterBackend : public KvBackend {
 public:
  static Status Connect(const ClusterBackendOptions& options,
                        std::unique_ptr<KvBackend>* out);
  // Typed variant for tooling that needs map()/endpoint_stats().
  static Status Connect(const ClusterBackendOptions& options,
                        std::unique_ptr<ClusterBackend>* out);

  std::string name() const override;
  uint32_t dim() const override { return dim_; }
  // The map's route_bits: batch layout helpers (OrderKeysByShard) then
  // group keys exactly like the cluster scatter does.
  uint32_t shard_bits() const override { return map()->route_bits; }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override;
  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override;
  BatchResult MultiApplyGradient(std::span<const Key> keys, const float* grads,
                                 float lr) override;
  // Best-effort: forwards the hint to each touched partition's primary.
  Status Lookahead(std::span<const Key> keys) override;

  // Sums every endpoint client's counters (remote_requests/remote_retries).
  BackendIoStats io_stats() const override;

  // Base families plus the per-endpoint routing counters
  // (mlkv_cluster_endpoint_requests_total{endpoint=} /
  // mlkv_cluster_endpoint_failovers_total{endpoint=}) and the client's
  // current map epoch.
  void CollectMetrics(obs::MetricsSink* sink) const override;

  // Current routing map snapshot (immutable; swapped whole on refresh).
  std::shared_ptr<const ClusterMap> map() const;
  // Refetches the map from any reachable endpoint; installs it when its
  // epoch is newer than the current one.
  Status RefreshMap();
  std::vector<EndpointStats> endpoint_stats() const;

 private:
  enum class Op { kGet, kPut, kGrad };

  // One server, lazily connected; slots are created once per address and
  // never move, so raw pointers taken under ep_mu_ stay valid for the
  // backend's lifetime (map refreshes only add addresses).
  struct Endpoint {
    std::string addr;
    std::mutex mu;  // guards client creation
    std::unique_ptr<net::RemoteBackend> client;
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failovers{0};
  };

  explicit ClusterBackend(ClusterBackendOptions options);

  Endpoint* EndpointFor(const std::string& addr);
  // Lazy connect + dim cross-check (a mixed-dim cluster would silently
  // corrupt rows otherwise).
  Status GetClient(Endpoint* ep, net::RemoteBackend** out);
  Status FetchMapFrom(net::RemoteBackend* client,
                      std::shared_ptr<const ClusterMap>* out);
  void InstallMap(std::shared_ptr<const ClusterMap> m);

  // The scatter/gather core shared by all three batch ops. `rows_out` for
  // Get, `rows_in` for Put/Grad. `allow_epoch_retry` guards the one
  // refetch-and-retry pass on kWrongPartition rejections.
  BatchResult Execute(Op op, std::span<const Key> keys, float* rows_out,
                      const float* rows_in, float lr,
                      const MultiGetOptions& options, bool allow_epoch_retry);
  // One partition's sub-batch against its candidate endpoints (failover
  // order); keys/rows are already gathered contiguous.
  BatchResult ExecutePartition(const ClusterMap& m, size_t partition, Op op,
                               std::span<const Key> keys, float* rows_out,
                               const float* rows_in, float lr,
                               const MultiGetOptions& options);

  const ClusterBackendOptions options_;
  uint32_t dim_ = 0;  // fixed at Connect; read-only afterwards

  mutable std::mutex map_mu_;
  std::shared_ptr<const ClusterMap> map_;

  mutable std::mutex ep_mu_;  // guards the slot vector, not the slots
  std::vector<std::unique_ptr<Endpoint>> endpoints_;

  std::unique_ptr<ThreadPool> pool_;  // scatter helpers
};

}  // namespace cluster
}  // namespace mlkv
