// ClusterBackend: the KvBackend seam over a whole cluster. Keys scatter
// by partition (ClusterMap::PartitionOf — the same top-bits routing the
// in-process ShardedStore uses) into per-partition sub-batches that run in
// parallel against their owning servers over pooled RemoteBackend
// connections; per-key BatchResults gather back in caller order. One flag
// (BackendKind::kCluster + BackendConfig::cluster_addrs) puts any trainer
// or bench on an N-server cluster with zero code changes — exactly the
// ShardedStore::MultiExecute shape, lifted onto the wire.
//
// Map discovery: Connect tries the seed endpoints in order; the first
// reachable server answers the handshake (dim) and, when it runs in
// cluster mode, serves the authoritative routing map via kClusterMap.
// Standalone seeds (epoch 0, kClusterMap unsupported) get a client-derived
// map instead: partitions spread round-robin over the seed list,
// unenforced by the servers. When a server rejects keys with per-key
// kWrongPartition (its map moved on), the batch refetches the map and
// retries exactly the rejected keys once under the new epoch.
//
// Failover: a read sub-batch whose chosen endpoint fails at the transport
// level (connect/send/recv — server down) retries against the partition's
// other candidates, as untracked reads when the candidate is not the
// primary (a replica has no staleness authority). With read_preference =
// kReplica the replicas come first and the primary is the fallback,
// offloading primaries entirely. Writes only ever run on the primary: a
// dead primary surfaces as per-key kFailed codes for that partition's keys
// while every other partition's writes land — no whole-batch abort, and no
// blind cross-server retry beyond RemoteBackend's own stale-pool retry
// (which is safe because the request provably never executed).
//
// Tail-latency controls (both off by default; docs/SERVING.md):
//  - Request hedging (hedge_us): a read sub-batch races a second attempt
//    against the partition's next candidate once the first has been in
//    flight for the hedge delay (fixed, or kHedgeAuto = that endpoint's
//    trailing p99). First response wins; the loser is cancelled before
//    issue when possible and its bytes are discarded otherwise. Writes
//    never hedge — a duplicated gradient would double-apply.
//  - Hot-key replication (hot_replicate_top_k): a client-side HotKeyTracker
//    detects the hottest read keys and rotates their sub-batches across the
//    partition's primary AND replicas round-robin instead of primary-first,
//    trading bounded replica staleness for tail load spreading.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/kv_backend.h"
#include "cluster/cluster_map.h"
#include "cluster/hot_keys.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/remote_backend.h"
#include "obs/metrics.h"

namespace mlkv {
namespace cluster {

struct ClusterBackendOptions {
  // Seed endpoints ("host:port"), any reachable cluster member. The
  // authoritative endpoint set comes from the fetched map; seeds only
  // bootstrap discovery (and become the whole cluster for standalone
  // servers with no map to serve).
  std::vector<std::string> endpoints;
  // Per-endpoint RemoteBackend knobs (see RemoteBackendOptions).
  size_t pool_size = 8;
  size_t max_keys_per_rpc = 0;
  // Scatter helpers for multi-partition batches (the calling thread always
  // participates too). 0 derives min(8, seed count).
  size_t scatter_threads = 0;
  // Read-hedge delay in microseconds. 0 disables hedging; kHedgeAuto
  // derives it per endpoint from that endpoint's trailing read p99
  // (1ms until 64 samples warm the histogram, then clamped to
  // [100us, 100ms]). Only reads hedge.
  uint64_t hedge_us = 0;
  // When nonzero, track the top-K hottest read keys client-side and route
  // their reads round-robin across the partition's primary and replicas.
  size_t hot_replicate_top_k = 0;
  // Hot-set re-rank cadence, in observed read keys.
  uint64_t hot_refresh_interval = 8192;
};

// Per-endpoint client-side counters (cluster-status / tests).
struct EndpointStats {
  std::string addr;
  bool connected = false;    // a client object exists (ever connected)
  uint64_t requests = 0;     // sub-batches routed here
  uint64_t failovers = 0;    // sub-batches that left here for a fallback
  double latency_ewma_us = 0.0;  // smoothed read sub-batch latency
  uint64_t latency_p99_us = 0;   // trailing read p99 (hedge-delay signal)
};

// Client-side hedging counters (tests / cluster-status).
struct HedgeStats {
  uint64_t issued = 0;  // hedge attempts that actually hit the wire
  uint64_t wins = 0;    // hedges whose response was used
};

class ClusterBackend : public KvBackend {
 public:
  static Status Connect(const ClusterBackendOptions& options,
                        std::unique_ptr<KvBackend>* out);
  // Typed variant for tooling that needs map()/endpoint_stats().
  static Status Connect(const ClusterBackendOptions& options,
                        std::unique_ptr<ClusterBackend>* out);

  std::string name() const override;
  uint32_t dim() const override { return dim_; }
  // The map's route_bits: batch layout helpers (OrderKeysByShard) then
  // group keys exactly like the cluster scatter does.
  uint32_t shard_bits() const override { return map()->route_bits; }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override;
  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override;
  BatchResult MultiApplyGradient(std::span<const Key> keys, const float* grads,
                                 float lr) override;
  // Best-effort: forwards the hint to each touched partition's primary.
  Status Lookahead(std::span<const Key> keys) override;

  // Sums every endpoint client's counters (remote_requests/remote_retries).
  BackendIoStats io_stats() const override;

  // Base families plus the per-endpoint routing counters
  // (mlkv_cluster_endpoint_requests_total{endpoint=} /
  // mlkv_cluster_endpoint_failovers_total{endpoint=}) and the client's
  // current map epoch.
  void CollectMetrics(obs::MetricsSink* sink) const override;

  // Current routing map snapshot (immutable; swapped whole on refresh).
  std::shared_ptr<const ClusterMap> map() const;
  // Refetches the map from any reachable endpoint; installs it when its
  // epoch is newer than the current one.
  Status RefreshMap();
  std::vector<EndpointStats> endpoint_stats() const;
  HedgeStats hedge_stats() const {
    return {hedges_.load(std::memory_order_relaxed),
            hedge_wins_.load(std::memory_order_relaxed)};
  }
  uint64_t hot_reads() const {
    return hot_reads_.load(std::memory_order_relaxed);
  }
  // Current hot-key snapshot (null when hot replication is off).
  std::shared_ptr<const HotKeySet> hot_keys() const {
    return hot_tracker_ ? hot_tracker_->hot() : nullptr;
  }

 private:
  enum class Op { kGet, kPut, kGrad };

  // One server, lazily connected; slots are created once per address and
  // never move, so raw pointers taken under ep_mu_ stay valid for the
  // backend's lifetime (map refreshes only add addresses).
  struct Endpoint {
    std::string addr;
    std::mutex mu;  // guards client creation
    std::unique_ptr<net::RemoteBackend> client;
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failovers{0};
    // Read sub-batch latency, fed by every read attempt (hedged or not).
    // The histogram's trailing p99 is the kHedgeAuto delay signal; the
    // EWMA is the smoothed display value.
    Histogram latency_us;
    obs::Ewma ewma_us;
  };

  explicit ClusterBackend(ClusterBackendOptions options);

  Endpoint* EndpointFor(const std::string& addr);
  // Lazy connect + dim cross-check (a mixed-dim cluster would silently
  // corrupt rows otherwise).
  Status GetClient(Endpoint* ep, net::RemoteBackend** out);
  Status FetchMapFrom(net::RemoteBackend* client,
                      std::shared_ptr<const ClusterMap>* out);
  void InstallMap(std::shared_ptr<const ClusterMap> m);

  // The scatter/gather core shared by all three batch ops. `rows_out` for
  // Get, `rows_in` for Put/Grad. `allow_epoch_retry` guards the one
  // refetch-and-retry pass on kWrongPartition rejections.
  BatchResult Execute(Op op, std::span<const Key> keys, float* rows_out,
                      const float* rows_in, float lr,
                      const MultiGetOptions& options, bool allow_epoch_retry);
  // One partition's sub-batch against its candidate endpoints (failover
  // order); keys/rows are already gathered contiguous. `rotation` rotates
  // the read-candidate order (hot-key round-robin); writes ignore it.
  BatchResult ExecutePartition(const ClusterMap& m, size_t partition, Op op,
                               std::span<const Key> keys, float* rows_out,
                               const float* rows_in, float lr,
                               const MultiGetOptions& options,
                               size_t rotation);

  // One timed read attempt; feeds the endpoint's latency histogram/EWMA.
  BatchResult TimedGet(Endpoint* ep, net::RemoteBackend* client,
                       std::span<const Key> keys, float* rows_out,
                       const MultiGetOptions& options, bool* down);
  // Effective hedge delay for a primary attempt on `ep` (see hedge_us).
  uint64_t HedgeDelayUs(Endpoint* ep) const;
  // Primary attempt on candidates[0] (whose client is already connected)
  // raced against a delayed hedge on candidates[1]. Returns the number of
  // candidates consumed (1 or 2) so the caller's failover loop resumes
  // after the ones already tried. On success *down is false; on *down,
  // *result holds the folded per-key codes of the losing attempt.
  size_t HedgedGet(const ClusterMap& m, const ClusterPartition& part,
                   const std::vector<uint32_t>& candidates, Endpoint* ep0,
                   net::RemoteBackend* client0, std::span<const Key> keys,
                   float* rows_out, const MultiGetOptions& options,
                   BatchResult* result, bool* down);

  const ClusterBackendOptions options_;
  uint32_t dim_ = 0;  // fixed at Connect; read-only afterwards

  mutable std::mutex map_mu_;
  std::shared_ptr<const ClusterMap> map_;

  mutable std::mutex ep_mu_;  // guards the slot vector, not the slots
  std::vector<std::unique_ptr<Endpoint>> endpoints_;

  std::unique_ptr<ThreadPool> pool_;  // scatter helpers

  // Hot-key replication state (null/zero when off).
  std::unique_ptr<HotKeyTracker> hot_tracker_;
  std::atomic<uint64_t> hot_rr_{0};     // round-robin cursor for hot reads
  std::atomic<uint64_t> hot_reads_{0};  // reads routed by the hot policy

  std::atomic<uint64_t> hedges_{0};      // hedge attempts issued
  std::atomic<uint64_t> hedge_wins_{0};  // hedge responses used

  mutable std::mutex part_ops_mu_;
  std::vector<uint64_t> partition_ops_;  // keys routed per partition

  // Dedicated pool for hedge attempts — sharing pool_ would let a scatter
  // storm starve (or deadlock behind) the very requests meant to rescue
  // it. Declared last: its destructor joins in-flight hedge tasks (which
  // touch endpoints_/this) before any other member is torn down.
  std::unique_ptr<ThreadPool> hedge_pool_;
};

}  // namespace cluster
}  // namespace mlkv
