// ClusterMap: the routing table for cluster mode — which server owns which
// partition, and where its replicas live.
//
// Keys route exactly like the in-process ShardedStore: partition =
// ShardOf(Hash64(key), mask) over the TOP bits of the mixed hash, with
// 1 << route_bits partitions. Each partition names one primary endpoint
// (serves reads and all writes) and zero or more replica endpoints
// (tail the primary's committed-update feed; serve reads when the map's
// read_preference says so, or when the primary is unreachable).
//
// The map is versioned by `epoch`. Servers enforce ownership: a key that
// does not belong to the receiving server under its current map comes back
// with a per-key kWrongPartition code, and the transport-level first_error
// names the server's epoch — a stale client refetches via kClusterMap and
// retries just those keys. Epochs only move forward; data movement between
// servers is the operator's job (see docs/CLUSTER.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "kv/record.h"
#include "net/wire.h"

namespace mlkv {
namespace cluster {

enum class ReadPreference : uint8_t {
  kPrimary = 0,  // reads go to the primary; replicas are failover-only
  kReplica = 1,  // reads prefer a replica (untracked), offloading primaries
};

struct ClusterPartition {
  uint32_t primary = 0;            // index into ClusterMap::endpoints
  std::vector<uint32_t> replicas;  // endpoint indices, preference order
};

struct ClusterMap {
  uint64_t epoch = 0;        // 0 = standalone / client-derived (unenforced)
  uint32_t route_bits = 0;   // partitions = 1 << route_bits
  ReadPreference read_preference = ReadPreference::kPrimary;
  std::string table = "emb";
  std::vector<std::string> endpoints;         // "host:port", normalized
  std::vector<ClusterPartition> partitions;   // size 1 << route_bits

  uint32_t num_partitions() const { return 1u << route_bits; }

  size_t PartitionOf(Key key) const {
    return ShardOf(Hash64(key), (uint64_t{1} << route_bits) - 1);
  }

  // Whether endpoint `self` may serve `key`: writes need the primary,
  // reads accept any replica too.
  bool OwnsForWrite(uint32_t self, Key key) const {
    return partitions[PartitionOf(key)].primary == self;
  }
  bool OwnsForRead(uint32_t self, Key key) const {
    const ClusterPartition& p = partitions[PartitionOf(key)];
    if (p.primary == self) return true;
    for (const uint32_t r : p.replicas) {
      if (r == self) return true;
    }
    return false;
  }

  // Structural sanity: partition count matches route_bits, every endpoint
  // index in range, endpoints non-empty.
  Status Validate() const;

  // Index of `addr` in endpoints, or -1.
  int FindEndpoint(const std::string& addr) const;
};

// Builds the standard layout: endpoints = primaries then replicas;
// partition p's primary is primaries[p % n]; replica r of primary i (from
// `replicas`, aligned with `primaries`, "" = none) backs every partition
// primaried at i. route_bits 0 derives ceil(log2(n_primaries)).
Status BuildClusterMap(const std::vector<std::string>& primaries,
                       const std::vector<std::string>& replicas,
                       uint32_t route_bits, ReadPreference read_preference,
                       uint64_t epoch, ClusterMap* out);

// Wire form (kClusterMap response body).
void EncodeClusterMap(const ClusterMap& m, net::PayloadWriter* w);
Status DecodeClusterMap(net::PayloadReader* r, ClusterMap* out);

}  // namespace cluster
}  // namespace mlkv
