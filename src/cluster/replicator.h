// Replicator: the replica half of primary→replica log shipping. A replica
// KvServer owns one of these: a background thread that tails the primary's
// committed-update feed (kSubscribe to learn the shard topology, then
// kReplicate polls per shard) and applies each entry to the local backend
// in log order via KvBackend::ApplyReplicatedUpdate. Routing is by key on
// the replica side, so the replica's shard layout need not match the
// primary's.
//
// Resume: per-shard resume tokens (the primary's log addresses) advance
// only after an entry applies, and are persisted to `state_path` (tmp +
// rename, best-effort) after every round — a restarted replica re-polls
// from its last applied position instead of from the log head. A token
// that fell behind the primary's compaction horizon surfaces as the
// cursor's Corruption; the operator re-seeds the replica.
//
// Catch-up: the replica is caught up when a full round over all shards
// returned no entries and every resume token reached the primary's durable
// watermark. WaitCaughtUp() parks until then (tests, ordered failover).
// Primary loss is not fatal — the loop keeps re-connecting (reconnects
// counted) so a bounced primary resumes shipping where it left off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "common/status.h"
#include "net/remote_backend.h"

namespace mlkv {
namespace cluster {

struct ReplicatorOptions {
  std::string primary_addr;  // "host:port" of the primary KvServer
  uint64_t poll_interval_ms = 20;    // idle sleep between caught-up polls
  uint32_t max_records_per_poll = 1024;
  uint32_t max_bytes_per_poll = 4u << 20;
  // Resume-token file ("" = in-memory only; a restart re-replays the log).
  std::string state_path;
};

// Point-in-time replication counters (also fed into the replica server's
// kStats via KvServer::SetStatsSource).
struct ReplicationProgress {
  uint64_t replicated_records = 0;  // entries applied locally
  uint64_t replica_lag_records = 0;  // fetched but not yet applied
  uint64_t polls = 0;
  uint64_t reconnects = 0;      // primary connections after the first
  uint64_t apply_failures = 0;  // local applies that failed (token held)
  bool connected = false;
  bool caught_up = false;
};

class Replicator {
 public:
  // `local` must outlive the replicator; Stop() (or destruction) joins the
  // tail thread before `local` may be torn down.
  Replicator(KvBackend* local, ReplicatorOptions options);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  // Loads persisted resume tokens and starts the tail thread. OK even when
  // the primary is down — the loop connects when it can.
  Status Start();
  void Stop();

  ReplicationProgress progress() const;
  // Blocks until a round that started after this call found nothing left
  // to ship (or timeout) — i.e. the replica holds everything the primary
  // had committed before the wait began.
  bool WaitCaughtUp(uint64_t timeout_ms);

 private:
  void Loop();
  // One full round over all shards; reports whether anything shipped.
  Status PollRound(bool* shipped);
  Status EnsureClient();
  Status LoadState();
  void SaveState();

  KvBackend* const local_;
  const ReplicatorOptions options_;

  // Tail-thread-only state.
  std::unique_ptr<net::RemoteBackend> client_;
  std::vector<uint64_t> positions_;  // per primary shard resume token
  bool ever_connected_ = false;

  std::atomic<uint64_t> replicated_{0};
  std::atomic<uint64_t> lag_{0};
  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> apply_failures_{0};
  std::atomic<bool> connected_{false};
  std::atomic<bool> caught_up_{false};

  std::mutex mu_;
  std::condition_variable cv_;  // Stop wake-up + WaitCaughtUp
  bool stop_ = false;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace cluster
}  // namespace mlkv
