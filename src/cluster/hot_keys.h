// HotKeyTracker: client-side detection of the hottest read keys, feeding
// ClusterBackend's load-aware replication routing (docs/SERVING.md). The
// paper's serving story assumes skewed traffic; a single hot partition (or
// a single hot key) saturates its primary while replicas idle. The tracker
// watches the client's own read mix — a TinyLfu sketch estimates per-key
// frequency, a bounded candidate map remembers which keys were seen this
// window — and periodically publishes the top-K as an immutable HotKeySet
// snapshot. ClusterBackend then routes reads for those keys round-robin
// across the partition's primary AND replicas instead of primary-first.
//
// Refresh is an epoch-free periodic pull: every `refresh_interval` recorded
// keys the caller's own RecordReads call ranks the window's candidates by
// sketch estimate, swaps the snapshot, and starts a new window. No
// background thread, no cluster coordination — each client converges on its
// own observed skew, and the sketch's aging forgets keys that cool off.
//
// Consistency caveat (same contract as read failover): hot-key reads served
// by a replica are untracked and may be bounded-stale; see docs/CLUSTER.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <unordered_map>

#include "kv/record.h"
#include "serve/tinylfu.h"

namespace mlkv {
namespace cluster {

// Immutable snapshot of the current hot set; swapped whole on refresh so
// readers hold one shared_ptr per batch and never lock per key.
struct HotKeySet {
  std::unordered_set<Key> keys;
  bool contains(Key k) const { return keys.find(k) != keys.end(); }
};

class HotKeyTracker {
 public:
  // Publishes the `top_k` hottest keys, re-ranked every `refresh_interval`
  // observed keys. `candidate_cap` bounds the per-window candidate map
  // (0 derives max(1024, 8 * top_k)).
  HotKeyTracker(size_t top_k, uint64_t refresh_interval,
                size_t candidate_cap = 0);

  // Feeds one read batch into the sketch/candidates; runs the refresh
  // in-line when the window closes. Thread-safe (one mutex per batch).
  void RecordReads(std::span<const Key> keys);

  // Current snapshot; never null (starts empty).
  std::shared_ptr<const HotKeySet> hot() const;

  uint64_t refreshes() const {
    return refreshes_.load(std::memory_order_relaxed);
  }
  size_t top_k() const { return top_k_; }

 private:
  void RefreshLocked();

  const size_t top_k_;
  const uint64_t refresh_interval_;
  const size_t candidate_cap_;

  mutable std::mutex mu_;
  TinyLfu sketch_;
  // Keys observed this window (insert-capped; the sketch still counts keys
  // the cap rejects, so a key crowded out of one window ranks in the next).
  std::unordered_map<Key, uint32_t> candidates_;
  uint64_t window_keys_ = 0;
  std::shared_ptr<const HotKeySet> hot_;
  std::atomic<uint64_t> refreshes_{0};
};

}  // namespace cluster
}  // namespace mlkv
