#include "cluster/cluster_map.h"

namespace mlkv {
namespace cluster {

namespace {

uint32_t CeilLog2(size_t n) {
  uint32_t bits = 0;
  while ((size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace

Status ClusterMap::Validate() const {
  if (endpoints.empty()) {
    return Status::InvalidArgument("cluster map has no endpoints");
  }
  if (route_bits > 16) {
    return Status::InvalidArgument("cluster map route_bits > 16");
  }
  if (partitions.size() != num_partitions()) {
    return Status::InvalidArgument(
        "cluster map partition count does not match route_bits");
  }
  for (const ClusterPartition& p : partitions) {
    if (p.primary >= endpoints.size()) {
      return Status::InvalidArgument("cluster map primary index out of range");
    }
    for (const uint32_t r : p.replicas) {
      if (r >= endpoints.size()) {
        return Status::InvalidArgument(
            "cluster map replica index out of range");
      }
    }
  }
  return Status::OK();
}

int ClusterMap::FindEndpoint(const std::string& addr) const {
  for (size_t i = 0; i < endpoints.size(); ++i) {
    if (endpoints[i] == addr) return static_cast<int>(i);
  }
  return -1;
}

Status BuildClusterMap(const std::vector<std::string>& primaries,
                       const std::vector<std::string>& replicas,
                       uint32_t route_bits, ReadPreference read_preference,
                       uint64_t epoch, ClusterMap* out) {
  if (primaries.empty()) {
    return Status::InvalidArgument("cluster map needs at least one primary");
  }
  if (replicas.size() > primaries.size()) {
    return Status::InvalidArgument(
        "replica list longer than primary list (alignment is by index)");
  }
  *out = ClusterMap{};
  out->epoch = epoch;
  out->read_preference = read_preference;
  out->route_bits =
      route_bits != 0 ? route_bits : CeilLog2(primaries.size());
  if (out->route_bits > 16) {
    return Status::InvalidArgument("route_bits > 16");
  }
  if (primaries.size() > out->num_partitions()) {
    return Status::InvalidArgument(
        "more primaries than partitions; raise route_bits");
  }
  out->endpoints = primaries;
  // Replica endpoints follow the primaries; remember each primary's
  // replica slot (or -1) while appending. A replica address already in
  // the endpoint list reuses that slot instead of a duplicate — one
  // server must be one endpoint index, or its self-identification (and
  // with it read-ownership enforcement) splits across slots. This is what
  // makes mutual-replica topologies (each primary replicating the other)
  // expressible.
  std::vector<int> replica_of(primaries.size(), -1);
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i].empty()) continue;
    const int existing = out->FindEndpoint(replicas[i]);
    if (existing >= 0) {
      replica_of[i] = existing;
      continue;
    }
    replica_of[i] = static_cast<int>(out->endpoints.size());
    out->endpoints.push_back(replicas[i]);
  }
  out->partitions.resize(out->num_partitions());
  for (uint32_t p = 0; p < out->num_partitions(); ++p) {
    const uint32_t owner = p % static_cast<uint32_t>(primaries.size());
    out->partitions[p].primary = owner;
    // A primary listed as its own replica adds nothing — drop it.
    if (replica_of[owner] >= 0 &&
        replica_of[owner] != static_cast<int>(owner)) {
      out->partitions[p].replicas.push_back(
          static_cast<uint32_t>(replica_of[owner]));
    }
  }
  return out->Validate();
}

void EncodeClusterMap(const ClusterMap& m, net::PayloadWriter* w) {
  w->U64(m.epoch);
  w->U32(m.route_bits);
  w->U8(static_cast<uint8_t>(m.read_preference));
  w->Str(m.table);
  w->U32(static_cast<uint32_t>(m.endpoints.size()));
  for (const std::string& e : m.endpoints) w->Str(e);
  w->U32(static_cast<uint32_t>(m.partitions.size()));
  for (const ClusterPartition& p : m.partitions) {
    w->U32(p.primary);
    w->U32(static_cast<uint32_t>(p.replicas.size()));
    for (const uint32_t r : p.replicas) w->U32(r);
  }
}

Status DecodeClusterMap(net::PayloadReader* r, ClusterMap* out) {
  *out = ClusterMap{};
  uint8_t pref = 0;
  r->U64(&out->epoch);
  r->U32(&out->route_bits);
  r->U8(&pref);
  r->Str(&out->table);
  uint32_t n_eps = 0;
  // Each endpoint costs >= 2 bytes (Str length prefix); bound the counts
  // by the remaining payload before any allocation.
  if (!r->U32(&n_eps) || n_eps > r->remaining() / 2) {
    return Status::Corruption("wire: truncated cluster map");
  }
  out->endpoints.resize(n_eps);
  for (std::string& e : out->endpoints) r->Str(&e);
  uint32_t n_parts = 0;
  if (!r->U32(&n_parts) || n_parts > r->remaining() / 8) {
    return Status::Corruption("wire: truncated cluster map");
  }
  out->partitions.resize(n_parts);
  for (ClusterPartition& p : out->partitions) {
    uint32_t n_reps = 0;
    r->U32(&p.primary);
    if (!r->U32(&n_reps) || n_reps > r->remaining() / 4) {
      return Status::Corruption("wire: truncated cluster map");
    }
    p.replicas.resize(n_reps);
    for (uint32_t& rep : p.replicas) r->U32(&rep);
  }
  if (pref > static_cast<uint8_t>(ReadPreference::kReplica)) {
    return Status::Corruption("wire: bad read_preference in cluster map");
  }
  out->read_preference = static_cast<ReadPreference>(pref);
  MLKV_RETURN_NOT_OK(r->Finish("cluster map"));
  return out->Validate();
}

}  // namespace cluster
}  // namespace mlkv
