#include "cluster/hot_keys.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"

namespace mlkv {
namespace cluster {

HotKeyTracker::HotKeyTracker(size_t top_k, uint64_t refresh_interval,
                             size_t candidate_cap)
    : top_k_(top_k),
      refresh_interval_(std::max<uint64_t>(refresh_interval, 64)),
      candidate_cap_(candidate_cap != 0
                         ? candidate_cap
                         : std::max<size_t>(1024, top_k * 8)),
      sketch_(candidate_cap_ * 4),  // candidate_cap_ resolved just above
      hot_(std::make_shared<HotKeySet>()) {}

void HotKeyTracker::RecordReads(std::span<const Key> keys) {
  if (keys.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  for (const Key k : keys) {
    sketch_.RecordAccess(Hash64(k));
    auto it = candidates_.find(k);
    if (it != candidates_.end()) {
      ++it->second;
    } else if (candidates_.size() < candidate_cap_) {
      candidates_.emplace(k, 1);
    }
  }
  window_keys_ += keys.size();
  if (window_keys_ >= refresh_interval_) RefreshLocked();
}

void HotKeyTracker::RefreshLocked() {
  // Rank this window's candidates by sketch estimate (the sketch smooths
  // across windows, so a key's standing survives window boundaries), keep
  // the top K that actually recurred, and publish.
  std::vector<std::pair<uint32_t, Key>> ranked;
  ranked.reserve(candidates_.size());
  for (const auto& [key, seen] : candidates_) {
    const uint32_t est = sketch_.Estimate(Hash64(key));
    if (est >= 2) ranked.emplace_back(est, key);  // doorkeeper-only keys out
  }
  const size_t keep = std::min(top_k_, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  auto next = std::make_shared<HotKeySet>();
  next->keys.reserve(keep);
  for (size_t i = 0; i < keep; ++i) next->keys.insert(ranked[i].second);
  hot_ = std::move(next);
  candidates_.clear();
  window_keys_ = 0;
  refreshes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const HotKeySet> HotKeyTracker::hot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hot_;
}

}  // namespace cluster
}  // namespace mlkv
