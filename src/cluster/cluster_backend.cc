#include "cluster/cluster_backend.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>

#include "common/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlkv {
namespace cluster {

namespace {

bool IsHardCode(Status::Code c) {
  return c != Status::Code::kOk && c != Status::Code::kNotFound &&
         c != Status::Code::kBusy;
}

}  // namespace

ClusterBackend::ClusterBackend(ClusterBackendOptions options)
    : options_(std::move(options)) {
  // Sized for concurrent batches, not just one: every caller thread wants
  // up to endpoints-1 helpers at once (the caller runs one sub-batch
  // itself), and a starved pool quietly serializes the scatter — the
  // caller drains the sub-batches one RPC at a time and the fan-out win
  // disappears.
  const size_t threads =
      options_.scatter_threads != 0
          ? options_.scatter_threads
          : std::min<size_t>(16,
                             std::max<size_t>(4, options_.endpoints.size() * 4));
  pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.hot_replicate_top_k != 0) {
    hot_tracker_ = std::make_unique<HotKeyTracker>(
        options_.hot_replicate_top_k, options_.hot_refresh_interval);
  }
  if (options_.hedge_us != 0) {
    // Hedge tasks mostly sleep (waiting out the delay), so the pool is
    // sized for concurrent sleepers, not CPU.
    hedge_pool_ = std::make_unique<ThreadPool>(threads);
  }
}

Status ClusterBackend::Connect(const ClusterBackendOptions& options,
                               std::unique_ptr<KvBackend>* out) {
  std::unique_ptr<ClusterBackend> b;
  MLKV_RETURN_NOT_OK(Connect(options, &b));
  *out = std::move(b);
  return Status::OK();
}

Status ClusterBackend::Connect(const ClusterBackendOptions& options,
                               std::unique_ptr<ClusterBackend>* out) {
  if (options.endpoints.empty()) {
    return Status::InvalidArgument("cluster: endpoint list is empty");
  }
  auto b = std::unique_ptr<ClusterBackend>(new ClusterBackend(options));
  Status last = Status::IOError("cluster: no seed endpoint reachable");
  net::RemoteBackend* seed = nullptr;
  for (const std::string& addr : options.endpoints) {
    Endpoint* ep = b->EndpointFor(addr);
    std::lock_guard<std::mutex> lock(ep->mu);
    net::RemoteBackendOptions ro;
    ro.addr = addr;
    ro.pool_size = options.pool_size;
    ro.max_keys_per_rpc = options.max_keys_per_rpc;
    std::unique_ptr<net::RemoteBackend> c;
    last = net::RemoteBackend::Connect(ro, &c);
    if (!last.ok()) continue;
    b->dim_ = c->dim();
    seed = c.get();
    ep->client = std::move(c);
    break;
  }
  if (seed == nullptr) return last;

  std::shared_ptr<const ClusterMap> m;
  Status st = b->FetchMapFrom(seed, &m);
  if (!st.ok()) {
    if (!st.IsNotSupported()) return st;
    // Standalone seeds (no map to serve): derive the round-robin layout
    // client-side. Epoch 0 = unenforced — the servers accept every key.
    auto derived = std::make_shared<ClusterMap>();
    MLKV_RETURN_NOT_OK(BuildClusterMap(options.endpoints, {}, /*route_bits=*/0,
                                       ReadPreference::kPrimary, /*epoch=*/0,
                                       derived.get()));
    m = std::move(derived);
  }
  b->InstallMap(std::move(m));
  *out = std::move(b);
  return Status::OK();
}

std::string ClusterBackend::name() const {
  return "Cluster(n=" + std::to_string(map()->endpoints.size()) + ")";
}

std::shared_ptr<const ClusterMap> ClusterBackend::map() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return map_;
}

void ClusterBackend::InstallMap(std::shared_ptr<const ClusterMap> m) {
  std::lock_guard<std::mutex> lock(map_mu_);
  map_ = std::move(m);
}

Status ClusterBackend::RefreshMap() {
  // Try every endpoint the current map names, then any seed not in it.
  std::vector<std::string> addrs = map()->endpoints;
  for (const std::string& s : options_.endpoints) {
    if (std::find(addrs.begin(), addrs.end(), s) == addrs.end()) {
      addrs.push_back(s);
    }
  }
  Status last = Status::IOError("cluster: no endpoint served a map");
  for (const std::string& addr : addrs) {
    Endpoint* ep = EndpointFor(addr);
    net::RemoteBackend* client = nullptr;
    Status st = GetClient(ep, &client);
    if (!st.ok()) {
      last = st;
      continue;
    }
    std::shared_ptr<const ClusterMap> m;
    st = FetchMapFrom(client, &m);
    if (!st.ok()) {
      last = st;
      continue;
    }
    std::lock_guard<std::mutex> lock(map_mu_);
    if (m->epoch > map_->epoch) map_ = std::move(m);
    return Status::OK();
  }
  return last;
}

ClusterBackend::Endpoint* ClusterBackend::EndpointFor(const std::string& addr) {
  std::lock_guard<std::mutex> lock(ep_mu_);
  for (const auto& e : endpoints_) {
    if (e->addr == addr) return e.get();
  }
  endpoints_.push_back(std::make_unique<Endpoint>());
  endpoints_.back()->addr = addr;
  return endpoints_.back().get();
}

Status ClusterBackend::GetClient(Endpoint* ep, net::RemoteBackend** out) {
  std::lock_guard<std::mutex> lock(ep->mu);
  if (!ep->client) {
    net::RemoteBackendOptions ro;
    ro.addr = ep->addr;
    ro.pool_size = options_.pool_size;
    ro.max_keys_per_rpc = options_.max_keys_per_rpc;
    std::unique_ptr<net::RemoteBackend> c;
    MLKV_RETURN_NOT_OK(net::RemoteBackend::Connect(ro, &c));
    if (c->dim() != dim_) {
      return Status::InvalidArgument(
          "cluster endpoint " + ep->addr + " serves dim " +
          std::to_string(c->dim()) + ", cluster dim is " +
          std::to_string(dim_));
    }
    ep->client = std::move(c);
  }
  *out = ep->client.get();
  return Status::OK();
}

Status ClusterBackend::FetchMapFrom(net::RemoteBackend* client,
                                    std::shared_ptr<const ClusterMap>* out) {
  net::PayloadWriter req;
  Status transport;
  std::vector<uint8_t> body;
  size_t off = 0;
  MLKV_RETURN_NOT_OK(
      client->CallRaw(net::Opcode::kClusterMap, req, &transport, &body, &off));
  MLKV_RETURN_NOT_OK(transport);
  net::PayloadReader r(body.data() + off, body.size() - off);
  auto m = std::make_shared<ClusterMap>();
  MLKV_RETURN_NOT_OK(DecodeClusterMap(&r, m.get()));
  *out = std::move(m);
  return Status::OK();
}

BatchResult ClusterBackend::MultiGet(std::span<const Key> keys, float* out,
                                     const MultiGetOptions& options) {
  return Execute(Op::kGet, keys, out, nullptr, 0.0f, options,
                 /*allow_epoch_retry=*/true);
}

BatchResult ClusterBackend::MultiPut(std::span<const Key> keys,
                                     const float* values) {
  return Execute(Op::kPut, keys, nullptr, values, 0.0f, {},
                 /*allow_epoch_retry=*/true);
}

BatchResult ClusterBackend::MultiApplyGradient(std::span<const Key> keys,
                                               const float* grads, float lr) {
  return Execute(Op::kGrad, keys, nullptr, grads, lr, {},
                 /*allow_epoch_retry=*/true);
}

Status ClusterBackend::Lookahead(std::span<const Key> keys) {
  if (keys.empty()) return Status::OK();
  auto m = map();
  std::vector<std::vector<Key>> per(m->num_partitions());
  for (const Key k : keys) per[m->PartitionOf(k)].push_back(k);
  for (size_t p = 0; p < per.size(); ++p) {
    if (per[p].empty()) continue;
    Endpoint* ep = EndpointFor(m->endpoints[m->partitions[p].primary]);
    net::RemoteBackend* client = nullptr;
    if (!GetClient(ep, &client).ok()) continue;  // a hint: best-effort
    (void)client->Lookahead(per[p]);
  }
  return Status::OK();
}

BackendIoStats ClusterBackend::io_stats() const {
  BackendIoStats total;
  std::vector<Endpoint*> eps;
  {
    std::lock_guard<std::mutex> lock(ep_mu_);
    eps.reserve(endpoints_.size());
    for (const auto& e : endpoints_) eps.push_back(e.get());
  }
  for (Endpoint* ep : eps) {
    std::lock_guard<std::mutex> lock(ep->mu);
    if (!ep->client) continue;
    const BackendIoStats s = ep->client->io_stats();
    total.remote_requests += s.remote_requests;
    total.remote_retries += s.remote_retries;
  }
  return total;
}

void ClusterBackend::CollectMetrics(obs::MetricsSink* sink) const {
  KvBackend::CollectMetrics(sink);
  for (const EndpointStats& s : endpoint_stats()) {
    sink->AddCounter("mlkv_cluster_endpoint_requests_total",
                     "Sub-batches routed to this cluster endpoint.",
                     static_cast<double>(s.requests), {{"endpoint", s.addr}});
    sink->AddCounter("mlkv_cluster_endpoint_failovers_total",
                     "Sub-batches that left this endpoint for a fallback.",
                     static_cast<double>(s.failovers), {{"endpoint", s.addr}});
    sink->AddGauge("mlkv_cluster_endpoint_latency_ewma_us",
                   "Smoothed read sub-batch latency to this endpoint (us).",
                   s.latency_ewma_us, {{"endpoint", s.addr}});
    sink->AddGauge("mlkv_cluster_endpoint_latency_p99_us",
                   "Trailing read p99 to this endpoint (us); the kHedgeAuto "
                   "hedge-delay signal.",
                   static_cast<double>(s.latency_p99_us),
                   {{"endpoint", s.addr}});
  }
  sink->AddGauge("mlkv_cluster_map_epoch",
                 "Epoch of the client's installed routing map.",
                 static_cast<double>(map()->epoch));
  if (hedge_pool_) {
    sink->AddCounter("mlkv_cluster_hedge_issued_total",
                     "Read hedge attempts that reached the wire.",
                     static_cast<double>(hedges_.load(std::memory_order_relaxed)));
    sink->AddCounter(
        "mlkv_cluster_hedge_wins_total",
        "Read hedges whose response was used (first-response-wins).",
        static_cast<double>(hedge_wins_.load(std::memory_order_relaxed)));
  }
  if (hot_tracker_) {
    sink->AddGauge("mlkv_cluster_hot_keys",
                   "Keys in the current hot-replication set.",
                   static_cast<double>(hot_tracker_->hot()->keys.size()));
    sink->AddCounter(
        "mlkv_cluster_hot_reads_total",
        "Reads routed by the hot-key round-robin policy.",
        static_cast<double>(hot_reads_.load(std::memory_order_relaxed)));
    sink->AddCounter("mlkv_cluster_hot_refreshes_total",
                     "Hot-set re-rank passes.",
                     static_cast<double>(hot_tracker_->refreshes()));
  }
  {
    std::lock_guard<std::mutex> lock(part_ops_mu_);
    for (size_t p = 0; p < partition_ops_.size(); ++p) {
      sink->AddCounter("mlkv_cluster_partition_ops_total",
                       "Keys routed to this partition by this client.",
                       static_cast<double>(partition_ops_[p]),
                       {{"partition", std::to_string(p)}});
    }
  }
}

std::vector<EndpointStats> ClusterBackend::endpoint_stats() const {
  std::vector<Endpoint*> eps;
  {
    std::lock_guard<std::mutex> lock(ep_mu_);
    eps.reserve(endpoints_.size());
    for (const auto& e : endpoints_) eps.push_back(e.get());
  }
  std::vector<EndpointStats> out;
  out.reserve(eps.size());
  for (Endpoint* ep : eps) {
    EndpointStats s;
    s.addr = ep->addr;
    s.requests = ep->requests.load(std::memory_order_relaxed);
    s.failovers = ep->failovers.load(std::memory_order_relaxed);
    s.latency_ewma_us = ep->ewma_us.value();
    s.latency_p99_us = ep->latency_us.Percentile(0.99);
    {
      std::lock_guard<std::mutex> lock(ep->mu);
      s.connected = ep->client != nullptr;
    }
    out.push_back(std::move(s));
  }
  return out;
}

BatchResult ClusterBackend::TimedGet(Endpoint* ep, net::RemoteBackend* client,
                                     std::span<const Key> keys, float* rows_out,
                                     const MultiGetOptions& options,
                                     bool* down) {
  const auto t0 = std::chrono::steady_clock::now();
  BatchResult r = client->MultiGetEx(keys, rows_out, options, down);
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  ep->latency_us.Record(us);
  ep->ewma_us.Observe(static_cast<double>(us));
  return r;
}

uint64_t ClusterBackend::HedgeDelayUs(Endpoint* ep) const {
  if (options_.hedge_us != kHedgeAuto) return options_.hedge_us;
  // Auto mode: that endpoint's own trailing read p99 — a hedge fires only
  // for requests already slower than 99% of their peers. Until the
  // histogram has warmed, 1ms is a conservative stand-in.
  if (ep->latency_us.count() < 64) return 1000;
  return std::clamp<uint64_t>(ep->latency_us.Percentile(0.99), 100, 100000);
}

size_t ClusterBackend::HedgedGet(const ClusterMap& m,
                                 const ClusterPartition& part,
                                 const std::vector<uint32_t>& candidates,
                                 Endpoint* ep0, net::RemoteBackend* client0,
                                 std::span<const Key> keys, float* rows_out,
                                 const MultiGetOptions& options,
                                 BatchResult* result, bool* down) {
  // Shared between the caller and both attempt tasks. Either task may
  // outlive the caller (the caller returns as soon as a winner is
  // decided), so the keys are copied in and each attempt writes its own
  // private row buffer — never the caller's rows_out, whose lifetime ends
  // with the caller. The caller copies the winner's buffer out before
  // returning; the loser's bytes are simply dropped.
  struct HedgeState {
    std::mutex mu;
    std::condition_variable cv;
    int winner = -1;  // -1 undecided, 0 primary, 1 hedge; first success
    bool a0_done = false;
    bool down0 = false;
    bool hedge_done = false;  // hedge task finished (issued or cancelled)
    bool hedge_issued = false;
    std::vector<Key> keys_copy;
    std::vector<float> buf0, buf1;
    BatchResult r0, r1;
  };
  auto hs = std::make_shared<HedgeState>();
  hs->keys_copy.assign(keys.begin(), keys.end());
  hs->buf0.resize(keys.size() * dim_);
  hs->buf1.resize(keys.size() * dim_);

  MultiGetOptions o0 = options;
  if (candidates[0] != part.primary) o0.untracked = true;
  const bool a0_launched = hedge_pool_->TrySubmit([this, hs, ep0, client0,
                                                   o0]() {
    ep0->requests.fetch_add(1, std::memory_order_relaxed);
    bool down0 = false;
    BatchResult r0 =
        TimedGet(ep0, client0, hs->keys_copy, hs->buf0.data(), o0, &down0);
    std::lock_guard<std::mutex> lock(hs->mu);
    hs->r0 = std::move(r0);
    hs->down0 = down0;
    hs->a0_done = true;
    if (!down0 && hs->winner == -1) hs->winner = 0;
    if (down0) ep0->failovers.fetch_add(1, std::memory_order_relaxed);
    hs->cv.notify_all();
  });
  if (!a0_launched) {
    // No hedge capacity: degrade to a plain inline attempt.
    ep0->requests.fetch_add(1, std::memory_order_relaxed);
    bool down0 = false;
    *result = TimedGet(ep0, client0, keys, rows_out, o0, &down0);
    *down = down0;
    if (down0) ep0->failovers.fetch_add(1, std::memory_order_relaxed);
    return 1;
  }

  // The caller owns the hedge delay: it waits for the primary to answer
  // inside the window, and only when the window expires (or the primary
  // reports transport-down, which fast-forwards the delay — the hedge
  // doubles as the failover hop) does a hedge task get created. Fast
  // reads therefore cost one pool handoff and one row copy, never a
  // second task.
  const uint64_t delay_us = HedgeDelayUs(ep0);
  std::unique_lock<std::mutex> lock(hs->mu);
  hs->cv.wait_for(lock, std::chrono::microseconds(delay_us),
                  [&hs] { return hs->a0_done; });
  if (hs->winner == 0) {
    simd::CopyFloats(rows_out, hs->buf0.data(), keys.size() * dim_);
    *result = std::move(hs->r0);
    *down = false;
    return 1;
  }

  // Primary is slow or down: issue the hedge to the next candidate.
  lock.unlock();
  Endpoint* ep1 = EndpointFor(m.endpoints[candidates[1]]);
  MultiGetOptions o1 = options;
  if (candidates[1] != part.primary) o1.untracked = true;
  const bool h_launched = hedge_pool_->TrySubmit([this, hs, ep1, o1]() {
    {
      // The primary may have answered between the caller's timeout and
      // this task running; don't waste an RPC on a decided race.
      std::lock_guard<std::mutex> lock(hs->mu);
      if (hs->winner != -1) {
        hs->hedge_done = true;
        hs->cv.notify_all();
        return;
      }
    }
    net::RemoteBackend* client1 = nullptr;
    const Status cs = GetClient(ep1, &client1);
    bool down1 = true;
    BatchResult r1;
    if (cs.ok()) {
      ep1->requests.fetch_add(1, std::memory_order_relaxed);
      hedges_.fetch_add(1, std::memory_order_relaxed);
      down1 = false;
      r1 = TimedGet(ep1, client1, hs->keys_copy, hs->buf1.data(), o1, &down1);
    } else {
      r1 = BatchResult(hs->keys_copy.size());
      for (size_t i = 0; i < hs->keys_copy.size(); ++i) r1.Record(i, cs);
    }
    std::lock_guard<std::mutex> lock(hs->mu);
    hs->r1 = std::move(r1);
    hs->hedge_issued = true;
    if (!down1 && hs->winner == -1) hs->winner = 1;
    if (down1) ep1->failovers.fetch_add(1, std::memory_order_relaxed);
    hs->hedge_done = true;
    hs->cv.notify_all();
  });

  // First response wins: the caller unblocks the moment either attempt
  // succeeds, while the loser finishes in the background against the
  // shared state. Both tasks always terminate (one RPC each), so the
  // both-failed wait cannot hang.
  lock.lock();
  if (!h_launched) hs->hedge_done = true;
  hs->cv.wait(lock, [&hs] {
    return hs->winner != -1 || (hs->a0_done && hs->hedge_done);
  });
  if (hs->winner == 0) {
    simd::CopyFloats(rows_out, hs->buf0.data(), keys.size() * dim_);
    *result = std::move(hs->r0);
    *down = false;
    return 1;
  }
  if (hs->winner == 1) {
    hedge_wins_.fetch_add(1, std::memory_order_relaxed);
    simd::CopyFloats(rows_out, hs->buf1.data(), keys.size() * dim_);
    *result = std::move(hs->r1);
    *down = false;
    return 2;
  }
  // Both attempts failed at the transport level. Fold the hedge's per-key
  // codes when it consumed its candidate (issued its connect/RPC), the
  // primary's when the hedge was cancelled or never launched.
  *down = true;
  if (hs->hedge_issued) {
    *result = std::move(hs->r1);
    return 2;
  }
  *result = std::move(hs->r0);
  return 1;
}

BatchResult ClusterBackend::ExecutePartition(const ClusterMap& m, size_t p,
                                             Op op, std::span<const Key> keys,
                                             float* rows_out,
                                             const float* rows_in, float lr,
                                             const MultiGetOptions& options,
                                             size_t rotation) {
  const ClusterPartition& part = m.partitions[p];
  // Candidate endpoints in attempt order. Writes only ever run on the
  // primary; reads fail over to replicas (or start there under kReplica).
  std::vector<uint32_t> candidates;
  if (op == Op::kGet && m.read_preference == ReadPreference::kReplica &&
      !part.replicas.empty()) {
    candidates = part.replicas;
    candidates.push_back(part.primary);
  } else {
    candidates.push_back(part.primary);
    if (op == Op::kGet) {
      candidates.insert(candidates.end(), part.replicas.begin(),
                        part.replicas.end());
    }
  }
  // Hot-key round-robin: rotate the attempt order so this sub-batch starts
  // on a different candidate; the rest stay as failover fallbacks.
  if (op == Op::kGet && rotation != 0 && candidates.size() > 1) {
    std::rotate(candidates.begin(),
                candidates.begin() + (rotation % candidates.size()),
                candidates.end());
  }

  Status last = Status::IOError("cluster: no reachable endpoint for partition " +
                                std::to_string(p));
  BatchResult folded;  // transport failure folded to per-key codes
  bool have_folded = false;
  size_t c0 = 0;
  // Hedged read: race candidates[0] against a delayed attempt on
  // candidates[1]; the plain failover loop resumes after whatever the
  // hedge pair consumed.
  if (op == Op::kGet && hedge_pool_ && candidates.size() >= 2) {
    Endpoint* ep0 = EndpointFor(m.endpoints[candidates[0]]);
    net::RemoteBackend* client0 = nullptr;
    const Status st = GetClient(ep0, &client0);
    if (!st.ok()) {
      last = st;
      ep0->failovers.fetch_add(1, std::memory_order_relaxed);
      c0 = 1;
    } else {
      bool down = false;
      BatchResult r;
      const size_t consumed = HedgedGet(m, part, candidates, ep0, client0,
                                        keys, rows_out, options, &r, &down);
      if (!down) return r;
      folded = std::move(r);
      have_folded = true;
      c0 = consumed;
    }
  }
  for (size_t c = c0; c < candidates.size(); ++c) {
    const uint32_t idx = candidates[c];
    Endpoint* ep = EndpointFor(m.endpoints[idx]);
    net::RemoteBackend* client = nullptr;
    const Status st = GetClient(ep, &client);
    if (!st.ok()) {
      last = st;
      if (c + 1 < candidates.size()) {
        ep->failovers.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    ep->requests.fetch_add(1, std::memory_order_relaxed);
    bool down = false;
    BatchResult r;
    switch (op) {
      case Op::kGet: {
        MultiGetOptions o = options;
        // A non-primary candidate serves the read consistency-free: a
        // replica has no staleness authority over the partition.
        if (idx != part.primary) o.untracked = true;
        r = TimedGet(ep, client, keys, rows_out, o, &down);
        break;
      }
      case Op::kPut:
        r = client->MultiPutEx(keys, rows_in, &down);
        break;
      case Op::kGrad:
        r = client->MultiApplyGradientEx(keys, rows_in, lr, &down);
        break;
    }
    if (!down) return r;
    folded = std::move(r);
    have_folded = true;
    // Writes stop here: retrying a possibly-executed write on another
    // server risks double-applying; the per-key failure codes stand.
    if (op != Op::kGet) return folded;
    if (c + 1 < candidates.size()) {
      ep->failovers.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (have_folded) return folded;
  BatchResult fail(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) fail.Record(i, last);
  return fail;
}

BatchResult ClusterBackend::Execute(Op op, std::span<const Key> keys,
                                    float* rows_out, const float* rows_in,
                                    float lr, const MultiGetOptions& options,
                                    bool allow_epoch_retry) {
  const size_t n = keys.size();
  BatchResult full(n);
  if (n == 0) return full;
  const std::shared_ptr<const ClusterMap> m = map();
  const size_t d = dim_;
  const size_t nparts = m->num_partitions();

  // Hot-key replication: feed the tracker (outer call only — the epoch
  // retry re-enters Execute with the same keys) and snapshot the hot set.
  // Hot keys scatter into per-rotation groups so one batch's reads for a
  // hot key spread across the partition's primary AND replicas.
  std::shared_ptr<const HotKeySet> hot;
  size_t stride = 1;
  if (op == Op::kGet && hot_tracker_) {
    if (allow_epoch_retry) hot_tracker_->RecordReads(keys);
    auto h = hot_tracker_->hot();
    if (!h->keys.empty()) {
      for (const ClusterPartition& cp : m->partitions) {
        stride = std::max(stride, cp.replicas.size() + 1);
      }
      if (stride > 1) hot = std::move(h);
    }
  }

  // Group = (partition, rotation); rotation is 0 for everything except hot
  // keys, which take the next round-robin slot among their partition's
  // candidates. stride==1 degenerates to the plain per-partition scatter.
  const size_t ngroups = nparts * stride;
  std::vector<uint32_t> part(n);
  std::vector<size_t> counts(ngroups, 0);
  std::vector<uint64_t> per_part_ops(nparts, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t p = m->PartitionOf(keys[i]);
    ++per_part_ops[p];
    size_t rot = 0;
    if (hot && hot->contains(keys[i])) {
      const size_t ncand = m->partitions[p].replicas.size() + 1;
      if (ncand > 1) {
        rot = hot_rr_.fetch_add(1, std::memory_order_relaxed) % ncand;
        hot_reads_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    part[i] = static_cast<uint32_t>(p * stride + rot);
    ++counts[part[i]];
  }
  {
    std::lock_guard<std::mutex> lock(part_ops_mu_);
    if (partition_ops_.size() < nparts) partition_ops_.resize(nparts, 0);
    for (size_t p = 0; p < nparts; ++p) partition_ops_[p] += per_part_ops[p];
  }
  size_t nonempty = 0, only = 0;
  for (size_t g = 0; g < ngroups; ++g) {
    if (counts[g] != 0) {
      ++nonempty;
      only = g;
    }
  }

  if (nonempty == 1) {
    // Single-group batch: the caller's spans are already contiguous.
    full = ExecutePartition(*m, only / stride, op, keys, rows_out, rows_in, lr,
                            options, only % stride);
  } else {
    // Stable counting-sort scatter (same shape as ShardedStore's): caller
    // positions grouped by (partition, rotation), in-order within each
    // group so duplicate-key semantics survive the hop.
    std::vector<size_t> offsets(ngroups + 1, 0);
    for (size_t g = 0; g < ngroups; ++g) offsets[g + 1] = offsets[g] + counts[g];
    std::vector<size_t> pos(offsets.begin(), offsets.end() - 1);
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[pos[part[i]]++] = i;

    struct SubTask {
      size_t partition;
      size_t rotation;
      size_t begin;
      size_t end;
    };
    std::vector<SubTask> tasks;
    for (size_t g = 0; g < ngroups; ++g) {
      if (counts[g] != 0) {
        tasks.push_back({g / stride, g % stride, offsets[g], offsets[g + 1]});
      }
    }
    std::vector<BatchResult> sub(tasks.size());

    std::atomic<size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= tasks.size()) return;
        const SubTask& task = tasks[t];
        const size_t cnt = task.end - task.begin;
        std::vector<Key> sub_keys(cnt);
        for (size_t j = 0; j < cnt; ++j) {
          sub_keys[j] = keys[order[task.begin + j]];
        }
        std::vector<float> sub_rows(cnt * d);
        if (op != Op::kGet) {
          for (size_t j = 0; j < cnt; ++j) {
            simd::CopyFloats(&sub_rows[j * d],
                             rows_in + order[task.begin + j] * d, d);
          }
        }
        sub[t] = ExecutePartition(
            *m, task.partition, op, sub_keys,
            op == Op::kGet ? sub_rows.data() : nullptr,
            op == Op::kGet ? nullptr : sub_rows.data(), lr, options,
            task.rotation);
        if (op == Op::kGet) {
          for (size_t j = 0; j < cnt; ++j) {
            if (sub[t].codes[j] == Status::Code::kOk) {
              simd::CopyFloats(rows_out + order[task.begin + j] * d,
                               &sub_rows[j * d], d);
            }
          }
        }
      }
    };

    // Helpers claim tasks off the shared counter; the calling thread
    // always participates, so a full pool queue can never deadlock a
    // batch. A local latch (not ThreadPool::Drain) keeps concurrent
    // batches from waiting on each other's tasks.
    struct Latch {
      std::mutex mu;
      std::condition_variable cv;
      size_t pending = 0;
    };
    auto latch = std::make_shared<Latch>();
    const size_t helpers =
        std::min(pool_->num_threads(), tasks.size() > 0 ? tasks.size() - 1 : 0);
    // Helpers inherit the caller's trace context so their ExecutePartition
    // rpc spans land in the same request tree (the caller thread already
    // has it installed).
    const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
    for (size_t h = 0; h < helpers; ++h) {
      {
        std::lock_guard<std::mutex> lock(latch->mu);
        ++latch->pending;
      }
      const bool queued = pool_->TrySubmit([&worker, latch, trace_ctx]() {
        obs::ScopedTraceContext trace_scope(trace_ctx);
        worker();
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->pending;
        latch->cv.notify_all();
      });
      if (!queued) {
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->pending;
      }
    }
    worker();
    {
      std::unique_lock<std::mutex> lock(latch->mu);
      latch->cv.wait(lock, [&latch]() { return latch->pending == 0; });
    }

    // Gather: codes back to caller positions, counts accumulated.
    for (size_t t = 0; t < tasks.size(); ++t) {
      const SubTask& task = tasks[t];
      const BatchResult& s = sub[t];
      for (size_t j = 0; j < task.end - task.begin; ++j) {
        full.codes[order[task.begin + j]] = s.codes[j];
      }
      full.found += s.found;
      full.missing += s.missing;
      full.busy += s.busy;
      if (full.failed == 0 && s.failed > 0) full.first_error = s.first_error;
      full.failed += s.failed;
    }
  }

  // Stale-map recovery: per-key kWrongPartition means the server's map
  // moved on. Refetch; if the epoch actually changed, retry exactly the
  // rejected keys once under the new routing.
  if (!allow_epoch_retry) return full;
  bool any_stale = false;
  for (const Status::Code c : full.codes) {
    if (c == Status::Code::kWrongPartition) {
      any_stale = true;
      break;
    }
  }
  if (!any_stale) return full;
  const uint64_t old_epoch = m->epoch;
  if (!RefreshMap().ok()) return full;
  if (map()->epoch == old_epoch) return full;

  std::vector<size_t> stale;
  std::vector<Key> retry_keys;
  for (size_t i = 0; i < n; ++i) {
    if (full.codes[i] == Status::Code::kWrongPartition) {
      stale.push_back(i);
      retry_keys.push_back(keys[i]);
    }
  }
  std::vector<float> retry_rows(stale.size() * d);
  if (op != Op::kGet) {
    for (size_t j = 0; j < stale.size(); ++j) {
      simd::CopyFloats(&retry_rows[j * d], rows_in + stale[j] * d, d);
    }
  }
  const BatchResult again = Execute(
      op, retry_keys, op == Op::kGet ? retry_rows.data() : nullptr,
      op == Op::kGet ? nullptr : retry_rows.data(), lr, options,
      /*allow_epoch_retry=*/false);
  for (size_t j = 0; j < stale.size(); ++j) {
    full.codes[stale[j]] = again.codes[j];
    if (op == Op::kGet && again.codes[j] == Status::Code::kOk) {
      simd::CopyFloats(rows_out + stale[j] * d, &retry_rows[j * d], d);
    }
  }
  // The stale keys were all counted failed; swap in the retry's outcome.
  full.failed -= stale.size();
  full.found += again.found;
  full.missing += again.missing;
  full.busy += again.busy;
  full.failed += again.failed;
  if (full.failed == 0) {
    full.first_error = Status::OK();
  } else if (again.failed > 0) {
    full.first_error = again.first_error;
  } else if (full.first_error.IsWrongPartition()) {
    // Remaining failures predate the retry; surface one of their codes.
    for (const Status::Code c : full.codes) {
      if (IsHardCode(c)) {
        full.first_error = Status::FromCode(c);
        break;
      }
    }
  }
  return full;
}

}  // namespace cluster
}  // namespace mlkv
